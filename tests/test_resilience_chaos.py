"""Chaos sweep invariant (ext_resilience) — full-scale, `chaos`-marked.

Excluded from the default tier-1 run (`addopts = -m 'not chaos'`); the
dedicated CI chaos job runs it with `-m chaos`.
"""

import pytest

from repro.experiments.ext_resilience import (
    render_resilience_study,
    run_recovery_check,
    run_resilience_cell,
    run_resilience_study,
)

pytestmark = pytest.mark.chaos


class TestChaosSweep:
    def test_invariant_holds_across_the_sweep(self):
        study = run_resilience_study(seed=1, slots=150, intensities=(0.1, 0.3))
        assert study.violations() == []
        by_class = {c.fault_class for c in study.cells}
        assert "chaos" in by_class and "none" in by_class
        # The sweep actually injected faults in every non-control cell.
        for cell in study.cells:
            if cell.fault_class != "none":
                assert cell.fault_count > 0, cell.fault_class
        # The sweep's recovery leg machine-checked byte-identical resume.
        assert study.recovery is not None
        assert study.recovery.ok
        # The duplicate-delivery leg: redelivered bundles fired and
        # changed no settlement total.
        assert study.duplicate_neutrality is not None
        assert study.duplicate_neutrality.duplicates_injected > 0
        assert study.duplicate_neutrality.ok

    def test_control_cell_is_fault_free(self):
        cell = run_resilience_cell("none", 0.0, seed=1, slots=120)
        assert cell.fault_count == 0
        assert cell.revocations == 0
        assert cell.invariant_ok

    def test_chaos_cell_exercises_every_fault_channel(self):
        cell = run_resilience_cell("chaos", 0.3, seed=1, slots=200)
        assert cell.lost_bids > 0
        assert cell.lost_grants > 0
        assert cell.meter_faults > 0
        assert cell.invariant_ok

    def test_render_mentions_verdict(self):
        study = run_resilience_study(
            seed=1, slots=80, intensities=(0.2,), fault_classes=("none", "comm")
        )
        text = render_resilience_study(study)
        assert "Chaos sweep" in text
        assert "invariant holds" in text

    def test_crash_and_resume_under_chaos_is_byte_identical(self):
        # Standalone recovery cell at a different operating point from
        # the sweep's built-in leg: crash mid-run under the full chaos
        # profile, resume from the checkpoint, require a byte-identical
        # trace and equal numeric results.
        cell = run_recovery_check(
            seed=5, slots=90, crash_at=60, intensity=0.3, checkpoint_every=7
        )
        assert cell.trace_identical
        assert cell.result_identical
        assert cell.resumed_slot <= cell.crash_slot
