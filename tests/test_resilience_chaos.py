"""Chaos sweep invariant (ext_resilience) — full-scale, `chaos`-marked.

Excluded from the default tier-1 run (`addopts = -m 'not chaos'`); the
dedicated CI chaos job runs it with `-m chaos`.
"""

import pytest

from repro.experiments.ext_resilience import (
    render_resilience_study,
    run_resilience_cell,
    run_resilience_study,
)

pytestmark = pytest.mark.chaos


class TestChaosSweep:
    def test_invariant_holds_across_the_sweep(self):
        study = run_resilience_study(seed=1, slots=150, intensities=(0.1, 0.3))
        assert study.violations() == []
        by_class = {c.fault_class for c in study.cells}
        assert "chaos" in by_class and "none" in by_class
        # The sweep actually injected faults in every non-control cell.
        for cell in study.cells:
            if cell.fault_class != "none":
                assert cell.fault_count > 0, cell.fault_class

    def test_control_cell_is_fault_free(self):
        cell = run_resilience_cell("none", 0.0, seed=1, slots=120)
        assert cell.fault_count == 0
        assert cell.revocations == 0
        assert cell.invariant_ok

    def test_chaos_cell_exercises_every_fault_channel(self):
        cell = run_resilience_cell("chaos", 0.3, seed=1, slots=200)
        assert cell.lost_bids > 0
        assert cell.lost_grants > 0
        assert cell.meter_faults > 0
        assert cell.invariant_ok

    def test_render_mentions_verdict(self):
        study = run_resilience_study(
            seed=1, slots=80, intensities=(0.2,), fault_classes=("none", "comm")
        )
        text = render_resilience_study(study)
        assert "Chaos sweep" in text
        assert "invariant holds" in text
