"""Long-horizon stability: a simulated week under every policy.

These are the endurance checks: nothing drifts, leaks, or diverges when
the simulation runs far past the calibration horizon.
"""

import numpy as np
import pytest

from repro.core.baselines import MaxPerfAllocator, PowerCappedAllocator
from repro.economics.settlement import build_all_invoices, reconcile
from repro.sim.engine import run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed

#: One simulated week at 2-minute slots.
WEEK_SLOTS = 7 * 24 * 30


@pytest.fixture(scope="module")
def week_spotdc():
    return run_simulation(build_testbed(seed=314), WEEK_SLOTS)


@pytest.fixture(scope="module")
def week_capped():
    return run_simulation(
        build_testbed(seed=314), WEEK_SLOTS, allocator=PowerCappedAllocator()
    )


class TestWeekLongRun:
    def test_all_series_finite(self, week_spotdc):
        collector = week_spotdc.collector
        for array in (
            collector.price_array(),
            collector.spot_granted_array(),
            collector.ups_power_array(),
            collector.forecast_ups_array(),
        ):
            assert np.all(np.isfinite(array))
            assert array.shape == (WEEK_SLOTS,)

    def test_no_drift_between_halves(self, week_spotdc):
        # The market's behaviour in the second half should look like the
        # first half (stationary workloads): mean granted within 30%.
        granted = week_spotdc.collector.spot_granted_array()
        first = granted[: WEEK_SLOTS // 2].mean()
        second = granted[WEEK_SLOTS // 2 :].mean()
        assert second == pytest.approx(first, rel=0.3)

    def test_batch_backlogs_do_not_diverge(self, week_spotdc):
        # Work-conserving batch tenants must keep up on average; their
        # racks cannot sit pinned at the budget forever.
        for tenant_id in ("Count-1", "Count-2", "Sort", "Graph-1", "Graph-2"):
            for rack_id in week_spotdc.tenants[tenant_id].rack_ids:
                wanted = week_spotdc.rack_wanted_mask(rack_id)
                # Backlog pressure exists but is not permanent.
                assert 0.0 < wanted.mean() < 0.8

    def test_headline_holds_at_week_scale(self, week_spotdc, week_capped):
        increase = week_spotdc.operator_profit_increase_vs(week_capped)
        assert 0.05 < increase < 0.15
        ratios = [
            week_spotdc.tenant_performance_improvement_vs(week_capped, t)
            for t in week_spotdc.participating_tenant_ids()
        ]
        assert 1.15 < float(np.mean(ratios)) < 1.8

    def test_books_balance_at_week_scale(self, week_spotdc):
        reconcile(week_spotdc)
        invoices = build_all_invoices(week_spotdc)
        assert all(inv.total > 0 for inv in invoices)

    def test_no_emergencies_accumulate(self, week_spotdc, week_capped):
        # Rate, not count: over a week the excursion rate stays tiny.
        rate = week_spotdc.emergencies.count() / WEEK_SLOTS
        assert rate < 0.002
        assert week_spotdc.emergencies.count() <= (
            week_capped.emergencies.count() + 3
        )

    def test_maxperf_week_runs_clean(self):
        result = run_simulation(
            build_testbed(seed=314),
            WEEK_SLOTS // 2,
            allocator=MaxPerfAllocator(),
        )
        assert result.total_spot_revenue() == 0.0
        assert result.collector.spot_granted_array().sum() > 0
