"""Oversubscription planning and emergency logging."""

import pytest

from repro.errors import ConfigurationError
from repro.infrastructure.emergencies import EmergencyLog
from repro.infrastructure.oversubscription import OversubscriptionPlan
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.topology import PowerTopology
from repro.infrastructure.ups import Ups


class TestOversubscriptionPlan:
    def test_paper_testbed_arithmetic(self):
        plan = OversubscriptionPlan(pdu_ratio=1.05, ups_ratio=1.05)
        p1 = plan.pdu_capacity_w(750.0)
        p2 = plan.pdu_capacity_w(760.0)
        assert p1 == pytest.approx(714.29, abs=0.01)
        assert p2 == pytest.approx(723.81, abs=0.01)
        ups = plan.ups_capacity_w({"p1": p1, "p2": p2})
        assert ups == pytest.approx(1369.6, abs=0.1)

    def test_no_oversubscription_identity(self):
        plan = OversubscriptionPlan(pdu_ratio=1.0, ups_ratio=1.0)
        assert plan.pdu_capacity_w(500.0) == pytest.approx(500.0)

    def test_rejects_ratio_below_one(self):
        with pytest.raises(ConfigurationError):
            OversubscriptionPlan(pdu_ratio=0.9)
        with pytest.raises(ConfigurationError):
            OversubscriptionPlan(ups_ratio=0.5)

    def test_rejects_negative_leased(self):
        with pytest.raises(ConfigurationError):
            OversubscriptionPlan().pdu_capacity_w(-1.0)

    def test_rejects_empty_pdus(self):
        with pytest.raises(ConfigurationError):
            OversubscriptionPlan().ups_capacity_w({})

    def test_for_spot_fraction(self):
        plan = OversubscriptionPlan.for_spot_fraction(0.15, 0.75)
        # physical = 0.9 * leased -> ratio 1/0.9
        assert plan.pdu_ratio == pytest.approx(1.0 / 0.9)

    def test_for_spot_fraction_never_below_one(self):
        plan = OversubscriptionPlan.for_spot_fraction(0.5, 0.9)
        assert plan.pdu_ratio == 1.0

    def test_for_spot_fraction_validates(self):
        with pytest.raises(ConfigurationError):
            OversubscriptionPlan.for_spot_fraction(1.5, 0.5)
        with pytest.raises(ConfigurationError):
            OversubscriptionPlan.for_spot_fraction(0.1, 0.0)


def small_topology():
    return PowerTopology.build(
        Ups("u", 250.0),
        [Pdu("p1", 150.0)],
        [
            Rack("r1", "t1", "p1", 80.0, 120.0),
            Rack("r2", "t2", "p1", 80.0, 120.0),
        ],
    )


class TestEmergencyLog:
    def test_no_events_within_limits(self):
        topology = small_topology()
        topology.rack("r1").record_power(70.0)
        topology.rack("r2").record_power(70.0)
        log = EmergencyLog(tolerance=0.0)
        assert log.scan(topology, slot=0) == []
        assert log.count() == 0

    def test_rack_over_budget_detected(self):
        topology = small_topology()
        topology.rack("r1").record_power(90.0)  # budget 80
        topology.rack("r2").record_power(10.0)
        log = EmergencyLog(tolerance=0.0)
        events = log.scan(topology, slot=3)
        levels = {e.level for e in events}
        assert "rack" in levels
        rack_event = next(e for e in events if e.level == "rack")
        assert rack_event.overload_w == pytest.approx(10.0)
        assert rack_event.slot == 3

    def test_rack_budget_includes_spot_grant(self):
        topology = small_topology()
        topology.rack("r1").set_spot_budget(20.0)
        topology.rack("r1").record_power(95.0)
        topology.rack("r2").record_power(10.0)
        log = EmergencyLog(tolerance=0.0)
        assert log.scan(topology, slot=0) == []

    def test_pdu_overload_detected(self):
        topology = small_topology()
        topology.rack("r1").set_spot_budget(40.0)
        topology.rack("r2").set_spot_budget(40.0)
        topology.rack("r1").record_power(80.0)
        topology.rack("r2").record_power(80.0)
        log = EmergencyLog(tolerance=0.0)
        events = log.scan(topology, slot=1)
        assert any(e.level == "pdu" for e in events)
        pdu_event = next(e for e in events if e.level == "pdu")
        assert pdu_event.overload_w == pytest.approx(10.0)

    def test_tolerance_suppresses_small_excursions(self):
        topology = small_topology()
        topology.rack("r1").record_power(80.5)  # 0.6% over the 80 W budget
        topology.rack("r2").record_power(10.0)
        assert EmergencyLog(tolerance=0.01).scan(topology, 0) == []
        assert len(EmergencyLog(tolerance=0.0).scan(topology, 0)) == 1

    def test_count_filter_and_overload_slots(self):
        topology = small_topology()
        topology.rack("r1").record_power(90.0)
        topology.rack("r2").record_power(10.0)
        log = EmergencyLog(tolerance=0.0)
        log.scan(topology, 0)
        log.scan(topology, 1)
        assert log.count("rack") == 2
        assert log.count("ups") == 0
        assert log.overload_slots("rack") == {0, 1}
