"""Sharded clearing: bit-exact parity, reconciliation, and recovery.

The sharded clear (`repro.core.sharding.clear_per_pdu_sharded`) promises
*byte-identical* results to the serial per-PDU scan at any shard count
and any process fan-out — the serial path is the parity oracle.  These
tests machine-check that promise at three levels: the raw allocation
objects, full simulation JSONL traces plus tenant invoices, and the
crash/checkpoint-resume invariants under ``shards=4``.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import MarketParameters
from repro.core.allocation import AllocationResult
from repro.core.clearing import MarketClearing
from repro.core.frame import BidFrame
from repro.core.market import SpotDCAllocator
from repro.core.sharding import (
    clear_per_pdu_sharded,
    partition_tasks,
    reconcile_allocation,
)
from repro.errors import ClearingError, ConfigurationError
from repro.experiments.fig07_prediction_and_scaling import make_synthetic_bids
from repro.infrastructure.constraints import CapacityConstraint
from repro.recovery import latest_checkpoint
from repro.resilience import FaultProfile
from repro.sim.engine import run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed
from repro.telemetry import TelemetryConfig

PARAMS = MarketParameters(price_step=0.01)
SLOTS = 12


def _market(racks=300, seed=0, racks_per_pdu=40):
    rng = np.random.default_rng(seed)
    bids, pdu_spot_w, ups_spot_w = make_synthetic_bids(
        racks, rng, racks_per_pdu=racks_per_pdu
    )
    return BidFrame.from_bids(bids), pdu_spot_w, ups_spot_w


def _assert_identical(a: AllocationResult, b: AllocationResult):
    """Bit-exact equality — no tolerances anywhere."""
    assert a.price == b.price
    assert a.grants_w == b.grants_w
    assert a.pdu_prices == b.pdu_prices
    assert a.revenue_rate == b.revenue_rate
    assert a.candidate_prices == b.candidate_prices
    assert a.feasible_prices == b.feasible_prices


class TestShardedParity:
    @pytest.mark.parametrize("shards", [1, 4, 16])
    def test_serial_shards_match_oracle(self, shards):
        frame, pdu_spot_w, ups_spot_w = _market()
        engine = MarketClearing(params=PARAMS)
        oracle = engine.clear_per_pdu(frame, pdu_spot_w, ups_spot_w)
        sharded = clear_per_pdu_sharded(
            engine, frame, pdu_spot_w, ups_spot_w, shards=shards
        )
        _assert_identical(sharded, oracle)

    def test_process_pool_matches_oracle(self):
        frame, pdu_spot_w, ups_spot_w = _market()
        engine = MarketClearing(params=PARAMS)
        oracle = engine.clear_per_pdu(frame, pdu_spot_w, ups_spot_w)
        sharded = clear_per_pdu_sharded(
            engine, frame, pdu_spot_w, ups_spot_w, shards=4, jobs=2
        )
        _assert_identical(sharded, oracle)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_extra_constraints_preserved(self, jobs):
        frame, pdu_spot_w, ups_spot_w = _market()
        zone = frozenset(list(frame.rack_ids)[:25])
        constraint = CapacityConstraint("zone", zone, 900.0)
        engine = MarketClearing(params=PARAMS)
        oracle = engine.clear_per_pdu(
            frame, pdu_spot_w, ups_spot_w, extra_constraints=[constraint]
        )
        sharded = clear_per_pdu_sharded(
            engine, frame, pdu_spot_w, ups_spot_w,
            extra_constraints=[constraint], shards=4, jobs=jobs,
        )
        _assert_identical(sharded, oracle)

    def test_empty_frame(self):
        engine = MarketClearing(params=PARAMS)
        result = clear_per_pdu_sharded(
            engine, BidFrame.from_bids([]), {}, 100.0, shards=4
        )
        assert result.grants_w == {}
        assert result.price == 0.0

    def test_negative_ups_rejected(self):
        frame, pdu_spot_w, _ = _market(racks=40)
        engine = MarketClearing(params=PARAMS)
        with pytest.raises(ClearingError):
            clear_per_pdu_sharded(engine, frame, pdu_spot_w, -1.0, shards=2)


class TestPartitionTasks:
    def test_empty(self):
        assert partition_tasks([], 4) == []

    def test_more_shards_than_tasks(self):
        tasks = [("p0", [None], 1.0, ()), ("p1", [None, None], 1.0, ())]
        groups = partition_tasks(tasks, 16)
        assert [t for g in groups for t in g] == tasks
        assert all(g for g in groups)
        assert len(groups) <= len(tasks)

    def test_contiguous_and_complete(self):
        tasks = [(f"p{i}", [None] * (i % 3 + 1), 1.0, ()) for i in range(8)]
        groups = partition_tasks(tasks, 3)
        assert [t for g in groups for t in g] == tasks
        assert len(groups) == 3


class TestReconciliation:
    def test_noop_returns_same_object(self):
        frame, pdu_spot_w, ups_spot_w = _market(racks=120)
        engine = MarketClearing(params=PARAMS)
        result = engine.clear_per_pdu(frame, pdu_spot_w, ups_spot_w)
        assert reconcile_allocation(result, frame, pdu_spot_w, ups_spot_w) is result

    def test_shrink_only_fixup_respects_caps(self):
        frame, pdu_spot_w, ups_spot_w = _market(racks=120)
        engine = MarketClearing(params=PARAMS)
        honest = engine.clear_per_pdu(frame, pdu_spot_w, ups_spot_w)
        # Inflate every grant past the PDU caps to force the guard.
        inflated = dataclasses.replace(
            honest,
            grants_w={r: g * 50.0 + 10.0 for r, g in honest.grants_w.items()},
        )
        fixed = reconcile_allocation(inflated, frame, pdu_spot_w, ups_spot_w)
        assert fixed is not inflated
        # Shrink-only (Eq. 2): no rack's grant grew.
        for rack_id, grant in fixed.grants_w.items():
            assert grant <= inflated.grants_w[rack_id] + 1e-9
        # Eq. 3: per-PDU totals within the PDU budgets.
        per_pdu: dict[str, float] = {}
        pdu_of = dict(zip(frame.rack_ids, np.asarray(frame.pdu_code)))
        pdu_ids = [pdu_id for pdu_id, _ in frame.pdu_slices()]
        for rack_id, grant in fixed.grants_w.items():
            pdu = pdu_ids[pdu_of[rack_id]]
            per_pdu[pdu] = per_pdu.get(pdu, 0.0) + grant
        for pdu_id, total in per_pdu.items():
            assert total <= pdu_spot_w[pdu_id] + 1e-6
        # Eq. 4: the facility total within the UPS budget.
        assert sum(fixed.grants_w.values()) <= ups_spot_w + 1e-6


class TestAllocatorConfig:
    def test_shards_require_per_pdu_pricing(self):
        with pytest.raises(ConfigurationError):
            SpotDCAllocator(params=PARAMS, shards=2, pricing="uniform")

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "2"])
    def test_invalid_shards_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            SpotDCAllocator(params=PARAMS, shards=bad)

    def test_scenario_shards_validated(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(build_testbed(seed=1), shards=0)


def _trace_bytes(tmp_path, run_id, shards, **scenario_overrides):
    out = tmp_path / str(run_id)
    scenario = dataclasses.replace(
        build_testbed(seed=7), shards=shards, **scenario_overrides
    )
    result = run_simulation(
        scenario, slots=SLOTS,
        telemetry=TelemetryConfig(out_dir=out, label="run"),
    )
    return (out / "run_trace.jsonl").read_bytes(), result


def _assert_results_equal(a, b):
    assert np.array_equal(a.price_series(), b.price_series())
    assert np.array_equal(a.ups_power_series(), b.ups_power_series())
    assert a.total_spot_revenue() == b.total_spot_revenue()
    assert a.ledger.net_profit == b.ledger.net_profit
    for tenant_id in a.tenants:
        assert a.tenant_spot_payment(tenant_id) == b.tenant_spot_payment(
            tenant_id
        )


class TestEndToEndByteIdentity:
    def test_traces_and_invoices_identical_across_shards(self, tmp_path):
        baseline_bytes, baseline = _trace_bytes(tmp_path, "shards1", 1)
        for shards in (4, 16):
            trace, result = _trace_bytes(tmp_path, f"shards{shards}", shards)
            assert trace == baseline_bytes
            _assert_results_equal(result, baseline)

    def test_shard_spans_stay_out_of_default_traces(self):
        scenario = build_testbed(seed=7)
        allocator = SpotDCAllocator(
            params=MarketParameters(slot_seconds=scenario.slot_seconds),
            shards=2,
        )
        result = run_simulation(
            scenario, slots=SLOTS, allocator=allocator,
            telemetry=TelemetryConfig(enabled=True),
        )
        assert result.trace.spans_named("clearing.shard") == []

    def test_shard_spans_emitted_when_enabled(self):
        scenario = build_testbed(seed=7)
        allocator = SpotDCAllocator(
            params=MarketParameters(slot_seconds=scenario.slot_seconds),
            shards=2, shard_spans=True,
        )
        result = run_simulation(
            scenario, slots=SLOTS, allocator=allocator,
            telemetry=TelemetryConfig(enabled=True),
        )
        spans = result.trace.spans_named("clearing.shard")
        assert spans
        assert all(s.duration_s is not None for s in spans)


@pytest.mark.recovery
class TestShardedRecovery:
    """Crash/resume stays byte-identical with sharding enabled."""

    def _crashed_then_resumed(self, tmp_path, seed, shards, crash_at=8):
        scenario = dataclasses.replace(build_testbed(seed=seed), shards=shards)
        crashing = dataclasses.replace(
            FaultProfile(name="crash-only"), crash_at_slot=crash_at
        )
        ckpt_dir = tmp_path / "ckpt"
        from repro.errors import OperatorCrash

        with pytest.raises(OperatorCrash):
            run_simulation(
                scenario, SLOTS, fault_profile=crashing,
                checkpoint_every=3, checkpoint_dir=ckpt_dir,
            )
        checkpoint = latest_checkpoint(ckpt_dir)
        assert checkpoint is not None
        return run_simulation(
            dataclasses.replace(build_testbed(seed=seed), shards=shards),
            SLOTS, fault_profile=crashing, resume_from=checkpoint,
        )

    def test_resume_matches_straight_run(self, tmp_path):
        resumed = self._crashed_then_resumed(tmp_path, seed=11, shards=4)
        reference = run_simulation(
            dataclasses.replace(build_testbed(seed=11), shards=4), SLOTS
        )
        _assert_results_equal(resumed, reference)

    def test_sharded_resume_matches_unsharded_run(self, tmp_path):
        resumed = self._crashed_then_resumed(tmp_path, seed=11, shards=4)
        reference = run_simulation(build_testbed(seed=11), SLOTS)
        _assert_results_equal(resumed, reference)
