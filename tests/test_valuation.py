"""Spot-capacity value curves (Fig. 9 machinery) and cost calibration."""

import numpy as np
import pytest

from repro.economics.cost import OpportunisticCostModel, SprintingCostModel
from repro.economics.valuation import (
    SpotValueCurve,
    opportunistic_value_curve,
    sprinting_value_curve,
)
from repro.errors import ConfigurationError
from repro.power.latency import LatencyModel
from repro.power.server import ServerPowerModel
from repro.power.throughput import ThroughputModel
from repro.tenants.calibration import (
    calibrate_opportunistic_cost,
    calibrate_sprinting_cost,
)


@pytest.fixture
def latency_model():
    return LatencyModel(
        power_model=ServerPowerModel(65.0, 181.0), mu_max_rps=139.0,
        tail_const_ms_rps=5000.0, d_min_ms=25.0,
    )


@pytest.fixture
def throughput_model():
    return ThroughputModel(
        power_model=ServerPowerModel(56.0, 194.0), rate_max=69.0
    )


class TestSpotValueCurveShape:
    def test_from_gain_samples_enforces_monotone_concave(self):
        grid = np.linspace(0.0, 100.0, 11)
        noisy = np.array([0, 5, 4, 9, 12, 11, 15, 16, 16, 17, 17.5])
        curve = SpotValueCurve.from_gain_samples(100.0, grid, noisy)
        gains = [curve.gain_per_hour(float(d)) for d in grid]
        assert all(b >= a - 1e-9 for a, b in zip(gains, gains[1:]))
        marginals = np.diff(gains)
        assert all(b <= a + 1e-9 for a, b in zip(marginals, marginals[1:]))

    def test_gain_zero_at_zero(self):
        grid = np.linspace(0.0, 50.0, 6)
        curve = SpotValueCurve.from_gain_samples(100.0, grid, grid * 0.1)
        assert curve.gain_per_hour(0.0) == 0.0
        assert curve.gain_per_hour(-5.0) == 0.0

    def test_optimal_demand_decreasing_in_price(self):
        grid = np.linspace(0.0, 100.0, 101)
        curve = SpotValueCurve.from_gain_samples(
            100.0, grid, 10 * (1 - np.exp(-grid / 30.0))
        )
        demands = [curve.optimal_demand_w(q) for q in (0.01, 0.1, 1.0, 10.0)]
        assert all(a >= b for a, b in zip(demands, demands[1:]))

    def test_optimal_demand_zero_when_price_exceeds_marginal(self):
        grid = np.linspace(0.0, 100.0, 101)
        curve = SpotValueCurve.from_gain_samples(100.0, grid, grid * 0.0001)
        # marginal value = 0.0001 $/W/h = 0.1 $/kW/h
        assert curve.optimal_demand_w(0.2) == 0.0
        assert curve.optimal_demand_w(0.05) > 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpotValueCurve.from_gain_samples(1.0, np.array([1.0, 2.0]), np.array([0.0, 1.0]))
        with pytest.raises(ConfigurationError):
            SpotValueCurve.from_gain_samples(1.0, np.array([0.0]), np.array([0.0]))
        with pytest.raises(ConfigurationError):
            SpotValueCurve.from_gain_samples(
                1.0, np.array([0.0, 1.0]), np.array([0.0])
            )
        grid = np.linspace(0.0, 10.0, 5)
        curve = SpotValueCurve.from_gain_samples(1.0, grid, grid)
        with pytest.raises(ConfigurationError):
            curve.marginal_gain_per_hour(1.0, delta_w=0.0)


class TestSprintingValueCurve:
    def test_positive_when_capped(self, latency_model):
        cost = SprintingCostModel(a=1e-6, b=1e-6, slo_ms=100.0)
        # High load: the guaranteed budget forces SLO violation.
        curve = sprinting_value_curve(
            latency_model, cost, base_power_w=145.0, arrival_rps=100.0,
            max_spot_w=36.0,
        )
        assert curve.gain_per_hour(30.0) > 0.0

    def test_zero_when_unconstrained(self, latency_model):
        cost = SprintingCostModel(a=1e-6, b=1e-6, slo_ms=100.0)
        # Tiny load: full latency floor already met at base budget.
        curve = sprinting_value_curve(
            latency_model, cost, base_power_w=181.0, arrival_rps=5.0,
            max_spot_w=20.0,
        )
        assert curve.gain_per_hour(20.0) == pytest.approx(0.0, abs=1e-9)

    def test_concave_increasing(self, latency_model):
        cost = SprintingCostModel(a=1e-6, b=1e-6, slo_ms=100.0)
        curve = sprinting_value_curve(
            latency_model, cost, 145.0, 100.0, 36.0
        )
        gains = [curve.gain_per_hour(d) for d in np.linspace(0, 36, 10)]
        assert all(b >= a - 1e-12 for a, b in zip(gains, gains[1:]))

    def test_requires_positive_headroom(self, latency_model):
        cost = SprintingCostModel(a=1.0, b=1.0)
        with pytest.raises(ConfigurationError):
            sprinting_value_curve(latency_model, cost, 145.0, 100.0, 0.0)


class TestOpportunisticValueCurve:
    def test_positive_gain_with_backlog(self, throughput_model):
        cost = OpportunisticCostModel(rho=0.001)
        curve = opportunistic_value_curve(
            throughput_model, cost, base_power_w=125.0, backlog_units=100.0,
            max_spot_w=60.0,
        )
        assert curve.gain_per_hour(40.0) > 0.0

    def test_zero_gain_without_backlog(self, throughput_model):
        cost = OpportunisticCostModel(rho=0.001)
        curve = opportunistic_value_curve(
            throughput_model, cost, 125.0, 0.0, 60.0
        )
        assert curve.gain_per_hour(60.0) == 0.0

    def test_gain_scales_with_rho(self, throughput_model):
        lo = opportunistic_value_curve(
            throughput_model, OpportunisticCostModel(rho=0.001),
            125.0, 1.0, 60.0,
        )
        hi = opportunistic_value_curve(
            throughput_model, OpportunisticCostModel(rho=0.002),
            125.0, 1.0, 60.0,
        )
        assert hi.gain_per_hour(30.0) == pytest.approx(
            2 * lo.gain_per_hour(30.0)
        )


class TestCalibration:
    def test_sprinting_marginal_hits_target(self, latency_model):
        target = 0.25
        model = calibrate_sprinting_cost(
            latency_model,
            guaranteed_w=145.0,
            reference_rps=100.0,
            max_spot_w=36.0,
            target_marginal_per_kw_hour=target,
        )
        curve = sprinting_value_curve(
            latency_model, model, 145.0, 100.0, 36.0
        )
        marginal = curve.marginal_gain_per_hour(0.3 * 36.0)
        assert marginal * 1000.0 == pytest.approx(target, rel=0.05)

    def test_opportunistic_marginal_hits_target(self, throughput_model):
        target = 0.12
        model = calibrate_opportunistic_cost(
            throughput_model,
            guaranteed_w=125.0,
            max_spot_w=60.0,
            target_marginal_per_kw_hour=target,
        )
        curve = opportunistic_value_curve(
            throughput_model, model, 125.0, 1.0, 60.0
        )
        marginal = curve.marginal_gain_per_hour(0.3 * 60.0)
        assert marginal * 1000.0 == pytest.approx(target, rel=0.05)

    def test_sprinting_calibration_fails_when_unconstrained(self, latency_model):
        with pytest.raises(ConfigurationError):
            calibrate_sprinting_cost(
                latency_model,
                guaranteed_w=181.0,  # peak power: never capped
                reference_rps=5.0,
                max_spot_w=10.0,
                target_marginal_per_kw_hour=0.2,
            )

    def test_calibration_validates_inputs(self, latency_model, throughput_model):
        with pytest.raises(ConfigurationError):
            calibrate_sprinting_cost(latency_model, 145.0, 100.0, 36.0, 0.0)
        with pytest.raises(ConfigurationError):
            calibrate_opportunistic_cost(throughput_model, 125.0, 0.0, 0.1)
