"""Byte-determinism of exported traces.

The JSONL trace must be a *comparable* artifact: two runs of the same
``(scenario, seed)`` — including under an active fault profile — must
produce byte-identical files, so ``diff``/hashing detects behavioural
drift across PRs.  Wall-clock timings are therefore excluded from the
default export (``include_timings`` re-adds them for humans).
"""

import json

from repro.resilience.profile import FaultProfile
from repro.sim.engine import run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed
from repro.telemetry import TelemetryConfig

SLOTS = 10


def _trace_bytes(tmp_path, run_id, fault_profile=None, include_timings=False):
    out = tmp_path / str(run_id)
    run_simulation(
        build_testbed(seed=7),
        slots=SLOTS,
        fault_profile=fault_profile,
        telemetry=TelemetryConfig(
            out_dir=out, label="run", include_timings=include_timings
        ),
    )
    return (out / "run_trace.jsonl").read_bytes()


def test_identical_runs_identical_traces(tmp_path):
    assert _trace_bytes(tmp_path, 1) == _trace_bytes(tmp_path, 2)


def test_identical_under_active_fault_profile(tmp_path):
    profile = FaultProfile(
        bid_loss=0.1, grant_loss=0.08, meter_stuck=0.05,
        derating_rate=0.02, seed=3,
    )
    a = _trace_bytes(tmp_path, 1, fault_profile=profile)
    b = _trace_bytes(tmp_path, 2, fault_profile=profile)
    assert a == b
    # The profile genuinely perturbed the run (fault events present).
    assert any(b"fault." in line for line in a.splitlines())


def test_different_seeded_faults_differ(tmp_path):
    a = _trace_bytes(
        tmp_path, 1, fault_profile=FaultProfile(bid_loss=0.2, seed=3)
    )
    b = _trace_bytes(
        tmp_path, 2, fault_profile=FaultProfile(bid_loss=0.2, seed=4)
    )
    assert a != b


def test_no_wall_clock_in_default_export(tmp_path):
    for line in _trace_bytes(tmp_path, 1).splitlines():
        assert "duration_s" not in json.loads(line)


def test_timings_mode_is_opt_in_and_nondeterministic_field_only(tmp_path):
    lines = _trace_bytes(tmp_path, 1, include_timings=True).splitlines()
    spans = [json.loads(ln) for ln in lines if b'"span"' in ln]
    assert all("duration_s" in s for s in spans)
    # Stripping the timing field recovers the deterministic record.
    stripped = [
        {k: v for k, v in s.items() if k != "duration_s"} for s in spans
    ]
    plain = [
        json.loads(ln)
        for ln in _trace_bytes(tmp_path, 2).splitlines()
        if b'"span"' in ln
    ]
    assert stripped == plain
