"""Smoke tests: the fast example scripts run end to end.

The slower demos (hyperscale, equilibrium, custom facility) are covered
indirectly by the unit/integration suites for the features they tour.
"""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "operator profit increase" in out
        assert "Search-1" in out

    def test_demand_function_showdown(self):
        out = run_example("demand_function_showdown.py")
        assert "LinearBid" in out and "StepBid" in out and "FullBid" in out

    def test_tenant_bidding_clinic(self):
        out = run_example("tenant_bidding_clinic.py")
        assert "value curve" in out.lower() or "Value curve" in out
        assert "strategies" in out.lower()

    def test_colo_day_in_life(self):
        out = run_example("colo_day_in_life.py")
        assert "Fig. 10" in out
        assert "Fig. 11" in out
