"""Phase-balance and heat-density constraints (paper Section III-A)."""

import pytest

from repro.core.allocation import verify_allocation
from repro.core.bids import RackBid
from repro.core.clearing import clear_market
from repro.core.demand import LinearBid, StepBid
from repro.errors import CapacityError, ClearingError, ConfigurationError, TopologyError
from repro.infrastructure.constraints import (
    CapacityConstraint,
    HeatZone,
    PhaseAssignment,
    zone_constraints,
)
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.topology import PowerTopology
from repro.infrastructure.ups import Ups


@pytest.fixture
def topology():
    racks = [
        Rack(f"r{i}", f"t{i}", "p1" if i < 6 else "p2", 80.0, 120.0)
        for i in range(9)
    ]
    return PowerTopology.build(
        Ups("u", 1200.0), [Pdu("p1", 600.0), Pdu("p2", 400.0)], racks
    )


class TestCapacityConstraint:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CapacityConstraint("", frozenset({"r"}), 1.0)
        with pytest.raises(ConfigurationError):
            CapacityConstraint("c", frozenset(), 1.0)
        with pytest.raises(ConfigurationError):
            CapacityConstraint("c", frozenset({"r"}), -1.0)


class TestPhaseAssignment:
    def test_round_robin_default(self, topology):
        phases = PhaseAssignment(topology)
        assert phases.phase_of("r0") == "A"
        assert phases.phase_of("r1") == "B"
        assert phases.phase_of("r2") == "C"
        assert phases.phase_of("r3") == "A"

    def test_explicit_assignment(self, topology):
        phases = PhaseAssignment(topology, {"r0": "C"})
        assert phases.phase_of("r0") == "C"

    def test_racks_on(self, topology):
        phases = PhaseAssignment(topology)
        assert phases.racks_on("p1", "A") == ["r0", "r3"]

    def test_static_constraints_share_capacity(self, topology):
        phases = PhaseAssignment(topology)
        constraints = phases.constraints(imbalance_tolerance=0.2)
        p1a = next(c for c in constraints if c.name == "p1/phase:A")
        assert p1a.cap_w == pytest.approx(600.0 / 3 * 1.2)
        assert p1a.rack_ids == frozenset({"r0", "r3"})

    def test_phase_headroom_subtracts_draw(self, topology):
        topology.rack("r0").record_power(100.0)
        topology.rack("r3").record_power(50.0)
        phases = PhaseAssignment(topology)
        headroom = phases.phase_headroom(imbalance_tolerance=0.2)
        p1a = next(c for c in headroom if c.name == "p1/phase:A")
        assert p1a.cap_w == pytest.approx(600.0 / 3 * 1.2 - 150.0)

    def test_headroom_never_negative(self, topology):
        for rack_id in ("r0", "r3"):
            topology.rack(rack_id).record_power(80.0)
        phases = PhaseAssignment(topology)
        headroom = phases.phase_headroom(imbalance_tolerance=0.0)
        p1a = next(c for c in headroom if c.name == "p1/phase:A")
        assert p1a.cap_w >= 0.0

    def test_validation(self, topology):
        with pytest.raises(TopologyError):
            PhaseAssignment(topology, {"ghost": "A"})
        with pytest.raises(ConfigurationError):
            PhaseAssignment(topology, {"r0": "D"})
        with pytest.raises(ConfigurationError):
            PhaseAssignment(topology).constraints(imbalance_tolerance=2.0)


class TestHeatZone:
    def test_headroom(self, topology):
        topology.rack("r0").record_power(60.0)
        topology.rack("r6").record_power(70.0)
        zone = HeatZone("aisle", frozenset({"r0", "r6"}), 200.0)
        constraint = zone.headroom(topology)
        assert constraint.cap_w == pytest.approx(70.0)
        assert constraint.name == "heat:aisle"

    def test_zone_can_span_pdus(self, topology):
        zone = HeatZone("cross", frozenset({"r0", "r8"}), 300.0)
        assert zone.headroom(topology).cap_w == pytest.approx(300.0)

    def test_unknown_rack_rejected(self, topology):
        zone = HeatZone("bad", frozenset({"ghost"}), 100.0)
        with pytest.raises(TopologyError):
            zone.headroom(topology)

    def test_zone_constraints_helper(self, topology):
        zones = [
            HeatZone("a", frozenset({"r0"}), 100.0),
            HeatZone("b", frozenset({"r1"}), 100.0),
        ]
        assert len(zone_constraints(zones, topology)) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HeatZone("", frozenset({"r"}), 1.0)
        with pytest.raises(ConfigurationError):
            HeatZone("z", frozenset({"r"}), 0.0)


def bid(rack, pdu="p1", demand=None, cap=100.0):
    return RackBid(
        rack_id=rack,
        pdu_id=pdu,
        tenant_id=f"tenant-{rack}",
        demand=demand or LinearBid(60.0, 0.05, 10.0, 0.3),
        rack_cap_w=cap,
    )


class TestClearingWithConstraints:
    def test_constraint_binds(self):
        bids = [bid("r0"), bid("r1")]
        constraint = CapacityConstraint("phase", frozenset({"r0", "r1"}), 40.0)
        unconstrained = clear_market(bids, {"p1": 500.0}, 500.0)
        constrained = clear_market(
            bids, {"p1": 500.0}, 500.0, extra_constraints=[constraint]
        )
        assert unconstrained.total_granted_w > 40.0
        assert constrained.total_granted_w <= 40.0 + 1e-9
        assert constrained.price >= unconstrained.price

    def test_constraint_only_affects_members(self):
        bids = [bid("r0"), bid("r5")]
        constraint = CapacityConstraint("phase", frozenset({"r0"}), 5.0)
        result = clear_market(
            bids, {"p1": 500.0}, 500.0, extra_constraints=[constraint]
        )
        assert result.grants_w["r0"] <= 5.0 + 1e-9
        # Uniform price still rations both, but the non-member keeps its
        # demand at the (higher) clearing price.
        assert result.grants_w["r5"] > result.grants_w["r0"]

    def test_admission_respects_constraint_ceiling(self):
        # Inelastic bid larger than its phase headroom is rejected.
        bids = [bid("r0", demand=StepBid(50.0, 0.3)), bid("r1")]
        constraint = CapacityConstraint("phase", frozenset({"r0"}), 20.0)
        result = clear_market(
            bids, {"p1": 500.0}, 500.0, extra_constraints=[constraint]
        )
        assert result.grants_w["r0"] == 0.0
        assert result.grants_w["r1"] > 0.0

    def test_verify_allocation_checks_constraints(self):
        from repro.core.allocation import AllocationResult

        bids = [bid("r0")]
        constraint = CapacityConstraint("phase", frozenset({"r0"}), 10.0)
        bad = AllocationResult(price=0.05, grants_w={"r0": 30.0}, revenue_rate=0.0015)
        with pytest.raises(CapacityError):
            verify_allocation(
                bad, bids, {"p1": 500.0}, 500.0, extra_constraints=[constraint]
            )

    def test_negative_constraint_cap_rejected(self):
        constraint = CapacityConstraint.__new__(CapacityConstraint)
        object.__setattr__(constraint, "name", "x")
        object.__setattr__(constraint, "rack_ids", frozenset({"r0"}))
        object.__setattr__(constraint, "cap_w", -1.0)
        with pytest.raises(ClearingError):
            clear_market(
                [bid("r0")], {"p1": 100.0}, 100.0, extra_constraints=[constraint]
            )

    def test_per_pdu_clearing_localizes_phase_constraints(self):
        bids = [bid("r0"), bid("r1"), bid("r6", pdu="p2")]
        constraints = [
            CapacityConstraint("p1/phase:A", frozenset({"r0", "r1"}), 30.0),
            CapacityConstraint("p2/phase:A", frozenset({"r6"}), 15.0),
        ]
        result = clear_market(
            bids, {"p1": 500.0, "p2": 500.0}, 1000.0,
            per_pdu=True, extra_constraints=constraints,
        )
        verify_allocation(
            result, bids, {"p1": 500.0, "p2": 500.0}, 1000.0,
            extra_constraints=constraints,
        )
        assert result.grants_w["r0"] + result.grants_w["r1"] <= 30.0 + 1e-9
        assert result.grants_w["r6"] <= 15.0 + 1e-9

    def test_per_pdu_apportions_cross_pdu_zone(self):
        bids = [bid("r0"), bid("r6", pdu="p2")]
        zone = CapacityConstraint("heat:z", frozenset({"r0", "r6"}), 40.0)
        result = clear_market(
            bids, {"p1": 500.0, "p2": 500.0}, 1000.0,
            per_pdu=True, extra_constraints=[zone],
        )
        total = result.grants_w["r0"] + result.grants_w["r6"]
        assert total <= 40.0 + 1e-9

    def test_maxperf_honours_constraints(self):
        from repro.core.baselines import MaxPerfAllocator
        from repro.prediction.spot import SpotCapacityForecast
        from repro.sim.scenario import testbed_scenario as build_testbed

        scenario = build_testbed(seed=13)
        scenario.prepare(400)
        slot = next(
            s for s in range(1, 400)
            if sum(
                len(t.needed_spot_w(s))
                for t in scenario.participating_tenants()
            ) >= 2
        )
        requesting = [
            rid
            for t in scenario.participating_tenants()
            for rid in t.needed_spot_w(slot)
        ]
        tight = CapacityConstraint("zone", frozenset(requesting), 10.0)
        forecast = SpotCapacityForecast(
            pdu_spot_w={p: 200.0 for p in scenario.topology.pdus},
            ups_spot_w=400.0,
        )
        record = MaxPerfAllocator().allocate(
            slot,
            scenario.participating_tenants(),
            forecast,
            120.0,
            extra_constraints=[tight],
        )
        zone_total = sum(
            record.result.grants_w.get(r, 0.0) for r in requesting
        )
        assert zone_total <= 10.0 + 1e-9
