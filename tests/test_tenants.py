"""Tenant models and bidding behaviour."""

import pytest

from repro.core.demand import FullBid, LinearBid, StepBid
from repro.errors import ConfigurationError
from repro.sim.scenario import testbed_scenario as build_testbed
from repro.tenants.bidding import (
    FullCurveStrategy,
    LinearElasticStrategy,
    PricePredictionStrategy,
    SimpleNeededPowerStrategy,
    StepStrategy,
)
from repro.tenants.tenant import (
    NonParticipatingTenant,
    SprintingTenant,
)


@pytest.fixture(scope="module")
def scenario():
    built = build_testbed(seed=5)
    built.prepare(600)
    return built


def tenant_by_id(scenario, tenant_id):
    return next(t for t in scenario.tenants if t.tenant_id == tenant_id)


def first_bid_slot(tenant, limit=600, min_need_w=0.0):
    for slot in range(limit):
        needed = tenant.needed_spot_w(slot)
        if needed and sum(needed.values()) >= min_need_w:
            return slot
    pytest.fail(f"{tenant.tenant_id} never needed spot capacity")


class TestSprintingTenant:
    def test_kind_and_participation(self, scenario):
        tenant = tenant_by_id(scenario, "Search-1")
        assert tenant.kind == "sprinting"
        assert tenant.participates

    def test_needed_spot_matches_workload(self, scenario):
        tenant = tenant_by_id(scenario, "Search-1")
        slot = first_bid_slot(tenant)
        rack = tenant.racks[0]
        needed = tenant.needed_spot_w(slot)[rack.rack_id]
        expected = rack.workload.desired_power_w(slot) - rack.guaranteed_w
        assert needed == pytest.approx(min(expected, rack.max_spot_w))

    def test_bid_is_linear_with_anchored_prices(self, scenario):
        tenant = tenant_by_id(scenario, "Search-1")
        slot = first_bid_slot(tenant, min_need_w=15.0)
        bid = tenant.make_bid(slot)
        assert bid is not None
        demand = bid.rack_bids[0].demand
        assert isinstance(demand, LinearBid)
        assert demand.q_min == tenant.q_low
        assert demand.q_max == tenant.q_high
        assert 0 < demand.d_min_w <= demand.d_max_w

    def test_no_bid_when_not_needed(self, scenario):
        tenant = tenant_by_id(scenario, "Search-1")
        quiet = next(s for s in range(600) if not tenant.needed_spot_w(s))
        assert tenant.make_bid(quiet) is None

    def test_value_curve_cache_stable(self, scenario):
        tenant = tenant_by_id(scenario, "Search-1")
        slot = first_bid_slot(tenant)
        a = tenant.value_curves(slot)
        b = tenant.value_curves(slot)
        assert a[tenant.racks[0].rack_id] is b[tenant.racks[0].rack_id]

    def test_rejects_batch_workload(self, scenario):
        opportunistic = tenant_by_id(scenario, "Count-1")
        with pytest.raises(ConfigurationError):
            SprintingTenant(
                "bad",
                opportunistic.racks,
                cost_models={},
                q_low=0.1,
                q_high=0.2,
            )


class TestOpportunisticTenant:
    def test_kind(self, scenario):
        assert tenant_by_id(scenario, "Count-1").kind == "opportunistic"

    def test_needs_spot_only_when_backlogged(self, scenario):
        tenant = tenant_by_id(scenario, "Count-1")
        # Slot 0: no backlog yet.
        assert tenant.needed_spot_w(0) == {}

    def test_value_curve_cached_once(self, scenario):
        tenant = tenant_by_id(scenario, "Count-1")
        a = tenant.value_curves(0)
        b = tenant.value_curves(5)
        rack_id = tenant.racks[0].rack_id
        assert a[rack_id] is b[rack_id]

    def test_price_cap_at_amortized_rate(self, scenario):
        tenant = tenant_by_id(scenario, "Count-1")
        assert tenant.q_high == pytest.approx(0.205)


class TestNonParticipating:
    def test_never_bids(self, scenario):
        tenant = tenant_by_id(scenario, "Other-1")
        assert isinstance(tenant, NonParticipatingTenant)
        assert not tenant.participates
        assert tenant.make_bid(0) is None
        assert tenant.needed_spot_w(0) == {}
        assert tenant.value_curves(0) == {}


class TestExecuteSlot:
    def test_budgets_default_to_guaranteed(self, scenario):
        fresh = build_testbed(seed=6)
        fresh.prepare(5)
        tenant = tenant_by_id(fresh, "Search-1")
        outcomes = tenant.execute_slot(0, {}, 120.0)
        rack = tenant.racks[0]
        assert outcomes[rack.rack_id].power_w <= rack.guaranteed_w + 1e-9

    def test_spot_budget_passed_through(self):
        fresh = build_testbed(seed=6)
        fresh.prepare(5)
        tenant = tenant_by_id(fresh, "Search-2")
        rack = tenant.racks[0]
        outcomes = tenant.execute_slot(
            0, {rack.rack_id: rack.guaranteed_w + 30.0}, 120.0
        )
        assert outcomes[rack.rack_id].power_w <= rack.guaranteed_w + 30.0 + 1e-9


class TestBiddingStrategies:
    def _context(self, scenario, tenant_id="Search-1"):
        tenant = tenant_by_id(scenario, tenant_id)
        slot = first_bid_slot(tenant)
        return tenant._contexts(slot, None)[0]

    def test_simple_strategy_flat_at_needed(self, scenario):
        ctx = self._context(scenario)
        demand = SimpleNeededPowerStrategy().make_rack_bid(ctx)
        assert isinstance(demand, LinearBid)
        assert demand.d_max_w == pytest.approx(demand.d_min_w)
        assert demand.d_max_w == pytest.approx(
            min(ctx.needed_w, ctx.rack.max_spot_w)
        )

    def test_step_strategy_all_or_nothing(self, scenario):
        ctx = self._context(scenario)
        demand = StepStrategy().make_rack_bid(ctx)
        assert isinstance(demand, StepBid)
        assert demand.price_cap == ctx.q_high

    def test_full_strategy_returns_capped_curve(self, scenario):
        ctx = self._context(scenario)
        demand = FullCurveStrategy().make_rack_bid(ctx)
        assert isinstance(demand, FullBid)
        assert demand.demand_at(ctx.q_high + 0.01) == 0.0

    def test_linear_matches_value_curve_anchors(self, scenario):
        ctx = self._context(scenario)
        demand = LinearElasticStrategy().make_rack_bid(ctx)
        d_low = min(
            ctx.value_curve.optimal_demand_w(ctx.q_low), ctx.rack.max_spot_w
        )
        assert demand.d_max_w == pytest.approx(d_low)

    def test_strategies_never_exceed_rack_cap(self, scenario):
        ctx = self._context(scenario)
        for strategy in (
            LinearElasticStrategy(),
            SimpleNeededPowerStrategy(),
            StepStrategy(),
            FullCurveStrategy(),
        ):
            demand = strategy.make_rack_bid(ctx)
            assert demand.max_demand_w <= ctx.rack.max_spot_w + 1e-9

    def test_price_prediction_bids_optimum_at_forecast(self, scenario):
        tenant = tenant_by_id(scenario, "Search-1")
        slot = first_bid_slot(tenant, min_need_w=15.0)
        q_hat = 0.25
        ctx = tenant._contexts(slot, q_hat)[0]
        demand = PricePredictionStrategy().make_rack_bid(ctx)
        assert isinstance(demand, LinearBid)
        expected = min(
            ctx.value_curve.optimal_demand_w(q_hat), ctx.rack.max_spot_w
        )
        assert demand.demand_at(q_hat) == pytest.approx(expected)

    def test_price_prediction_falls_back_without_forecast(self, scenario):
        ctx = self._context(scenario)
        with_forecast = PricePredictionStrategy().make_rack_bid(ctx)
        fallback = LinearElasticStrategy().make_rack_bid(ctx)
        assert with_forecast.as_parameters() == fallback.as_parameters()
