"""Locational (per-PDU) clearing: apportioning, prices, payments."""

import pytest

from repro.config import MarketParameters
from repro.core.allocation import verify_allocation
from repro.core.bids import RackBid
from repro.core.clearing import MarketClearing
from repro.core.demand import LinearBid, StepBid


def bid(rack, pdu, d_max=60.0, d_min=10.0, q_min=0.05, q_max=0.3, cap=100.0):
    return RackBid(
        rack_id=rack,
        pdu_id=pdu,
        tenant_id=f"tenant-{rack}",
        demand=LinearBid(d_max, q_min, d_min, q_max),
        rack_cap_w=cap,
    )


@pytest.fixture
def engine():
    return MarketClearing(params=MarketParameters(price_step=0.005))


class TestLocalPrices:
    def test_each_pdu_gets_its_own_price(self, engine):
        bids = [
            bid("r0", "scarce", d_max=100.0, d_min=40.0),
            bid("r1", "plentiful", d_max=30.0, d_min=5.0),
        ]
        result = engine.clear_per_pdu(
            bids, {"scarce": 50.0, "plentiful": 500.0}, 1000.0
        )
        assert set(result.pdu_prices) == {"scarce", "plentiful"}
        # The scarce PDU must price higher to ration its demand.
        assert result.pdu_prices["scarce"] > result.pdu_prices["plentiful"]

    def test_headline_price_is_grant_weighted_mean(self, engine):
        bids = [bid("r0", "a"), bid("r1", "b")]
        result = engine.clear_per_pdu(bids, {"a": 200.0, "b": 200.0}, 400.0)
        total = result.total_granted_w
        expected = (
            result.pdu_prices["a"] * result.grants_w["r0"]
            + result.pdu_prices["b"] * result.grants_w["r1"]
        ) / total
        assert result.price == pytest.approx(expected)

    def test_price_for_pdu_falls_back_to_headline(self, engine):
        bids = [bid("r0", "a")]
        result = engine.clear_per_pdu(bids, {"a": 200.0}, 200.0)
        assert result.price_for_pdu("a") == result.pdu_prices["a"]
        assert result.price_for_pdu("ghost") == result.price

    def test_empty_bids(self, engine):
        result = engine.clear_per_pdu([], {"a": 100.0}, 100.0)
        assert result.total_granted_w == 0.0
        assert result.pdu_prices == {}


class TestUpsApportioning:
    def test_total_never_exceeds_ups(self, engine):
        bids = [bid(f"r{i}", f"p{i % 4}", d_max=80.0, d_min=40.0) for i in range(8)]
        pdu_spot = {f"p{j}": 150.0 for j in range(4)}
        result = engine.clear_per_pdu(bids, pdu_spot, 100.0)
        assert result.total_granted_w <= 100.0 + 1e-6
        verify_allocation(result, bids, pdu_spot, 100.0)

    def test_ample_ups_leaves_pdus_independent(self, engine):
        bids = [bid("r0", "a"), bid("r1", "b")]
        independent_a = engine.clear(
            [bids[0]], {"a": 120.0}, 120.0
        )
        joint = engine.clear_per_pdu(
            bids, {"a": 120.0, "b": 120.0}, 10_000.0
        )
        assert joint.grants_w["r0"] == pytest.approx(
            independent_a.grants_w["r0"]
        )
        assert joint.pdu_prices["a"] == pytest.approx(independent_a.price)

    def test_apportioning_tracks_demand(self, engine):
        # PDU 'big' carries 3x the demand of 'small'; under a binding UPS
        # it should receive the larger share (elastic floors, so each
        # local market can ration down to its apportioned cap).
        bids = [
            bid("r0", "big", d_max=90.0, d_min=5.0),
            bid("r1", "big", d_max=90.0, d_min=5.0),
            bid("r2", "small", d_max=60.0, d_min=5.0),
        ]
        result = engine.clear_per_pdu(
            bids, {"big": 300.0, "small": 300.0}, 120.0
        )
        big = result.grants_w["r0"] + result.grants_w["r1"]
        small = result.grants_w["r2"]
        assert big > small


class TestScaleBehaviour:
    def test_per_pdu_beats_uniform_with_heterogeneous_scarcity(self, engine):
        # One scarce PDU with inelastic demand wrecks the global price
        # but not the locational one.
        bids = [
            bid("r0", "scarce", d_max=80.0, d_min=70.0, q_max=0.25),
            bid("r1", "ok", d_max=40.0, d_min=5.0, q_max=0.2),
            bid("r2", "ok2", d_max=40.0, d_min=5.0, q_max=0.2),
        ]
        pdu_spot = {"scarce": 30.0, "ok": 200.0, "ok2": 200.0}
        uniform = engine.clear(bids, pdu_spot, 1000.0)
        local = engine.clear_per_pdu(bids, pdu_spot, 1000.0)
        assert local.revenue_rate >= uniform.revenue_rate - 1e-9
        # The healthy PDUs keep trading under locational pricing.
        assert local.grants_w["r1"] > 0
        assert local.grants_w["r2"] > 0

    def test_step_bids_work_per_pdu(self, engine):
        bids = [
            RackBid("r0", "a", "t0", StepBid(50.0, 0.2), 100.0),
            RackBid("r1", "b", "t1", StepBid(50.0, 0.2), 100.0),
        ]
        result = engine.clear_per_pdu(bids, {"a": 60.0, "b": 30.0}, 200.0)
        assert result.grants_w["r0"] == pytest.approx(50.0)
        assert result.grants_w["r1"] == 0.0  # doesn't fit its PDU
