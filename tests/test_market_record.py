"""SpotDCAllocator configuration and SlotMarketRecord semantics."""

import pytest

from repro.core.allocation import AllocationResult
from repro.core.bids import RackBid
from repro.core.demand import LinearBid
from repro.core.market import SlotMarketRecord, SpotDCAllocator
from repro.experiments.common import (
    opportunistic_ids,
    run_comparison,
    sprinting_ids,
)


class TestSpotDCAllocatorConfig:
    def test_default_is_locational(self):
        assert SpotDCAllocator().pricing == "per_pdu"

    def test_uniform_mode_accepted(self):
        assert SpotDCAllocator(pricing="uniform").pricing == "uniform"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SpotDCAllocator(pricing="vickrey")

    def test_flags(self):
        allocator = SpotDCAllocator()
        assert allocator.charges_tenants
        assert allocator.provisions_spot


class TestSlotMarketRecord:
    def test_payments_keyed_by_tenant(self):
        result = AllocationResult(
            price=0.1, grants_w={"r1": 10.0}, revenue_rate=0.001
        )
        bid = RackBid("r1", "p1", "t1", LinearBid(10, 0.05, 10, 0.2), 20.0)
        record = SlotMarketRecord(
            result=result, bids=(bid,), payments={"t1": 0.5}
        )
        assert record.payments["t1"] == 0.5
        assert record.result.grant_for("r1") == 10.0

    def test_allocation_result_empty(self):
        empty = AllocationResult.empty(price=0.3)
        assert empty.total_granted_w == 0.0
        assert empty.price == 0.3
        assert empty.revenue_for_slot(120.0) == 0.0
        assert empty.price_for_pdu("anything") == 0.3


class TestComparisonHelpers:
    @pytest.fixture(scope="class")
    def runs(self):
        return run_comparison(slots=250, seed=41)

    def test_class_partitions(self, runs):
        sprint = sprinting_ids(runs.spotdc)
        opportunistic = opportunistic_ids(runs.spotdc)
        assert set(sprint) == {"Search-1", "Web", "Search-2"}
        assert set(opportunistic) == {
            "Count-1", "Graph-1", "Count-2", "Sort", "Graph-2",
        }
        assert not set(sprint) & set(opportunistic)

    def test_profit_increase_shortcut(self, runs):
        assert runs.profit_increase() == pytest.approx(
            runs.spotdc.operator_profit_increase_vs(runs.powercapped)
        )

    def test_no_maxperf_by_default(self, runs):
        assert runs.maxperf is None


class TestGoldenTable1:
    def test_render_is_stable(self):
        """Table I's rendering is a stable artifact: byte-identical
        across runs (it encodes only paper constants)."""
        from repro.experiments import render_table1, run_table1

        a = render_table1(run_table1())
        b = render_table1(run_table1())
        assert a == b
        for fragment in (
            "Search-1", "Web", "Count-1", "Graph-1", "Other-1",
            "Search-2", "Count-2", "Sort", "Graph-2", "Other-2",
            "750 / 714.3", "760 / 723.8", "1369.6",
        ):
            assert fragment in a
