"""Experiment runners: each figure's harness produces sane output.

These run the per-figure experiments at reduced horizons and assert the
structural/shape properties each figure reports; the full-size runs live
in ``benchmarks/``.
"""

import numpy as np
import pytest

import repro.experiments as E


class TestTable1:
    def test_capacities_and_roster(self):
        summary = E.run_table1()
        assert len(summary.rows) == 10
        assert summary.leased_w["pdu:0"] == pytest.approx(750.0)
        assert summary.leased_w["pdu:1"] == pytest.approx(760.0)
        assert summary.ups_capacity_w == pytest.approx(1370.0, abs=1.0)
        text = E.render_table1(summary)
        assert "Search-1" in text and "terasort" in text


class TestFig02:
    def test_areas_plausible(self):
        result = E.run_fig02(slots=20_000)
        assert 0.03 < result.utilization_gain < 0.35
        assert 0.0 < result.emergency_fraction < 0.25
        assert 0.05 < result.spot_fraction < 0.5
        assert "area" in E.render_fig02(result)

    def test_oversubscribed_cdf_shifted_right(self):
        result = E.run_fig02(slots=20_000)
        for x in (0.6, 0.8, 0.95):
            assert result.oversubscribed_cdf.evaluate(
                x
            ) <= result.base_cdf.evaluate(x) + 1e-9


class TestFig07:
    def test_variation_within_paper_bound(self):
        result = E.run_fig07a(slots=8000, pdus=2)
        assert result.p99 < 0.025
        assert result.p50 <= result.p90 <= result.p99 <= result.max

    def test_clearing_time_scales_reasonably(self):
        result = E.run_fig07b(
            rack_counts=(100, 2000), price_steps=(0.001, 0.01), repeats=2
        )
        for step in result.price_steps:
            times = result.mean_seconds[step]
            # Wall-clock comparisons need slack against system noise: a
            # 20x rack-count increase must cost visibly more than a
            # scheduler hiccup, and stay well inside the paper's bound.
            assert times[1] > 0.5 * times[0]
            assert times[-1] < 2.0
        # Coarser grids never cost dramatically more than fine ones.
        assert (
            result.mean_seconds[0.01][-1]
            <= 1.5 * result.mean_seconds[0.001][-1]
        )

    def test_synthetic_bids_structure(self):
        from repro.config import make_rng

        bids, pdu_spot, ups_spot = E.fig07_prediction_and_scaling.make_synthetic_bids(
            500, make_rng(0)
        )
        assert len(bids) == 500
        assert len({b.rack_id for b in bids}) == 500
        assert ups_spot > 0
        assert all(v > 0 for v in pdu_spot.values())


class TestFig08:
    def test_profiles_monotone(self):
        result = E.run_fig08(samples=25)
        assert result.search.is_monotone()
        assert result.web.is_monotone()
        assert result.count.is_monotone()

    def test_load_ordering(self):
        result = E.run_fig08(samples=25)
        curves = result.search.curves
        peak_power = curves[0].power_w[-1]
        latencies = [c.performance_at(peak_power) for c in curves]
        assert latencies == sorted(latencies)

    def test_render(self):
        assert "Search-1" in E.render_fig08(E.run_fig08(samples=10))


class TestFig09:
    def test_value_curves_concave_positive(self):
        result = E.run_fig09()
        assert set(result.curves) == {"Search-1", "Web", "Count-1"}
        for curve in result.curves.values():
            assert curve.gain_per_hour(curve.max_spot_w) > 0
            half = curve.gain_per_hour(curve.max_spot_w / 2)
            assert half >= 0.5 * curve.gain_per_hour(curve.max_spot_w) - 1e-9

    def test_render(self):
        assert "$/h" in E.render_fig09(E.run_fig09())


class TestFig10:
    def test_trace_has_market_activity(self):
        trace = E.run_fig10(search_slots=300)
        total_alloc = trace.sprint_alloc_w + trace.opportunistic_alloc_w
        assert total_alloc.max() > 0
        assert (trace.price > 0).any()

    def test_allocation_below_availability(self):
        trace = E.run_fig10(search_slots=300)
        total_alloc = trace.sprint_alloc_w + trace.opportunistic_alloc_w
        assert np.all(total_alloc <= trace.available_spot_w + 1e-6)


class TestFig11:
    def test_spotdc_latency_no_worse(self):
        trace = E.run_fig11(search_slots=300)
        for rack, latency in trace.latency_ms.items():
            assert np.all(latency <= trace.latency_ms_capped[rack] + 1e-6)

    def test_throughput_improves_in_window(self):
        trace = E.run_fig11(search_slots=300)
        # SpotDC drains backlogs faster; near the window's end it may
        # already be out of work (ratio < 1), so assert on the mean and
        # the visible speed-up rather than slot-wise dominance.
        ratios = np.concatenate(list(trace.throughput_ratio.values()))
        assert ratios.mean() >= 0.95
        assert ratios.max() >= 1.05


class TestFig12:
    def test_rows_and_headline(self):
        result = E.run_fig12(slots=800)
        assert len(result.rows) == 8
        assert result.profit_increase > 0
        for row in result.rows:
            assert row.cost_ratio >= 1.0
            assert row.perf_ratio >= 0.99
            assert row.maxperf_ratio >= row.perf_ratio - 0.1
        assert "operator" in E.render_fig12(result)


class TestFig13:
    def test_price_ordering(self):
        result = E.run_fig13(slots=1200)
        assert result.sprint_price_cdf.quantile(0.5) > (
            result.opportunistic_price_cdf.quantile(0.5)
        )

    def test_opportunistic_price_cap(self):
        result = E.run_fig13(slots=1200)
        assert result.opportunistic_price_cdf.max <= 0.205 + 1e-9


class TestSweeps:
    def test_fig15_more_spot_helps(self):
        sweep = E.run_fig15(
            slots=700, oversubscription_ratios=(1.10, 1.0)
        )
        assert sweep.spot_fractions[0] < sweep.spot_fractions[1]
        assert sweep.profit_increase[0] <= sweep.profit_increase[1] + 0.02
        assert sweep.perf_improvement[0] <= sweep.perf_improvement[1] + 0.05

    def test_fig17_underprediction_mild(self):
        sweep = E.run_fig17(slots=700, factors=(1.0, 0.85))
        base, under = sweep.profit_increase
        assert under > 0.5 * base
        assert sweep.perf_improvement[1] > 1.0

    def test_fig18_scales(self):
        sweep = E.run_fig18(slots=400, groups=(1, 3))
        assert sweep.tenant_counts == [10, 30]
        for profit in sweep.profit_increase:
            assert profit > 0
        for perf in sweep.perf_improvement:
            assert perf > 1.0

    def test_jobs_fanout_never_changes_a_number(self):
        # The experiment harnesses' determinism contract: every sweep
        # point is a pure function of the seed, so worker-process
        # fan-out affects wall-clock only.
        serial = E.run_fig17(seed=11, slots=40, factors=(1.0, 0.9), jobs=1)
        parallel = E.run_fig17(seed=11, slots=40, factors=(1.0, 0.9), jobs=2)
        assert serial == parallel
