"""The refactor's machine check: builder path == spec path, byte for byte.

``testbed_scenario`` / ``scaled_scenario`` / ``ScenarioBuilder.build``
all assemble through the same engine the spec loader drives, so a
same-seed run must export a **byte-identical** JSONL trace whichever
way the scenario was constructed — including after a full
spec -> text -> spec round trip.
"""

import json

from repro.scenarios import (
    build_scenario,
    dump_scenario,
    dump_spec,
    parse_spec_text,
    scaled_spec,
)
from repro.scenarios import testbed_spec as make_testbed_spec
from repro.sim.builder import ScenarioBuilder
from repro.sim.engine import run_simulation
from repro.sim.scenario import scaled_scenario
from repro.sim.scenario import testbed_scenario as make_testbed_scenario
from repro.telemetry import TelemetryConfig


def _trace_bytes(scenario, slots, tmp_path, tag):
    out = tmp_path / tag
    run_simulation(
        scenario, slots, telemetry=TelemetryConfig(out_dir=out, label="run")
    )
    return (out / "run_trace.jsonl").read_bytes()


def _tiered_builder(seed=5):
    return (
        ScenarioBuilder(seed=seed)
        .add_pdu("row-a", oversubscription=1.05)
        .add_pdu("row-b", oversubscription=1.05)
        .add_search_tenant("search", 150.0, "row-a")
        .add_wordcount_tenant("count", 130.0, "row-a")
        .add_other_group("colo-a", 250.0, "row-a")
        .add_web_tenant("web", 120.0, "row-b")
        .add_graph_tenant("graph", 110.0, "row-b")
        .add_other_group("colo-b", 250.0, "row-b")
        .add_tiered_tenant("shop", [(140.0, "row-a"), (110.0, "row-b")])
    )


class TestBuilderVsSpecPath:
    def test_testbed_trace_identical(self, tmp_path):
        legacy = _trace_bytes(make_testbed_scenario(seed=7), 10, tmp_path, "legacy")
        spec = _trace_bytes(
            build_scenario(make_testbed_spec(seed=7)), 10, tmp_path, "spec"
        )
        assert legacy == spec

    def test_volatile_testbed_trace_identical(self, tmp_path):
        legacy = _trace_bytes(
            make_testbed_scenario(seed=3, volatile_other=True), 8, tmp_path, "legacy"
        )
        spec = _trace_bytes(
            build_scenario(make_testbed_spec(seed=3, volatile_other=True)),
            8,
            tmp_path,
            "spec",
        )
        assert legacy == spec

    def test_scaled_trace_identical(self, tmp_path):
        legacy = _trace_bytes(
            scaled_scenario(groups=2, seed=5), 6, tmp_path, "legacy"
        )
        spec = _trace_bytes(
            build_scenario(scaled_spec(groups=2, seed=5)), 6, tmp_path, "spec"
        )
        assert legacy == spec

    def test_builder_with_tiered_round_trips_through_text(self, tmp_path):
        # builder -> Scenario -> canonical text -> Scenario: same bytes.
        direct = _trace_bytes(_tiered_builder().build(), 8, tmp_path, "direct")
        text = dump_scenario(_tiered_builder().build())
        rebuilt = build_scenario(parse_spec_text(text, source="round-trip"))
        assert _trace_bytes(rebuilt, 8, tmp_path, "rebuilt") == direct


class TestSpecRoundTrip:
    def test_dump_scenario_matches_dump_spec(self):
        scenario = build_scenario(make_testbed_spec(seed=7))
        assert dump_scenario(scenario) == dump_spec(make_testbed_spec(seed=7))

    def test_spec_text_round_trip_is_identity(self):
        text = dump_spec(scaled_spec(groups=2, seed=5))
        reparsed = parse_spec_text(text, source="round-trip")
        assert dump_scenario(build_scenario(reparsed)) == text

    def test_scenario_spec_attribute_is_normal_form(self):
        scenario = build_scenario(make_testbed_spec())
        assert scenario.spec == json.loads(dump_spec(make_testbed_spec()))
