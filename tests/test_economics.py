"""Pricing, tenant cost models, and operator profit accounting."""

import pytest

from repro.economics.cost import OpportunisticCostModel, SprintingCostModel
from repro.economics.pricing import PriceSheet
from repro.economics.profit import OperatorLedger
from repro.errors import ConfigurationError


class TestPriceSheet:
    def test_amortized_hourly_rate(self):
        sheet = PriceSheet(guaranteed_rate_per_kw_month=146.0)
        assert sheet.guaranteed_rate_per_kw_hour == pytest.approx(0.2)

    def test_subscription_cost(self):
        sheet = PriceSheet(guaranteed_rate_per_kw_month=146.0)
        # 500 W for 10 hours at $0.2/kW/h = $1.
        assert sheet.subscription_cost(500.0, 10.0) == pytest.approx(1.0)

    def test_energy_charge(self):
        sheet = PriceSheet(energy_tariff_per_kwh=0.1)
        assert sheet.energy_charge(2000.0, 5.0) == pytest.approx(1.0)

    def test_rack_capex_per_hour(self):
        sheet = PriceSheet(
            rack_capex_per_watt=0.4, rack_capex_amortization_years=15.0
        )
        per_hour = sheet.rack_capex_per_hour(1000.0)
        total = per_hour * 15.0 * 12 * 730.0
        assert total == pytest.approx(400.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PriceSheet(guaranteed_rate_per_kw_month=0.0)
        with pytest.raises(ConfigurationError):
            PriceSheet(energy_tariff_per_kwh=-0.1)
        with pytest.raises(ConfigurationError):
            PriceSheet().subscription_cost(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            PriceSheet().energy_charge(1.0, -1.0)
        with pytest.raises(ConfigurationError):
            PriceSheet().rack_capex_per_hour(-1.0)


class TestSprintingCostModel:
    def test_linear_below_slo(self):
        model = SprintingCostModel(a=0.001, b=0.01, slo_ms=100.0)
        assert model.cost_per_job(50.0) == pytest.approx(0.05)

    def test_quadratic_penalty_above_slo(self):
        model = SprintingCostModel(a=0.001, b=0.01, slo_ms=100.0)
        expected = 0.001 * 150.0 + 0.01 * 50.0**2
        assert model.cost_per_job(150.0) == pytest.approx(expected)

    def test_continuous_at_slo(self):
        model = SprintingCostModel(a=0.001, b=0.01, slo_ms=100.0)
        below = model.cost_per_job(100.0)
        above = model.cost_per_job(100.0001)
        assert above == pytest.approx(below, rel=1e-4)

    def test_cost_rate_scales_with_traffic(self):
        model = SprintingCostModel(a=0.001, b=0.0, slo_ms=100.0)
        assert model.cost_rate_per_hour(50.0, 10.0) == pytest.approx(
            0.05 * 10.0 * 3600.0
        )

    def test_violates_slo(self):
        model = SprintingCostModel(a=1.0, b=1.0, slo_ms=100.0)
        assert model.violates_slo(100.1)
        assert not model.violates_slo(100.0)

    def test_scaled(self):
        model = SprintingCostModel(a=1.0, b=2.0).scaled(0.5)
        assert model.a == 0.5 and model.b == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SprintingCostModel(a=-1.0, b=0.0)
        with pytest.raises(ConfigurationError):
            SprintingCostModel(a=1.0, b=0.0, slo_ms=0.0)
        with pytest.raises(ConfigurationError):
            SprintingCostModel(a=1.0, b=1.0).cost_per_job(-1.0)


class TestOpportunisticCostModel:
    def test_linear_in_completion_time(self):
        model = OpportunisticCostModel(rho=0.01)
        assert model.cost_per_job(100.0) == pytest.approx(1.0)

    def test_backlog_cost(self):
        model = OpportunisticCostModel(rho=0.01)
        # 500 units at 10 units/s -> 50 s -> $0.5.
        assert model.backlog_cost(500.0, 10.0) == pytest.approx(0.5)

    def test_backlog_cost_zero_work(self):
        assert OpportunisticCostModel(rho=1.0).backlog_cost(0.0, 10.0) == 0.0

    def test_backlog_cost_zero_rate_is_infinite(self):
        assert OpportunisticCostModel(rho=1.0).backlog_cost(10.0, 0.0) == float(
            "inf"
        )

    def test_spot_saves_money(self):
        model = OpportunisticCostModel(rho=0.01)
        slow = model.backlog_cost(500.0, 10.0)
        fast = model.backlog_cost(500.0, 15.0)
        assert fast < slow

    def test_scaled(self):
        assert OpportunisticCostModel(rho=2.0).scaled(0.25).rho == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OpportunisticCostModel(rho=-1.0)


class TestOperatorLedger:
    def make_ledger(self, **kwargs):
        return OperatorLedger(price_sheet=PriceSheet(), **kwargs)

    def test_accumulates_revenue(self):
        ledger = self.make_ledger()
        ledger.record_slot(1.0, 1000.0, spot_revenue=0.5, metered_energy_w=800.0)
        assert ledger.spot_revenue == pytest.approx(0.5)
        assert ledger.subscription_revenue == pytest.approx(
            PriceSheet().guaranteed_rate_per_kw_hour
        )

    def test_energy_margin(self):
        ledger = self.make_ledger(energy_margin=0.1)
        ledger.record_slot(1.0, 1000.0, 0.0, metered_energy_w=1000.0)
        assert ledger.energy_profit == pytest.approx(
            0.1 * PriceSheet().energy_tariff_per_kwh
        )

    def test_rack_capex_accrues_with_hours(self):
        ledger = self.make_ledger(overprovisioned_w=1000.0)
        for _ in range(10):
            ledger.record_slot(1.0, 1000.0, 0.0, 0.0)
        assert ledger.rack_capex_cost == pytest.approx(
            10 * PriceSheet().rack_capex_per_hour(1000.0)
        )

    def test_infrastructure_cost_reduces_profit(self):
        with_infra = self.make_ledger(infrastructure_cost_per_hour=0.05)
        without = self.make_ledger()
        for ledger in (with_infra, without):
            ledger.record_slot(2.0, 1000.0, 0.0, 0.0)
        assert with_infra.net_profit == pytest.approx(
            without.net_profit - 0.1
        )

    def test_profit_increase_vs(self):
        base = self.make_ledger()
        base.record_slot(1.0, 1000.0, 0.0, 0.0)
        better = self.make_ledger()
        better.record_slot(1.0, 1000.0, base.net_profit * 0.097, 0.0)
        assert better.profit_increase_vs(base) == pytest.approx(0.097)

    def test_profit_increase_requires_positive_baseline(self):
        zero = self.make_ledger()
        other = self.make_ledger()
        with pytest.raises(ConfigurationError):
            other.profit_increase_vs(zero)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make_ledger(overprovisioned_w=-1.0)
        with pytest.raises(ConfigurationError):
            self.make_ledger(energy_margin=1.5)
        with pytest.raises(ConfigurationError):
            self.make_ledger(infrastructure_cost_per_hour=-1.0)
        ledger = self.make_ledger()
        with pytest.raises(ConfigurationError):
            ledger.record_slot(0.0, 100.0, 0.0, 0.0)
