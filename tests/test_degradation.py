"""Degradation controller (repro.resilience.degradation)."""

import pytest

from repro.core.allocation import AllocationResult
from repro.core.baselines import PowerCappedAllocator
from repro.core.market import SlotMarketRecord
from repro.economics.settlement import reconcile
from repro.errors import ConfigurationError
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.topology import PowerTopology
from repro.infrastructure.ups import Ups
from repro.resilience import DegradationController, FaultInjector, MeterFaultSource
from repro.sim.engine import run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed


def mini_topology(pdu_capacity_w=1000.0, ups_capacity_w=10_000.0, racks=3):
    """One PDU, `racks` identical racks (200 W guaranteed, 400 W physical)."""
    rack_objs = [
        Rack(f"r{i}", f"t{i}", "pdu:0", guaranteed_w=200.0, physical_w=400.0)
        for i in range(racks)
    ]
    return PowerTopology.build(
        Ups("ups:0", ups_capacity_w), [Pdu("pdu:0", pdu_capacity_w)], rack_objs
    )


def record_for(grants, price=10.0):
    result = AllocationResult(
        price=price,
        grants_w=dict(grants),
        revenue_rate=sum(grants.values()) * price / 1000.0,
    )
    return SlotMarketRecord(result=result, bids=(), payments={}, frame=None)


class TestValidation:
    def test_margin_must_be_fraction(self):
        with pytest.raises(ConfigurationError):
            DegradationController(safety_margin_fraction=1.0)
        with pytest.raises(ConfigurationError):
            DegradationController(safety_margin_fraction=-0.1)

    def test_tolerance_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError):
            DegradationController(tolerance_w=-1.0)


class TestRevocation:
    def test_no_excursion_means_no_action(self):
        topology = mini_topology()
        topology.rack("r0").set_spot_budget(100.0)
        controller = DegradationController()
        record = record_for({"r0": 100.0})
        out = controller.enforce(topology, record, slot=0, slot_seconds=60.0)
        assert controller.actions == ()
        assert out.result.grant_for("r0") == 100.0
        assert topology.rack("r0").spot_budget_w == 100.0

    def test_stale_budget_revoked_first(self):
        # r2 holds a stale budget (no grant on record → clearing value
        # 0); under an excursion it must be revoked before any freshly
        # granted rack, and it alone clears the excess here.
        topology = mini_topology()
        topology.rack("r0").set_spot_budget(50.0)
        topology.rack("r1").set_spot_budget(150.0)
        topology.rack("r2").set_spot_budget(120.0)  # stale
        topology.pdu("pdu:0").apply_derating(0.2)  # 1000 -> 800 W
        controller = DegradationController()
        record = record_for({"r0": 50.0, "r1": 150.0})
        out = controller.enforce(topology, record, slot=5, slot_seconds=60.0)
        revoked = [a.rack_id for a in controller.actions if a.kind == "revoke"]
        assert revoked == ["r2"]
        assert topology.rack("r2").spot_budget_w == 0.0
        assert topology.rack("r0").spot_budget_w == 50.0
        assert topology.rack("r1").spot_budget_w == 150.0
        # A stale budget was never billed, so revoking it credits nothing.
        assert controller.credits == ()
        assert out.result.grant_for("r1") == 150.0

    def test_lowest_clearing_value_revoked_first_and_credited(self):
        topology = mini_topology(racks=2)
        topology.rack("r0").set_spot_budget(50.0)
        topology.rack("r1").set_spot_budget(150.0)
        topology.pdu("pdu:0").apply_derating(0.5)  # 1000 -> 500 W
        controller = DegradationController()
        record = record_for({"r0": 50.0, "r1": 150.0}, price=10.0)
        out = controller.enforce(topology, record, slot=3, slot_seconds=60.0)
        revoked = [a.rack_id for a in controller.actions if a.kind == "revoke"]
        assert revoked == ["r0"]  # cheaper grant goes first, and suffices
        assert topology.rack("r1").spot_budget_w == 150.0
        assert out.result.grant_for("r0") == 0.0
        assert out.result.grant_for("r1") == 150.0
        (note,) = controller.credits
        assert note.tenant_id == "t0"
        assert note.watts == 50.0
        # 50 W at $10/kW/h for a 60 s slot.
        assert note.dollars == pytest.approx(50.0 / 1000.0 * 10.0 / 60.0)
        assert controller.credited_dollars() == pytest.approx(note.dollars)

    def test_escalates_to_emergency_cap_when_revocation_exhausted(self):
        # Derate below the guaranteed-backed draw: revoking every grant
        # cannot clear the excursion, so the residual is escalated.
        topology = mini_topology(racks=2)
        topology.rack("r0").set_spot_budget(50.0)
        topology.rack("r1").record_power(200.0)  # guaranteed-backed draw
        topology.pdu("pdu:0").apply_derating(0.9)  # 1000 -> 100 W
        controller = DegradationController()
        record = record_for({"r0": 50.0})
        controller.enforce(topology, record, slot=0, slot_seconds=60.0)
        kinds = [a.kind for a in controller.actions]
        assert kinds == ["revoke", "emergency_cap"]
        cap = controller.actions[-1]
        # Projection 250 + 200 against 100 W; revoking r0 frees 250 W.
        assert cap.watts == pytest.approx(100.0)
        assert cap.level == "pdu" and cap.rack_id == ""
        assert controller.revocation_count() == 1

    def test_true_reference_caps_ungranted_projection(self):
        # An ungranted rack is projected at min(reference, guaranteed):
        # hardened telemetry showing a low draw shrinks the projection
        # below what last-sample power would give.
        topology = mini_topology(racks=2)
        topology.rack("r0").set_spot_budget(100.0)
        topology.rack("r1").record_power(200.0)
        topology.pdu("pdu:0").apply_derating(0.6)  # 1000 -> 400 W
        controller = DegradationController()
        record = record_for({"r0": 100.0})
        # Without the reference: 300 + 200 > 400 would revoke r0; the
        # hardened reference says r1 really draws 80 W, so all fits.
        controller.enforce(
            topology,
            record,
            slot=0,
            slot_seconds=60.0,
            true_reference_w={"r1": 80.0},
        )
        assert controller.actions == ()
        assert topology.rack("r0").spot_budget_w == 100.0


class TestMeterFaultEndToEnd:
    def test_corrupted_meters_cannot_create_extra_overloads(self):
        # Drop out the non-participating Other racks' billing meters: the
        # operator's predictor sees ~0 W where ~racks' full guaranteed
        # draw really flows, inflating the offered spot headroom.  The
        # degradation controller works off hardened true telemetry and
        # must keep the facility at the no-spot baseline's emergency
        # level (paper §V-B2) despite the market clearing on bad data.
        slots, seed = 250, 7
        injector = FaultInjector(
            [
                MeterFaultSource(
                    dropout_probability=0.6,
                    episode_slots=20,
                    unit_ids=["rack:Other-1", "rack:Other-2"],
                )
            ],
            seed=seed,
        )
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(build_testbed(seed=seed), fault_model=injector)
        spotdc = engine.run(slots)
        capped = run_simulation(
            build_testbed(seed=seed), slots, allocator=PowerCappedAllocator()
        )
        assert spotdc.faults.count("meter_dropout") > 0
        for level in ("ups", "pdu"):
            assert (
                spotdc.emergencies.overload_slot_count(level)
                <= capped.emergencies.overload_slot_count(level)
            )
        # The controller visibly intervened: the corrupted headroom led
        # to grants it had to walk back.
        assert spotdc.control_actions
        reconcile(spotdc)
