"""Spot-capacity and market-price predictors."""

import pytest

from repro.errors import ConfigurationError
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.topology import PowerTopology
from repro.infrastructure.ups import Ups
from repro.prediction.price import EwmaPricePredictor, OraclePricePredictor
from repro.prediction.spot import SpotCapacityPredictor


def topology():
    topo = PowerTopology.build(
        Ups("u", 260.0),
        [Pdu("p1", 150.0), Pdu("p2", 150.0)],
        [
            Rack("r1", "t1", "p1", 80.0, 120.0),
            Rack("r2", "t2", "p1", 60.0, 90.0),
            Rack("r3", "t3", "p2", 80.0, 120.0),
        ],
    )
    topo.rack("r1").record_power(50.0)
    topo.rack("r2").record_power(40.0)
    topo.rack("r3").record_power(30.0)
    return topo


class TestSpotCapacityPredictor:
    def test_non_requesting_uses_current_draw(self):
        predictor = SpotCapacityPredictor(safety_margin_fraction=0.0)
        forecast = predictor.forecast(topology(), [])
        assert forecast.pdu_spot_w["p1"] == pytest.approx(150.0 - 90.0)
        assert forecast.pdu_spot_w["p2"] == pytest.approx(150.0 - 30.0)
        assert forecast.ups_spot_w == pytest.approx(260.0 - 120.0)

    def test_requesting_rack_referenced_at_guaranteed(self):
        predictor = SpotCapacityPredictor(safety_margin_fraction=0.0)
        forecast = predictor.forecast(topology(), ["r1"])
        # r1 counts at 80 W instead of its 50 W draw.
        assert forecast.pdu_spot_w["p1"] == pytest.approx(150.0 - 120.0)

    def test_rack_holding_spot_referenced_at_guaranteed(self):
        topo = topology()
        topo.rack("r2").set_spot_budget(10.0)
        predictor = SpotCapacityPredictor(safety_margin_fraction=0.0)
        forecast = predictor.forecast(topo, [])
        # r2 counts at its 60 W guarantee instead of 40 W draw.
        assert forecast.pdu_spot_w["p1"] == pytest.approx(150.0 - 110.0)

    def test_under_prediction_scales(self):
        exact = SpotCapacityPredictor(safety_margin_fraction=0.0)
        under = SpotCapacityPredictor(
            under_prediction_factor=0.85, safety_margin_fraction=0.0
        )
        topo = topology()
        f_exact = exact.forecast(topo, [])
        f_under = under.forecast(topo, [])
        assert f_under.ups_spot_w == pytest.approx(0.85 * f_exact.ups_spot_w)
        for pdu_id in f_exact.pdu_spot_w:
            assert f_under.pdu_spot_w[pdu_id] == pytest.approx(
                0.85 * f_exact.pdu_spot_w[pdu_id]
            )

    def test_safety_margin_reserves_capacity(self):
        margin = SpotCapacityPredictor(safety_margin_fraction=0.1)
        forecast = margin.forecast(topology(), [])
        assert forecast.pdu_spot_w["p1"] == pytest.approx(150.0 * 0.9 - 90.0)

    def test_reference_override_clamped_at_guaranteed(self):
        predictor = SpotCapacityPredictor(safety_margin_fraction=0.0)
        forecast = predictor.forecast(
            topology(), [], reference_power_w={"r1": 1000.0, "r2": 45.0}
        )
        # r1 clamps to its 80 W guarantee; r2 uses the 45 W override.
        assert forecast.pdu_spot_w["p1"] == pytest.approx(150.0 - 125.0)

    def test_never_negative(self):
        topo = topology()
        predictor = SpotCapacityPredictor()
        forecast = predictor.forecast(topo, ["r1", "r2", "r3"])
        assert forecast.ups_spot_w >= 0.0
        assert all(v >= 0.0 for v in forecast.pdu_spot_w.values())

    def test_unknown_requesting_rack_rejected(self):
        with pytest.raises(ConfigurationError):
            SpotCapacityPredictor().forecast(topology(), ["ghost"])

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SpotCapacityPredictor(under_prediction_factor=0.0)
        with pytest.raises(ConfigurationError):
            SpotCapacityPredictor(safety_margin_fraction=1.0)


class TestEwmaPricePredictor:
    def test_none_before_observation(self):
        assert EwmaPricePredictor().predict() is None

    def test_first_observation_sets_estimate(self):
        predictor = EwmaPricePredictor(alpha=0.5)
        predictor.observe(0.2)
        assert predictor.predict() == pytest.approx(0.2)

    def test_ewma_blend(self):
        predictor = EwmaPricePredictor(alpha=0.5, skip_zero=False)
        predictor.observe(0.2)
        predictor.observe(0.4)
        assert predictor.predict() == pytest.approx(0.3)

    def test_skips_zero_prices_by_default(self):
        predictor = EwmaPricePredictor(alpha=1.0)
        predictor.observe(0.3)
        predictor.observe(0.0)
        assert predictor.predict() == pytest.approx(0.3)

    def test_alpha_one_tracks_last(self):
        predictor = EwmaPricePredictor(alpha=1.0)
        for price in (0.1, 0.25, 0.18):
            predictor.observe(price)
        assert predictor.predict() == pytest.approx(0.18)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EwmaPricePredictor(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EwmaPricePredictor().observe(-0.1)


class TestOraclePricePredictor:
    def test_none_until_injected(self):
        assert OraclePricePredictor().predict() is None

    def test_injection(self):
        oracle = OraclePricePredictor()
        oracle.set_oracle(0.22)
        assert oracle.predict() == pytest.approx(0.22)

    def test_observations_ignored(self):
        oracle = OraclePricePredictor()
        oracle.set_oracle(0.22)
        oracle.observe(0.9)
        assert oracle.predict() == pytest.approx(0.22)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            OraclePricePredictor().set_oracle(-1.0)
