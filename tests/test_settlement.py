"""Tenant invoices and market settlement."""

import pytest

from repro.core.baselines import PowerCappedAllocator
from repro.economics.settlement import (
    build_all_invoices,
    build_invoice,
    reconcile,
    render_invoices,
)
from repro.errors import SimulationError
from repro.sim.engine import run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed

SLOTS = 400


@pytest.fixture(scope="module")
def result():
    return run_simulation(build_testbed(seed=99), SLOTS)


class TestInvoice:
    def test_total_is_sum_of_lines(self, result):
        invoice = build_invoice(result, "Search-1")
        assert invoice.total == pytest.approx(
            invoice.subscription_charge
            + invoice.energy_charge
            + invoice.spot_charge
        )

    def test_matches_result_accessors(self, result):
        invoice = build_invoice(result, "Count-1")
        assert invoice.subscription_charge == pytest.approx(
            result.tenant_subscription_cost("Count-1")
        )
        assert invoice.energy_charge == pytest.approx(
            result.tenant_energy_cost("Count-1")
        )
        assert invoice.spot_charge == pytest.approx(
            result.tenant_spot_payment("Count-1")
        )
        assert invoice.total == pytest.approx(
            result.tenant_total_cost("Count-1")
        )

    def test_spot_usage_counts(self, result):
        invoice = build_invoice(result, "Count-1")
        granted = result.collector.rack_granted_array("rack:Count-1")
        assert invoice.spot_slots == int((granted > 0).sum())
        assert invoice.spot_watt_hours == pytest.approx(
            float(granted.sum()) * result.slot_hours
        )

    def test_effective_spot_rate_in_bid_range(self, result):
        invoice = build_invoice(result, "Count-1")
        if invoice.spot_watt_hours > 0:
            assert 0.0 < invoice.effective_spot_rate <= 0.205 + 1e-9

    def test_non_participant_pays_no_spot(self, result):
        invoice = build_invoice(result, "Other-1")
        assert invoice.spot_charge == 0.0
        assert invoice.spot_slots == 0
        assert invoice.effective_spot_rate == 0.0

    def test_unknown_tenant_rejected(self, result):
        with pytest.raises(SimulationError):
            build_invoice(result, "ghost")

    def test_all_invoices_cover_roster(self, result):
        invoices = build_all_invoices(result)
        assert {i.tenant_id for i in invoices} == set(result.tenants)

    def test_render(self, result):
        text = render_invoices(build_all_invoices(result))
        assert "Search-1" in text and "total [$]" in text


class TestReconciliation:
    def test_books_balance_under_spotdc(self, result):
        reconcile(result)  # must not raise

    def test_books_balance_under_powercapped(self):
        result = run_simulation(
            build_testbed(seed=99), 200, allocator=PowerCappedAllocator()
        )
        reconcile(result)
        assert all(
            build_invoice(result, t).spot_charge == 0.0
            for t in result.tenants
        )

    def test_imbalance_detected(self, result):
        with pytest.raises(SimulationError):
            reconcile(result, tolerance=-1.0)  # impossible tolerance
