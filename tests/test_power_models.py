"""Server power, capping, latency, and throughput models."""

import math

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.power.capping import apply_cap
from repro.power.latency import LatencyModel
from repro.power.server import ServerPowerModel
from repro.power.throughput import ThroughputModel


@pytest.fixture
def power_model():
    return ServerPowerModel(idle_w=60.0, peak_w=180.0)


class TestServerPowerModel:
    def test_endpoints(self, power_model):
        assert power_model.power_at(0.0) == 60.0
        assert power_model.power_at(1.0) == 180.0

    def test_affine_midpoint(self, power_model):
        assert power_model.power_at(0.5) == pytest.approx(120.0)

    def test_clamps_utilization(self, power_model):
        assert power_model.power_at(-0.5) == 60.0
        assert power_model.power_at(1.5) == 180.0

    def test_inverse(self, power_model):
        for u in (0.0, 0.25, 0.5, 1.0):
            power = power_model.power_at(u)
            assert power_model.utilization_at(power) == pytest.approx(u)

    def test_inverse_clamps(self, power_model):
        assert power_model.utilization_at(10.0) == 0.0
        assert power_model.utilization_at(500.0) == 1.0

    def test_scaled(self, power_model):
        scaled = power_model.scaled(2.0)
        assert scaled.idle_w == 120.0
        assert scaled.peak_w == 360.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServerPowerModel(idle_w=-1.0, peak_w=100.0)
        with pytest.raises(ConfigurationError):
            ServerPowerModel(idle_w=100.0, peak_w=100.0)
        with pytest.raises(ConfigurationError):
            ServerPowerModel(60.0, 180.0).scaled(0.0)


class TestApplyCap:
    def test_no_cap_needed(self):
        decision = apply_cap(80.0, 100.0, idle_w=50.0)
        assert decision.actual_w == 80.0
        assert not decision.capped
        assert decision.shortfall_w == 0.0

    def test_cap_enforced(self):
        decision = apply_cap(120.0, 100.0, idle_w=50.0)
        assert decision.actual_w == 100.0
        assert decision.capped
        assert decision.shortfall_w == pytest.approx(20.0)

    def test_budget_below_idle_draws_idle(self):
        decision = apply_cap(120.0, 30.0, idle_w=50.0)
        assert decision.actual_w == 50.0
        assert decision.capped

    def test_desired_below_idle_draws_desired(self):
        decision = apply_cap(20.0, 100.0, idle_w=50.0)
        assert decision.actual_w == 20.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(CapacityError):
            apply_cap(-1.0, 10.0)
        with pytest.raises(CapacityError):
            apply_cap(1.0, -10.0)


class TestLatencyModel:
    @pytest.fixture
    def model(self, power_model):
        return LatencyModel(
            power_model=power_model, mu_max_rps=120.0, d_min_ms=20.0,
            tail_const_ms_rps=4000.0,
        )

    def test_latency_decreases_with_power(self, model):
        rate = 60.0
        latencies = [model.latency_ms(p, rate) for p in (100.0, 140.0, 180.0)]
        assert latencies[0] > latencies[1] > latencies[2]

    def test_latency_increases_with_load(self, model):
        power = 160.0
        latencies = [model.latency_ms(power, r) for r in (20.0, 60.0, 100.0)]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_saturation_at_overload(self, model):
        assert model.latency_ms(180.0, 500.0) == model.saturated_latency_ms

    def test_zero_load_floor(self, model):
        assert model.latency_ms(180.0, 0.0) == pytest.approx(model.d_min_ms)

    def test_frequency_range(self, model):
        assert model.frequency(60.0) == model.min_frequency
        assert model.frequency(180.0) == 1.0
        assert model.min_frequency < model.frequency(120.0) < 1.0

    def test_frequency_power_law(self, model):
        # alpha = 2: half the dynamic range -> sqrt(0.5) frequency.
        assert model.frequency(120.0) == pytest.approx(math.sqrt(0.5))

    def test_power_for_latency_meets_target(self, model):
        rate = 60.0
        target = 80.0
        power = model.power_for_latency(target, rate)
        assert model.latency_ms(power, rate) <= target + 0.5

    def test_power_for_latency_is_minimal(self, model):
        rate = 60.0
        target = 80.0
        power = model.power_for_latency(target, rate, tolerance_w=0.01)
        assert model.latency_ms(power - 1.0, rate) > target

    def test_unreachable_target_returns_peak(self, model):
        assert model.power_for_latency(5.0, 110.0) == model.power_model.peak_w

    def test_validation(self, power_model):
        with pytest.raises(ConfigurationError):
            LatencyModel(power_model, mu_max_rps=0.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(power_model, mu_max_rps=10.0, d_min_ms=0.0)
        model = LatencyModel(power_model, mu_max_rps=10.0)
        with pytest.raises(ConfigurationError):
            model.latency_ms(100.0, -1.0)


class TestThroughputModel:
    @pytest.fixture
    def model(self, power_model):
        return ThroughputModel(power_model=power_model, rate_max=60.0)

    def test_rate_linear_in_dynamic_power(self, model):
        assert model.rate_at(60.0) == 0.0
        assert model.rate_at(120.0) == pytest.approx(30.0)
        assert model.rate_at(180.0) == pytest.approx(60.0)

    def test_rate_clamps(self, model):
        assert model.rate_at(10.0) == 0.0
        assert model.rate_at(400.0) == pytest.approx(60.0)

    def test_sublinear_exponent(self, power_model):
        model = ThroughputModel(power_model, rate_max=60.0, scaling_exponent=0.5)
        assert model.rate_at(120.0) == pytest.approx(60.0 * math.sqrt(0.5))

    def test_completion_time(self, model):
        assert model.completion_time_s(300.0, 120.0) == pytest.approx(10.0)

    def test_completion_time_zero_work(self, model):
        assert model.completion_time_s(0.0, 120.0) == 0.0

    def test_completion_time_infinite_below_idle(self, model):
        assert model.completion_time_s(10.0, 60.0) == float("inf")

    def test_power_for_rate_inverts(self, model):
        for rate in (10.0, 30.0, 59.0):
            assert model.rate_at(model.power_for_rate(rate)) == pytest.approx(rate)

    def test_power_for_rate_above_max_is_peak(self, model):
        assert model.power_for_rate(100.0) == 180.0

    def test_validation(self, power_model):
        with pytest.raises(ConfigurationError):
            ThroughputModel(power_model, rate_max=0.0)
        with pytest.raises(ConfigurationError):
            ThroughputModel(power_model, rate_max=10.0, scaling_exponent=2.0)
        model = ThroughputModel(power_model, rate_max=10.0)
        with pytest.raises(ConfigurationError):
            model.completion_time_s(-1.0, 100.0)
        with pytest.raises(ConfigurationError):
            model.power_for_rate(-1.0)
