"""Integration: phase-balance and heat-zone constraints in a full run."""

import numpy as np
import pytest

from repro.infrastructure.constraints import (
    HeatZone,
    PhaseAssignment,
    zone_constraints,
)
from repro.sim.engine import SimulationEngine, run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed

SLOTS = 600


def run_with_phases(seed=31, imbalance_tolerance=0.2):
    scenario = build_testbed(seed=seed)
    phases = PhaseAssignment(scenario.topology)
    engine = SimulationEngine(
        scenario,
        constraint_provider=lambda: phases.phase_headroom(
            imbalance_tolerance=imbalance_tolerance
        ),
    )
    return engine.run(SLOTS), phases, scenario


class TestPhaseBalancedSimulation:
    def test_runs_and_trades(self):
        result, _, _ = run_with_phases()
        assert result.collector.spot_granted_array().sum() > 0

    def test_phase_grants_within_bounds(self):
        result, phases, scenario = run_with_phases(imbalance_tolerance=0.2)
        # Re-derive the static per-phase bound and check the granted spot
        # within each phase never exceeded it (grants alone; the runtime
        # headroom was draw-dependent and strictly tighter).
        for constraint in phases.constraints(imbalance_tolerance=0.2):
            granted = sum(
                result.collector.rack_granted_array(rack_id)
                for rack_id in constraint.rack_ids
            )
            assert np.all(granted <= constraint.cap_w + 1e-6)

    def test_tighter_phases_sell_no_more(self):
        loose, _, _ = run_with_phases(imbalance_tolerance=0.5)
        tight, _, _ = run_with_phases(imbalance_tolerance=0.0)
        assert (
            tight.collector.spot_granted_array().sum()
            <= loose.collector.spot_granted_array().sum() + 1e-6
        )

    def test_unconstrained_run_sells_at_least_as_much(self):
        constrained, _, _ = run_with_phases(imbalance_tolerance=0.0)
        free = run_simulation(build_testbed(seed=31), SLOTS)
        assert (
            free.collector.spot_granted_array().sum()
            >= constrained.collector.spot_granted_array().sum() - 1e-6
        )


class TestHeatZoneSimulation:
    def test_zone_cap_respected_within_thermal_tolerance(self):
        scenario = build_testbed(seed=31)
        # One aisle holding the two search racks with a tight cooling cap.
        zone = HeatZone(
            "aisle-1",
            frozenset({"rack:Search-1", "rack:Search-2"}),
            max_power_w=300.0,
        )
        engine = SimulationEngine(
            scenario,
            constraint_provider=lambda: zone_constraints(
                [zone], scenario.topology
            ),
        )
        result = engine.run(SLOTS)
        power = sum(
            result.collector.rack_power_array(r) for r in zone.rack_ids
        )
        # Guaranteed-capacity ramps between slots can briefly exceed the
        # naive (instantaneous-draw) headroom; cooling thermal inertia
        # absorbs ~2% excursions (the thermal analogue of breaker
        # tolerance).
        assert np.all(power <= zone.max_power_w * 1.02 + 1e-6)

    def test_rolling_references_tighten_zone_enforcement(self):
        scenario = build_testbed(seed=31)
        zone = HeatZone(
            "aisle-1",
            frozenset({"rack:Search-1", "rack:Search-2"}),
            max_power_w=300.0,
        )
        engine = SimulationEngine(scenario)
        # Conservative references: each member rack's rolling peak.
        engine.constraint_provider = lambda: zone_constraints(
            [zone],
            scenario.topology,
            reference_power_w={
                rack_id: engine.monitor.rack_recent_max_w(rack_id, 5)
                for rack_id in zone.rack_ids
            },
            safety_margin=0.01,
        )
        result = engine.run(SLOTS)
        power = sum(
            result.collector.rack_power_array(r) for r in zone.rack_ids
        )
        assert np.all(power <= zone.max_power_w + 1e-6)

    def test_zone_cap_strict_with_safety_margin(self):
        scenario = build_testbed(seed=31)
        zone = HeatZone(
            "aisle-1",
            frozenset({"rack:Search-1", "rack:Search-2"}),
            max_power_w=300.0,
        )
        engine = SimulationEngine(
            scenario,
            constraint_provider=lambda: zone_constraints(
                [zone], scenario.topology, safety_margin=0.03
            ),
        )
        result = engine.run(SLOTS)
        power = sum(
            result.collector.rack_power_array(r) for r in zone.rack_ids
        )
        assert np.all(power <= zone.max_power_w + 1e-6)

    def test_generous_zone_changes_nothing(self):
        scenario = build_testbed(seed=31)
        zone = HeatZone(
            "whole-room",
            frozenset(scenario.topology.racks),
            max_power_w=10_000.0,
        )
        engine = SimulationEngine(
            scenario,
            constraint_provider=lambda: zone_constraints(
                [zone], scenario.topology
            ),
        )
        constrained = engine.run(SLOTS)
        free = run_simulation(build_testbed(seed=31), SLOTS)
        assert constrained.total_spot_revenue() == pytest.approx(
            free.total_spot_revenue(), rel=1e-6
        )
