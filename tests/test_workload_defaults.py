"""Sanity of the workload calibration constants (docs/calibration.md)."""

import pytest

from repro.config import make_rng
from repro.power.server import ServerPowerModel
from repro.sim.scenario import PRICE_ANCHORS, TABLE1_SPECS
from repro.workloads.graph import GRAPH_DEFAULTS, make_graph_workload
from repro.workloads.hadoop import (
    TERASORT_DEFAULTS,
    WORDCOUNT_DEFAULTS,
    make_terasort_workload,
)
from repro.workloads.search import SEARCH_DEFAULTS
from repro.workloads.web import WEB_DEFAULTS


class TestDefaultDictionaries:
    @pytest.mark.parametrize(
        "defaults", [SEARCH_DEFAULTS, WEB_DEFAULTS], ids=["search", "web"]
    )
    def test_interactive_defaults_sane(self, defaults):
        assert defaults["mu_max_per_watt"] > 0
        assert 0 < defaults["base_fraction"] < 1
        assert 0 < defaults["surge_probability"] < 0.2
        assert defaults["d_min_ms"] > 0
        assert defaults["tail_const_ms_rps"] > 0

    @pytest.mark.parametrize(
        "defaults",
        [WORDCOUNT_DEFAULTS, TERASORT_DEFAULTS, GRAPH_DEFAULTS],
        ids=["wordcount", "terasort", "graph"],
    )
    def test_batch_defaults_sane(self, defaults):
        assert 0 < defaults["mean_load_fraction"] < 1
        assert 0 < defaults["burst_duty_cycle"] < 1
        assert defaults["burst_multiplier"] > 1
        assert 0 < defaults["scaling_exponent"] <= 1.0

    def test_percentile_tails_ordered(self):
        # p99 (search) must have a heavier tail constant than p90 (web).
        assert (
            SEARCH_DEFAULTS["tail_const_ms_rps"]
            > WEB_DEFAULTS["tail_const_ms_rps"]
        )

    def test_terasort_heavier_than_wordcount(self):
        # Shuffle-bound TeraSort processes fewer MB per watt.
        assert (
            TERASORT_DEFAULTS["rate_max_mb_per_watt"]
            < WORDCOUNT_DEFAULTS["rate_max_mb_per_watt"]
        )


class TestPriceAnchors:
    def test_every_participating_class_has_anchors(self):
        classes = {
            spec.workload for spec in TABLE1_SPECS if spec.workload != "other"
        }
        assert classes <= set(PRICE_ANCHORS)

    def test_anchor_ordering_within_class(self):
        for q_low, q_high, target in PRICE_ANCHORS.values():
            assert 0 < q_low < q_high
            assert q_low < target

    def test_class_price_hierarchy(self):
        # Search bids highest, web medium, opportunistic lowest,
        # with opportunistic capped at the amortised guaranteed rate.
        assert PRICE_ANCHORS["search"][1] > PRICE_ANCHORS["web"][1]
        for cls in ("wordcount", "terasort", "graph"):
            assert PRICE_ANCHORS[cls][1] == pytest.approx(0.205)
            assert PRICE_ANCHORS[cls][1] < PRICE_ANCHORS["web"][1]


class TestDutyCycles:
    def test_batch_duty_cycle_near_paper(self):
        # Run a batch workload under its guaranteed budget and confirm
        # the sprint-wanted duty lands near the paper's ~30%.
        power = ServerPowerModel(0.45 * 125, 1.55 * 125)
        workload = make_terasort_workload("t", power)
        workload.prepare(4000, make_rng(17))
        wanted = 0
        for slot in range(4000):
            wanted += workload.execute(slot, 125.0, 120.0).wanted_spot
        assert 0.10 < wanted / 4000 < 0.45

    def test_graph_duty_cycle_in_band(self):
        power = ServerPowerModel(0.45 * 115, 1.55 * 115)
        workload = make_graph_workload("g", power)
        workload.prepare(4000, make_rng(18))
        wanted = 0
        for slot in range(4000):
            wanted += workload.execute(slot, 115.0, 120.0).wanted_spot
        assert 0.10 < wanted / 4000 < 0.45
