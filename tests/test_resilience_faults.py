"""Fault-injection framework (repro.resilience.faults / .profile)."""

import numpy as np
import pytest

from repro.config import make_rng
from repro.errors import ConfigurationError
from repro.resilience import (
    BernoulliLoss,
    DeratingEvent,
    DeratingSource,
    FaultInjector,
    FaultLog,
    FaultProfile,
    GilbertElliottLoss,
    GrantDelaySource,
    MeterFaultSource,
    ScriptedLoss,
)
from repro.sim.faults import CommunicationFaultModel
from repro.sim.scenario import testbed_scenario as build_testbed


def injector(*sources, seed=7):
    return FaultInjector(sources, seed=seed)


class TestFaultLog:
    def test_records_are_per_slot_time_series(self):
        log = FaultLog()
        log.record(3, "bid_lost", "t1")
        log.record(3, "grant_lost", "r1", 40.0)
        log.record(9, "bid_lost", "t2")
        assert [r.slot for r in log.records] == [3, 3, 9]
        assert log.slots() == [3, 9]
        assert log.slots("bid_lost") == [3, 9]
        assert log.of_kind("grant_lost")[0].magnitude == 40.0

    def test_legacy_counter_views(self):
        log = FaultLog()
        log.record(0, "bid_lost", "t1")
        log.record(1, "bid_lost", "t1")
        log.record(2, "grant_lost", "r1")
        assert log.lost_bids == 2
        assert log.lost_grants == 1
        assert log.count() == 3


class TestSources:
    def test_unbound_source_raises(self):
        source = BernoulliLoss("bid", 0.5)
        with pytest.raises(ConfigurationError):
            source.lost(0, "t")

    def test_zero_probability_draws_nothing(self):
        source = BernoulliLoss("grant", 0.0)
        rng = make_rng(0)
        before = rng.bit_generator.state["state"]["state"]
        source.bind(rng)
        assert not any(source.lost(s, "r") for s in range(50))
        assert rng.bit_generator.state["state"]["state"] == before

    def test_gilbert_elliott_losses_are_bursty(self):
        # Same long-run loss rate, wildly different clustering: compare
        # the burst structure of GE losses with independent Bernoulli
        # losses at the empirical GE rate.
        ge = GilbertElliottLoss("bid", enter_bad=0.02, exit_bad=0.2, loss_bad=1.0)
        ge.bind(make_rng(11))
        slots = 20_000
        ge_lost = np.array([ge.lost(s, "u") for s in range(slots)])
        rate = ge_lost.mean()
        assert 0.0 < rate < 0.5
        bern = BernoulliLoss("bid", rate)
        bern.bind(make_rng(11))
        b_lost = np.array([bern.lost(s, "u") for s in range(slots)])

        def mean_run_length(mask):
            runs, current = [], 0
            for value in mask:
                if value:
                    current += 1
                elif current:
                    runs.append(current)
                    current = 0
            if current:
                runs.append(current)
            return np.mean(runs)

        assert mean_run_length(ge_lost) > 2.0 * mean_run_length(b_lost)

    def test_scripted_loss_fires_exactly_on_script(self):
        source = ScriptedLoss("grant", slots=[4, 7], unit_ids=["r1"])
        source.bind(make_rng(0))
        assert source.lost(4, "r1") and source.lost(7, "r1")
        assert not source.lost(4, "r2")
        assert not source.lost(5, "r1")

    def test_grant_delay_produces_delayed_fault(self):
        source = GrantDelaySource(probability=1.0, delay_slots=4)
        source.bind(make_rng(0))
        fault = source.grant_fault(0, "r1", 50.0)
        assert fault.kind == "delayed" and fault.delay_slots == 4


class TestMeterFaults:
    def metered_series(self, source, true_w=100.0, slots=50):
        log = FaultLog()
        return [source.metered(s, "r1", true_w, log) for s in range(slots)], log

    def test_stuck_meter_freezes_reading(self):
        source = MeterFaultSource(stuck_probability=1.0, episode_slots=5)
        source.bind(make_rng(3))
        log = FaultLog()
        first = source.metered(0, "r1", 80.0, log)
        later = source.metered(1, "r1", 999.0, log)
        assert first == 80.0
        assert later == 80.0  # frozen at the reading it stuck at
        assert log.count("meter_stuck") == 2

    def test_dropout_reads_zero(self):
        source = MeterFaultSource(dropout_probability=1.0)
        source.bind(make_rng(3))
        readings, log = self.metered_series(source)
        assert all(r == 0.0 for r in readings)
        assert log.count("meter_dropout") == len(readings)

    def test_noise_perturbs_but_stays_nonnegative(self):
        source = MeterFaultSource(noise_sigma=0.5)
        source.bind(make_rng(3))
        readings, log = self.metered_series(source, true_w=10.0, slots=500)
        assert any(r != 10.0 for r in readings)
        assert all(r >= 0.0 for r in readings)
        assert log.count() == 0  # ambient noise is not an episode

    def test_unit_restriction(self):
        source = MeterFaultSource(dropout_probability=1.0, unit_ids=["r2"])
        source.bind(make_rng(3))
        log = FaultLog()
        assert source.metered(0, "r1", 70.0, log) == 70.0
        assert source.metered(0, "r2", 70.0, log) == 0.0


class TestDerating:
    def test_scheduled_event_applies_and_restores(self):
        topology = build_testbed(seed=1).topology
        pdu_id = next(iter(topology.pdus))
        base = topology.pdu(pdu_id).capacity_w
        source = DeratingSource(
            events=[DeratingEvent(slot=2, duration_slots=3, unit_id=pdu_id, fraction=0.25)]
        )
        source.bind(make_rng(0))
        log = FaultLog()
        for slot in range(8):
            source.transitions(slot, topology, log)
            expected = base * 0.75 if 2 <= slot < 5 else base
            assert topology.pdu(pdu_id).capacity_w == pytest.approx(expected)
        assert log.count("derating_start") == 1
        assert log.count("derating_end") == 1

    def test_ups_derating(self):
        topology = build_testbed(seed=1).topology
        ups_id = topology.ups.ups_id
        source = DeratingSource(
            events=[DeratingEvent(slot=0, duration_slots=2, unit_id=ups_id, fraction=0.1)]
        )
        source.bind(make_rng(0))
        source.transitions(0, topology, FaultLog())
        assert topology.ups.derated
        topology.restore_all_capacities()
        assert not topology.ups.derated

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            DeratingEvent(slot=0, duration_slots=1, unit_id="p", fraction=1.5)


class TestInjector:
    def test_requires_exactly_one_of_seed_and_rng(self):
        with pytest.raises(ConfigurationError):
            FaultInjector([])
        with pytest.raises(ConfigurationError):
            FaultInjector([], seed=1, rng=make_rng(1))

    def test_loss_wins_over_delay(self):
        inj = injector(
            GrantDelaySource(probability=1.0, delay_slots=2),
            BernoulliLoss("grant", 1.0),
        )
        fault = inj.grant_fault(0, "r1", 10.0)
        assert fault.kind == "lost"
        assert inj.log.lost_grants == 1

    def test_identical_seeds_identical_traces(self):
        # Property: two injectors with the same sources and seed produce
        # identical fault traces over any query sequence.
        def trace(seed):
            inj = FaultInjector(
                [
                    BernoulliLoss("bid", 0.3),
                    GilbertElliottLoss("grant", 0.1),
                    MeterFaultSource(stuck_probability=0.2, noise_sigma=0.05),
                ],
                seed=seed,
            )
            out = []
            for s in range(200):
                out.append(inj.bid_lost(s, "t1"))
                fault = inj.grant_fault(s, "r1", 25.0)
                out.append(None if fault is None else fault.kind)
                out.append(inj.metered_power_w(s, "r1", 100.0))
            return out, inj.log.records

        a_trace, a_log = trace(42)
        b_trace, b_log = trace(42)
        c_trace, _ = trace(43)
        assert a_trace == b_trace
        assert a_log == b_log
        assert a_trace != c_trace

    def test_channel_streams_are_independent_of_composition(self):
        # The derating schedule must be byte-identical whether or not
        # market-channel sources are present — the property the SpotDC
        # vs PowerCapped invariant comparison rests on.
        def derating_trace(extra_sources):
            topology = build_testbed(seed=1).topology
            inj = FaultInjector(
                list(extra_sources)
                + [DeratingSource(event_rate=0.2, fraction=0.2, duration_slots=4)],
                seed=99,
            )
            for s in range(150):
                for t in ("t1", "t2"):
                    inj.bid_lost(s, t)
                inj.apply_capacity_faults(s, topology)
            topology.restore_all_capacities()
            return [
                (r.slot, r.kind, r.unit_id, r.magnitude)
                for r in inj.log.records
                if r.kind.startswith("derating")
            ]

        bare = derating_trace([])
        with_market_faults = derating_trace(
            [BernoulliLoss("bid", 0.4), BernoulliLoss("grant", 0.4)]
        )
        assert bare == with_market_faults
        assert len(bare) > 0


class TestFaultProfile:
    def test_named_classes(self):
        for name in (
            "comm", "bursty", "delay", "meter", "derating", "duplicate",
            "chaos",
        ):
            profile = FaultProfile.named(name, 0.2)
            assert profile.sources(), name
        assert FaultProfile.named("none").build() is None

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultProfile.named("gremlins")
        with pytest.raises(ConfigurationError):
            FaultProfile.named("comm", intensity=2.0)

    def test_profile_accepts_plain_seed(self):
        # The legacy model hard-required a pre-built Generator; profiles
        # take a plain int.
        inj = FaultProfile.named("comm", 0.5).build(seed=5)
        assert isinstance(inj, FaultInjector)

    def test_derating_only_strips_market_channels(self):
        chaos = FaultProfile.named("chaos", 0.3)
        stripped = chaos.derating_only()
        channels = {s.channel for s in stripped.sources()}
        assert channels <= {"capacity"}
        assert stripped.derating_rate == chaos.derating_rate


class TestLostGrantBilling:
    def test_lost_grant_broadcast_earns_exactly_zero_revenue(self):
        # §III-C: a grant whose broadcast is lost is never applied and
        # never billed.  Script a loss of every grant at one slot and
        # pin that slot's settlement revenue to exactly 0.0.
        from repro.economics.settlement import reconcile
        from repro.sim.engine import SimulationEngine

        k, slots, seed = 10, 40, 3
        clean = SimulationEngine(build_testbed(seed=seed)).run(slots)
        assert clean.collector.spot_revenue_array()[k] > 0.0

        injector = FaultInjector([ScriptedLoss("grant", slots=[k])], seed=seed)
        engine = SimulationEngine(build_testbed(seed=seed), fault_model=injector)
        result = engine.run(slots)
        assert result.faults.lost_grants > 0
        assert result.collector.spot_revenue_array()[k] == 0.0
        assert result.collector.spot_granted_array()[k] == 0.0
        reconcile(result)


class TestDuplicateDelivery:
    def test_seeded_and_unit_restricted(self):
        from repro.resilience import DuplicateDeliverySource

        def trace(seed):
            inj = FaultInjector(
                [DuplicateDeliverySource(0.4, unit_ids=["t1"])], seed=seed
            )
            return [
                (inj.bid_duplicated(s, "t1"), inj.bid_duplicated(s, "t2"))
                for s in range(100)
            ]

        a, b, c = trace(7), trace(7), trace(8)
        assert a == b and a != c
        assert any(dup_t1 for dup_t1, _ in a)
        # t2 is outside unit_ids: never duplicated, and (zero-draw) the
        # restriction must not consume randomness for excluded units.
        assert not any(dup_t2 for _, dup_t2 in a)
        assert FaultInjector(
            [DuplicateDeliverySource(0.4)], seed=7
        ).has_duplicate_sources

    def test_duplicates_logged_on_their_own_channel(self):
        from repro.resilience import DuplicateDeliverySource

        inj = FaultInjector(
            [BernoulliLoss("bid", 0.3), DuplicateDeliverySource(0.5)], seed=3
        )
        for s in range(80):
            inj.bid_lost(s, "t1")
            inj.bid_duplicated(s, "t1")
        assert inj.log.count("bid_duplicated") > 0
        assert inj.log.count("bid_lost") > 0

    def test_duplicate_deliveries_are_settlement_neutral(self):
        # The §III-C idempotency contract, end to end at tier-1 scale:
        # redelivered bundles are absorbed by ingestion, so every
        # settlement number matches the clean same-seed run exactly.
        from repro.experiments.ext_resilience import (
            run_duplicate_neutrality_check,
        )

        cell = run_duplicate_neutrality_check(seed=2, slots=60, intensity=0.5)
        assert cell.duplicates_injected > 0
        assert cell.revenue_equal
        assert cell.prices_equal
        assert cell.invoices_equal
        assert cell.ok


class TestLegacyAdapter:
    def test_is_an_injector(self):
        model = CommunicationFaultModel(0.1, 0.1, rng=make_rng(0))
        assert isinstance(model, FaultInjector)

    def test_accepts_seed_instead_of_rng(self):
        model = CommunicationFaultModel(0.5, 0.5, seed=9)
        hits = sum(model.bid_lost(s, "t") for s in range(200))
        assert 0 < hits < 200

    def test_requires_rng_or_seed(self):
        with pytest.raises(ConfigurationError):
            CommunicationFaultModel(bid_loss_probability=0.1)
