"""Grid events: types, schedules, the shock absorber, and the four
machine-checked survivability invariants (see ``docs/events.md``)."""

import dataclasses
import pathlib
import tempfile

import numpy as np
import pytest

from repro.config import DEFAULT_SEED
from repro.core.baselines import PowerCappedAllocator
from repro.errors import ConfigurationError, OperatorCrash
from repro.events import (
    DeratingCascade,
    EdrShock,
    EventProfile,
    EventSchedule,
    PriceSpike,
    wholesale_trace_from_file,
)
from repro.infrastructure.ups import Ups
from repro.recovery import latest_checkpoint
from repro.resilience import FaultProfile
from repro.sim.engine import run_simulation
# Aliased: pytest would otherwise collect names starting with "test".
from repro.sim.scenario import testbed_scenario as make_testbed

#: An absorbable testbed shock: guaranteed draw peaks ~1,296 W of the
#: 1,370 W UPS, so a 5% cut (shocked capacity 1,301.5 W) leaves the
#: guaranteed load compliant while forcing the market to shed its spot.
SHOCK = EdrShock(slot=10, duration_slots=15, fraction=0.05)


def shocked(seed=DEFAULT_SEED, **kwargs):
    profile = EventProfile(schedule=(SHOCK,), **kwargs)
    return dataclasses.replace(make_testbed(seed=seed), events=profile)


# ---------------------------------------------------------------------------
# Event types and schedules


class TestEventTypes:
    def test_edr_shock_window(self):
        shock = EdrShock(slot=5, duration_slots=3, fraction=0.2)
        assert shock.end_slot == 8
        assert shock.capacity_cut(4) == 0.0
        assert shock.capacity_cut(5) == 0.2
        assert shock.capacity_cut(7) == 0.2
        assert shock.capacity_cut(8) == 0.0

    def test_cascade_deepens_by_stage(self):
        cascade = DeratingCascade(
            slot=10, stages=3, stage_slots=4, fraction_per_stage=0.1
        )
        assert cascade.end_slot == 22
        assert cascade.capacity_cut(9) == 0.0
        assert cascade.capacity_cut(10) == pytest.approx(0.1)
        assert cascade.capacity_cut(14) == pytest.approx(0.2)
        assert cascade.capacity_cut(21) == pytest.approx(0.3)
        assert cascade.capacity_cut(22) == 0.0

    def test_cascade_terminal_cut_must_stay_below_one(self):
        with pytest.raises(ConfigurationError, match="terminal cut"):
            DeratingCascade(slot=0, stages=4, fraction_per_stage=0.3)

    def test_shock_fraction_bounds(self):
        with pytest.raises(ConfigurationError, match="fraction"):
            EdrShock(slot=0, fraction=1.0)
        with pytest.raises(ConfigurationError, match="fraction"):
            EdrShock(slot=0, fraction=0.0)

    def test_schedule_capacity_cuts_take_deepest(self):
        schedule = EventSchedule(
            events=(
                EdrShock(slot=0, duration_slots=10, fraction=0.1),
                EdrShock(slot=2, duration_slots=4, fraction=0.3),
            )
        )
        assert schedule.capacity_cuts(1) == {None: 0.1}
        assert schedule.capacity_cuts(3) == {None: 0.3}
        assert schedule.capacity_cuts(7) == {None: 0.1}
        assert schedule.capacity_cuts(10) == {}

    def test_price_spike_pins_reserve(self):
        schedule = EventSchedule(
            events=(PriceSpike(slot=3, duration_slots=2, reserve_price=0.4),)
        )
        assert schedule.reserve_price_at(2) is None
        assert schedule.reserve_price_at(3) == 0.4
        assert schedule.reserve_price_at(5) is None

    def test_trace_only_couples_whole_horizon(self):
        schedule = EventSchedule(
            wholesale_trace=(0.1, 0.2), price_coupling=2.0
        )
        assert schedule.reserve_price_at(0) == pytest.approx(0.2)
        assert schedule.reserve_price_at(1) == pytest.approx(0.4)
        # Past the trace end the last sample holds.
        assert schedule.reserve_price_at(9) == pytest.approx(0.4)

    def test_spike_tracks_trace_only_inside_window(self):
        schedule = EventSchedule(
            events=(PriceSpike(slot=1, duration_slots=1),),
            wholesale_trace=(0.3,),
        )
        assert schedule.reserve_price_at(0) is None
        assert schedule.reserve_price_at(1) == pytest.approx(0.3)

    def test_wholesale_trace_file_forms(self, tmp_path):
        json_file = tmp_path / "trace.json"
        json_file.write_text("[0.1, 0.2]")
        assert wholesale_trace_from_file(json_file) == (0.1, 0.2)
        text_file = tmp_path / "trace.txt"
        text_file.write_text("# header\n0.1\n\n0.2  # peak\n")
        assert wholesale_trace_from_file(text_file) == (0.1, 0.2)
        bad = tmp_path / "bad.txt"
        bad.write_text("nope\n")
        with pytest.raises(ConfigurationError, match="non-numeric"):
            wholesale_trace_from_file(bad)


class TestEventProfile:
    def test_arrival_process_is_deterministic(self):
        profile = EventProfile(rate=0.1)
        a = profile.build_schedule(7, 200)
        b = profile.build_schedule(7, 200)
        assert a == b
        assert any(e.kind == "edr_shock" for e in a.events)

    def test_arrival_process_never_overlaps(self):
        profile = EventProfile(rate=0.3, shock_duration_slots=5)
        schedule = profile.build_schedule(3, 300)
        spans = sorted((e.slot, e.end_slot) for e in schedule.events)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start > end

    def test_explicit_seed_decouples_from_scenario_seed(self):
        profile = EventProfile(rate=0.2, seed=11)
        assert profile.build_schedule(1, 150) == profile.build_schedule(2, 150)

    def test_spec_round_trip(self):
        profile = EventProfile(
            schedule=(
                EdrShock(slot=4, duration_slots=6, fraction=0.1),
                PriceSpike(slot=4, duration_slots=6, reserve_price=0.3),
                DeratingCascade(slot=20, stages=2, fraction_per_stage=0.05),
            ),
            rate=0.01,
            reserve_uplift=0.05,
            wholesale_trace=(0.1, 0.2),
        )
        assert EventProfile.from_spec(profile.to_spec()) == profile

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="rate"):
            EventProfile(rate=1.0)


# ---------------------------------------------------------------------------
# Two-layer capacity model (event cuts vs fault deratings)


class TestEventCapacityLayer:
    def test_event_cut_composes_with_derating(self):
        ups = Ups("ups", 1000.0)
        ups.apply_event_cut(0.1)
        assert ups.capacity_w == pytest.approx(900.0)
        # A shallower fault derating is shadowed by the deeper cut...
        ups.apply_derating(0.05)
        assert ups.capacity_w == pytest.approx(900.0)
        # ...and a deeper one wins.
        ups.apply_derating(0.2)
        assert ups.capacity_w == pytest.approx(800.0)
        # Fault recovery must not clear the event cut.
        ups.restore_capacity()
        assert ups.capacity_w == pytest.approx(900.0)
        ups.clear_event_cut()
        assert ups.capacity_w == pytest.approx(1000.0)

    def test_event_cut_bounds(self):
        ups = Ups("ups", 1000.0)
        with pytest.raises(Exception):
            ups.apply_event_cut(1.0)


# ---------------------------------------------------------------------------
# Engine integration


class TestEngineIntegration:
    def test_default_path_untouched(self):
        # No events component -> no absorber, no events report, and the
        # summary/telemetry surface is byte-identical to the seed repo.
        result = run_simulation(make_testbed(seed=1), 20)
        assert getattr(result, "events_report", None) is None

    def test_shock_produces_events_report(self):
        result = run_simulation(shocked(), 40)
        report = result.events_report
        assert report["events"] == 1
        assert report["event_slots"] == 15
        assert report["compliance_violations"] == 0
        assert report["shed_watts"] >= 0.0

    def test_capacity_restored_after_window(self):
        scenario = shocked()
        result = run_simulation(scenario, 40)
        assert result is not None
        # finish_run restores every capacity layer.
        assert scenario.topology.ups.capacity_w == pytest.approx(
            scenario.topology.ups._base_capacity_w
        )

    def test_invariant_1_no_additional_overloads(self):
        spot = run_simulation(shocked(), 60)
        capped = run_simulation(
            shocked(), 60, allocator=PowerCappedAllocator()
        )
        assert spot.emergencies.overload_slot_count(
            "ups"
        ) <= capped.emergencies.overload_slot_count("ups")
        assert spot.emergencies.overload_slot_count(
            "pdu"
        ) <= capped.emergencies.overload_slot_count("pdu")

    def test_invariant_2_compliance_within_budget(self):
        result = run_simulation(shocked(), 60)
        report = result.events_report
        assert report["compliance_violations"] == 0
        assert report["compliance_max_lag_slots"] <= 3

    def test_invariant_2_unabsorbable_shock_is_a_violation(self):
        # A 30% cut leaves the shocked capacity far below guaranteed
        # draw — no amount of spot revocation can comply, and the
        # absorber must say so rather than quietly time the window out.
        profile = EventProfile(
            schedule=(EdrShock(slot=10, duration_slots=8, fraction=0.3),)
        )
        scenario = dataclasses.replace(
            make_testbed(seed=DEFAULT_SEED), events=profile
        )
        result = run_simulation(scenario, 30)
        assert result.events_report["compliance_violations"] >= 1

    def test_invariant_3_settlement_neutral(self):
        from repro.economics.settlement import build_all_invoices, reconcile

        result = run_simulation(shocked(), 60)
        reconcile(result)
        credited = sum(n.dollars for n in result.credit_notes)
        invoice_credit = sum(
            i.spot_credit for i in build_all_invoices(result)
        )
        assert credited == pytest.approx(invoice_credit)

    def test_price_spike_pins_clearing_price(self):
        profile = EventProfile(
            schedule=(
                PriceSpike(slot=10, duration_slots=5, reserve_price=0.2),
            )
        )
        scenario = dataclasses.replace(
            make_testbed(seed=1), events=profile
        )
        result = run_simulation(scenario, 25)
        prices = result.price_series()
        assert (prices[10:15] >= 0.2).all()
        # Before the spike the market clears below the pinned reserve
        # (the unwind itself is covered by the params-restoration test).
        assert prices[:10].min() < 0.2

    def test_reserve_uplift_scales_with_severity(self):
        profile = EventProfile(schedule=(SHOCK,), reserve_uplift=1.0)
        scenario = dataclasses.replace(
            make_testbed(seed=1), events=profile
        )
        result = run_simulation(scenario, 30)
        assert result.events_report["max_reserve_price"] > 0.0

    def test_grid_events_in_summary_only_with_events(self, tmp_path):
        import json

        from repro.telemetry import TelemetryConfig

        run_simulation(
            shocked(),
            20,
            telemetry=TelemetryConfig(out_dir=tmp_path, label="evt"),
        )
        summary = json.loads((tmp_path / "evt_summary.json").read_text())
        assert "grid_events" in summary["data"]
        assert summary["data"]["grid_events"]["events"] == 1

    def test_events_metrics_exported(self, tmp_path):
        from repro.telemetry import TelemetryConfig

        run_simulation(
            shocked(),
            30,
            telemetry=TelemetryConfig(out_dir=tmp_path, label="evt"),
        )
        text = (tmp_path / "evt_metrics.prom").read_text()
        assert "events_active" in text
        assert "events_shed_watts_total" in text
        assert "events_compliance_lag_slots" in text


# ---------------------------------------------------------------------------
# Invariant 4: crash mid-event + resume is byte-identical


@pytest.mark.recovery
class TestMidEventRecovery:
    def test_resume_replays_event_window_byte_identically(self):
        crash_at = SHOCK.slot + SHOCK.duration_slots // 2
        crashing = dataclasses.replace(
            FaultProfile.named("none", 0.0),
            seed=DEFAULT_SEED,
            crash_at_slot=crash_at,
        )
        from repro.telemetry import TelemetryConfig

        with tempfile.TemporaryDirectory() as tmp:
            tmp = pathlib.Path(tmp)
            with pytest.raises(OperatorCrash):
                run_simulation(
                    shocked(),
                    40,
                    fault_profile=crashing,
                    telemetry=TelemetryConfig(
                        out_dir=tmp / "crashed", label="run"
                    ),
                    checkpoint_every=5,
                    checkpoint_dir=tmp / "ckpt",
                )
            checkpoint = latest_checkpoint(tmp / "ckpt")
            assert checkpoint is not None
            resumed = run_simulation(
                shocked(),
                40,
                fault_profile=crashing,
                resume_from=checkpoint,
            )
            reference = run_simulation(
                shocked(),
                40,
                telemetry=TelemetryConfig(
                    out_dir=tmp / "reference", label="run"
                ),
            )
            assert (tmp / "crashed" / "run_trace.jsonl").read_bytes() == (
                tmp / "reference" / "run_trace.jsonl"
            ).read_bytes()
        assert np.array_equal(
            resumed.price_series(), reference.price_series()
        )
        assert resumed.events_report == reference.events_report


# ---------------------------------------------------------------------------
# Satellite 1: emergency-cap de-escalation unwinds fully


class TestEmergencyCapUnwind:
    def test_deep_shock_caps_then_unwinds(self):
        from repro.sim.engine import SimulationEngine

        # Deep enough to exhaust revocation and fire rung 4.
        profile = EventProfile(
            schedule=(EdrShock(slot=5, duration_slots=6, fraction=0.25),)
        )
        scenario = dataclasses.replace(
            make_testbed(seed=1), events=profile
        )
        engine = SimulationEngine(scenario)
        start = engine.begin_run(20)
        absorber = engine.shock_absorber
        saw_cap = False
        for slot in range(start, 20):
            engine.step_slot(slot)
            if slot < 11 and absorber.capped_units:
                saw_cap = True
                assert absorber.cuts_in_force  # capped implies shocked
            if slot >= 11:
                # Window closed: every rung must have de-escalated.
                assert absorber.capped_units == frozenset()
                assert absorber.cuts_in_force == {}
                assert scenario.topology.ups.capacity_w == pytest.approx(
                    scenario.topology.ups._base_capacity_w
                )
        assert saw_cap, "the deep shock never fired the emergency cap"
        result = engine.finish_run()
        assert result.events_report["emergency_caps"] > 0

    def test_reserve_price_restored_after_spike(self):
        from repro.sim.engine import SimulationEngine

        profile = EventProfile(
            schedule=(
                PriceSpike(slot=4, duration_slots=3, reserve_price=0.25),
            )
        )
        scenario = dataclasses.replace(
            make_testbed(seed=1), events=profile
        )
        engine = SimulationEngine(scenario)
        base_params = engine.allocator.params
        start = engine.begin_run(12)
        for slot in range(start, 12):
            engine.step_slot(slot)
            if 4 <= slot < 7:
                assert engine.allocator.params.reserve_price == 0.25
            else:
                assert (
                    engine.allocator.params.reserve_price
                    == base_params.reserve_price
                )
        engine.finish_run()
        assert engine.allocator.params == base_params


# ---------------------------------------------------------------------------
# Scenario spec plumbing


class TestEventsSpec:
    def test_events_component_round_trips(self):
        from repro.scenarios import (
            build_scenario,
            dump_scenario,
            dump_spec,
            normalize_spec,
            testbed_spec,
        )

        spec = testbed_spec()
        spec["events"] = {
            "schedule": [
                {"kind": "edr_shock", "slot": 8, "fraction": 0.05},
                {"kind": "price_spike", "slot": 8, "reserve_price": 0.3},
            ],
            "reserve_uplift": 0.02,
        }
        canonical = dump_spec(normalize_spec(spec))
        scenario = build_scenario(spec)
        assert scenario.events is not None
        assert len(scenario.events.schedule) == 2
        assert dump_scenario(scenario) == canonical

    def test_default_events_block_maps_to_none(self):
        from repro.scenarios import build_scenario, testbed_spec
        from repro.scenarios.loader import events_from_spec
        from repro.scenarios.spec import normalize_events

        assert events_from_spec(normalize_events(None)) is None
        spec = testbed_spec()
        spec["events"] = {}
        assert build_scenario(spec).events is None

    def test_cross_kind_fields_rejected_with_pointer(self):
        from repro.scenarios import normalize_spec, testbed_spec

        spec = testbed_spec()
        spec["events"] = {
            "schedule": [
                {"kind": "price_spike", "slot": 1, "fraction": 0.2}
            ]
        }
        with pytest.raises(
            ConfigurationError, match="/events/schedule/0"
        ):
            normalize_spec(spec)

    def test_sweepable_dotted_paths(self):
        from repro.scenarios import normalize_spec, testbed_spec

        normal = normalize_spec(testbed_spec())
        # The sweep layer overrides dotted paths into the normal form;
        # the events block must always be present and fully defaulted.
        assert normal["events"]["rate"] == 0.0
        assert normal["events"]["compliance_slots"] == 3

    def test_event_profile_from_file(self, tmp_path):
        import json

        from repro.scenarios import event_profile_from_file

        path = tmp_path / "events.json"
        path.write_text(
            json.dumps(
                {
                    "schedule": [
                        {"kind": "edr_shock", "slot": 3, "fraction": 0.1}
                    ]
                }
            )
        )
        profile = event_profile_from_file(path)
        assert profile.schedule == (
            EdrShock(slot=3, duration_slots=12, fraction=0.1, unit_id=None),
        )
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"rate": 2.0}))
        with pytest.raises(ConfigurationError):
            event_profile_from_file(bad)
