"""Budget enforcement: warnings, power cuts, misbehaving tenants."""

import pytest

from repro.config import make_rng
from repro.errors import ConfigurationError
from repro.infrastructure.enforcement import EnforcementPolicy
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.topology import PowerTopology
from repro.infrastructure.ups import Ups
from repro.sim.engine import SimulationEngine
from repro.sim.scenario import testbed_scenario as build_testbed
from repro.tenants.misbehaving import OverdrawingTenant


def small_topology():
    return PowerTopology.build(
        Ups("u", 500.0),
        [Pdu("p", 300.0)],
        [
            Rack("r1", "t1", "p", 100.0, 150.0),
            Rack("r2", "t2", "p", 100.0, 150.0),
        ],
    )


class TestEnforcementPolicy:
    def test_no_action_within_budget(self):
        topology = small_topology()
        topology.rack("r1").record_power(99.0)
        topology.rack("r2").record_power(50.0)
        policy = EnforcementPolicy()
        assert policy.review(topology, 0) == []

    def test_warning_on_overdraw(self):
        topology = small_topology()
        topology.rack("r1").record_power(110.0)
        topology.rack("r2").record_power(50.0)
        policy = EnforcementPolicy(warnings_before_cut=3)
        actions = policy.review(topology, 0)
        assert len(actions) == 1
        assert actions[0].kind == "warning"
        assert actions[0].overdraw_w == pytest.approx(10.0)
        assert policy.warning_count("r1") == 1

    def test_escalates_to_cut(self):
        topology = small_topology()
        topology.rack("r1").record_power(115.0)
        topology.rack("r2").record_power(50.0)
        policy = EnforcementPolicy(warnings_before_cut=3, cut_slots=5)
        kinds = []
        for slot in range(3):
            actions = policy.review(topology, slot)
            kinds.extend(a.kind for a in actions)
        assert kinds == ["warning", "warning", "power_cut"]
        assert policy.is_barred("r1", 3)
        assert policy.is_barred("r1", 7)
        assert not policy.is_barred("r1", 8)
        assert policy.barred_racks(3) == frozenset({"r1"})

    def test_cut_resets_warning_count(self):
        topology = small_topology()
        topology.rack("r1").record_power(115.0)
        topology.rack("r2").record_power(50.0)
        policy = EnforcementPolicy(warnings_before_cut=2)
        policy.review(topology, 0)
        policy.review(topology, 1)  # cut
        assert policy.warning_count("r1") == 0

    def test_tolerance_suppresses_noise(self):
        topology = small_topology()
        topology.rack("r1").record_power(100.5)
        topology.rack("r2").record_power(50.0)
        policy = EnforcementPolicy(tolerance=0.01)
        assert policy.review(topology, 0) == []

    def test_budget_includes_spot_grant(self):
        topology = small_topology()
        topology.rack("r1").set_spot_budget(20.0)
        topology.rack("r1").record_power(115.0)
        topology.rack("r2").record_power(50.0)
        policy = EnforcementPolicy(tolerance=0.0)
        assert policy.review(topology, 0) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnforcementPolicy(tolerance=-0.1)
        with pytest.raises(ConfigurationError):
            EnforcementPolicy(warnings_before_cut=0)
        with pytest.raises(ConfigurationError):
            EnforcementPolicy(cut_slots=0)


class TestWarningMemory:
    def overdraw(self, policy, topology, slot):
        topology.rack("r1").record_power(110.0)
        topology.rack("r2").record_power(50.0)
        return policy.review(topology, slot)

    def test_legacy_no_expiry_accumulates_forever(self):
        # Regression pin of the original behaviour (a bug this window
        # fixes): with warning_memory_slots=None, warnings issued
        # thousands of slots apart still add up to a power cut.
        topology = small_topology()
        policy = EnforcementPolicy(
            warnings_before_cut=3, warning_memory_slots=None
        )
        kinds = []
        for slot in (0, 5_000, 10_000):
            kinds.extend(a.kind for a in self.overdraw(policy, topology, slot))
        assert kinds == ["warning", "warning", "power_cut"]

    def test_stale_warnings_expire_within_window(self):
        topology = small_topology()
        policy = EnforcementPolicy(
            warnings_before_cut=3, warning_memory_slots=100
        )
        kinds = []
        for slot in (0, 200, 400):  # each warning expires before the next
            kinds.extend(a.kind for a in self.overdraw(policy, topology, slot))
        assert kinds == ["warning", "warning", "warning"]
        # Three overdraws *inside* one window still escalate.
        kinds = [
            a.kind
            for slot in (500, 520, 540)
            for a in self.overdraw(policy, topology, slot)
        ]
        assert kinds == ["warning", "warning", "power_cut"]

    def test_warning_count_prunes_at_a_slot(self):
        topology = small_topology()
        policy = EnforcementPolicy(
            warnings_before_cut=5, warning_memory_slots=50
        )
        self.overdraw(policy, topology, 0)
        self.overdraw(policy, topology, 40)
        assert policy.warning_count("r1") == 2  # outstanding, unpruned
        assert policy.warning_count("r1", slot=45) == 2
        assert policy.warning_count("r1", slot=60) == 1  # slot-0 expired
        assert policy.warning_count("r1", slot=200) == 0

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            EnforcementPolicy(warning_memory_slots=0)
        with pytest.raises(ConfigurationError):
            EnforcementPolicy(warning_memory_slots=-5)


class TestMisbehavingTenantInSimulation:
    def _run(self, overdraw_probability, slots=600, enforcement=None):
        scenario = build_testbed(seed=66)
        # Make Count-1 a chronic overdrawer.
        rng = make_rng(777)
        scenario.tenants = [
            OverdrawingTenant(t, overdraw_probability, 0.15, rng)
            if t.tenant_id == "Count-1"
            else t
            for t in scenario.tenants
        ]
        engine = SimulationEngine(scenario, enforcement=enforcement)
        result = engine.run(slots)
        rogue = next(
            t for t in scenario.tenants if t.tenant_id == "Count-1"
        )
        return result, rogue

    def test_wrapper_delegates_cleanly_at_zero_probability(self):
        result, rogue = self._run(0.0, slots=200)
        assert rogue.overdraw_slots == 0
        assert result.slots == 200

    def test_overdraws_show_up_as_rack_events(self):
        policy = EnforcementPolicy(warnings_before_cut=3, cut_slots=20)
        result, rogue = self._run(0.3, enforcement=policy)
        assert rogue.overdraw_slots > 0
        assert any(a.kind == "warning" for a in policy.actions)
        assert any(a.kind == "power_cut" for a in policy.actions)

    def test_barred_rack_receives_no_spot(self):
        policy = EnforcementPolicy(warnings_before_cut=2, cut_slots=50)
        result, _ = self._run(0.5, enforcement=policy)
        cuts = [a for a in policy.actions if a.kind == "power_cut"]
        assert cuts
        granted = result.collector.rack_granted_array("rack:Count-1")
        first_cut = cuts[0].slot
        barred_window = granted[first_cut + 1 : first_cut + 1 + 50]
        assert barred_window.sum() == 0.0

    def test_enforcement_off_means_no_actions(self):
        result, rogue = self._run(0.3, enforcement=None)
        assert rogue.overdraw_slots > 0  # misbehaviour happens unpoliced
