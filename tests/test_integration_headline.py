"""Integration: the paper's headline claims as band checks.

These are the load-bearing reproduction tests.  Each asserts the *shape*
of a paper result — who wins, by roughly what factor — on a multi-day
simulated horizon, not exact numbers (our substrate is a simulator, not
the authors' testbed).
"""

import numpy as np
import pytest

from repro.core.baselines import MaxPerfAllocator, PowerCappedAllocator
from repro.sim.engine import run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed

SLOTS = 2500
SEED = 20180224


@pytest.fixture(scope="module")
def spotdc():
    return run_simulation(build_testbed(seed=SEED), SLOTS)


@pytest.fixture(scope="module")
def powercapped():
    return run_simulation(
        build_testbed(seed=SEED), SLOTS, allocator=PowerCappedAllocator()
    )


@pytest.fixture(scope="module")
def maxperf():
    return run_simulation(
        build_testbed(seed=SEED), SLOTS, allocator=MaxPerfAllocator()
    )


class TestOperatorHeadline:
    def test_profit_increase_near_paper(self, spotdc, powercapped):
        """Paper: operator net profit +9.7% vs PowerCapped."""
        increase = spotdc.operator_profit_increase_vs(powercapped)
        assert 0.05 < increase < 0.15

    def test_spot_revenue_positive_but_small_vs_subscriptions(self, spotdc):
        assert 0 < spotdc.total_spot_revenue() < (
            0.2 * spotdc.ledger.subscription_revenue
        )


class TestTenantHeadline:
    def test_performance_band(self, spotdc, powercapped):
        """Paper: tenants improve performance 1.2-1.8x on average."""
        ratios = [
            spotdc.tenant_performance_improvement_vs(powercapped, t)
            for t in spotdc.participating_tenant_ids()
        ]
        assert 1.15 < float(np.mean(ratios)) < 1.8
        assert all(r > 1.05 for r in ratios)

    def test_cost_increase_marginal(self, spotdc, powercapped):
        """Paper: marginal cost increase (as low as 0.3%, a few % max)."""
        for tenant_id in spotdc.participating_tenant_ids():
            increase = spotdc.tenant_cost_increase_vs(powercapped, tenant_id)
            assert 0.0 <= increase < 0.05

    def test_sprinting_cheaper_than_opportunistic(self, spotdc, powercapped):
        """Paper Fig. 12(a): opportunistic cost increase is higher."""
        def mean_increase(kind):
            values = [
                spotdc.tenant_cost_increase_vs(powercapped, t)
                for t in spotdc.participating_tenant_ids()
                if spotdc.tenants[t].kind == kind
            ]
            return float(np.mean(values))

        assert mean_increase("sprinting") < mean_increase("opportunistic")

    def test_sprinting_uses_less_spot_fraction(self, spotdc):
        """Paper Fig. 12(c): sprinting tenants receive less spot capacity
        in percentage of their subscription."""
        def mean_usage(kind):
            values = [
                spotdc.tenant_spot_usage_fraction(t)[0]
                for t in spotdc.participating_tenant_ids()
                if spotdc.tenants[t].kind == kind
            ]
            return float(np.mean(values))

        assert mean_usage("sprinting") < mean_usage("opportunistic")

    def test_slo_violations_reduced(self, spotdc, powercapped):
        """Paper Fig. 11: sprinting tenants avoid SLO violations."""
        for tenant_id in ("Search-1", "Web", "Search-2"):
            assert spotdc.tenant_slo_violation_rate(tenant_id) < (
                powercapped.tenant_slo_violation_rate(tenant_id)
            )


class TestBaselineOrdering:
    def test_maxperf_upper_bounds_spotdc_performance(
        self, spotdc, powercapped, maxperf
    ):
        """Paper Fig. 12(b): SpotDC is close to, but below, MaxPerf."""
        for tenant_id in spotdc.participating_tenant_ids():
            spot_ratio = spotdc.tenant_performance_improvement_vs(
                powercapped, tenant_id
            )
            max_ratio = maxperf.tenant_performance_improvement_vs(
                powercapped, tenant_id
            )
            assert max_ratio >= spot_ratio - 0.05
        spot_mean = np.mean([
            spotdc.tenant_performance_improvement_vs(powercapped, t)
            for t in spotdc.participating_tenant_ids()
        ])
        max_mean = np.mean([
            maxperf.tenant_performance_improvement_vs(powercapped, t)
            for t in maxperf.participating_tenant_ids()
        ])
        # "close to MaxPerf": within 25% of the upper bound's gain.
        assert spot_mean - 1.0 > 0.5 * (max_mean - 1.0)

    def test_maxperf_allocates_more(self, spotdc, maxperf):
        assert (
            maxperf.collector.spot_granted_array().mean()
            >= spotdc.collector.spot_granted_array().mean()
        )


class TestReliabilityInvariants:
    def test_no_additional_emergencies(self, spotdc, powercapped):
        """Paper Section V-B2: spot capacity introduces no additional
        power emergencies."""
        assert spotdc.emergencies.count() <= powercapped.emergencies.count() + 1

    def test_ups_utilization_improves(self, spotdc, powercapped):
        """Paper Fig. 13(b): SpotDC raises power infrastructure
        utilization (top of the distribution shifts right)."""
        spot_p95 = np.percentile(spotdc.collector.ups_power_array(), 95)
        base_p95 = np.percentile(powercapped.collector.ups_power_array(), 95)
        assert spot_p95 >= base_p95

    def test_price_ordering_by_class(self, spotdc):
        """Paper Fig. 13(a): sprinting tenants pay higher prices."""

        def paid_prices(kind):
            paid = []
            for t in spotdc.participating_tenant_ids():
                if spotdc.tenants[t].kind != kind:
                    continue
                for rack_id in spotdc.tenants[t].rack_ids:
                    prices = spotdc.collector.pdu_price_array(
                        spotdc.racks[rack_id].pdu_id
                    )
                    got = spotdc.collector.rack_granted_array(rack_id) > 0.5
                    paid.append(prices[got])
            return np.concatenate(paid)

        assert np.median(paid_prices("sprinting")) > np.median(
            paid_prices("opportunistic")
        )

    def test_opportunistic_never_pays_above_guaranteed_rate(self, spotdc):
        """Paper: opportunistic tenants will not bid above the amortised
        guaranteed-capacity rate (~US$0.2/kW/h)."""
        for t in spotdc.participating_tenant_ids():
            if spotdc.tenants[t].kind != "opportunistic":
                continue
            for rack_id in spotdc.tenants[t].rack_ids:
                prices = spotdc.collector.pdu_price_array(
                    spotdc.racks[rack_id].pdu_id
                )
                got = spotdc.collector.rack_granted_array(rack_id) > 0.5
                if got.any():
                    assert prices[got].max() <= 0.205 + 1e-9
