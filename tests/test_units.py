"""Unit-conversion helpers (repro.units)."""

import math

import pytest

from repro import units


class TestPowerConversions:
    def test_watts_to_kilowatts(self):
        assert units.watts_to_kilowatts(1500.0) == pytest.approx(1.5)

    def test_kilowatts_to_watts(self):
        assert units.kilowatts_to_watts(2.5) == pytest.approx(2500.0)

    def test_roundtrip(self):
        assert units.kilowatts_to_watts(
            units.watts_to_kilowatts(123.4)
        ) == pytest.approx(123.4)

    def test_zero(self):
        assert units.watts_to_kilowatts(0.0) == 0.0


class TestRateConversions:
    def test_per_kw_month_to_hour_uses_730_hours(self):
        assert units.per_kw_month_to_per_kw_hour(730.0) == pytest.approx(1.0)

    def test_paper_guaranteed_rate_range(self):
        # US$120-250/kW/month -> roughly $0.16-0.34/kW/h.
        low = units.per_kw_month_to_per_kw_hour(120.0)
        high = units.per_kw_month_to_per_kw_hour(250.0)
        assert 0.15 < low < 0.17
        assert 0.33 < high < 0.35

    def test_roundtrip(self):
        rate = 150.0
        assert units.per_kw_hour_to_per_kw_month(
            units.per_kw_month_to_per_kw_hour(rate)
        ) == pytest.approx(rate)

    def test_dollars_per_watt_to_per_kw(self):
        assert units.dollars_per_watt_to_per_kw(0.4) == pytest.approx(400.0)


class TestSlotAndPayments:
    def test_slot_hours(self):
        assert units.slot_hours(3600.0) == pytest.approx(1.0)
        assert units.slot_hours(120.0) == pytest.approx(1.0 / 30.0)

    def test_spot_payment_basic(self):
        # 1000 W at $1/kW/h for one hour costs $1.
        assert units.spot_payment(1000.0, 1.0, 3600.0) == pytest.approx(1.0)

    def test_spot_payment_scales_linearly_in_each_factor(self):
        base = units.spot_payment(500.0, 0.2, 120.0)
        assert units.spot_payment(1000.0, 0.2, 120.0) == pytest.approx(2 * base)
        assert units.spot_payment(500.0, 0.4, 120.0) == pytest.approx(2 * base)
        assert units.spot_payment(500.0, 0.2, 240.0) == pytest.approx(2 * base)

    def test_energy_cost(self):
        # 2 kW for 30 minutes at $0.10/kWh = 1 kWh * 0.10.
        assert units.energy_cost(2000.0, 0.10, 1800.0) == pytest.approx(0.10)


class TestAmortization:
    def test_amortized_capex_recovers_total(self):
        per_hour = units.amortized_capex_per_hour(100.0, amortization_years=1.0)
        total_hours = units.MONTHS_PER_YEAR * units.HOURS_PER_MONTH
        assert per_hour * total_hours == pytest.approx(100.0)

    def test_fifteen_year_default(self):
        per_hour = units.amortized_capex_per_hour(15.0 * 12 * 730.0)
        assert per_hour == pytest.approx(1.0)

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ValueError):
            units.amortized_capex_per_hour(10.0, amortization_years=0.0)

    def test_zero_capex_is_free(self):
        assert units.amortized_capex_per_hour(0.0) == 0.0


class TestConstants:
    def test_month_is_730_hours(self):
        assert units.HOURS_PER_MONTH == 730.0

    def test_year_math_is_consistent(self):
        assert math.isclose(
            units.MONTHS_PER_YEAR * units.HOURS_PER_MONTH, 8760.0
        )
