"""Engine/CLI integration of the telemetry subsystem."""

import pytest

from repro.core.baselines import MaxPerfAllocator, PowerCappedAllocator
from repro.sim.builder import ScenarioBuilder
from repro.sim.engine import SimulationEngine, run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed
from repro.telemetry import (
    PHASES,
    Telemetry,
    TelemetryConfig,
    set_default_config,
)

SLOTS = 8


@pytest.fixture
def result():
    return run_simulation(
        build_testbed(seed=11), slots=SLOTS, telemetry=TelemetryConfig()
    )


class TestEngineTracing:
    def test_every_slot_has_every_phase(self, result):
        trace = result.trace
        assert trace.slots() == list(range(SLOTS))
        for slot in range(SLOTS):
            assert set(trace.phase_spans(slot)) == set(PHASES)

    def test_clear_span_carries_market_attrs(self, result):
        # Slot 1 is the first truly cleared slot (slot 0 has no prior bids).
        clear = result.trace.phase_spans(1)["clear"]
        assert clear.attrs["pricing"] == "per_pdu"
        assert "price" in clear.attrs
        assert "granted_w" in clear.attrs

    def test_slot0_market_phases_are_trivial(self, result):
        phases = result.trace.phase_spans(0)
        assert phases["bid_collect"].attrs["racks_bid"] == 0
        assert phases["clear"].attrs["granted_racks"] == 0

    def test_invoice_events_one_per_tenant(self, result):
        invoices = [
            e for e in result.trace.events if e.name == "settlement.invoice"
        ]
        assert len(invoices) == len(result.tenants)

    def test_metrics_counters_match_run(self):
        tel = Telemetry(TelemetryConfig())
        run_simulation(build_testbed(seed=11), slots=SLOTS, telemetry=tel)
        assert tel.registry.counter("slots_total").value == SLOTS
        assert tel.registry.timer(
            "phase_seconds", {"phase": "clear"}
        ).count == SLOTS

    def test_disabled_run_carries_nothing(self):
        result = run_simulation(build_testbed(seed=11), slots=SLOTS)
        assert result.trace is None
        assert result.telemetry_artifacts == []

    def test_engine_rejects_bad_telemetry_arg(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SimulationEngine(build_testbed(seed=11), telemetry="on")


class TestBaselineAllocators:
    @pytest.mark.parametrize(
        "allocator", [PowerCappedAllocator(), MaxPerfAllocator()]
    )
    def test_baselines_emit_market_phases(self, allocator):
        result = run_simulation(
            build_testbed(seed=11),
            slots=SLOTS,
            allocator=allocator,
            telemetry=TelemetryConfig(),
        )
        for slot in range(SLOTS):
            assert set(result.trace.phase_spans(slot)) == set(PHASES)


class TestConfigPropagation:
    def test_scenario_carries_config(self):
        scenario = build_testbed(seed=11)
        scenario.telemetry = TelemetryConfig()
        result = run_simulation(scenario, slots=SLOTS)
        assert result.trace is not None

    def test_builder_with_telemetry(self):
        scenario = (
            ScenarioBuilder(seed=4)
            .add_pdu("row-a")
            .add_search_tenant("search", 200.0, "row-a")
            .add_other_group("colo", 400.0, "row-a")
            .with_telemetry(TelemetryConfig())
            .build()
        )
        result = run_simulation(scenario, slots=SLOTS)
        assert result.trace is not None

    def test_process_default_reaches_engine(self):
        previous = set_default_config(TelemetryConfig())
        try:
            result = run_simulation(build_testbed(seed=11), slots=SLOTS)
        finally:
            set_default_config(previous)
        assert result.trace is not None

    def test_explicit_argument_wins_over_scenario(self):
        scenario = build_testbed(seed=11)
        scenario.telemetry = TelemetryConfig()
        result = run_simulation(
            scenario, slots=SLOTS, telemetry=TelemetryConfig.disabled()
        )
        assert result.trace is None

    def test_exports_land_in_out_dir(self, tmp_path):
        result = run_simulation(
            build_testbed(seed=11),
            slots=SLOTS,
            telemetry=TelemetryConfig(out_dir=tmp_path),
        )
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "spotdc-001_metrics.prom",
            "spotdc-001_summary.json",
            "spotdc-001_trace.jsonl",
        ]
        assert len(result.telemetry_artifacts) == 3
