"""MetricsCollector unit tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.metrics import MetricsCollector
from repro.workloads.base import SlotPerformance


def perf(slot=0, power=50.0, value=80.0, metric="latency_ms"):
    return SlotPerformance(
        slot=slot,
        power_w=power,
        desired_power_w=power,
        capped=False,
        metric=metric,
        value=value,
        slo_violated=False,
        wanted_spot=False,
    )


@pytest.fixture
def collector():
    return MetricsCollector(
        rack_ids=["r1", "r2"], pdu_ids=["p1"], tenant_ids=["t1", "t2"]
    )


def record(collector, slot=0, price=0.1, grants=None, wanted=frozenset(),
           pdu_prices=None, payments=None):
    grants = grants if grants is not None else {}
    collector.record_slot(
        price=price,
        grants_w=grants,
        spot_revenue=0.01,
        forecast_ups_w=100.0,
        forecast_pdu_total_w=120.0,
        ups_power_w=90.0,
        pdu_power_w={"p1": 90.0},
        rack_outcomes={"r1": perf(slot), "r2": perf(slot, value=30.0)},
        payments=payments or {},
        wanted_rack_ids=wanted,
        pdu_prices=pdu_prices,
    )


class TestRecording:
    def test_slot_count(self, collector):
        record(collector)
        record(collector, slot=1)
        assert collector.slots == 2

    def test_missing_rack_outcome_rejected(self, collector):
        with pytest.raises(SimulationError):
            collector.record_slot(
                price=0.1, grants_w={}, spot_revenue=0.0,
                forecast_ups_w=0.0, forecast_pdu_total_w=0.0,
                ups_power_w=0.0, pdu_power_w={},
                rack_outcomes={"r1": perf()}, payments={},
            )

    def test_empty_constructor_rejected(self):
        with pytest.raises(SimulationError):
            MetricsCollector([], ["p"], ["t"])

    def test_grants_default_zero(self, collector):
        record(collector, grants={"r1": 12.0})
        assert collector.rack_granted_array("r1")[0] == 12.0
        assert collector.rack_granted_array("r2")[0] == 0.0

    def test_wanted_mask_from_set(self, collector):
        record(collector, wanted=frozenset({"r2"}))
        assert not collector.rack_wanted_array("r1")[0]
        assert collector.rack_wanted_array("r2")[0]

    def test_payments_default_zero(self, collector):
        record(collector, payments={"t1": 0.5})
        assert collector.tenant_payment_array("t1")[0] == 0.5
        assert collector.tenant_payment_array("t2")[0] == 0.0


class TestPduPrices:
    def test_defaults_to_headline_price(self, collector):
        record(collector, price=0.17)
        assert collector.pdu_price_array("p1")[0] == pytest.approx(0.17)

    def test_locational_price_recorded(self, collector):
        record(collector, price=0.17, pdu_prices={"p1": 0.09})
        assert collector.pdu_price_array("p1")[0] == pytest.approx(0.09)
        assert collector.price_array()[0] == pytest.approx(0.17)


class TestArrays:
    def test_series_align(self, collector):
        for slot in range(5):
            record(collector, slot=slot)
        assert collector.price_array().shape == (5,)
        assert collector.ups_power_array().shape == (5,)
        assert collector.rack_perf_array("r2").shape == (5,)
        assert np.all(collector.rack_perf_array("r2") == 30.0)

    def test_forecast_arrays(self, collector):
        record(collector)
        assert collector.forecast_ups_array()[0] == 100.0
        assert collector.forecast_pdu_total_array()[0] == 120.0
