"""PDU/UPS models and the validated power topology."""

import pytest

from repro.errors import TopologyError
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.topology import PowerTopology
from repro.infrastructure.ups import Ups


def build_topology():
    ups = Ups("ups", 1370.0)
    pdus = [Pdu("p1", 715.0), Pdu("p2", 724.0)]
    racks = [
        Rack("r1", "tenantA", "p1", 145.0, 210.0),
        Rack("r2", "tenantA", "p2", 125.0, 180.0),
        Rack("r3", "tenantB", "p1", 250.0, 250.0),
    ]
    return PowerTopology.build(ups, pdus, racks)


class TestPdu:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(TopologyError):
            Pdu("p", 0.0)

    def test_headroom(self):
        pdu = Pdu("p", 700.0)
        assert pdu.headroom_w(500.0) == pytest.approx(200.0)
        assert pdu.headroom_w(800.0) == 0.0

    def test_utilization_can_exceed_one(self):
        pdu = Pdu("p", 700.0)
        assert pdu.utilization(770.0) == pytest.approx(1.1)

    def test_duplicate_rack_attachment_rejected(self):
        pdu = Pdu("p", 700.0)
        pdu.attach_rack("r1")
        with pytest.raises(TopologyError):
            pdu.attach_rack("r1")


class TestUps:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(TopologyError):
            Ups("u", -1.0)

    def test_headroom_clamps_at_zero(self):
        ups = Ups("u", 1000.0)
        assert ups.headroom_w(1100.0) == 0.0
        assert ups.headroom_w(900.0) == pytest.approx(100.0)


class TestTopologyConstruction:
    def test_build_validates(self):
        topology = build_topology()
        assert len(topology.pdus) == 2
        assert len(topology.racks) == 3

    def test_duplicate_pdu_rejected(self):
        topology = PowerTopology(Ups("u", 100.0))
        topology.add_pdu(Pdu("p1", 50.0))
        with pytest.raises(TopologyError):
            topology.add_pdu(Pdu("p1", 60.0))

    def test_duplicate_rack_rejected(self):
        topology = PowerTopology(Ups("u", 100.0))
        topology.add_pdu(Pdu("p1", 50.0))
        topology.add_rack(Rack("r1", "t", "p1", 10.0, 20.0))
        with pytest.raises(TopologyError):
            topology.add_rack(Rack("r1", "t", "p1", 10.0, 20.0))

    def test_rack_with_unknown_pdu_rejected(self):
        topology = PowerTopology(Ups("u", 100.0))
        topology.add_pdu(Pdu("p1", 50.0))
        with pytest.raises(TopologyError):
            topology.add_rack(Rack("r1", "t", "nope", 10.0, 20.0))

    def test_empty_topology_invalid(self):
        topology = PowerTopology(Ups("u", 100.0))
        with pytest.raises(TopologyError):
            topology.validate()


class TestTopologyLookups:
    def test_racks_of_pdu(self):
        topology = build_topology()
        ids = [r.rack_id for r in topology.racks_of_pdu("p1")]
        assert ids == ["r1", "r3"]

    def test_racks_of_tenant_spans_pdus(self):
        topology = build_topology()
        ids = [r.rack_id for r in topology.racks_of_tenant("tenantA")]
        assert ids == ["r1", "r2"]

    def test_tenant_ids_in_first_seen_order(self):
        assert build_topology().tenant_ids() == ["tenantA", "tenantB"]

    def test_unknown_lookups_raise(self):
        topology = build_topology()
        with pytest.raises(TopologyError):
            topology.pdu("nope")
        with pytest.raises(TopologyError):
            topology.rack("nope")


class TestTopologyPower:
    def test_pdu_power_sums_racks(self):
        topology = build_topology()
        topology.rack("r1").record_power(100.0)
        topology.rack("r3").record_power(200.0)
        assert topology.pdu_power_w("p1") == pytest.approx(300.0)
        assert topology.pdu_power_w("p2") == 0.0

    def test_ups_power_sums_everything(self):
        topology = build_topology()
        for rid, watts in (("r1", 10.0), ("r2", 20.0), ("r3", 30.0)):
            topology.rack(rid).record_power(watts)
        assert topology.ups_power_w() == pytest.approx(60.0)

    def test_total_guaranteed(self):
        assert build_topology().total_guaranteed_w() == pytest.approx(520.0)

    def test_clear_all_spot_budgets(self):
        topology = build_topology()
        topology.rack("r1").set_spot_budget(10.0)
        topology.clear_all_spot_budgets()
        assert topology.rack("r1").spot_budget_w == 0.0
