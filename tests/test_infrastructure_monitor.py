"""Power monitoring and PDU variation statistics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.infrastructure.monitor import PowerMonitor
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.topology import PowerTopology
from repro.infrastructure.ups import Ups


@pytest.fixture
def topology():
    return PowerTopology.build(
        Ups("u", 1000.0),
        [Pdu("p1", 500.0), Pdu("p2", 500.0)],
        [
            Rack("r1", "t1", "p1", 100.0, 150.0),
            Rack("r2", "t2", "p1", 100.0, 150.0),
            Rack("r3", "t3", "p2", 100.0, 150.0),
        ],
    )


def full_sample(a=10.0, b=20.0, c=30.0):
    return {"r1": a, "r2": b, "r3": c}


class TestRecording:
    def test_records_and_aggregates(self, topology):
        monitor = PowerMonitor(topology)
        monitor.record_slot(full_sample())
        assert monitor.slots_recorded == 1
        assert monitor.latest_pdu_power_w("p1") == pytest.approx(30.0)
        assert monitor.latest_ups_power_w() == pytest.approx(60.0)

    def test_updates_rack_state(self, topology):
        monitor = PowerMonitor(topology)
        monitor.record_slot(full_sample())
        assert topology.rack("r2").power_w == pytest.approx(20.0)

    def test_missing_rack_rejected(self, topology):
        monitor = PowerMonitor(topology)
        with pytest.raises(SimulationError):
            monitor.record_slot({"r1": 10.0})

    def test_unknown_rack_rejected(self, topology):
        monitor = PowerMonitor(topology)
        sample = full_sample()
        sample["ghost"] = 5.0
        with pytest.raises(SimulationError):
            monitor.record_slot(sample)

    def test_series_order(self, topology):
        monitor = PowerMonitor(topology)
        monitor.record_slot(full_sample(a=1.0))
        monitor.record_slot(full_sample(a=2.0))
        assert np.array_equal(monitor.rack_series("r1"), [1.0, 2.0])

    def test_history_bounded(self, topology):
        monitor = PowerMonitor(topology, history_slots=2)
        for i in range(5):
            monitor.record_slot(full_sample(a=float(i)))
        assert monitor.slots_recorded == 5
        assert np.array_equal(monitor.rack_series("r1"), [3.0, 4.0])

    def test_empty_latest_is_zero(self, topology):
        monitor = PowerMonitor(topology)
        assert monitor.latest_ups_power_w() == 0.0
        assert monitor.latest_pdu_power_w("p1") == 0.0


class TestRecentMax:
    def test_window(self, topology):
        monitor = PowerMonitor(topology)
        for value in (5.0, 50.0, 10.0):
            monitor.record_slot(full_sample(a=value))
        assert monitor.rack_recent_max_w("r1", window=2) == pytest.approx(50.0)
        assert monitor.rack_recent_max_w("r1", window=1) == pytest.approx(10.0)

    def test_before_any_sample(self, topology):
        assert PowerMonitor(topology).rack_recent_max_w("r1") == 0.0

    def test_rejects_bad_window(self, topology):
        with pytest.raises(SimulationError):
            PowerMonitor(topology).rack_recent_max_w("r1", window=0)


class TestVariationStats:
    def test_variation_of_constant_series_is_zero(self, topology):
        monitor = PowerMonitor(topology)
        for _ in range(10):
            monitor.record_slot(full_sample())
        assert monitor.pdu_variation_quantile("p1", 0.99) == 0.0

    def test_variation_detects_step(self, topology):
        monitor = PowerMonitor(topology)
        monitor.record_slot(full_sample(a=100.0, b=100.0))
        monitor.record_slot(full_sample(a=110.0, b=100.0))
        rel = monitor.pdu_slot_variation("p1")
        assert rel.shape == (1,)
        assert rel[0] == pytest.approx(10.0 / 200.0)

    def test_variation_needs_two_slots(self, topology):
        monitor = PowerMonitor(topology)
        monitor.record_slot(full_sample())
        assert monitor.pdu_slot_variation("p1").size == 0

    def test_rejects_nonpositive_history(self, topology):
        with pytest.raises(SimulationError):
            PowerMonitor(topology, history_slots=0)
