"""Extension experiment: equilibrium study runner."""

import pytest

from repro.experiments.ext_equilibrium import (
    render_equilibrium_study,
    run_equilibrium_study,
)


@pytest.fixture(scope="module")
def study():
    return run_equilibrium_study(supply_w=120.0, max_rounds=15)


class TestEquilibriumStudy:
    def test_converges(self, study):
        assert study.converged
        assert 1 <= study.rounds <= 15

    def test_strategic_play_benefits_tenants(self, study):
        assert study.equilibrium_surplus >= study.guideline_surplus - 1e-9

    def test_market_does_not_unravel(self, study):
        assert study.equilibrium_sold_w > 0.3 * study.guideline_sold_w

    def test_strategies_cover_all_bidders(self, study):
        assert set(study.strategies) == {
            "sprint-1", "sprint-2", "batch-1", "batch-2", "batch-3",
        }

    def test_render(self, study):
        text = render_equilibrium_study(study)
        assert "equilibrium" in text
        assert "converged" in text

    def test_seed_changes_jitter_not_structure(self):
        a = run_equilibrium_study(seed=1, max_rounds=15)
        b = run_equilibrium_study(seed=2, max_rounds=15)
        assert a.converged and b.converged
        # Different jitter, same qualitative outcome: tenants never lose.
        for study in (a, b):
            assert study.equilibrium_surplus >= study.guideline_surplus - 1e-9
