"""Rack model and intelligent rack-PDU budgets."""

import pytest

from repro.errors import CapacityError, TopologyError
from repro.infrastructure.rack import Rack


def make_rack(**overrides):
    kwargs = dict(
        rack_id="r1", tenant_id="t1", pdu_id="p1",
        guaranteed_w=100.0, physical_w=150.0,
    )
    kwargs.update(overrides)
    return Rack(**kwargs)


class TestConstruction:
    def test_max_spot_is_physical_minus_guaranteed(self):
        assert make_rack().max_spot_w == pytest.approx(50.0)

    def test_rejects_empty_id(self):
        with pytest.raises(TopologyError):
            make_rack(rack_id="")

    def test_rejects_negative_guaranteed(self):
        with pytest.raises(TopologyError):
            make_rack(guaranteed_w=-1.0)

    def test_rejects_physical_below_guaranteed(self):
        with pytest.raises(TopologyError):
            make_rack(physical_w=99.0)

    def test_physical_equal_guaranteed_means_no_headroom(self):
        rack = make_rack(physical_w=100.0)
        assert rack.max_spot_w == 0.0


class TestSpotBudget:
    def test_initial_budget_is_guaranteed(self):
        assert make_rack().budget_w == pytest.approx(100.0)

    def test_grant_raises_budget(self):
        rack = make_rack()
        rack.set_spot_budget(30.0)
        assert rack.spot_budget_w == pytest.approx(30.0)
        assert rack.budget_w == pytest.approx(130.0)

    def test_grant_at_exact_headroom_allowed(self):
        rack = make_rack()
        rack.set_spot_budget(50.0)
        assert rack.budget_w == pytest.approx(150.0)

    def test_grant_with_float_roundoff_tolerated(self):
        rack = make_rack()
        rack.set_spot_budget(50.0 + 5e-10)
        assert rack.spot_budget_w == pytest.approx(50.0)

    def test_grant_above_headroom_rejected(self):
        with pytest.raises(CapacityError):
            make_rack().set_spot_budget(51.0)

    def test_negative_grant_rejected(self):
        with pytest.raises(CapacityError):
            make_rack().set_spot_budget(-1.0)

    def test_clear_revokes(self):
        rack = make_rack()
        rack.set_spot_budget(20.0)
        rack.clear_spot_budget()
        assert rack.spot_budget_w == 0.0
        assert rack.budget_w == pytest.approx(100.0)


class TestPowerRecording:
    def test_record_and_read(self):
        rack = make_rack()
        rack.record_power(80.0)
        assert rack.power_w == pytest.approx(80.0)

    def test_negative_power_rejected(self):
        with pytest.raises(CapacityError):
            make_rack().record_power(-5.0)

    def test_over_budget_detection(self):
        rack = make_rack()
        rack.record_power(120.0)
        assert rack.over_budget_w() == pytest.approx(20.0)

    def test_over_budget_zero_when_within(self):
        rack = make_rack()
        rack.record_power(90.0)
        assert rack.over_budget_w() == 0.0

    def test_over_budget_respects_spot_grant(self):
        rack = make_rack()
        rack.set_spot_budget(30.0)
        rack.record_power(125.0)
        assert rack.over_budget_w() == 0.0
