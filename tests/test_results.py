"""Result summaries: costs, performance ratios, spot-usage metrics."""

import numpy as np
import pytest

from repro.core.baselines import PowerCappedAllocator
from repro.errors import SimulationError
from repro.sim.engine import run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed

SLOTS = 400


@pytest.fixture(scope="module")
def results():
    spotdc = run_simulation(build_testbed(seed=77), SLOTS)
    capped = run_simulation(
        build_testbed(seed=77), SLOTS, allocator=PowerCappedAllocator()
    )
    return spotdc, capped


class TestCosts:
    def test_total_cost_components(self, results):
        spotdc, _ = results
        for tenant_id in spotdc.participating_tenant_ids():
            total = spotdc.tenant_total_cost(tenant_id)
            parts = (
                spotdc.tenant_subscription_cost(tenant_id)
                + spotdc.tenant_energy_cost(tenant_id)
                + spotdc.tenant_spot_payment(tenant_id)
            )
            assert total == pytest.approx(parts)

    def test_subscription_cost_dominates(self, results):
        spotdc, _ = results
        for tenant_id in spotdc.participating_tenant_ids():
            assert spotdc.tenant_subscription_cost(
                tenant_id
            ) > spotdc.tenant_spot_payment(tenant_id)

    def test_baseline_pays_no_spot(self, results):
        _, capped = results
        for tenant_id in capped.participating_tenant_ids():
            assert capped.tenant_spot_payment(tenant_id) == 0.0

    def test_cost_increase_is_marginal(self, results):
        spotdc, capped = results
        for tenant_id in spotdc.participating_tenant_ids():
            increase = spotdc.tenant_cost_increase_vs(capped, tenant_id)
            assert 0.0 <= increase < 0.10

    def test_unknown_tenant_rejected(self, results):
        spotdc, _ = results
        with pytest.raises(SimulationError):
            spotdc.tenant_total_cost("ghost")


class TestPerformance:
    def test_improvement_at_least_one(self, results):
        spotdc, capped = results
        for tenant_id in spotdc.participating_tenant_ids():
            ratio = spotdc.tenant_performance_improvement_vs(capped, tenant_id)
            assert ratio >= 0.99

    def test_self_comparison_is_unity(self, results):
        spotdc, _ = results
        for tenant_id in spotdc.participating_tenant_ids():
            assert spotdc.tenant_performance_improvement_vs(
                spotdc, tenant_id
            ) == pytest.approx(1.0)

    def test_latency_score_is_inverse_latency(self, results):
        spotdc, _ = results
        rack_id = "rack:Search-1"
        mask = np.ones(SLOTS, dtype=bool)
        score = spotdc.rack_performance_score(rack_id, mask)
        latencies = spotdc.collector.rack_perf_array(rack_id)
        assert score == pytest.approx(float(np.mean(1.0 / latencies)))

    def test_throughput_score_is_mean_rate(self, results):
        spotdc, _ = results
        rack_id = "rack:Count-1"
        mask = np.ones(SLOTS, dtype=bool)
        score = spotdc.rack_performance_score(rack_id, mask)
        rates = spotdc.collector.rack_perf_array(rack_id)
        assert score == pytest.approx(float(np.mean(rates)))

    def test_empty_mask_is_nan(self, results):
        spotdc, _ = results
        mask = np.zeros(SLOTS, dtype=bool)
        assert np.isnan(spotdc.rack_performance_score("rack:Web", mask))

    def test_bad_mask_length_rejected(self, results):
        spotdc, _ = results
        with pytest.raises(SimulationError):
            spotdc.rack_performance_score(
                "rack:Web", np.ones(SLOTS + 1, dtype=bool)
            )

    def test_slo_violation_rate_lower_with_spot(self, results):
        spotdc, capped = results
        for tenant_id in ("Search-1", "Web", "Search-2"):
            assert spotdc.tenant_slo_violation_rate(
                tenant_id
            ) <= capped.tenant_slo_violation_rate(tenant_id) + 1e-9


class TestSpotUsage:
    def test_usage_fractions_bounded(self, results):
        spotdc, _ = results
        for tenant_id in spotdc.participating_tenant_ids():
            use_max, use_mean = spotdc.tenant_spot_usage_fraction(tenant_id)
            assert 0.0 <= use_mean <= use_max <= 0.6

    def test_average_spot_fraction_in_plausible_band(self, results):
        spotdc, _ = results
        assert 0.0 < spotdc.average_spot_fraction() < 0.4

    def test_participating_ids(self, results):
        spotdc, _ = results
        ids = spotdc.participating_tenant_ids()
        assert len(ids) == 8
        assert "Other-1" not in ids


class TestFacilityCapacities:
    def test_result_carries_capacities(self, results):
        spotdc, _ = results
        assert spotdc.ups_capacity_w == pytest.approx(1370.0, abs=1.0)
        assert set(spotdc.pdu_capacities_w) == {"pdu:0", "pdu:1"}

    def test_ups_utilization_normalised(self, results):
        spotdc, _ = results
        utilization = spotdc.ups_utilization_series()
        raw = spotdc.ups_power_series()
        assert np.allclose(utilization * spotdc.ups_capacity_w, raw)
        assert 0.5 < utilization.mean() < 1.0

    def test_utilization_requires_capacity(self, results):
        spotdc, _ = results
        import copy

        stripped = copy.copy(spotdc)
        stripped.ups_capacity_w = 0.0
        with pytest.raises(SimulationError):
            stripped.ups_utilization_series()
