"""Power-performance profiling (Fig. 8 machinery)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.power.latency import LatencyModel
from repro.power.profiles import PowerPerformanceProfile, ProfileCurve
from repro.power.server import ServerPowerModel
from repro.power.throughput import ThroughputModel


@pytest.fixture
def latency_model():
    return LatencyModel(
        power_model=ServerPowerModel(60.0, 180.0), mu_max_rps=120.0
    )


@pytest.fixture
def throughput_model():
    return ThroughputModel(
        power_model=ServerPowerModel(60.0, 180.0), rate_max=50.0
    )


class TestLatencyProfile:
    def test_curve_count_and_order(self, latency_model):
        profile = PowerPerformanceProfile.profile_latency(
            latency_model, [90.0, 30.0, 60.0]
        )
        assert [c.intensity for c in profile.curves] == [30.0, 60.0, 90.0]

    def test_monotone_decreasing_in_power(self, latency_model):
        profile = PowerPerformanceProfile.profile_latency(latency_model, [60.0])
        assert profile.is_monotone()

    def test_higher_load_higher_latency(self, latency_model):
        profile = PowerPerformanceProfile.profile_latency(
            latency_model, [30.0, 90.0]
        )
        low, high = profile.curves
        assert high.performance_at(170.0) > low.performance_at(170.0)

    def test_performance_at_interpolates(self, latency_model):
        profile = PowerPerformanceProfile.profile_latency(
            latency_model, [60.0], samples=10
        )
        curve = profile.curves[0]
        mid = 0.5 * (curve.power_w[3] + curve.power_w[4])
        value = curve.performance_at(mid)
        assert (
            min(curve.performance[3], curve.performance[4])
            <= value
            <= max(curve.performance[3], curve.performance[4])
        )

    def test_curve_for_picks_nearest(self, latency_model):
        profile = PowerPerformanceProfile.profile_latency(
            latency_model, [30.0, 90.0]
        )
        assert profile.curve_for(40.0).intensity == 30.0
        assert profile.curve_for(75.0).intensity == 90.0


class TestThroughputProfile:
    def test_monotone_increasing_in_power(self, throughput_model):
        profile = PowerPerformanceProfile.profile_throughput(throughput_model)
        assert profile.is_monotone()
        curve = profile.curves[0]
        assert curve.performance[-1] > curve.performance[0]

    def test_metric_label(self, throughput_model):
        profile = PowerPerformanceProfile.profile_throughput(throughput_model)
        assert profile.metric == "throughput"


class TestValidation:
    def test_empty_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerPerformanceProfile([])

    def test_mixed_metrics_rejected(self):
        grid = np.array([1.0, 2.0])
        a = ProfileCurve(1.0, grid, np.array([1.0, 2.0]), "latency_ms")
        b = ProfileCurve(1.0, grid, np.array([1.0, 2.0]), "throughput")
        with pytest.raises(ConfigurationError):
            PowerPerformanceProfile([a, b])

    def test_is_monotone_catches_violation(self):
        grid = np.array([1.0, 2.0, 3.0])
        bad = ProfileCurve(
            1.0, grid, np.array([10.0, 12.0, 11.0]), "latency_ms"
        )
        assert not PowerPerformanceProfile([bad]).is_monotone()
