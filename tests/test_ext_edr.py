"""The ext_edr grid-event survivability study (headline acceptance).

Pins the issue's acceptance criteria end to end: every named shock
schedule absorbs without additional overloads, EDR compliance lands
within budget, credits balance, the event-coupled market out-earns the
static-price PowerCapped baseline, and a crash *inside* an event window
resumes byte-identically.
"""

import pytest

from repro.errors import SimulationError
from repro.events import EdrShock, EventProfile
from repro.experiments.ext_edr import (
    DEFAULT_SLOTS,
    render_edr_study,
    run_edr_cell,
    run_edr_recovery_check,
    run_edr_shock_check,
    run_edr_study,
    shock_schedules,
)
from repro.sim.scenario import DEFAULT_SEED

STUDY_SLOTS = 160


class TestShockSchedules:
    def test_named_schedules_scale_to_horizon(self):
        schedules = shock_schedules(STUDY_SLOTS)
        assert set(schedules) == {"single_edr", "cascade", "storm"}
        for name, profile in schedules.items():
            assert profile.schedule, name
            last = max(e.end_slot for e in profile.schedule)
            assert last <= STUDY_SLOTS, name

    def test_short_horizon_still_contains_full_windows(self):
        for profile in shock_schedules(60).values():
            for event in profile.schedule:
                assert event.slot >= 1
                assert event.end_slot <= 60


class TestEdrCell:
    def test_single_edr_cell_passes_all_invariants(self):
        cell = run_edr_cell("single_edr", seed=DEFAULT_SEED, slots=120)
        assert cell.events == 1
        assert cell.event_slots > 0
        assert cell.overloads_ok
        assert cell.compliance_ok
        assert cell.credit_match
        assert cell.profit_edge > 0
        assert cell.ok

    def test_shock_check_is_the_resilience_leg(self):
        cell = run_edr_shock_check(seed=DEFAULT_SEED, slots=100)
        assert cell.name == "single_edr"
        assert cell.overloads_ok and cell.compliance_ok

    def test_unabsorbable_shock_is_flagged_not_hidden(self):
        # A 30% UPS cut cannot be absorbed on the testbed: guaranteed
        # load alone exceeds the shocked capacity.  The cell must report
        # the compliance violation rather than declare success.
        deep = EventProfile(
            schedule=(EdrShock(slot=10, duration_slots=20, fraction=0.3),)
        )
        cell = run_edr_cell("deep", profile=deep, seed=DEFAULT_SEED, slots=60)
        assert not cell.ok
        assert cell.compliance_violations >= 1


class TestEdrStudy:
    def test_strict_study_passes_at_headline_settings(self):
        study = run_edr_study(
            seed=DEFAULT_SEED, slots=STUDY_SLOTS, strict=True
        )
        assert study.violations() == []
        assert {c.name for c in study.cells} == {
            "single_edr",
            "cascade",
            "storm",
        }
        for cell in study.cells:
            assert cell.ok, cell.name
            assert cell.profit_edge > 0, cell.name
        assert study.recovery is not None
        assert study.recovery.ok
        assert study.recovery.trace_identical
        assert study.recovery.result_identical
        assert study.recovery.events_report_equal

    def test_render_mentions_the_verdict_and_recovery(self):
        study = run_edr_study(
            seed=DEFAULT_SEED, slots=STUDY_SLOTS, strict=False
        )
        text = render_edr_study(study)
        assert "Grid-event survivability" in text
        assert "invariants hold in every cell" in text
        assert "mid-event crash/resume" in text
        assert "byte-identical replay: True" in text

    def test_strict_study_raises_on_violation(self):
        # Patch in an unabsorbable schedule; strict mode must raise.
        import repro.experiments.ext_edr as ext_edr

        deep = EventProfile(
            schedule=(EdrShock(slot=10, duration_slots=20, fraction=0.3),)
        )
        original = ext_edr.shock_schedules
        ext_edr.shock_schedules = lambda slots: {"deep": deep}
        try:
            with pytest.raises(SimulationError, match="deep"):
                run_edr_study(
                    seed=DEFAULT_SEED,
                    slots=60,
                    strict=True,
                    with_recovery=False,
                )
        finally:
            ext_edr.shock_schedules = original


class TestMidEventRecovery:
    @pytest.mark.recovery
    def test_crash_inside_the_window_replays_byte_identically(self):
        cell = run_edr_recovery_check(
            seed=DEFAULT_SEED, slots=100, checkpoint_every=7
        )
        assert cell.trace_identical
        assert cell.result_identical
        assert cell.events_report_equal
        assert cell.resumed_slot <= cell.crash_slot


class TestCliRegistry:
    def test_edr_registered_with_its_own_default_slots(self):
        from repro.cli import EXPERIMENT_REGISTRY

        assert "edr" in EXPERIMENT_REGISTRY
        assert DEFAULT_SLOTS == 400
