"""Composite tenants: both opportunistic and sprinting (paper §II-C)."""

import pytest

from repro.config import make_rng
from repro.errors import ConfigurationError
from repro.sim.scenario import testbed_scenario as build_testbed
from repro.tenants.composite import CompositeTenant

SLOTS = 500


def parts_from_testbed(seed=8):
    scenario = build_testbed(seed=seed)
    by_id = {t.tenant_id: t for t in scenario.tenants}
    return by_id["Search-1"], by_id["Count-1"], by_id["Other-1"]


@pytest.fixture
def composite():
    search, count, _ = parts_from_testbed()
    tenant = CompositeTenant("MegaCorp", [search, count])
    tenant.prepare(SLOTS, make_rng(3))
    return tenant


class TestConstruction:
    def test_owns_all_racks(self, composite):
        assert {r.rack_id for r in composite.racks} == {
            "rack:Search-1", "rack:Count-1",
        }

    def test_mixed_kind_reports_sprinting(self, composite):
        assert composite.kind == "sprinting"

    def test_pure_kind_preserved(self):
        search, count, _ = parts_from_testbed()
        assert CompositeTenant("s", [search]).kind == "sprinting"
        search2, count2, _ = parts_from_testbed(seed=9)
        assert CompositeTenant("o", [count2]).kind == "opportunistic"

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CompositeTenant("x", [])

    def test_rejects_non_participants(self):
        _, _, other = parts_from_testbed()
        with pytest.raises(ConfigurationError):
            CompositeTenant("x", [other])


class TestBehaviour:
    def test_needs_union_of_parts(self, composite):
        search, count = composite.parts
        for slot in range(SLOTS):
            combined = composite.needed_spot_w(slot)
            expected = {**search.needed_spot_w(slot), **count.needed_spot_w(slot)}
            assert combined == expected
            if len(combined) >= 2:
                return
        pytest.skip("parts never overlapped in this window")

    def test_bid_reattributes_tenant_id(self, composite):
        for slot in range(SLOTS):
            bid = composite.make_bid(slot)
            if bid is not None:
                assert bid.tenant_id == "MegaCorp"
                assert all(
                    rb.tenant_id == "MegaCorp" for rb in bid.rack_bids
                )
                return
        pytest.fail("composite never bid")

    def test_bid_bundles_both_classes_when_both_need(self, composite):
        for slot in range(SLOTS):
            needed = composite.needed_spot_w(slot)
            if {"rack:Search-1", "rack:Count-1"} <= set(needed):
                bid = composite.make_bid(slot)
                if bid is not None and len(bid.rack_bids) == 2:
                    return
        pytest.skip("no slot with both parts bidding")

    def test_execute_covers_all_racks(self, composite):
        outcomes = composite.execute_slot(0, {}, 120.0)
        assert set(outcomes) == {"rack:Search-1", "rack:Count-1"}
        metrics = {perf.metric for perf in outcomes.values()}
        assert metrics == {"latency_ms", "throughput"}

    def test_value_curves_union(self, composite):
        # Batch curves exist immediately; sprinting curves on demand.
        curves = composite.value_curves(0)
        assert "rack:Count-1" in curves

    def test_prepare_gives_parts_independent_streams(self):
        a_search, a_count, _ = parts_from_testbed()
        composite = CompositeTenant("m", [a_search, a_count])
        composite.prepare(50, make_rng(3))
        search_rate = a_search.racks[0].workload.intensity(5)
        count_rate = a_count.racks[0].workload.intensity(5)
        assert search_rate != count_rate


class TestCompositeInSimulation:
    def test_composite_runs_in_engine(self):
        from repro.sim.engine import run_simulation

        scenario = build_testbed(seed=12)
        by_id = {t.tenant_id: t for t in scenario.tenants}
        merged = CompositeTenant(
            "MegaCorp", [by_id["Search-1"], by_id["Count-1"]]
        )
        scenario.tenants = [
            t
            for t in scenario.tenants
            if t.tenant_id not in ("Search-1", "Count-1")
        ] + [merged]
        result = run_simulation(scenario, 600)
        # The composite is billed as one tenant across both rack classes.
        assert "MegaCorp" in result.tenants
        assert set(result.tenants["MegaCorp"].rack_ids) == {
            "rack:Search-1", "rack:Count-1",
        }
        granted = sum(
            result.collector.rack_granted_array(r).sum()
            for r in result.tenants["MegaCorp"].rack_ids
        )
        assert granted > 0
        assert result.tenant_spot_payment("MegaCorp") > 0

    def test_composite_books_balance(self):
        from repro.economics.settlement import reconcile
        from repro.sim.engine import run_simulation

        scenario = build_testbed(seed=12)
        by_id = {t.tenant_id: t for t in scenario.tenants}
        merged = CompositeTenant(
            "MegaCorp", [by_id["Search-2"], by_id["Sort"]]
        )
        scenario.tenants = [
            t
            for t in scenario.tenants
            if t.tenant_id not in ("Search-2", "Sort")
        ] + [merged]
        result = run_simulation(scenario, 400)
        reconcile(result)
