"""Time-series diagnostics (analysis.timeseries)."""

import numpy as np
import pytest

from repro.analysis.timeseries import (
    autocorrelation,
    decompose_diurnal,
    dominant_period,
    duty_cycle,
    slot_variation_quantile,
)
from repro.config import make_rng
from repro.errors import ConfigurationError
from repro.workloads.traces import ColoPowerTrace


class TestAutocorrelation:
    def test_periodic_signal(self):
        t = np.arange(400)
        x = np.sin(2 * np.pi * t / 100)
        assert autocorrelation(x, 100) == pytest.approx(1.0, abs=0.02)
        assert autocorrelation(x, 50) == pytest.approx(-1.0, abs=0.02)

    def test_white_noise_near_zero(self):
        x = make_rng(0).normal(size=5000)
        assert abs(autocorrelation(x, 10)) < 0.05

    def test_constant_series(self):
        assert autocorrelation([5.0] * 10, 3) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            autocorrelation([1.0], 1)
        with pytest.raises(ConfigurationError):
            autocorrelation([1.0, 2.0, 3.0], 0)
        with pytest.raises(ConfigurationError):
            autocorrelation([1.0, np.nan, 2.0], 1)


class TestDominantPeriod:
    def test_finds_sine_period(self):
        t = np.arange(1000)
        x = np.sin(2 * np.pi * t / 125) + 0.05 * make_rng(1).normal(size=1000)
        assert dominant_period(x) == pytest.approx(125, abs=2)

    def test_finds_colo_trace_day(self):
        trace = ColoPowerTrace(
            subscription_w=100.0, slots_per_day=200.0, noise_sigma=0.0
        )
        power = trace.generate(1200, make_rng(2))
        assert dominant_period(power, min_period=50) == pytest.approx(
            200, abs=5
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dominant_period([1.0, 2.0, 3.0])
        with pytest.raises(ConfigurationError):
            dominant_period(np.arange(100.0), min_period=60, max_period=50)


class TestDutyCycle:
    def test_basic(self):
        assert duty_cycle([1, 3, 5, 7], 4) == pytest.approx(0.5)

    def test_strict_inequality(self):
        assert duty_cycle([4.0, 4.0], 4.0) == 0.0

    def test_matches_scenario_calibration(self):
        # The search workload's duty cycle against its subscription must
        # sit near the paper's ~15% (the scenario calibration target).
        from repro.power.server import ServerPowerModel
        from repro.workloads.search import make_search_workload

        power = ServerPowerModel(0.45 * 145, 1.25 * 145)
        workload = make_search_workload("s", power, slots_per_day=720)
        workload.prepare(5000, make_rng(3))
        desired = np.array(
            [workload.desired_power_w(s) for s in range(5000)]
        )
        assert 0.08 < duty_cycle(desired, 145.0) < 0.25


class TestDiurnalDecomposition:
    def test_pure_periodic_fully_explained(self):
        t = np.arange(600)
        x = 10 + np.sin(2 * np.pi * t / 100)
        decomposition = decompose_diurnal(x, 100)
        assert decomposition.seasonal_strength > 0.99
        assert decomposition.profile.shape == (100,)
        assert np.allclose(decomposition.residual, 0.0, atol=1e-9)

    def test_noise_unexplained(self):
        x = make_rng(4).normal(size=1000)
        decomposition = decompose_diurnal(x, 100)
        assert decomposition.seasonal_strength < 0.25

    def test_residual_reconstructs(self):
        x = make_rng(5).normal(10, 1, size=500)
        decomposition = decompose_diurnal(x, 50)
        indices = np.arange(500) % 50
        reconstructed = decomposition.profile[indices] + decomposition.residual
        assert np.allclose(reconstructed, x)

    def test_colo_trace_is_strongly_diurnal(self):
        trace = ColoPowerTrace(
            subscription_w=100.0, slots_per_day=144.0, noise_sigma=0.005
        )
        power = trace.generate(144 * 10, make_rng(6))
        decomposition = decompose_diurnal(power, 144)
        assert decomposition.seasonal_strength > 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            decompose_diurnal([1.0, 2.0], 3)
        with pytest.raises(ConfigurationError):
            decompose_diurnal([1.0, 2.0, 3.0], 1)


class TestSlotVariation:
    def test_constant_series_zero(self):
        assert slot_variation_quantile([10.0] * 20) == 0.0

    def test_step_detected(self):
        series = [100.0] * 10 + [110.0] * 10
        assert slot_variation_quantile(series, 1.0) == pytest.approx(0.1)

    def test_requires_positive(self):
        with pytest.raises(ConfigurationError):
            slot_variation_quantile([0.0, 1.0])

    def test_colo_trace_satisfies_paper_bound(self):
        trace = ColoPowerTrace(subscription_w=250.0)
        power = trace.generate(10_000, make_rng(7))
        assert slot_variation_quantile(power, 0.99) < 0.025
