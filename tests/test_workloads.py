"""Workload behaviour: interactive, batch, and trace-replay."""

import pytest

from repro.config import make_rng
from repro.errors import WorkloadError
from repro.power.server import ServerPowerModel
from repro.workloads.base import TracePowerWorkload
from repro.workloads.graph import make_graph_workload
from repro.workloads.hadoop import make_terasort_workload, make_wordcount_workload
from repro.workloads.search import make_search_workload
from repro.workloads.traces import ColoPowerTrace
from repro.workloads.web import make_web_workload

SEARCH_POWER = ServerPowerModel(0.45 * 145, 1.25 * 145)
COUNT_POWER = ServerPowerModel(0.45 * 125, 1.55 * 125)


@pytest.fixture
def search():
    workload = make_search_workload("Search-1", SEARCH_POWER, slots_per_day=720)
    workload.prepare(600, make_rng(1))
    return workload


@pytest.fixture
def count():
    workload = make_wordcount_workload("Count-1", COUNT_POWER)
    workload.prepare(600, make_rng(2))
    return workload


class TestLifecycle:
    def test_execute_before_prepare_rejected(self):
        workload = make_search_workload("s", SEARCH_POWER)
        with pytest.raises(WorkloadError):
            workload.execute(0, 145.0, 120.0)

    def test_out_of_order_execution_rejected(self, search):
        search.execute(0, 145.0, 120.0)
        with pytest.raises(WorkloadError):
            search.execute(2, 145.0, 120.0)

    def test_double_execution_rejected(self, search):
        search.execute(0, 145.0, 120.0)
        with pytest.raises(WorkloadError):
            search.execute(0, 145.0, 120.0)

    def test_slot_out_of_range_rejected(self, search):
        with pytest.raises(WorkloadError):
            search.intensity(600)

    def test_prepare_resets_state(self, count):
        for slot in range(50):
            count.execute(slot, 125.0, 120.0)
        count.prepare(100, make_rng(9))
        assert count.backlog_units == 0.0
        count.execute(0, 125.0, 120.0)  # slot counter reset


class TestInteractiveWorkload:
    def test_more_budget_never_hurts_latency(self, search):
        rate = search.intensity(0)
        low = search.latency_model.latency_ms(130.0, rate)
        high = search.latency_model.latency_ms(160.0, rate)
        assert high <= low

    def test_capped_execution_flags(self, search):
        slot = next(
            s for s in range(600) if search.desired_power_w(s) > 145.0
        )
        for s in range(slot):
            search.execute(s, 1000.0, 120.0)
        perf = search.execute(slot, 145.0, 120.0)
        assert perf.capped
        assert perf.wanted_spot
        assert perf.power_w == pytest.approx(145.0)

    def test_uncapped_execution(self, search):
        slot = next(
            s for s in range(600) if search.desired_power_w(s) <= 140.0
        )
        for s in range(slot):
            search.execute(s, 1000.0, 120.0)
        perf = search.execute(slot, 145.0, 120.0)
        assert not perf.capped
        assert perf.power_w == pytest.approx(search.desired_power_w(slot))

    def test_spot_budget_restores_slo(self, search):
        # Wherever the SLO is reachable at all (desired power below the
        # rack's peak), granting the desired budget must meet it.  Slots
        # where even full power cannot meet the SLO (extreme surges) are
        # genuine overload, not a budgeting failure.
        peak = search.latency_model.power_model.peak_w
        violations = 0
        reachable = 0
        for s in range(600):
            desired = search.desired_power_w(s)
            perf = search.execute(s, max(145.0, desired), 120.0)
            if desired < peak - 1e-9:
                reachable += 1
                if perf.slo_violated:
                    violations += 1
        assert reachable > 0
        assert violations == 0

    def test_web_variant_builds(self):
        workload = make_web_workload("Web", ServerPowerModel(0.45 * 115, 1.25 * 115))
        workload.prepare(10, make_rng(0))
        perf = workload.execute(0, 115.0, 120.0)
        assert perf.metric == "latency_ms"


class TestBatchWorkload:
    def test_backlog_accumulates_when_capped(self, count):
        # Starve the rack: backlog must grow.
        idle = COUNT_POWER.idle_w
        for slot in range(100):
            count.execute(slot, idle, 120.0)
        assert count.backlog_units > 0.0

    def test_backlog_conservation(self, count):
        total_arrivals = sum(count.intensity(s) * 120.0 for s in range(200))
        processed = 0.0
        for slot in range(200):
            perf = count.execute(slot, 125.0, 120.0)
            processed += perf.value * 120.0
        assert processed + count.backlog_units == pytest.approx(
            total_arrivals, rel=1e-6
        )

    def test_sprint_budget_drains_faster(self):
        slow = make_wordcount_workload("a", COUNT_POWER)
        fast = make_wordcount_workload("b", COUNT_POWER)
        slow.prepare(300, make_rng(11))
        fast.prepare(300, make_rng(11))
        for slot in range(300):
            slow.execute(slot, 125.0, 120.0)
            fast.execute(slot, COUNT_POWER.peak_w, 120.0)
        assert fast.backlog_units <= slow.backlog_units

    def test_wants_sprint_tracks_backlog(self, count):
        assert not count.wants_sprint(0)
        idle = COUNT_POWER.idle_w
        slot = 0
        while not count.wants_sprint(slot) and slot < 400:
            count.execute(slot, idle, 120.0)
            slot += 1
        assert count.wants_sprint(slot)
        assert count.desired_power_w(slot) == COUNT_POWER.peak_w

    def test_throughput_capped_by_budget(self, count):
        rate_cap = count.throughput_model.rate_at(125.0)
        for slot in range(100):
            perf = count.execute(slot, 125.0, 120.0)
            assert perf.value <= rate_cap + 1e-9

    def test_terasort_and_graph_variants(self):
        for factory in (make_terasort_workload, make_graph_workload):
            workload = factory("x", COUNT_POWER)
            workload.prepare(10, make_rng(0))
            perf = workload.execute(0, 125.0, 120.0)
            assert perf.metric == "throughput"
            assert perf.value >= 0.0


class TestTracePowerWorkload:
    def test_replays_trace(self):
        trace = ColoPowerTrace(subscription_w=250.0)
        workload = TracePowerWorkload("other", trace)
        workload.prepare(50, make_rng(3))
        expected = trace.generate(50, make_rng(3))
        for slot in range(50):
            perf = workload.execute(slot, 250.0, 120.0)
            assert perf.power_w == pytest.approx(expected[slot])
            assert not perf.wanted_spot

    def test_budget_caps_trace(self):
        trace = ColoPowerTrace(subscription_w=250.0, mean_fraction=0.9)
        workload = TracePowerWorkload("other", trace)
        workload.prepare(50, make_rng(3))
        perf = workload.execute(0, 10.0, 120.0)
        assert perf.power_w <= 10.0
        assert perf.capped
