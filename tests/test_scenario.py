"""Scenario builders: Table I testbed and scaled variants."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.scenario import (
    TABLE1_SPECS,
    scaled_scenario,
    testbed_scenario as build_testbed,
)
from repro.tenants.bidding import StepStrategy


class TestTable1Testbed:
    def test_tenant_roster_matches_table1(self):
        scenario = build_testbed()
        names = [t.tenant_id for t in scenario.tenants]
        assert names == [spec.name for spec in TABLE1_SPECS]

    def test_subscriptions_match_table1(self):
        scenario = build_testbed()
        subs = {
            t.tenant_id: t.total_guaranteed_w for t in scenario.tenants
        }
        for spec in TABLE1_SPECS:
            assert subs[spec.name] == pytest.approx(spec.subscription_w)

    def test_pdu_capacities_match_paper(self):
        scenario = build_testbed()
        caps = {p: pdu.capacity_w for p, pdu in scenario.topology.pdus.items()}
        assert caps["pdu:0"] == pytest.approx(750.0 / 1.05)
        assert caps["pdu:1"] == pytest.approx(760.0 / 1.05)

    def test_ups_capacity_matches_paper(self):
        scenario = build_testbed()
        expected = (750.0 / 1.05 + 760.0 / 1.05) / 1.05
        assert scenario.topology.ups.capacity_w == pytest.approx(expected)
        assert scenario.topology.ups.capacity_w == pytest.approx(1370.0, abs=1.0)

    def test_tenant_kinds(self):
        scenario = build_testbed()
        kinds = {t.tenant_id: t.kind for t in scenario.tenants}
        assert kinds["Search-1"] == "sprinting"
        assert kinds["Web"] == "sprinting"
        assert kinds["Count-1"] == "opportunistic"
        assert kinds["Other-1"] == "non-participating"

    def test_participating_count(self):
        scenario = build_testbed()
        assert len(scenario.participating_tenants()) == 8

    def test_total_guaranteed(self):
        assert build_testbed().total_guaranteed_w() == pytest.approx(1510.0)

    def test_overprovisioned_only_counts_participants(self):
        scenario = build_testbed()
        expected = 0.5 * (1510.0 - 500.0)  # headroom on non-"Other" racks
        assert scenario.overprovisioned_w() == pytest.approx(expected)

    def test_same_seed_same_traces(self):
        a = build_testbed(seed=11)
        b = build_testbed(seed=11)
        a.prepare(50)
        b.prepare(50)
        tenant_a = a.tenants[0].racks[0].workload
        tenant_b = b.tenants[0].racks[0].workload
        assert tenant_a.intensity(7) == tenant_b.intensity(7)

    def test_different_seed_different_traces(self):
        a = build_testbed(seed=11)
        b = build_testbed(seed=12)
        a.prepare(50)
        b.prepare(50)
        assert (
            a.tenants[0].racks[0].workload.intensity(7)
            != b.tenants[0].racks[0].workload.intensity(7)
        )

    def test_oversubscription_sweep_changes_capacity(self):
        tight = build_testbed(pdu_oversubscription=1.10)
        loose = build_testbed(pdu_oversubscription=1.0)
        assert (
            tight.topology.pdus["pdu:0"].capacity_w
            < loose.topology.pdus["pdu:0"].capacity_w
        )

    def test_strategy_factory_applied(self):
        scenario = build_testbed(strategy_factory=lambda kind: StepStrategy())
        tenant = scenario.participating_tenants()[0]
        assert isinstance(tenant.strategy, StepStrategy)

    def test_rejects_bad_oversubscription(self):
        with pytest.raises(ConfigurationError):
            build_testbed(pdu_oversubscription=0.9)

    def test_rack_infos_cover_all_racks(self):
        scenario = build_testbed()
        infos = scenario.rack_infos()
        assert len(infos) == 10
        assert {i.metric for i in infos} == {
            "latency_ms", "throughput", "power_w",
        }


class TestScaledScenario:
    def test_group_replication(self):
        scenario = scaled_scenario(groups=3)
        assert len(scenario.tenants) == 30
        assert len(scenario.topology.pdus) == 6

    def test_first_group_is_exact_table1(self):
        scenario = scaled_scenario(groups=2)
        subs = {t.tenant_id: t.total_guaranteed_w for t in scenario.tenants}
        for spec in TABLE1_SPECS:
            assert subs[spec.name] == pytest.approx(spec.subscription_w)

    def test_jitter_applied_to_later_groups(self):
        scenario = scaled_scenario(groups=2, jitter=0.2)
        subs = {t.tenant_id: t.total_guaranteed_w for t in scenario.tenants}
        jittered = [
            subs[f"{spec.name}@1"] / spec.subscription_w
            for spec in TABLE1_SPECS
        ]
        assert any(abs(j - 1.0) > 0.01 for j in jittered)
        assert all(0.8 - 1e-9 <= j <= 1.2 + 1e-9 for j in jittered)

    def test_capacity_scales_with_subscriptions(self):
        scenario = scaled_scenario(groups=2, jitter=0.0)
        assert scenario.topology.ups.capacity_w == pytest.approx(
            2 * build_testbed().topology.ups.capacity_w, rel=1e-6
        )

    def test_thousand_tenants_buildable(self):
        scenario = scaled_scenario(groups=100)
        assert len(scenario.tenants) == 1000

    def test_rejects_zero_groups(self):
        with pytest.raises(ConfigurationError):
            scaled_scenario(groups=0)
