"""Fluent ScenarioBuilder (sim.builder)."""

import numpy as np
import pytest

from repro.core.baselines import PowerCappedAllocator
from repro.errors import ConfigurationError
from repro.sim.builder import ScenarioBuilder
from repro.sim.engine import run_simulation
from repro.tenants.bundled import BundledSprintingTenant
from repro.tenants.tenant import (
    NonParticipatingTenant,
    OpportunisticTenant,
    SprintingTenant,
)


def small_facility(seed=5):
    return (
        ScenarioBuilder(seed=seed)
        .add_pdu("row-a", oversubscription=1.05)
        .add_pdu("row-b", oversubscription=1.05)
        .add_search_tenant("search", 150.0, "row-a")
        .add_wordcount_tenant("count", 130.0, "row-a")
        .add_other_group("colo-a", 250.0, "row-a")
        .add_web_tenant("web", 120.0, "row-b")
        .add_graph_tenant("graph", 110.0, "row-b")
        .add_other_group("colo-b", 250.0, "row-b")
        .build()
    )


class TestStructure:
    def test_pdu_capacity_from_leases(self):
        scenario = small_facility()
        leased_a = 150.0 + 130.0 + 250.0
        assert scenario.topology.pdus["row-a"].capacity_w == pytest.approx(
            leased_a / 1.05
        )

    def test_ups_capacity_from_pdus(self):
        scenario = small_facility()
        total_pdu = sum(p.capacity_w for p in scenario.topology.pdus.values())
        assert scenario.topology.ups.capacity_w == pytest.approx(
            total_pdu / 1.05
        )

    def test_tenant_classes(self):
        scenario = small_facility()
        kinds = {t.tenant_id: type(t) for t in scenario.tenants}
        assert kinds["search"] is SprintingTenant
        assert kinds["web"] is SprintingTenant
        assert kinds["count"] is OpportunisticTenant
        assert kinds["graph"] is OpportunisticTenant
        assert kinds["colo-a"] is NonParticipatingTenant

    def test_deterministic_per_seed(self):
        a = small_facility(seed=5)
        b = small_facility(seed=5)
        a.prepare(20)
        b.prepare(20)
        assert a.tenants[0].racks[0].workload.intensity(3) == (
            b.tenants[0].racks[0].workload.intensity(3)
        )


class TestValidation:
    def test_duplicate_pdu(self):
        builder = ScenarioBuilder().add_pdu("p")
        with pytest.raises(ConfigurationError):
            builder.add_pdu("p")

    def test_unknown_pdu(self):
        with pytest.raises(ConfigurationError):
            ScenarioBuilder().add_search_tenant("s", 100.0, "ghost")

    def test_duplicate_tenant(self):
        builder = ScenarioBuilder().add_pdu("p").add_search_tenant("s", 100.0, "p")
        with pytest.raises(ConfigurationError):
            builder.add_web_tenant("s", 100.0, "p")

    def test_empty_build(self):
        with pytest.raises(ConfigurationError):
            ScenarioBuilder().build()
        with pytest.raises(ConfigurationError):
            ScenarioBuilder().add_pdu("p").build()

    def test_bad_oversubscription(self):
        with pytest.raises(ConfigurationError):
            ScenarioBuilder(ups_oversubscription=0.9)
        with pytest.raises(ConfigurationError):
            ScenarioBuilder().add_pdu("p", oversubscription=0.5)

    def test_tiered_needs_two_tiers(self):
        builder = ScenarioBuilder().add_pdu("p")
        with pytest.raises(ConfigurationError):
            builder.add_tiered_tenant("t", [(100.0, "p")])


class TestSimulation:
    def test_custom_facility_runs_end_to_end(self):
        scenario = small_facility()
        result = run_simulation(scenario, 400)
        baseline = run_simulation(
            small_facility(), 400, allocator=PowerCappedAllocator()
        )
        assert result.collector.spot_granted_array().sum() > 0
        assert result.operator_profit_increase_vs(baseline) > 0

    def test_tiered_tenant_trades_in_simulation(self):
        scenario = (
            ScenarioBuilder(seed=9)
            .add_pdu("row", oversubscription=1.05)
            .add_tiered_tenant("shop", [(140.0, "row"), (110.0, "row")])
            .add_wordcount_tenant("batch", 120.0, "row")
            .add_other_group("colo", 300.0, "row")
            .build()
        )
        tenant_types = {type(t) for t in scenario.tenants}
        assert BundledSprintingTenant in tenant_types
        result = run_simulation(scenario, 500)
        shop_granted = sum(
            result.collector.rack_granted_array(rack_id).sum()
            for rack_id in result.tenants["shop"].rack_ids
        )
        assert shop_granted > 0
        # The engine saw one end-to-end latency per tier rack.
        perfs = [
            result.collector.rack_perf_array(rack_id)
            for rack_id in result.tenants["shop"].rack_ids
        ]
        assert np.allclose(perfs[0], perfs[1])

    def test_fault_profile_flows_from_builder_to_engine(self):
        from repro.resilience import FaultProfile

        def run(seed):
            scenario = (
                ScenarioBuilder(seed=seed)
                .add_pdu("row", oversubscription=1.05)
                .add_search_tenant("search", 150.0, "row")
                .add_other_group("colo", 250.0, "row")
                .with_fault_profile(FaultProfile.named("comm", 0.3))
                .build()
            )
            assert scenario.fault_profile is not None
            return run_simulation(scenario, 120)

        result = run(seed=9)
        assert result.faults is not None
        assert result.faults.lost_bids > 0
        # Same builder seed ⇒ identical fault trace (seed keys the streams).
        assert run(seed=9).faults.records == result.faults.records

    def test_tiered_tenant_improves_over_powercapped(self):
        def build():
            return (
                ScenarioBuilder(seed=9)
                .add_pdu("row", oversubscription=1.05)
                .add_tiered_tenant("shop", [(140.0, "row"), (110.0, "row")])
                .add_wordcount_tenant("batch", 120.0, "row")
                .add_other_group("colo", 300.0, "row")
                .build()
            )

        spot = run_simulation(build(), 500)
        capped = run_simulation(build(), 500, allocator=PowerCappedAllocator())
        assert spot.tenant_performance_improvement_vs(capped, "shop") >= 1.0
        assert spot.tenant_slo_violation_rate("shop") <= (
            capped.tenant_slo_violation_rate("shop")
        )
