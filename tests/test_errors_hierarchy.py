"""Pin the exception-hierarchy contract across the whole library.

Every error the library raises on a user-facing path must come from
:mod:`repro.errors` — callers distinguish domain failures from
programming errors with a single ``except ReproError``.  An AST audit
over ``src/`` enforces this structurally, so a future module cannot
quietly reintroduce ``raise ValueError(...)``.
"""

import ast
import importlib
import pathlib
import pkgutil

import pytest

import repro
from repro import errors

SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent

#: Builtin exceptions that must never be raised directly by library
#: code.  ``NotImplementedError`` (abstract hooks) and re-raises
#: (``raise`` / ``raise exc``) stay allowed.
BANNED_RAISES = {
    "ValueError",
    "TypeError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "Exception",
    "AssertionError",
}


def _raised_name(node: ast.Raise) -> str | None:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _iter_library_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield info.name


class TestRaiseSiteAudit:
    def test_no_bare_builtin_raises_in_library_code(self):
        violations = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Raise):
                    continue
                name = _raised_name(node)
                if name in BANNED_RAISES:
                    rel = path.relative_to(SRC_ROOT.parent)
                    violations.append(f"{rel}:{node.lineno} raises {name}")
        assert violations == [], (
            "library code must raise repro.errors classes, found:\n"
            + "\n".join(violations)
        )

    def test_every_raise_site_is_a_known_exception(self):
        # Every name raised anywhere in the library is either a
        # repro.errors class, an allowed builtin, or a local variable
        # (re-raise of a caught/constructed exception).
        allowed = set(errors.__all__) | {
            "NotImplementedError",
            "StopIteration",
            "SystemExit",  # CLI exit codes
            # daemon/protocol.py: factory returning a ProtocolError
            # tagged with its machine-readable rejection code.
            "_rejection",
            # daemon/client.py: a truncated socket reply must raise the
            # builtin so the retry matcher catches it by type.
            "EOFError",
        }
        raised = set()
        for path in sorted(SRC_ROOT.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.Raise):
                    name = _raised_name(node)
                    if name is not None:
                        raised.add(name)
        unknown = {
            n for n in raised - allowed
            # lowercase names are local variables holding an exception
            if not n[:1].islower()
        }
        assert unknown == set(), (
            f"unexpected exception classes raised in library code: {unknown}"
        )


class TestHierarchyShape:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_configuration_errors_stay_catchable_as_value_error(self):
        # The historical contract: invalid configuration values were
        # ValueError, and callers may still catch them as such.
        assert issubclass(errors.ConfigurationError, ValueError)
        assert issubclass(errors.TopologyError, ValueError)

    def test_recovery_errors_nest_correctly(self):
        assert issubclass(errors.OperatorCrash, errors.RecoveryError)
        assert issubclass(errors.BidValidationError, errors.BidError)

    def test_bid_validation_error_carries_reason(self):
        err = errors.BidValidationError("bad", reason="non_finite")
        assert err.reason == "non_finite"
        with pytest.raises(errors.BidError):
            raise err


class TestLibraryImports:
    def test_every_module_imports_cleanly(self):
        for name in _iter_library_modules():
            importlib.import_module(name)
