"""Global configuration and randomness policy (repro.config)."""

import numpy as np
import pytest

from repro.config import (
    DEFAULT_SEED,
    MarketParameters,
    make_rng,
    spawn_rngs,
)


class TestMakeRng:
    def test_default_seed_is_deterministic(self):
        a = make_rng().random(5)
        b = make_rng().random(5)
        assert np.array_equal(a, b)

    def test_explicit_seed_reproducible(self):
        assert np.array_equal(make_rng(123).random(3), make_rng(123).random(3))

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(3), make_rng(2).random(3))

    def test_none_falls_back_to_default(self):
        assert np.array_equal(
            make_rng(None).random(3), make_rng(DEFAULT_SEED).random(3)
        )


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(make_rng(1), 4)) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(make_rng(1), 2)
        assert not np.array_equal(children[0].random(5), children[1].random(5))

    def test_children_reproducible(self):
        a = [r.random(3) for r in spawn_rngs(make_rng(9), 3)]
        b = [r.random(3) for r in spawn_rngs(make_rng(9), 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_prefix_stability(self):
        # Adding more children must not perturb earlier streams.
        short = spawn_rngs(make_rng(5), 2)
        long = spawn_rngs(make_rng(5), 6)
        for a, b in zip(short, long):
            assert np.array_equal(a.random(4), b.random(4))

    def test_zero_count(self):
        assert spawn_rngs(make_rng(1), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(make_rng(1), -1)


class TestMarketParameters:
    def test_defaults_valid(self):
        params = MarketParameters()
        assert params.price_step > 0
        assert params.max_price > params.reserve_price

    def test_rejects_nonpositive_slot(self):
        with pytest.raises(ValueError):
            MarketParameters(slot_seconds=0)

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            MarketParameters(price_step=0)

    def test_rejects_inverted_price_range(self):
        with pytest.raises(ValueError):
            MarketParameters(max_price=0.1, reserve_price=0.2)

    def test_rejects_bad_under_prediction(self):
        with pytest.raises(ValueError):
            MarketParameters(under_prediction_factor=0.0)
        with pytest.raises(ValueError):
            MarketParameters(under_prediction_factor=1.5)

    def test_frozen(self):
        params = MarketParameters()
        with pytest.raises(Exception):
            params.price_step = 0.5
