"""Daemon crash-safety: kill it anywhere, resume, get identical output.

The in-process tests drive the machine-checked invariant through
``check_crash_safety`` (CrashFault via kill points).  The subprocess
test delivers a real ``SIGKILL`` to a ``spotdc serve`` process mid-run
and diffs the journal and invoices against an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.daemon.chaos import check_crash_safety, short_socket_path
from repro.resilience import FaultProfile

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestCrashSafetyInProcess:
    def test_invariant_holds_across_kill_points(self, tmp_path):
        report = check_crash_safety(
            tmp_path, seed=5, slots=8, crash_slots=(3, 6)
        )
        assert report["restarts"] == 2
        assert report["duplicates"] > 0  # redelivery exercised the keys
        assert report["slots"] == 8

    def test_invariant_holds_under_market_faults(self, tmp_path):
        profile = FaultProfile(
            bid_loss=0.1, duplicate_probability=0.3, seed=3
        )
        report = check_crash_safety(
            tmp_path, seed=7, slots=8, crash_slots=(4,), fault_profile=profile
        )
        assert report["restarts"] == 1
        assert report["duplicates"] > 0

    def test_crash_on_first_market_slot(self, tmp_path):
        report = check_crash_safety(tmp_path, seed=2, slots=6, crash_slots=(1,))
        assert report["restarts"] == 1

    def test_invariant_holds_when_killed_inside_an_event_window(
        self, tmp_path
    ):
        # The kill lands mid-EDR-window: the resumed daemon must replay
        # the remaining window (reserve uplift, release haircut, caps)
        # byte-identically, not just the calm-market slots.
        from repro.events import EdrShock, EventProfile

        profile = EventProfile(
            schedule=(EdrShock(slot=3, duration_slots=5, fraction=0.05),)
        )
        report = check_crash_safety(
            tmp_path,
            seed=5,
            slots=10,
            crash_slots=(4, 6),
            events_profile=profile,
        )
        assert report["restarts"] == 2
        assert report["slots"] == 10


def _spotdc(*argv, check=True, expect=None):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    if expect is not None:
        assert proc.returncode == expect, (proc.returncode, proc.stderr)
    elif check:
        assert proc.returncode == 0, proc.stderr
    return proc


def _serve_in_background(state_dir, socket_path, *extra):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--seed", "9", "--slots", "10",
            "--state-dir", str(state_dir),
            "--socket", str(socket_path),
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while not os.path.exists(socket_path):
        if proc.poll() is not None:
            raise AssertionError(f"serve died early: {proc.stderr.read()}")
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("serve never bound its socket")
        time.sleep(0.02)
    return proc


def _submit_auto(socket_path, out_path, expect=0):
    return _spotdc(
        "submit",
        "--socket", str(socket_path),
        "--seed", "9",
        "--auto",
        "--out", str(out_path),
        expect=expect,
    )


class TestCrashSafetySubprocess:
    def test_sigkill_resume_is_byte_identical(self, tmp_path):
        ref_dir = tmp_path / "ref"
        chaos_dir = tmp_path / "chaos"

        # Uninterrupted reference run.
        sock = short_socket_path("ref.sock")
        serve = _serve_in_background(ref_dir, sock)
        _submit_auto(sock, tmp_path / "inv_ref.json")
        out, err = serve.communicate(timeout=60)
        assert serve.returncode == 0, err

        # Chaos run: the daemon SIGKILLs itself mid-slot 5, after the
        # journal append but before the checkpoint — the worst window.
        sock = short_socket_path("chaos.sock")
        serve = _serve_in_background(
            chaos_dir, sock, "--kill-at", "5", "--kill-point", "post_journal"
        )
        client = _submit_auto(sock, tmp_path / "inv_dead.json", expect=3)
        # Depending on when the SIGKILL lands, the client either sees
        # the crashed-tick rejection or the socket simply goes away.
        chatter = client.stderr + client.stdout
        assert "resume" in chatter or "unreachable" in chatter
        serve.wait(timeout=60)
        assert serve.returncode == -signal.SIGKILL or serve.returncode == 137

        # Resume and drive to completion; the client redelivers every
        # bundle, so idempotency absorbs the duplicates.
        sock = short_socket_path("resumed.sock")
        serve = _serve_in_background(chaos_dir, sock, "--resume")
        _submit_auto(sock, tmp_path / "inv_chaos.json")
        out, err = serve.communicate(timeout=60)
        assert serve.returncode == 0, err

        ref_journal = (ref_dir / "market.jsonl").read_bytes()
        chaos_journal = (chaos_dir / "market.jsonl").read_bytes()
        assert ref_journal == chaos_journal

        ref_inv = json.loads((tmp_path / "inv_ref.json").read_text())
        chaos_inv = json.loads((tmp_path / "inv_chaos.json").read_text())
        assert ref_inv == chaos_inv
