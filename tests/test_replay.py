"""Bring-your-own-trace adapters (workloads.replay)."""

import numpy as np
import pytest

from repro.config import make_rng
from repro.errors import WorkloadError
from repro.workloads.base import TracePowerWorkload
from repro.workloads.replay import ReplayTrace, load_csv_column


class TestReplayTrace:
    def test_exact_replay(self):
        trace = ReplayTrace([1.0, 2.0, 3.0])
        assert np.array_equal(trace.generate(3, make_rng(0)), [1.0, 2.0, 3.0])

    def test_truncates_long_series(self):
        trace = ReplayTrace([1.0, 2.0, 3.0, 4.0])
        assert np.array_equal(trace.generate(2, make_rng(0)), [1.0, 2.0])

    def test_wraps_periodically(self):
        trace = ReplayTrace([1.0, 2.0])
        assert np.array_equal(
            trace.generate(5, make_rng(0)), [1.0, 2.0, 1.0, 2.0, 1.0]
        )

    def test_no_wrap_raises(self):
        trace = ReplayTrace([1.0, 2.0], wrap=False)
        with pytest.raises(WorkloadError):
            trace.generate(3, make_rng(0))

    def test_scale(self):
        trace = ReplayTrace([1.0, 2.0], scale=10.0)
        assert np.array_equal(trace.generate(2, make_rng(0)), [10.0, 20.0])

    def test_jitter_uses_caller_rng(self):
        trace = ReplayTrace([100.0] * 50, jitter_sigma=0.1)
        a = trace.generate(50, make_rng(1))
        b = trace.generate(50, make_rng(1))
        c = trace.generate(50, make_rng(2))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert a.std() > 0

    def test_jitter_never_negative(self):
        trace = ReplayTrace([1.0] * 200, jitter_sigma=2.0)
        assert trace.generate(200, make_rng(3)).min() >= 0.0

    def test_feeds_trace_power_workload(self):
        trace = ReplayTrace([100.0, 150.0, 120.0])
        workload = TracePowerWorkload("measured", trace)
        workload.prepare(3, make_rng(0))
        assert workload.execute(0, 1000.0, 120.0).power_w == 100.0
        assert workload.execute(1, 1000.0, 120.0).power_w == 150.0

    @pytest.mark.parametrize(
        "samples,kwargs",
        [
            ([], {}),
            ([1.0, float("nan")], {}),
            ([-1.0], {}),
            ([1.0], {"scale": 0.0}),
            ([1.0], {"jitter_sigma": -0.1}),
        ],
    )
    def test_validation(self, samples, kwargs):
        with pytest.raises(WorkloadError):
            ReplayTrace(samples, **kwargs)

    def test_zero_slots_rejected(self):
        with pytest.raises(WorkloadError):
            ReplayTrace([1.0]).generate(0, make_rng(0))


class TestLoadCsvColumn:
    def test_by_name(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("time,power\n0,100.5\n1,102.0\n")
        assert np.array_equal(load_csv_column(path, "power"), [100.5, 102.0])

    def test_by_index_with_header(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("time,power\n0,100.5\n1,102.0\n")
        assert np.array_equal(load_csv_column(path, 1), [100.5, 102.0])

    def test_by_index_headerless(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("100.5\n102.0\n")
        assert np.array_equal(load_csv_column(path, 0), [100.5, 102.0])

    def test_unknown_column_name(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(WorkloadError):
            load_csv_column(path, "c")

    def test_non_numeric_value(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\noops\n")
        with pytest.raises(WorkloadError):
            load_csv_column(path, "a")

    def test_missing_column(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(WorkloadError):
            load_csv_column(path, "b")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(WorkloadError):
            load_csv_column(path, 0)

    def test_roundtrip_into_replay(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("power\n10\n20\n30\n")
        trace = ReplayTrace(load_csv_column(path, "power"))
        assert trace.length == 3
