"""Simulation engine: Algorithm 1 end to end."""

import numpy as np
import pytest

from repro.core.baselines import MaxPerfAllocator, PowerCappedAllocator
from repro.core.market import SpotDCAllocator
from repro.errors import SimulationError
from repro.prediction.price import EwmaPricePredictor
from repro.prediction.spot import SpotCapacityPredictor
from repro.sim.engine import SimulationEngine, run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed

SLOTS = 400


@pytest.fixture(scope="module")
def spotdc_result():
    return run_simulation(build_testbed(seed=21), SLOTS)


@pytest.fixture(scope="module")
def capped_result():
    return run_simulation(
        build_testbed(seed=21), SLOTS, allocator=PowerCappedAllocator()
    )


class TestBasicRun:
    def test_slot_count(self, spotdc_result):
        assert spotdc_result.slots == SLOTS

    def test_slot_zero_has_no_market(self, spotdc_result):
        assert spotdc_result.collector.price_array()[0] == 0.0
        assert spotdc_result.collector.spot_granted_array()[0] == 0.0

    def test_market_activity_exists(self, spotdc_result):
        assert spotdc_result.collector.spot_granted_array().sum() > 0
        assert spotdc_result.total_spot_revenue() > 0

    def test_powercapped_never_grants(self, capped_result):
        assert capped_result.collector.spot_granted_array().sum() == 0.0
        assert capped_result.total_spot_revenue() == 0.0

    def test_rejects_nonpositive_slots(self):
        engine = SimulationEngine(build_testbed(seed=21))
        with pytest.raises(SimulationError):
            engine.run(0)

    def test_deterministic_given_seed(self):
        a = run_simulation(build_testbed(seed=33), 150)
        b = run_simulation(build_testbed(seed=33), 150)
        assert np.array_equal(a.price_series(), b.price_series())
        assert np.array_equal(
            a.collector.spot_granted_array(), b.collector.spot_granted_array()
        )


class TestPhysicalConsistency:
    def test_rack_power_never_exceeds_budget(self, spotdc_result):
        collector = spotdc_result.collector
        for rack_id, info in spotdc_result.racks.items():
            power = collector.rack_power_array(rack_id)
            granted = collector.rack_granted_array(rack_id)
            budget = info.guaranteed_w + granted
            assert np.all(power <= budget + 1e-6)

    def test_grants_only_to_wanting_racks(self, spotdc_result):
        collector = spotdc_result.collector
        for rack_id in spotdc_result.racks:
            granted = collector.rack_granted_array(rack_id) > 1e-9
            wanted = collector.rack_wanted_array(rack_id)
            assert np.all(wanted[granted])

    def test_spot_adds_no_emergencies(self, spotdc_result, capped_result):
        assert (
            spotdc_result.emergencies.count()
            <= capped_result.emergencies.count() + 1
        )

    def test_ups_power_is_sum_of_racks(self, spotdc_result):
        collector = spotdc_result.collector
        total = sum(
            collector.rack_power_array(rack_id)
            for rack_id in spotdc_result.racks
        )
        assert np.allclose(total, collector.ups_power_array())

    def test_payments_match_revenue(self, spotdc_result):
        collector = spotdc_result.collector
        payments = sum(
            collector.tenant_payment_array(t).sum()
            for t in spotdc_result.tenants
        )
        assert payments == pytest.approx(spotdc_result.total_spot_revenue())


class TestEconomicConsistency:
    def test_subscription_revenue_matches_rate(self, spotdc_result):
        ledger = spotdc_result.ledger
        expected = (
            spotdc_result.total_guaranteed_w() / 1000.0
            * spotdc_result.guaranteed_rate_per_kw_hour
            * spotdc_result.duration_hours
        )
        assert ledger.subscription_revenue == pytest.approx(expected)

    def test_baseline_has_no_rack_capex(self, capped_result):
        assert capped_result.ledger.rack_capex_cost == 0.0

    def test_spotdc_pays_rack_capex(self, spotdc_result):
        assert spotdc_result.ledger.rack_capex_cost > 0.0

    def test_profit_increase_positive(self, spotdc_result, capped_result):
        assert spotdc_result.operator_profit_increase_vs(capped_result) > 0.0


class TestAllocatorVariants:
    def test_maxperf_grants_without_payments(self):
        result = run_simulation(
            build_testbed(seed=21), 300, allocator=MaxPerfAllocator()
        )
        assert result.collector.spot_granted_array().sum() > 0
        assert result.total_spot_revenue() == 0.0
        payments = sum(
            result.collector.tenant_payment_array(t).sum()
            for t in result.tenants
        )
        assert payments == 0.0

    def test_under_prediction_reduces_grants(self):
        exact = run_simulation(build_testbed(seed=21), 300)
        under = run_simulation(
            build_testbed(seed=21),
            300,
            spot_predictor=SpotCapacityPredictor(under_prediction_factor=0.6),
        )
        assert (
            under.collector.spot_granted_array().sum()
            <= exact.collector.spot_granted_array().sum() + 1e-6
        )

    def test_price_forecasting_runs(self):
        engine = SimulationEngine(
            build_testbed(seed=21), price_predictor=EwmaPricePredictor()
        )
        result = engine.run(200)
        assert result.slots == 200

    def test_oracle_rebid_runs(self):
        result = run_simulation(
            build_testbed(seed=21),
            200,
            allocator=SpotDCAllocator(oracle_rebid=True),
        )
        assert result.slots == 200
