"""Communication-loss failure injection (paper §III-C exceptions)."""

import numpy as np
import pytest

from repro.config import make_rng
from repro.core.baselines import PowerCappedAllocator
from repro.economics.settlement import reconcile
from repro.errors import ConfigurationError
from repro.sim.engine import SimulationEngine, run_simulation
from repro.sim.faults import CommunicationFaultModel
from repro.sim.scenario import testbed_scenario as build_testbed

SLOTS = 800


def run_with_faults(bid_p=0.0, grant_p=0.0, seed=55, slots=SLOTS):
    fault_model = CommunicationFaultModel(
        bid_loss_probability=bid_p,
        grant_loss_probability=grant_p,
        rng=make_rng(1234),
    )
    engine = SimulationEngine(
        build_testbed(seed=seed), fault_model=fault_model
    )
    return engine.run(slots), fault_model


class TestFaultModel:
    def test_requires_rng(self):
        with pytest.raises(ConfigurationError):
            CommunicationFaultModel(bid_loss_probability=0.1)

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            CommunicationFaultModel(bid_loss_probability=1.5, rng=make_rng(0))
        with pytest.raises(ConfigurationError):
            CommunicationFaultModel(grant_loss_probability=-0.1, rng=make_rng(0))

    def test_zero_probability_never_fires(self):
        model = CommunicationFaultModel(rng=make_rng(0))
        assert not any(model.bid_lost(s, "t") for s in range(100))
        assert not any(model.grant_lost(s, "r") for s in range(100))
        assert model.log.lost_bids == 0

    def test_certain_loss_always_fires(self):
        model = CommunicationFaultModel(
            bid_loss_probability=1.0, rng=make_rng(0)
        )
        assert all(model.bid_lost(s, "t") for s in range(10))
        assert model.log.lost_bids == 10


class TestFaultInjection:
    def test_no_faults_identical_to_clean_run(self):
        clean = run_simulation(build_testbed(seed=55), 300)
        faulty, _ = run_with_faults(0.0, 0.0, slots=300)
        assert np.array_equal(
            clean.collector.spot_granted_array(),
            faulty.collector.spot_granted_array(),
        )

    def test_total_bid_loss_means_no_market(self):
        result, model = run_with_faults(bid_p=1.0, slots=300)
        assert result.collector.spot_granted_array().sum() == 0.0
        assert result.total_spot_revenue() == 0.0
        assert model.log.lost_bids > 0

    def test_total_grant_loss_means_no_delivery_and_no_billing(self):
        result, model = run_with_faults(grant_p=1.0, slots=300)
        assert result.collector.spot_granted_array().sum() == 0.0
        assert result.total_spot_revenue() == 0.0
        assert model.log.lost_grants > 0

    def test_partial_faults_degrade_gracefully(self):
        clean = run_simulation(build_testbed(seed=55), SLOTS)
        faulty, model = run_with_faults(bid_p=0.1, grant_p=0.1)
        assert model.log.lost_bids > 0
        assert model.log.lost_grants > 0
        clean_sold = clean.collector.spot_granted_array().sum()
        faulty_sold = faulty.collector.spot_granted_array().sum()
        assert 0 < faulty_sold < clean_sold
        # Graceful: ~20% loss rate should cost far less than half the
        # market, not collapse it.
        assert faulty_sold > 0.5 * clean_sold

    def test_books_still_balance_under_faults(self):
        faulty, _ = run_with_faults(bid_p=0.15, grant_p=0.15)
        reconcile(faulty)

    def test_faults_add_no_emergencies(self):
        baseline = run_simulation(
            build_testbed(seed=55), SLOTS, allocator=PowerCappedAllocator()
        )
        faulty, _ = run_with_faults(bid_p=0.1, grant_p=0.1)
        assert faulty.emergencies.count() <= baseline.emergencies.count() + 1

    def test_faulty_run_still_beats_powercapped(self):
        baseline = run_simulation(
            build_testbed(seed=55), SLOTS, allocator=PowerCappedAllocator()
        )
        faulty, _ = run_with_faults(bid_p=0.1, grant_p=0.1)
        assert faulty.operator_profit_increase_vs(baseline) > 0
        ratios = [
            faulty.tenant_performance_improvement_vs(baseline, t)
            for t in faulty.participating_tenant_ids()
        ]
        assert np.mean(ratios) > 1.05
