"""Operator survivability: checkpoint/restore, deadline guard, admission.

The recovery invariant is exact: a run that crashes and resumes from a
checkpoint must be *byte-indistinguishable* — identical exported JSONL
trace, identical numeric result — from the same-seed run that never
crashed.  The deadline guard's fallback must hold the paper's Eq. 2-4
capacity constraints by construction, and the admission front door must
quarantine every malformed bundle whole, with a machine-readable reason.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.config import make_rng
from repro.core.allocation import AllocationResult, verify_allocation
from repro.core.bids import RackBid, TenantBid
from repro.core.demand import LinearBid
from repro.core.frame import BidFrame
from repro.core.market import SlotMarketRecord
from repro.errors import (
    ConfigurationError,
    OperatorCrash,
    RecoveryError,
    SimulationError,
)
from repro.prediction.spot import SpotCapacityForecast
from repro.recovery import (
    QUARANTINE_REASONS,
    ClearingDeadlineGuard,
    ManualClock,
    build_fallback_record,
    default_budget_s,
    inspect_rack_bid,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
    screen_bids,
)
from repro.resilience import FaultProfile
from repro.resilience.faults import CrashFault, FaultInjector
from repro.sim.engine import SimulationEngine, run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed
from repro.telemetry import TelemetryConfig
from repro.telemetry.exporters import read_trace_jsonl
from repro.tenants.misbehaving import MalformedBidTenant, OverdrawingTenant

pytestmark = pytest.mark.recovery

SLOTS = 12


def _crashed_then_resumed(
    tmp_path, seed, fault_profile=None, telemetry_dir=None,
    crash_at=8, checkpoint_every=3, slots=SLOTS,
):
    """Run to a crash, restore from the latest checkpoint, finish."""
    base = fault_profile or FaultProfile(name="crash-only")
    crashing = dataclasses.replace(base, crash_at_slot=crash_at)
    telemetry = (
        TelemetryConfig(out_dir=telemetry_dir, label="run")
        if telemetry_dir is not None
        else None
    )
    ckpt_dir = tmp_path / "ckpt"
    with pytest.raises(OperatorCrash):
        run_simulation(
            build_testbed(seed=seed),
            slots,
            fault_profile=crashing,
            telemetry=telemetry,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=ckpt_dir,
        )
    checkpoint = latest_checkpoint(ckpt_dir)
    assert checkpoint is not None
    return run_simulation(
        build_testbed(seed=seed),
        slots,
        fault_profile=crashing,
        resume_from=checkpoint,
    )


def _assert_results_equal(a, b):
    assert np.array_equal(a.price_series(), b.price_series())
    assert np.array_equal(a.ups_power_series(), b.ups_power_series())
    assert a.total_spot_revenue() == b.total_spot_revenue()
    assert a.ledger.net_profit == b.ledger.net_profit
    for tenant_id in a.tenants:
        assert a.tenant_spot_payment(tenant_id) == b.tenant_spot_payment(
            tenant_id
        )


class TestCheckpointResume:
    def test_plain_run_resumes_identically(self, tmp_path):
        resumed = _crashed_then_resumed(tmp_path, seed=11)
        reference = run_simulation(build_testbed(seed=11), SLOTS)
        _assert_results_equal(resumed, reference)

    def test_fault_profile_run_resumes_identically(self, tmp_path):
        profile = FaultProfile(
            bid_loss=0.1, grant_loss=0.08, meter_stuck=0.05,
            derating_rate=0.02, seed=3,
        )
        resumed = _crashed_then_resumed(tmp_path, seed=7, fault_profile=profile)
        reference = run_simulation(
            build_testbed(seed=7), SLOTS, fault_profile=profile
        )
        _assert_results_equal(resumed, reference)
        # The profile genuinely perturbed both runs.
        assert reference.faults is not None and reference.faults.count() > 0

    def test_telemetry_run_resumes_byte_identically(self, tmp_path):
        # The resumed run keeps exporting into the crashed run's
        # telemetry directory: the stitched trace must equal the
        # uninterrupted run's byte for byte.
        _crashed_then_resumed(
            tmp_path, seed=7, telemetry_dir=tmp_path / "crashed"
        )
        run_simulation(
            build_testbed(seed=7),
            SLOTS,
            telemetry=TelemetryConfig(out_dir=tmp_path / "ref", label="run"),
        )
        crashed = (tmp_path / "crashed" / "run_trace.jsonl").read_bytes()
        reference = (tmp_path / "ref" / "run_trace.jsonl").read_bytes()
        assert crashed == reference

    def test_later_crash_still_fires_after_resume(self, tmp_path):
        # Only the crash that killed the run is disarmed on resume; a
        # second scheduled crash must still fire.
        scenario = build_testbed(seed=5)
        injector = FaultInjector([CrashFault(4), CrashFault(9)], seed=5)
        engine = SimulationEngine(scenario, fault_model=injector)
        with pytest.raises(OperatorCrash):
            engine.run(SLOTS, checkpoint_every=2, checkpoint_dir=tmp_path)
        checkpoint = latest_checkpoint(tmp_path)
        engine2 = SimulationEngine(
            build_testbed(seed=5),
            fault_model=FaultInjector([CrashFault(4), CrashFault(9)], seed=5),
        )
        with pytest.raises(OperatorCrash) as exc:
            engine2.run(SLOTS, resume_from=checkpoint)
        assert exc.value.slot == 9

    def test_checkpoint_every_requires_directory(self):
        engine = SimulationEngine(build_testbed(seed=1))
        with pytest.raises(SimulationError):
            engine.run(4, checkpoint_every=2)
        with pytest.raises(SimulationError):
            engine.run(4, checkpoint_every=0, checkpoint_dir="x")


class TestCheckpointEnvelope:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="not found"):
            load_checkpoint(tmp_path / "nope.pkl")

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "bad.pkl"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(RecoveryError, match="corrupt"):
            load_checkpoint(path)

    def test_foreign_pickle_raises(self, tmp_path):
        path = tmp_path / "foreign.pkl"
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(RecoveryError, match="not a SpotDC checkpoint"):
            load_checkpoint(path)

    def test_format_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.pkl"
        path.write_bytes(
            pickle.dumps(
                {
                    "magic": "spotdc-checkpoint",
                    "format": -1,
                    "slot": 3,
                    "horizon": 10,
                    "engine": None,
                }
            )
        )
        with pytest.raises(RecoveryError, match="format"):
            load_checkpoint(path)

    def test_horizon_mismatch_raises(self, tmp_path):
        engine = SimulationEngine(build_testbed(seed=1))
        engine.run(6, checkpoint_every=2, checkpoint_dir=tmp_path)
        checkpoint = latest_checkpoint(tmp_path)
        fresh = SimulationEngine(build_testbed(seed=1))
        with pytest.raises(RecoveryError, match="horizon|slot"):
            fresh.run(9, resume_from=checkpoint)

    def test_exhausted_checkpoint_raises(self, tmp_path):
        engine = SimulationEngine(build_testbed(seed=1))
        engine.run(4)
        path = save_checkpoint(engine, tmp_path, slot=3, horizon=4)
        fresh = SimulationEngine(build_testbed(seed=1))
        with pytest.raises(RecoveryError, match="nothing left"):
            fresh.run(4, resume_from=path)

    def test_truncated_checkpoint_raises_naming_path(self, tmp_path):
        # A crash mid-write leaves a short file; the error must say
        # which file so the operator can delete it.
        engine = SimulationEngine(build_testbed(seed=1))
        engine.run(6, checkpoint_every=2, checkpoint_dir=tmp_path)
        path = latest_checkpoint(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(RecoveryError, match="corrupt") as exc:
            load_checkpoint(path)
        assert str(path) in str(exc.value)

    def test_bit_flipped_checkpoint_raises_naming_path(self, tmp_path):
        # Disk corruption: flip every byte of the payload's middle
        # chunk (magic/envelope checks catch what unpickling doesn't).
        engine = SimulationEngine(build_testbed(seed=1))
        engine.run(6, checkpoint_every=2, checkpoint_dir=tmp_path)
        path = latest_checkpoint(tmp_path)
        data = bytearray(path.read_bytes())
        third = len(data) // 3
        for i in range(third, 2 * third):
            data[i] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(RecoveryError) as exc:
            load_checkpoint(path)
        assert str(path) in str(exc.value)

    def test_latest_skips_corrupt_newest_with_warning(self, tmp_path):
        engine = SimulationEngine(build_testbed(seed=1))
        engine.run(6, checkpoint_every=2, checkpoint_dir=tmp_path)
        newest = latest_checkpoint(tmp_path)
        newest.write_bytes(b"not a pickle at all")
        with pytest.warns(UserWarning, match="skipping unusable checkpoint"):
            best = latest_checkpoint(tmp_path)
        assert best is not None and best != newest
        load_checkpoint(best)  # the fallback is genuinely usable

    def test_latest_ignores_temp_files(self, tmp_path):
        engine = SimulationEngine(build_testbed(seed=1))
        engine.run(6, checkpoint_every=2, checkpoint_dir=tmp_path)
        (tmp_path / "checkpoint_000099.pkl.tmp").write_bytes(b"partial")
        best = latest_checkpoint(tmp_path)
        assert best is not None and best.suffix == ".pkl"
        assert "000099" not in best.name


class TestCrashFault:
    def test_slot_zero_crash_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashFault(0)

    def test_disarm_next_crash_disarms_earliest_only(self):
        injector = FaultInjector([CrashFault(3), CrashFault(7)], seed=1)
        injector.disarm_next_crash(2)
        injector.check_crash(3)  # disarmed: no raise
        with pytest.raises(OperatorCrash):
            injector.check_crash(7)

    def test_crash_draws_no_randomness_and_logs_nothing(self):
        # Recovery determinism depends on the crash channel being
        # invisible to every other stream and to the fault log.
        with_crash = FaultInjector(
            [CrashFault(50)], seed=9
        )
        assert len(with_crash.log) == 0
        with_crash.check_crash(3)  # not its slot: nothing happens
        assert len(with_crash.log) == 0


class TestDeadlineGuard:
    def test_default_budget_is_a_slot_fraction(self):
        assert default_budget_s(15.0) == pytest.approx(1.5)

    def test_guard_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigurationError):
            ClearingDeadlineGuard(0.0)

    def test_manual_clock_makes_every_slot_over_budget(self):
        engine = SimulationEngine(
            build_testbed(seed=2), telemetry=TelemetryConfig()
        )
        engine.deadline_guard = ClearingDeadlineGuard(
            0.5, clock=ManualClock(step_s=1.0)
        )
        result = engine.run(8)
        hits = engine.deadline_guard.hits
        # Every market slot (1..7) measured over budget; with no prior
        # successful clear the ladder bottoms out at no_spot.
        assert hits == {"no_spot": 7}
        assert result.total_spot_revenue() == 0.0
        counter = engine.telemetry.registry.counter(
            "clearing_deadline_hits_total", {"fallback": "no_spot"}
        )
        assert counter.value == 7

    def test_intermittent_overrun_reuses_last_price(self):
        # Scripted clock: each (start, stop) reading pair consumes the
        # next entry of ``elapsed``, so alternate clears overrun.
        class ScriptedClock:
            def __init__(self, elapsed):
                self.elapsed = elapsed
                self.pair = 0
                self.now = 0.0
                self.waiting_stop = False

            def __call__(self):
                if not self.waiting_stop:
                    self.waiting_stop = True
                    return self.now
                self.now += self.elapsed[self.pair % len(self.elapsed)]
                self.pair += 1
                self.waiting_stop = False
                return self.now

        engine = SimulationEngine(
            build_testbed(seed=7), telemetry=TelemetryConfig()
        )
        engine.deadline_guard = ClearingDeadlineGuard(
            0.5, clock=ScriptedClock([0.0, 1.0])
        )
        engine.run(14)
        hits = engine.deadline_guard.hits
        # Even market slots overrun (6 of 13).  Early ones land before
        # any bids exist and bottom out at no_spot; once odd slots have
        # cleared real bids, later overruns re-grant at the last price.
        assert sum(hits.values()) == 6
        assert hits.get("reuse_price", 0) > 0

    def test_fallback_record_respects_capacity_constraints(self):
        bids = [
            RackBid(
                rack_id=f"r{i}",
                pdu_id=f"p{i % 2}",
                tenant_id=f"t{i}",
                demand=LinearBid(80.0, 0.02, 10.0, 0.30),
                rack_cap_w=80.0,
            )
            for i in range(6)
        ]
        frame = BidFrame.from_bids(bids)
        record = SlotMarketRecord(
            result=AllocationResult.empty(),
            bids=tuple(bids),
            payments={},
            frame=frame,
        )
        # Headroom far below total demand at the reused price: the
        # fallback must scale grants down into every cap.
        pdu_spot = {"p0": 90.0, "p1": 70.0}
        forecast = SpotCapacityForecast(pdu_spot_w=pdu_spot, ups_spot_w=120.0)
        fallback, kind = build_fallback_record(record, 0.05, forecast, 15.0)
        assert kind == "reuse_price"
        verify_allocation(
            fallback.result, frame.to_bids(), pdu_spot, 120.0
        )
        assert fallback.result.total_granted_w <= 120.0 + 1e-6

    def test_fallback_without_history_is_no_spot(self):
        record = SlotMarketRecord(
            result=AllocationResult.empty(), bids=(), payments={},
            frame=BidFrame.from_bids([]),
        )
        forecast = SpotCapacityForecast(pdu_spot_w={}, ups_spot_w=0.0)
        fallback, kind = build_fallback_record(record, None, forecast, 15.0)
        assert kind == "no_spot"
        assert fallback.result.total_granted_w == 0.0

    def test_scenario_knob_arms_the_guard(self):
        scenario = dataclasses.replace(
            build_testbed(seed=2), clearing_deadline_s=True
        )
        engine = SimulationEngine(scenario)
        assert engine.deadline_guard is not None
        assert engine.deadline_guard.budget_s == pytest.approx(
            default_budget_s(scenario.slot_seconds)
        )
        assert SimulationEngine(build_testbed(seed=2)).deadline_guard is None


class TestAdmission:
    def _wrapped_scenario(self, seed=7, corruptions=None):
        # Wrap every participating tenant: whichever of them the market
        # dynamics solicit, its bundle arrives corrupted.
        scenario = build_testbed(seed=seed)
        wrappers = []
        for i, tenant in enumerate(scenario.tenants):
            if not tenant.participates:
                continue
            wrapper = MalformedBidTenant(
                tenant, 1.0, make_rng(99 + i), corruptions=corruptions
            )
            scenario.tenants[i] = wrapper
            wrappers.append(wrapper)
        return scenario, wrappers

    def test_malformed_tenant_is_fully_quarantined(self):
        scenario, wrappers = self._wrapped_scenario()
        result = run_simulation(scenario, slots=14)
        assert sum(w.corrupted_bids for w in wrappers) > 0
        for wrapper in wrappers:
            assert (
                result.quarantined_bids.get(wrapper.tenant_id, 0)
                == wrapper.corrupted_bids
            )
            # Never admitted => never granted, never billed.
            assert result.tenant_spot_payment(wrapper.tenant_id) == 0.0

    def test_every_corruption_mode_maps_to_its_reason(self):
        base = RackBid(
            rack_id="r0", pdu_id="p0", tenant_id="t0",
            demand=LinearBid(50.0, 0.02, 5.0, 0.30), rack_cap_w=50.0,
        )
        assert inspect_rack_bid(base) is None
        for mode in MalformedBidTenant.CORRUPTIONS:
            corrupted = MalformedBidTenant._corrupt(base, mode)
            verdict = inspect_rack_bid(corrupted)
            assert verdict is not None, mode
            assert verdict[0] == mode
        assert set(MalformedBidTenant.CORRUPTIONS) == set(QUARANTINE_REASONS)

    def test_bundles_are_never_partially_admitted(self):
        good = RackBid(
            rack_id="r-good", pdu_id="p0", tenant_id="t0",
            demand=LinearBid(40.0, 0.02, 5.0, 0.25), rack_cap_w=40.0,
        )
        bad = MalformedBidTenant._corrupt(
            RackBid(
                rack_id="r-bad", pdu_id="p0", tenant_id="t0",
                demand=LinearBid(40.0, 0.02, 5.0, 0.25), rack_cap_w=40.0,
            ),
            "non_finite",
        )
        admitted, quarantined = screen_bids(
            [TenantBid(tenant_id="t0", rack_bids=(good, bad))]
        )
        assert admitted == []
        assert [q.rack_id for q in quarantined] == ["r-bad"]
        assert quarantined[0].reason == "non_finite"

    def test_quarantines_surface_in_trace_and_invoice(self, tmp_path):
        from repro.economics.settlement import build_invoice

        scenario, wrappers = self._wrapped_scenario()
        result = run_simulation(
            scenario,
            slots=14,
            telemetry=TelemetryConfig(out_dir=tmp_path, label="run"),
        )
        events = [
            r
            for r in read_trace_jsonl(tmp_path / "run_trace.jsonl")
            if r.get("kind") == "event" and r["name"] == "bid.quarantined"
        ]
        total = sum(w.corrupted_bids for w in wrappers)
        assert total > 0
        assert len(events) == total
        assert all(
            e["attrs"]["reason"] in QUARANTINE_REASONS for e in events
        )
        wrapper = max(wrappers, key=lambda w: w.corrupted_bids)
        invoice = build_invoice(result, wrapper.tenant_id)
        assert invoice.quarantined_bids == wrapper.corrupted_bids
        assert invoice.spot_charge == 0.0

    def test_honest_testbed_run_quarantines_nothing(self):
        result = run_simulation(build_testbed(seed=6), slots=8)
        assert result.quarantined_bids == {}


class TestWrapperStateReuse:
    def test_counters_reset_on_prepare(self):
        scenario = build_testbed(seed=1)
        inner = next(t for t in scenario.tenants if t.participates)
        over = OverdrawingTenant(inner, 0.5, 0.1, make_rng(0))
        over.overdraw_slots = 7
        over.prepare(10, make_rng(1))
        assert over.overdraw_slots == 0
        malformed = MalformedBidTenant(inner, 0.5, make_rng(0))
        malformed.corrupted_bids = 4
        malformed.prepare(10, make_rng(1))
        assert malformed.corrupted_bids == 0
