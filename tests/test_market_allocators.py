"""Allocators: SpotDC market orchestration, PowerCapped, MaxPerf."""

import pytest

from repro.core.baselines import MaxPerfAllocator, PowerCappedAllocator
from repro.core.market import SpotDCAllocator
from repro.errors import ConfigurationError
from repro.prediction.spot import SpotCapacityForecast
from repro.sim.scenario import testbed_scenario as build_testbed


@pytest.fixture(scope="module")
def prepared_scenario():
    scenario = build_testbed(seed=3)
    scenario.prepare(800)
    return scenario


def find_active_slot(scenario, min_racks=2):
    for slot in range(1, 800):
        requesting = [
            rid
            for tenant in scenario.participating_tenants()
            for rid in tenant.needed_spot_w(slot)
        ]
        if len(requesting) >= min_racks:
            return slot, requesting
    pytest.fail("no active slot found")


def forecast_for(scenario, watts_per_pdu=120.0):
    pdu_spot = {pdu_id: watts_per_pdu for pdu_id in scenario.topology.pdus}
    return SpotCapacityForecast(pdu_spot_w=pdu_spot, ups_spot_w=1.5 * watts_per_pdu)


class TestSpotDCAllocator:
    def test_allocates_to_requesting_racks(self, prepared_scenario):
        slot, requesting = find_active_slot(prepared_scenario)
        allocator = SpotDCAllocator()
        record = allocator.allocate(
            slot,
            prepared_scenario.participating_tenants(),
            forecast_for(prepared_scenario),
            slot_seconds=120.0,
        )
        assert record.result.total_granted_w > 0
        assert set(record.result.grants_w) <= set(requesting)

    def test_payments_match_grants(self, prepared_scenario):
        slot, _ = find_active_slot(prepared_scenario)
        allocator = SpotDCAllocator()
        record = allocator.allocate(
            slot,
            prepared_scenario.participating_tenants(),
            forecast_for(prepared_scenario),
            slot_seconds=120.0,
        )
        expected_total = (
            record.result.total_granted_w / 1000.0
        ) * record.result.price * (120.0 / 3600.0)
        assert sum(record.payments.values()) == pytest.approx(expected_total)

    def test_zero_forecast_grants_nothing(self, prepared_scenario):
        slot, _ = find_active_slot(prepared_scenario)
        allocator = SpotDCAllocator()
        empty = SpotCapacityForecast(
            pdu_spot_w={p: 0.0 for p in prepared_scenario.topology.pdus},
            ups_spot_w=0.0,
        )
        record = allocator.allocate(
            slot, prepared_scenario.participating_tenants(), empty, 120.0
        )
        assert record.result.total_granted_w == 0.0

    def test_oracle_rebid_runs_two_passes(self, prepared_scenario):
        slot, _ = find_active_slot(prepared_scenario)
        allocator = SpotDCAllocator(oracle_rebid=True)
        record = allocator.allocate(
            slot,
            prepared_scenario.participating_tenants(),
            forecast_for(prepared_scenario),
            120.0,
        )
        # The oracle pass must still produce a valid, payment-consistent
        # outcome (content equality with single-pass is not required).
        assert sum(record.payments.values()) == pytest.approx(
            record.result.revenue_for_slot(120.0)
        )

    def test_quiet_slot_empty_outcome(self, prepared_scenario):
        # Find a slot where nobody wants spot capacity.
        for slot in range(1, 800):
            if not any(
                t.needed_spot_w(slot)
                for t in prepared_scenario.participating_tenants()
            ):
                record = SpotDCAllocator().allocate(
                    slot,
                    prepared_scenario.participating_tenants(),
                    forecast_for(prepared_scenario),
                    120.0,
                )
                assert record.result.total_granted_w == 0.0
                return
        pytest.fail("no quiet slot found")


class TestPowerCapped:
    def test_never_allocates(self, prepared_scenario):
        slot, _ = find_active_slot(prepared_scenario)
        record = PowerCappedAllocator().allocate(
            slot,
            prepared_scenario.participating_tenants(),
            forecast_for(prepared_scenario),
            120.0,
        )
        assert record.result.total_granted_w == 0.0
        assert record.payments == {}

    def test_flags(self):
        allocator = PowerCappedAllocator()
        assert not allocator.charges_tenants
        assert not allocator.provisions_spot


class TestMaxPerf:
    def test_respects_constraints(self, prepared_scenario):
        slot, _ = find_active_slot(prepared_scenario)
        forecast = forecast_for(prepared_scenario, watts_per_pdu=60.0)
        record = MaxPerfAllocator().allocate(
            slot, prepared_scenario.participating_tenants(), forecast, 120.0
        )
        total = record.result.total_granted_w
        assert total <= forecast.ups_spot_w + 1e-6
        by_pdu: dict[str, float] = {}
        racks = {
            r.rack_id: r
            for t in prepared_scenario.participating_tenants()
            for r in t.racks
        }
        for rack_id, grant in record.result.grants_w.items():
            rack = racks[rack_id]
            assert grant <= rack.max_spot_w + 1e-6
            by_pdu[rack.pdu_id] = by_pdu.get(rack.pdu_id, 0.0) + grant
        for pdu_id, granted in by_pdu.items():
            assert granted <= forecast.pdu_spot_w[pdu_id] + 1e-6

    def test_no_payments(self, prepared_scenario):
        slot, _ = find_active_slot(prepared_scenario)
        record = MaxPerfAllocator().allocate(
            slot,
            prepared_scenario.participating_tenants(),
            forecast_for(prepared_scenario),
            120.0,
        )
        assert record.payments == {}
        assert record.result.price == 0.0
        assert record.result.revenue_rate == 0.0

    def test_allocates_at_least_as_much_as_market(self, prepared_scenario):
        # With no payments and positive marginal value everywhere, the
        # welfare allocator should hand out at least as much capacity as
        # the profit-maximising market.
        slot, _ = find_active_slot(prepared_scenario)
        forecast = forecast_for(prepared_scenario)
        market = SpotDCAllocator().allocate(
            slot, prepared_scenario.participating_tenants(), forecast, 120.0
        )
        welfare = MaxPerfAllocator().allocate(
            slot, prepared_scenario.participating_tenants(), forecast, 120.0
        )
        assert (
            welfare.result.total_granted_w
            >= market.result.total_granted_w - 1e-6
        )

    def test_increment_validation(self):
        with pytest.raises(ConfigurationError):
            MaxPerfAllocator(increment_w=0.0)
        with pytest.raises(ConfigurationError):
            MaxPerfAllocator(max_steps=0)

    def test_greedy_prefers_higher_marginal_value(self, prepared_scenario):
        # Under a tiny supply, the watts must flow to the rack with the
        # highest marginal gain.
        slot, requesting = find_active_slot(prepared_scenario, min_racks=2)
        tenants = prepared_scenario.participating_tenants()
        tiny = SpotCapacityForecast(
            pdu_spot_w={p: 8.0 for p in prepared_scenario.topology.pdus},
            ups_spot_w=8.0,
        )
        record = MaxPerfAllocator(increment_w=1.0).allocate(
            slot, tenants, tiny, 120.0
        )
        assert 0 < record.result.total_granted_w <= 8.0 + 1e-9
        # The chosen racks' initial marginal value must be at least that
        # of every unserved rack (greedy optimality spot check).
        curves = {}
        for tenant in tenants:
            needed = tenant.needed_spot_w(slot)
            if needed:
                for rid, curve in tenant.value_curves(slot).items():
                    if rid in needed:
                        curves[rid] = curve
        served = {r for r, g in record.result.grants_w.items() if g > 0}
        unserved = set(curves) - served
        if served and unserved:
            min_served = min(
                curves[r].marginal_gain_per_hour(0.0) for r in served
            )
            max_unserved = max(
                curves[r].marginal_gain_per_hour(0.0) for r in unserved
            )
            assert min_served >= max_unserved - 1e-9
