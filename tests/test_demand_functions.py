"""Demand functions: LinearBid, StepBid, FullBid."""

import numpy as np
import pytest

from repro.core.demand import FullBid, LinearBid, StepBid
from repro.errors import BidError


class TestLinearBid:
    def test_flat_segment(self):
        bid = LinearBid(100.0, 0.1, 20.0, 0.4)
        assert bid.demand_at(0.0) == 100.0
        assert bid.demand_at(0.1) == 100.0

    def test_linear_segment_midpoint(self):
        bid = LinearBid(100.0, 0.1, 20.0, 0.4)
        assert bid.demand_at(0.25) == pytest.approx(60.0)

    def test_minimum_at_max_price(self):
        bid = LinearBid(100.0, 0.1, 20.0, 0.4)
        assert bid.demand_at(0.4) == pytest.approx(20.0)

    def test_zero_above_max_price(self):
        bid = LinearBid(100.0, 0.1, 20.0, 0.4)
        assert bid.demand_at(0.41) == 0.0

    def test_degenerate_step_via_equal_quantities(self):
        bid = LinearBid(50.0, 0.1, 50.0, 0.3)
        assert bid.demand_at(0.2) == 50.0
        assert bid.demand_at(0.31) == 0.0

    def test_degenerate_step_via_equal_prices(self):
        bid = LinearBid(80.0, 0.2, 30.0, 0.2)
        assert bid.demand_at(0.2) == 80.0
        assert bid.demand_at(0.2000001) == 0.0

    def test_grid_matches_scalar(self):
        bid = LinearBid(100.0, 0.1, 20.0, 0.4)
        prices = np.linspace(0, 0.5, 101)
        grid = bid.demand_grid(prices)
        scalar = np.array([bid.demand_at(float(p)) for p in prices])
        assert np.allclose(grid, scalar)

    def test_monotone_non_increasing(self):
        bid = LinearBid(100.0, 0.1, 20.0, 0.4)
        assert bid.validate_monotone(np.linspace(0, 1, 50))

    def test_parameters_roundtrip(self):
        bid = LinearBid(100.0, 0.1, 20.0, 0.4)
        assert bid.as_parameters() == (100.0, 0.1, 20.0, 0.4)

    def test_max_properties(self):
        bid = LinearBid(100.0, 0.1, 20.0, 0.4)
        assert bid.max_demand_w == 100.0
        assert bid.max_price == 0.4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(d_max_w=-1.0, q_min=0.1, d_min_w=0.0, q_max=0.2),
            dict(d_max_w=10.0, q_min=0.1, d_min_w=20.0, q_max=0.2),
            dict(d_max_w=10.0, q_min=-0.1, d_min_w=5.0, q_max=0.2),
            dict(d_max_w=10.0, q_min=0.3, d_min_w=5.0, q_max=0.2),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(BidError):
            LinearBid(**kwargs)


class TestStepBid:
    def test_all_or_nothing(self):
        bid = StepBid(60.0, 0.25)
        assert bid.demand_at(0.25) == 60.0
        assert bid.demand_at(0.2500001) == 0.0
        assert bid.demand_at(0.0) == 60.0

    def test_grid_matches_scalar(self):
        bid = StepBid(60.0, 0.25)
        prices = np.linspace(0, 0.5, 51)
        assert np.allclose(
            bid.demand_grid(prices),
            [bid.demand_at(float(p)) for p in prices],
        )

    def test_rejects_negatives(self):
        with pytest.raises(BidError):
            StepBid(-1.0, 0.2)
        with pytest.raises(BidError):
            StepBid(10.0, -0.2)

    def test_zero_demand_is_valid(self):
        assert StepBid(0.0, 0.2).demand_at(0.1) == 0.0


class TestFullBid:
    @staticmethod
    def concave_gain(d):
        return 10.0 * (1.0 - np.exp(-d / 50.0))

    def test_from_value_curve_monotone_in_price(self):
        bid = FullBid.from_value_curve(self.concave_gain, 200.0)
        prices = np.linspace(0.001, 300.0, 100)
        demands = [bid.demand_at(float(p)) for p in prices]
        assert all(a >= b for a, b in zip(demands, demands[1:]))

    def test_demand_at_zero_price_is_max(self):
        bid = FullBid.from_value_curve(self.concave_gain, 200.0)
        assert bid.demand_at(0.0) == pytest.approx(200.0)

    def test_demand_inverts_marginal_value(self):
        # gain'(d) = (10/50) e^{-d/50} $/W/h -> at price q ($/kW/h),
        # demand solves e^{-d/50} = q / 200.
        bid = FullBid.from_value_curve(self.concave_gain, 400.0, grid_points=800)
        q = 50.0
        expected = -50.0 * np.log(q / 200.0)
        assert bid.demand_at(q) == pytest.approx(expected, rel=0.05)

    def test_grid_matches_scalar(self):
        bid = FullBid.from_value_curve(self.concave_gain, 200.0)
        prices = np.linspace(0, 250.0, 200)
        assert np.allclose(
            bid.demand_grid(prices),
            [bid.demand_at(float(p)) for p in prices],
        )

    def test_price_cap_zeroes_demand_above(self):
        bid = FullBid.from_value_curve(self.concave_gain, 200.0, price_cap=0.3)
        assert bid.demand_at(0.30) > 0.0
        assert bid.demand_at(0.31) == 0.0
        assert bid.max_price == pytest.approx(0.3)

    def test_price_cap_in_grid(self):
        bid = FullBid.from_value_curve(self.concave_gain, 200.0, price_cap=0.3)
        grid = bid.demand_grid(np.array([0.1, 0.3, 0.5]))
        assert grid[0] > 0 and grid[1] > 0 and grid[2] == 0.0

    def test_rejects_increasing_marginals(self):
        with pytest.raises(BidError):
            FullBid([10.0, 20.0], [0.1, 0.2])

    def test_rejects_non_increasing_demands(self):
        with pytest.raises(BidError):
            FullBid([20.0, 10.0], [0.2, 0.1])

    def test_rejects_empty(self):
        with pytest.raises(BidError):
            FullBid([], [])

    def test_rejects_misaligned(self):
        with pytest.raises(BidError):
            FullBid([10.0, 20.0], [0.3])

    def test_rejects_bad_construction_args(self):
        with pytest.raises(BidError):
            FullBid.from_value_curve(self.concave_gain, 0.0)
        with pytest.raises(BidError):
            FullBid.from_value_curve(self.concave_gain, 10.0, grid_points=1)
