"""Property-based parity: object-path vs BidFrame-path clearing.

The columnar pipeline (`BidFrame` + breakpoint-sweep demand totals) is
the default; the object-at-a-time path (``columnar=False``) is the seed
reference.  Across random facilities — all three bid kinds, uniform and
per-PDU pricing, extra phase/heat constraints — the two must produce
identical prices and (to float-summation noise) identical grants and
profit.  Grant extraction is bit-identical by construction (both paths
evaluate each bid's own demand at the clearing price), so grants are
compared with a tight absolute tolerance only to absorb the demand-total
reordering that may, in principle, shift the scan's feasibility edge.

Watt-scale draws are bounded away from float epsilon (a value is either
exactly zero or >= 0.01 W): at ~1e-16 W caps *every* candidate revenue
is pure rounding noise (~1e-20 $/h), and which grid price "wins" such a
degenerate all-tie landscape is not a meaningful parity property.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MarketParameters
from repro.core.bids import RackBid
from repro.core.clearing import MarketClearing
from repro.core.demand import FullBid, LinearBid, StepBid
from repro.core.frame import BidFrame
from repro.core.market import SpotDCAllocator
from repro.infrastructure.constraints import CapacityConstraint

PARAMS = MarketParameters(price_step=0.01)


def _watts(upper):
    """A watt value: exactly zero, or bounded away from float noise."""
    return st.one_of(
        st.just(0.0), st.floats(min_value=0.01, max_value=upper)
    )


def _engines():
    frame_engine = MarketClearing(params=PARAMS)
    object_engine = MarketClearing(params=PARAMS, columnar=False)
    return frame_engine, object_engine


@st.composite
def full_bid(draw):
    n_pts = draw(st.integers(min_value=1, max_value=4))
    increments = [
        draw(st.floats(min_value=0.5, max_value=30.0)) for _ in range(n_pts)
    ]
    demands = np.cumsum(increments)
    marginals = sorted(
        (
            draw(st.floats(min_value=0.0, max_value=0.0005))
            for _ in range(n_pts)
        ),
        reverse=True,
    )
    cap = draw(
        st.one_of(st.none(), st.floats(min_value=0.01, max_value=0.45))
    )
    return FullBid(demands, marginals, price_cap=cap)


@st.composite
def market_instances(draw, constraints=False):
    n_racks = draw(st.integers(min_value=1, max_value=10))
    n_pdus = draw(st.integers(min_value=1, max_value=3))
    bids = []
    for i in range(n_racks):
        kind = draw(st.sampled_from(["linear", "step", "full"]))
        if kind == "full":
            demand = draw(full_bid())
        else:
            d_min = draw(_watts(40.0))
            d_max = d_min + draw(_watts(80.0))
            q_min = draw(st.floats(min_value=0.0, max_value=0.3))
            q_max = q_min + draw(st.floats(min_value=0.001, max_value=0.4))
            demand = (
                StepBid(d_max, q_max)
                if kind == "step"
                else LinearBid(d_max, q_min, d_min, q_max)
            )
        bids.append(
            RackBid(
                rack_id=f"r{i}",
                pdu_id=f"p{i % n_pdus}",
                tenant_id=f"t{i % max(1, n_racks // 2)}",
                demand=demand,
                rack_cap_w=draw(_watts(150.0)),
            )
        )
    pdu_spot = {f"p{j}": draw(_watts(200.0)) for j in range(n_pdus)}
    ups_spot = draw(_watts(400.0))
    extra = []
    if constraints:
        for k in range(draw(st.integers(min_value=0, max_value=2))):
            members = draw(
                st.sets(
                    st.sampled_from([b.rack_id for b in bids]), min_size=1
                )
            )
            extra.append(
                CapacityConstraint(
                    name=f"zone{k}",
                    rack_ids=frozenset(members),
                    cap_w=draw(_watts(120.0)),
                )
            )
    return bids, pdu_spot, ups_spot, tuple(extra)


def _assert_results_match(frame_result, object_result):
    assert frame_result.price == object_result.price
    assert frame_result.candidate_prices == object_result.candidate_prices
    assert frame_result.revenue_rate == pytest.approx(
        object_result.revenue_rate, abs=1e-9
    )
    assert set(frame_result.grants_w) == set(object_result.grants_w)
    for rack_id, grant in object_result.grants_w.items():
        assert frame_result.grants_w[rack_id] == pytest.approx(
            grant, abs=1e-9
        )


class TestUniformPricingParity:
    @given(data=market_instances())
    @settings(max_examples=150, deadline=None)
    def test_paths_identical(self, data):
        bids, pdu_spot, ups_spot, _ = data
        frame_engine, object_engine = _engines()
        _assert_results_match(
            frame_engine.clear(bids, pdu_spot, ups_spot),
            object_engine.clear(bids, pdu_spot, ups_spot),
        )

    @given(data=market_instances(constraints=True))
    @settings(max_examples=100, deadline=None)
    def test_paths_identical_with_constraints(self, data):
        bids, pdu_spot, ups_spot, extra = data
        frame_engine, object_engine = _engines()
        _assert_results_match(
            frame_engine.clear(bids, pdu_spot, ups_spot, extra),
            object_engine.clear(bids, pdu_spot, ups_spot, extra),
        )

    @given(data=market_instances())
    @settings(max_examples=60, deadline=None)
    def test_prebuilt_frame_equals_adapter(self, data):
        # Clearing a prebuilt frame and letting clear() adapt the object
        # list must be the same computation.
        bids, pdu_spot, ups_spot, _ = data
        frame_engine, _ = _engines()
        via_objects = frame_engine.clear(bids, pdu_spot, ups_spot)
        via_frame = frame_engine.clear(
            BidFrame.from_bids(bids), pdu_spot, ups_spot
        )
        assert via_frame.price == via_objects.price
        assert via_frame.grants_w == via_objects.grants_w
        assert via_frame.revenue_rate == via_objects.revenue_rate


class TestPerPduPricingParity:
    @given(data=market_instances())
    @settings(max_examples=100, deadline=None)
    def test_paths_identical(self, data):
        bids, pdu_spot, ups_spot, _ = data
        frame_engine, object_engine = _engines()
        frame_result = frame_engine.clear_per_pdu(bids, pdu_spot, ups_spot)
        object_result = object_engine.clear_per_pdu(bids, pdu_spot, ups_spot)
        assert frame_result.pdu_prices == object_result.pdu_prices
        assert frame_result.price == pytest.approx(
            object_result.price, abs=1e-9
        )
        assert frame_result.revenue_rate == pytest.approx(
            object_result.revenue_rate, abs=1e-9
        )
        for rack_id, grant in object_result.grants_w.items():
            assert frame_result.grants_w[rack_id] == pytest.approx(
                grant, abs=1e-9
            )

    @given(data=market_instances(constraints=True))
    @settings(max_examples=80, deadline=None)
    def test_paths_identical_with_constraints(self, data):
        bids, pdu_spot, ups_spot, extra = data
        frame_engine, object_engine = _engines()
        frame_result = frame_engine.clear_per_pdu(
            bids, pdu_spot, ups_spot, extra
        )
        object_result = object_engine.clear_per_pdu(
            bids, pdu_spot, ups_spot, extra
        )
        assert frame_result.pdu_prices == object_result.pdu_prices
        for rack_id, grant in object_result.grants_w.items():
            assert frame_result.grants_w[rack_id] == pytest.approx(
                grant, abs=1e-9
            )


class TestDemandKernelParity:
    @given(data=market_instances())
    @settings(max_examples=80, deadline=None)
    def test_demand_matrix_matches_per_bid_grids(self, data):
        bids, _, _, _ = data
        frame = BidFrame.from_bids(bids)
        prices = MarketClearing(params=PARAMS).candidate_prices(frame)
        matrix = frame.demand_matrix(prices)
        for row, bid in enumerate(frame.to_bids()):
            expected = np.minimum(
                bid.demand.demand_grid(prices), bid.rack_cap_w
            )
            np.testing.assert_array_equal(matrix[row], expected)

    @given(data=market_instances(constraints=True))
    @settings(max_examples=80, deadline=None)
    def test_demand_totals_match_matrix_sums(self, data):
        bids, _, _, extra = data
        frame = BidFrame.from_bids(bids)
        prices = MarketClearing(params=PARAMS).candidate_prices(frame)
        group_rows = [frame.rows_for(c.rack_ids) for c in extra]
        totals, group_totals = frame.demand_totals(prices, group_rows)
        matrix = frame.demand_matrix(prices)
        expected = frame.pdu_demand(matrix)
        np.testing.assert_allclose(totals, expected, atol=1e-8)
        for k, rows in enumerate(group_rows):
            np.testing.assert_allclose(
                group_totals[k], matrix[rows].sum(axis=0), atol=1e-8
            )

    def test_demand_totals_exactly_zero_past_all_caps(self):
        # Float cancellation in the sweep must not leave phantom demand
        # above every bid's acceptable price.
        bids = [
            RackBid(
                rack_id=f"r{i}",
                pdu_id="p0",
                tenant_id="t0",
                demand=LinearBid(50.0 + i, 0.05, 10.0 + i, 0.2),
                rack_cap_w=100.0,
            )
            for i in range(5)
        ]
        frame = BidFrame.from_bids(bids)
        prices = np.array([0.1, 0.2, 0.25, 0.9])
        totals, _ = frame.demand_totals(prices)
        assert totals[0, 2] == 0.0
        assert totals[0, 3] == 0.0


class TestSettlementParity:
    @given(data=market_instances())
    @settings(max_examples=80, deadline=None)
    def test_settle_matches_object_billing(self, data):
        bids, pdu_spot, ups_spot, _ = data
        frame_engine, _ = _engines()
        frame = BidFrame.from_bids(bids)
        result = frame_engine.clear_per_pdu(frame, pdu_spot, ups_spot)
        expected = SpotDCAllocator._payments(result, bids, 120.0)
        _, payments = frame.settle(
            result.grants_w, result.pdu_prices, result.price, 120.0
        )
        assert set(payments) == set(expected)
        for tenant_id, dollars in expected.items():
            assert payments[tenant_id] == pytest.approx(dollars, abs=1e-12)


class TestFrameAdapter:
    def _bids(self):
        return [
            RackBid(
                rack_id=f"r{i}",
                pdu_id=f"p{i % 2}",
                tenant_id=f"t{i % 3}",
                demand=LinearBid(40.0 + i, 0.05, 10.0, 0.3),
                rack_cap_w=60.0,
            )
            for i in range(6)
        ]

    def test_round_trip_preserves_bid_objects(self):
        bids = self._bids()
        frame = BidFrame.from_bids(bids)
        returned = frame.to_bids()
        assert sorted(b.rack_id for b in returned) == sorted(
            b.rack_id for b in bids
        )
        originals = {b.rack_id: b for b in bids}
        for b in returned:
            assert b is originals[b.rack_id]

    def test_rows_sorted_by_pdu(self):
        frame = BidFrame.from_bids(self._bids())
        assert list(frame.pdu_code) == sorted(frame.pdu_code)

    def test_from_arrays_equals_object_bids(self):
        bids = self._bids()
        frame = BidFrame.from_arrays(
            rack_ids=[b.rack_id for b in bids],
            pdu_ids=[b.pdu_id for b in bids],
            tenant_ids=[b.tenant_id for b in bids],
            d_max_w=[b.demand.d_max_w for b in bids],
            q_min=[b.demand.q_min for b in bids],
            d_min_w=[b.demand.d_min_w for b in bids],
            q_max=[b.demand.q_max for b in bids],
            rack_cap_w=[b.rack_cap_w for b in bids],
        )
        pdu_spot = {"p0": 90.0, "p1": 70.0}
        engine, _ = _engines()
        from_arrays = engine.clear(frame, pdu_spot, 140.0)
        from_objects = engine.clear(bids, pdu_spot, 140.0)
        assert from_arrays.price == from_objects.price
        assert from_arrays.grants_w == from_objects.grants_w

    def test_pdu_slices_partition_frame(self):
        frame = BidFrame.from_bids(self._bids())
        slices = frame.pdu_slices()
        assert [pdu_id for pdu_id, _ in slices] == list(frame.pdu_ids)
        racks = [rid for _, sub in slices for rid in sub.rack_ids]
        assert racks == list(frame.rack_ids)
        for pdu_id, sub in slices:
            assert set(sub.pdu_code.tolist()) == {0}
            assert sub.pdu_ids == (pdu_id,)
