"""The market daemon: protocol, ingestion, slot loop, replay, transport."""

import json

import pytest

from repro.daemon import (
    DaemonClient,
    MarketDaemon,
    decode_line,
    default_key,
    encode_message,
    parse_submission,
    read_records,
    stored_tenant_bid,
)
from repro.daemon.chaos import InProcessServer, short_socket_path, synthetic_bundle
from repro.daemon.server import DaemonServer
from repro.errors import ConfigurationError, DaemonError, ProtocolError
from repro.sim.scenario import testbed_scenario as make_scenario

SEED = 11
SLOTS = 4


def make_daemon(state_dir, slots=SLOTS, **kwargs):
    return MarketDaemon(make_scenario(seed=SEED), slots, state_dir, **kwargs)


def rack_infos(daemon, tenant_id):
    return [
        {"rack_id": rack.rack_id, "max_spot_w": rack.max_spot_w}
        for _, rack in sorted(daemon.racks_of_tenant[tenant_id].items())
    ]


def bundle_for(daemon, tenant_id, slot, seed=SEED):
    return synthetic_bundle(seed, tenant_id, slot, rack_infos(daemon, tenant_id))


def submit_message(daemon, tenant_id, slot, **overrides):
    message = {
        "op": "submit",
        "key": default_key(tenant_id, slot),
        "tenant_id": tenant_id,
        "slot": slot,
        "racks": bundle_for(daemon, tenant_id, slot),
    }
    message.update(overrides)
    return message


class TestProtocol:
    def test_encode_decode_roundtrip_and_sorted_keys(self):
        line = encode_message({"b": 1, "a": {"z": 2, "y": 3}})
        assert line == b'{"a": {"y": 3, "z": 2}, "b": 1}\n'
        assert decode_line(line) == {"b": 1, "a": {"z": 2, "y": 3}}

    def test_decode_rejects_garbage_and_non_objects(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_line(b"not json\n")
        with pytest.raises(ProtocolError, match="JSON objects"):
            decode_line(b"[1, 2]\n")

    def test_parse_submission_canonicalises(self, tmp_path):
        daemon = make_daemon(tmp_path)
        try:
            message = submit_message(daemon, "Search-1", 1)
            message["racks"] = list(reversed(message["racks"]))
            stored = parse_submission(message, daemon.racks_of_tenant)
            assert stored["key"] == "Search-1:1"
            assert stored["slot"] == 1
            rack_ids = [r["rack_id"] for r in stored["racks"]]
            assert rack_ids == sorted(rack_ids)
            bundle = stored_tenant_bid(stored, daemon.racks_of_tenant)
            assert bundle.tenant_id == "Search-1"
            assert len(bundle.rack_bids) == len(rack_ids)
            # Server-authoritative fields come from the topology.
            for bid in bundle.rack_bids:
                rack = daemon.racks_of_tenant["Search-1"][bid.rack_id]
                assert bid.pdu_id == rack.pdu_id
                assert bid.rack_cap_w == rack.max_spot_w
        finally:
            daemon.close()

    @pytest.mark.parametrize(
        "mutate, code",
        [
            (lambda m: m.pop("key"), "bad_request"),
            (lambda m: m.update(slot="one"), "bad_request"),
            (lambda m: m.update(racks=[]), "bad_request"),
            (lambda m: m.update(tenant_id="Nobody"), "unknown_tenant"),
            (
                lambda m: m["racks"][0].update(rack_id="rack:stolen"),
                "unknown_rack",
            ),
            (
                lambda m: m.update(racks=m["racks"] + [m["racks"][0]]),
                "malformed_bundle",
            ),
            (
                lambda m: m["racks"][0]["demand"].update(kind="cubic"),
                "malformed_bundle",
            ),
            (
                # d_max above the rack's physical cap: the admission
                # front door rejects at ingestion.
                lambda m: m["racks"][0]["demand"].update(d_max_w=1e9),
                "malformed_bundle",
            ),
        ],
    )
    def test_rejection_codes(self, tmp_path, mutate, code):
        daemon = make_daemon(tmp_path)
        try:
            message = submit_message(daemon, "Search-1", 1)
            mutate(message)
            with pytest.raises(ProtocolError) as exc:
                parse_submission(message, daemon.racks_of_tenant)
            assert exc.value.code == code
        finally:
            daemon.close()


class TestIngestion:
    def test_accept_then_redeliver_is_idempotent(self, tmp_path):
        daemon = make_daemon(tmp_path)
        try:
            message = submit_message(daemon, "Web", 2)
            first = daemon.handle_submit(message)
            assert first["ok"] and first["status"] == "accepted"
            again = daemon.handle_submit(message)
            assert again == first
            assert len(daemon._pending[2]) == 1  # no double entry
        finally:
            daemon.close()

    def test_same_slot_different_key_rejected(self, tmp_path):
        daemon = make_daemon(tmp_path)
        try:
            daemon.handle_submit(submit_message(daemon, "Web", 2))
            response = daemon.handle_submit(
                submit_message(daemon, "Web", 2, key="retry-under-new-key")
            )
            assert not response["ok"]
            assert response["error"]["code"] == "already_submitted"
        finally:
            daemon.close()

    def test_slot_bounds(self, tmp_path):
        daemon = make_daemon(tmp_path)
        try:
            early = daemon.handle_submit(submit_message(daemon, "Web", 0))
            assert early["error"]["code"] == "too_late"
            late = daemon.handle_submit(submit_message(daemon, "Web", SLOTS))
            assert late["error"]["code"] == "beyond_horizon"
        finally:
            daemon.close()

    def test_cleared_slot_is_too_late(self, tmp_path):
        daemon = make_daemon(tmp_path)
        try:
            daemon.process_next_slot()  # slot 0
            daemon.process_next_slot()  # slot 1
            response = daemon.handle_submit(submit_message(daemon, "Web", 1))
            assert response["error"]["code"] == "too_late"
        finally:
            daemon.close()

    def test_overflow_sheds_oldest(self, tmp_path):
        daemon = make_daemon(tmp_path, max_pending=2)
        try:
            for tenant in ("Search-1", "Web", "Sort"):
                response = daemon.handle_submit(
                    submit_message(daemon, tenant, 1)
                )
                assert response["ok"]  # the newcomer is always accepted
            queue = daemon._pending[1]
            assert [e["tenant_id"] for e in queue] == ["Web", "Sort"]
            # The shed bundle's key now resolves to a machine-readable
            # shed rejection — including on redelivery.
            shed = daemon.handle_submit(submit_message(daemon, "Search-1", 1))
            assert not shed["ok"]
            assert shed["error"]["code"] == "shed"
        finally:
            daemon.close()


class TestSlotLoop:
    def test_run_to_completion_and_finalize(self, tmp_path):
        daemon = make_daemon(tmp_path)
        try:
            for tenant in daemon.racks_of_tenant:
                for slot in range(1, SLOTS):
                    assert daemon.handle_submit(
                        submit_message(daemon, tenant, slot)
                    )["ok"]
            records = [daemon.process_next_slot() for _ in range(SLOTS)]
            assert [r["slot"] for r in records] == list(range(SLOTS))
            assert records[0]["submitted"] == []  # slot 0 has no market
            assert len(records[1]["submitted"]) == 10
            assert daemon.done
            invoices = daemon.invoices()["invoices"]
            assert set(invoices) == set(daemon.racks_of_tenant)
            for entry in invoices.values():
                assert set(entry) == {
                    "subscription", "energy", "spot", "credited", "total",
                }
            with pytest.raises(DaemonError, match="run complete"):
                daemon.process_next_slot()
            # The journal carries every slot record plus the invoices.
            records_on_disk = read_records(tmp_path / "market.jsonl")
            assert [r["kind"] for r in records_on_disk] == (
                ["slot"] * SLOTS + ["invoices"]
            )
            assert records_on_disk[-1]["invoices"] == invoices
        finally:
            daemon.close()

    def test_journal_bytes_are_deterministic(self, tmp_path):
        def run(state_dir):
            # Same seed, same arrival order — the exact replay contract
            # the WAL guarantees across a crash/resume.
            daemon = make_daemon(state_dir)
            try:
                for tenant in sorted(daemon.racks_of_tenant):
                    for slot in range(1, SLOTS):
                        daemon.handle_submit(submit_message(daemon, tenant, slot))
                while not daemon.done:
                    daemon.process_next_slot()
            finally:
                daemon.close()
            return (state_dir / "market.jsonl").read_bytes()

        a = run(tmp_path / "a")
        b = run(tmp_path / "b")
        assert a == b

    def test_config_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="max_pending"):
            make_daemon(tmp_path, max_pending=0)
        with pytest.raises(ConfigurationError, match="kill_point"):
            make_daemon(tmp_path, kill_point="mid_air")


class TestReplay:
    def test_restart_rebuilds_queues_and_keys(self, tmp_path):
        first = make_daemon(tmp_path)
        ack = {}
        try:
            first.process_next_slot()  # slot 0: writes a checkpoint
            for tenant in ("Search-1", "Web"):
                for slot in (1, 2):
                    ack[(tenant, slot)] = first.handle_submit(
                        submit_message(first, tenant, slot)
                    )
        finally:
            first.close()
        second = make_daemon(tmp_path, resume=True)
        try:
            assert second.next_slot == 1
            assert {s: len(q) for s, q in second._pending.items()} == {1: 2, 2: 2}
            # Redelivery against the rebuilt map returns the stored ack.
            for (tenant, slot), original in ack.items():
                assert second.handle_submit(
                    submit_message(second, tenant, slot)
                ) == original
            while not second.done:
                second.process_next_slot()
            assert second.invoices()["ok"]
        finally:
            second.close()


class TestServerTransport:
    def test_manual_session_end_to_end(self, tmp_path):
        daemon = make_daemon(tmp_path, slots=3)
        socket_path = short_socket_path()
        server = InProcessServer(daemon, socket_path).start()
        with DaemonClient(socket_path) as client:
            hello = client.hello()
            assert hello["ok"] and hello["manual"] and hello["slots"] == 3
            directory = client.describe()["tenants"]
            assert len(directory) == 10
            for tenant_id, info in sorted(directory.items()):
                response = client.submit(
                    tenant_id,
                    1,
                    synthetic_bundle(SEED, tenant_id, 1, info["racks"]),
                )
                assert response["ok"], response
            status = client.status()
            assert status["pending"] == {"1": 10}
            assert client.invoices()["error"]["code"] == "not_ready"
            assert client.result(1)["error"]["code"] == "not_ready"
            ticks = [client.tick() for _ in range(3)]
            assert [t["slot"] for t in ticks] == [0, 1, 2]
            assert ticks[-1]["done"]
            assert client.tick() == {
                "ok": True, "op": "tick", "done": True, "slot": None,
            }
            record = client.result(1)["record"]
            assert record["submitted"] == sorted(
                f"{tenant}:1" for tenant in directory
            )
            assert client.invoices()["ok"]
            unknown = client.request({"op": "dance"})
            assert unknown["error"]["code"] == "unknown_op"
            bad = client.request({"op": "result", "slot": "one"})
            assert bad["error"]["code"] == "bad_request"
            client.shutdown()
        server.join()
        assert server.crash is None

    def test_wall_clock_session(self, tmp_path):
        daemon = make_daemon(tmp_path, slots=3)
        socket_path = short_socket_path()
        server = InProcessServer(daemon, socket_path)
        server.server = DaemonServer(daemon, socket_path, tick_seconds=0.02)
        server.start()
        with DaemonClient(socket_path) as client:
            assert client.hello()["manual"] is False
            assert client.tick()["error"]["code"] == "bad_request"
            client.wait_done(budget=30.0)
            assert client.invoices()["ok"]
            client.shutdown()
        server.join()

    def test_client_raises_after_retry_budget(self, tmp_path):
        client = DaemonClient(
            tmp_path / "never-bound.sock",
            retries=2,
            backoff_base=0.001,
            timeout=0.2,
        )
        with pytest.raises(DaemonError, match="unreachable"):
            client.hello()

    def test_tick_seconds_must_be_positive(self, tmp_path):
        daemon = make_daemon(tmp_path)
        try:
            with pytest.raises(ConfigurationError, match="tick_seconds"):
                DaemonServer(daemon, tmp_path / "s.sock", tick_seconds=0.0)
        finally:
            daemon.close()


class TestCliHelpers:
    def test_parse_rack_arg_forms(self):
        from repro.cli import _parse_rack_arg

        linear = _parse_rack_arg("rack:0:linear:40,0.05,10,0.12")
        assert linear == {
            "rack_id": "rack:0",
            "demand": {
                "kind": "linear",
                "d_max_w": 40.0,
                "q_min": 0.05,
                "d_min_w": 10.0,
                "q_max": 0.12,
            },
        }
        step = _parse_rack_arg("rack:1:step:25,0.08")
        assert step["demand"] == {
            "kind": "step", "demand_w": 25.0, "price_cap": 0.08,
        }
        for bad in ("rack:0", "rack:0:cubic:1,2", "rack:0:linear:1,2"):
            with pytest.raises(ConfigurationError):
                _parse_rack_arg(bad)

    def test_default_key(self):
        assert default_key("Web", 7) == "Web:7"

    def test_encode_is_json_lines(self):
        assert json.loads(encode_message({"op": "hello"})) == {"op": "hello"}


class TestTornJournal:
    """read_records forgives crash artifacts, not corruption."""

    RECORDS = [
        {"kind": "slot", "slot": 0, "price": 0.05},
        {"kind": "slot", "slot": 1, "price": 0.07},
        {"kind": "slot", "slot": 2, "price": 0.06},
    ]

    def write(self, path, records=None):
        lines = [
            json.dumps(r, sort_keys=True) + "\n"
            for r in (records or self.RECORDS)
        ]
        path.write_text("".join(lines), encoding="utf-8")
        return lines

    def test_missing_and_empty_files_read_clean(self, tmp_path):
        assert read_records(tmp_path / "absent.jsonl") == []
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert read_records(empty) == []

    def test_torn_trailing_record_without_newline_is_dropped(self, tmp_path):
        # Killed mid-write: the final record has no terminating newline.
        path = tmp_path / "market.jsonl"
        lines = self.write(path)
        path.write_text("".join(lines) + '{"kind": "slot", "slo')
        with pytest.warns(UserWarning, match="torn trailing record"):
            records = read_records(path)
        assert records == self.RECORDS

    def test_record_truncated_mid_byte_before_newline_is_dropped(
        self, tmp_path
    ):
        # Filesystem truncation cut the final record mid-byte while its
        # newline survived: the last *line* is unparseable JSON.
        path = tmp_path / "market.jsonl"
        lines = self.write(path)
        torn = lines[-1][: len(lines[-1]) // 2].rstrip("\n") + "\n"
        path.write_text("".join(lines[:-1]) + torn)
        with pytest.warns(UserWarning, match="unparseable final record"):
            records = read_records(path)
        assert records == self.RECORDS[:-1]

    def test_sole_torn_record_reads_as_empty(self, tmp_path):
        path = tmp_path / "market.jsonl"
        path.write_text('{"kind": "slot"')
        with pytest.warns(UserWarning, match="torn trailing record"):
            assert read_records(path) == []

    def test_interior_corruption_still_raises(self, tmp_path):
        # A mangled line *followed by* complete records is not a crash
        # artifact — refusing to guess is the only safe behavior.
        path = tmp_path / "market.jsonl"
        lines = self.write(path)
        lines[1] = lines[1][:10].rstrip("\n") + "\n"
        path.write_text("".join(lines))
        with pytest.raises(json.JSONDecodeError):
            read_records(path)

    def test_resume_over_a_torn_journal_replays_clean(self, tmp_path):
        # End to end: run to completion, tear the final journal bytes,
        # and check the torn tail is invisible to the reader — exactly
        # what a resumed daemon sees after a kill mid-append.
        daemon = make_daemon(tmp_path)
        try:
            while not daemon.done:
                daemon.process_next_slot()
        finally:
            daemon.close()
        journal = tmp_path / "market.jsonl"
        data = journal.read_bytes()
        journal.write_bytes(data[:-7])  # tear the invoices record
        with pytest.warns(UserWarning):
            records = read_records(journal)
        assert [r["kind"] for r in records] == ["slot"] * SLOTS
