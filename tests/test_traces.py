"""Synthetic trace generators."""

import numpy as np
import pytest

from repro.config import make_rng
from repro.errors import WorkloadError
from repro.workloads.traces import (
    BatchBacklogTrace,
    ColoPowerTrace,
    GoogleStyleArrivalTrace,
    VolatilePowerTrace,
)


class TestColoPowerTrace:
    def test_reproducible(self):
        trace = ColoPowerTrace(subscription_w=250.0)
        a = trace.generate(500, make_rng(1))
        b = trace.generate(500, make_rng(1))
        assert np.array_equal(a, b)

    def test_bounded_by_subscription(self):
        trace = ColoPowerTrace(subscription_w=250.0)
        power = trace.generate(5000, make_rng(2))
        assert power.max() <= 250.0
        assert power.min() > 0.0

    def test_mean_near_mean_fraction(self):
        trace = ColoPowerTrace(subscription_w=100.0, mean_fraction=0.7)
        power = trace.generate(50_000, make_rng(3))
        assert power.mean() / 100.0 == pytest.approx(0.7, abs=0.05)

    def test_slow_slot_to_slot_variation(self):
        # The predictor's core assumption (paper Fig. 7a): the p99 of
        # |dP|/P stays small.
        trace = ColoPowerTrace(subscription_w=250.0)
        power = trace.generate(20_000, make_rng(4))
        rel = np.abs(np.diff(power)) / power[:-1]
        assert np.quantile(rel, 0.99) < 0.025

    def test_diurnal_period_visible(self):
        trace = ColoPowerTrace(
            subscription_w=100.0, slots_per_day=100.0, noise_sigma=0.0
        )
        power = trace.generate(400, make_rng(5))
        # Autocorrelation at one full period should be strongly positive.
        x = power - power.mean()
        corr = np.corrcoef(x[:-100], x[100:])[0, 1]
        assert corr > 0.9

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ColoPowerTrace(subscription_w=0.0)
        with pytest.raises(WorkloadError):
            ColoPowerTrace(subscription_w=10.0, mean_fraction=1.5)
        with pytest.raises(WorkloadError):
            ColoPowerTrace(subscription_w=10.0).generate(0, make_rng(0))


class TestVolatilePowerTrace:
    def test_bounds(self):
        trace = VolatilePowerTrace(subscription_w=250.0)
        power = trace.generate(500, make_rng(1))
        assert power.min() >= 0.45 * 250.0 - 1e-9
        assert power.max() <= 0.95 * 250.0 + 1e-9

    def test_is_more_volatile_than_colo(self):
        rng1, rng2 = make_rng(1), make_rng(1)
        colo = ColoPowerTrace(subscription_w=250.0).generate(2000, rng1)
        volatile = VolatilePowerTrace(subscription_w=250.0).generate(2000, rng2)
        colo_var = np.abs(np.diff(colo)).mean()
        volatile_var = np.abs(np.diff(volatile)).mean()
        assert volatile_var > 3 * colo_var

    def test_validation(self):
        with pytest.raises(WorkloadError):
            VolatilePowerTrace(subscription_w=10.0, low_fraction=0.9, high_fraction=0.5)


class TestGoogleStyleArrivalTrace:
    def test_bounded_by_max_rate(self):
        trace = GoogleStyleArrivalTrace(max_rate_rps=100.0)
        rate = trace.generate(5000, make_rng(1))
        assert rate.max() <= 100.0
        assert rate.min() >= 0.0

    def test_surges_present(self):
        calm = GoogleStyleArrivalTrace(
            max_rate_rps=100.0, surge_probability=0.0
        ).generate(5000, make_rng(2))
        surging = GoogleStyleArrivalTrace(
            max_rate_rps=100.0, surge_probability=0.05
        ).generate(5000, make_rng(2))
        assert surging.max() > calm.max()

    def test_reproducible(self):
        trace = GoogleStyleArrivalTrace(max_rate_rps=100.0)
        assert np.array_equal(
            trace.generate(200, make_rng(7)), trace.generate(200, make_rng(7))
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            GoogleStyleArrivalTrace(max_rate_rps=0.0)
        with pytest.raises(WorkloadError):
            GoogleStyleArrivalTrace(max_rate_rps=10.0, base_fraction=1.0)


class TestBatchBacklogTrace:
    def test_long_run_mean_near_target(self):
        trace = BatchBacklogTrace(mean_rate_units_per_s=10.0)
        arrivals = trace.generate(50_000, make_rng(1))
        assert arrivals.mean() == pytest.approx(10.0, rel=0.15)

    def test_bursts_create_bimodality(self):
        trace = BatchBacklogTrace(
            mean_rate_units_per_s=10.0, burst_multiplier=2.0, noise_sigma=0.0
        )
        arrivals = trace.generate(20_000, make_rng(2))
        # Rate during bursts ~2x the mean: some slots clearly high.
        assert (arrivals > 15.0).mean() > 0.1
        assert (arrivals < 8.0).mean() > 0.2

    def test_non_negative(self):
        trace = BatchBacklogTrace(mean_rate_units_per_s=5.0)
        assert trace.generate(5000, make_rng(3)).min() >= 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BatchBacklogTrace(mean_rate_units_per_s=0.0)
        with pytest.raises(WorkloadError):
            BatchBacklogTrace(mean_rate_units_per_s=1.0, burst_duty_cycle=1.0)
        with pytest.raises(WorkloadError):
            BatchBacklogTrace(mean_rate_units_per_s=1.0, burst_multiplier=1.0)
