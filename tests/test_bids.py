"""Bid containers: RackBid, TenantBid, bundling, flattening."""

import pytest

from repro.core.bids import RackBid, TenantBid, bundle_linear_bid, flatten_bids
from repro.core.demand import LinearBid
from repro.errors import BidError


def rack_bid(rack="r1", tenant="t1", cap=100.0, pdu="p1"):
    return RackBid(
        rack_id=rack,
        pdu_id=pdu,
        tenant_id=tenant,
        demand=LinearBid(80.0, 0.1, 20.0, 0.3),
        rack_cap_w=cap,
    )


class TestRackBid:
    def test_clipped_demand_respects_rack_cap(self):
        bid = rack_bid(cap=50.0)
        assert bid.clipped_demand_at(0.05) == pytest.approx(50.0)

    def test_clipped_demand_passes_through_below_cap(self):
        bid = rack_bid(cap=100.0)
        assert bid.clipped_demand_at(0.3) == pytest.approx(20.0)

    def test_negative_cap_rejected(self):
        with pytest.raises(BidError):
            rack_bid(cap=-1.0)


class TestTenantBid:
    def test_bundle_parameter_count(self):
        bundle = TenantBid("t1", (rack_bid("r1"), rack_bid("r2")))
        assert bundle.parameter_count == 8

    def test_total_demand_sums_racks(self):
        bundle = TenantBid("t1", (rack_bid("r1", cap=50.0), rack_bid("r2")))
        assert bundle.total_demand_at(0.05) == pytest.approx(50.0 + 80.0)

    def test_empty_bundle_rejected(self):
        with pytest.raises(BidError):
            TenantBid("t1", ())

    def test_foreign_rack_bid_rejected(self):
        with pytest.raises(BidError):
            TenantBid("t1", (rack_bid(tenant="t2"),))

    def test_duplicate_rack_rejected(self):
        with pytest.raises(BidError):
            TenantBid("t1", (rack_bid("r1"), rack_bid("r1")))


class TestBundleLinearBid:
    def test_builds_shared_price_bundle(self):
        bundle = bundle_linear_bid(
            "t1",
            racks=[("r1", "p1", 100.0), ("r2", "p2", 60.0)],
            d_max_w=[40.0, 30.0],
            d_min_w=[10.0, 5.0],
            q_min=0.1,
            q_max=0.3,
        )
        assert len(bundle.rack_bids) == 2
        for bid in bundle.rack_bids:
            assert bid.demand.q_min == 0.1
            assert bid.demand.q_max == 0.3
        assert bundle.rack_bids[0].demand.d_max_w == 40.0
        assert bundle.rack_bids[1].demand.d_min_w == 5.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(BidError):
            bundle_linear_bid(
                "t1", [("r1", "p1", 10.0)], [5.0, 6.0], [1.0], 0.1, 0.2
            )


class TestFlattenBids:
    def test_flattens_in_order(self):
        b1 = TenantBid("t1", (rack_bid("r1"),))
        b2 = TenantBid("t2", (rack_bid("r2", tenant="t2"), rack_bid("r3", tenant="t2")))
        flat = flatten_bids([b1, b2])
        assert [b.rack_id for b in flat] == ["r1", "r2", "r3"]

    def test_cross_bundle_duplicate_rejected(self):
        b1 = TenantBid("t1", (rack_bid("r1"),))
        b2 = TenantBid("t2", (rack_bid("r1", tenant="t2"),))
        with pytest.raises(BidError):
            flatten_bids([b1, b2])

    def test_empty_input(self):
        assert flatten_bids([]) == []
