"""Scenario-spec schema, normalisation, fault forms, and round-trips."""

import dataclasses
import json
import math
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.scenarios.schema as schema_module
from repro.config import DEFAULT_SEED, DEFAULT_SLOT_SECONDS
from repro.errors import ConfigurationError
from repro.forecast import SIGNAL_NAMES, PredictionProfile
from repro.resilience import FaultProfile
# Aliased: pytest would otherwise collect names starting with "test".
from repro.scenarios import (
    SCHEMA,
    dump_spec,
    fault_profile_from_spec,
    normalize_spec,
    parse_spec_text,
    prediction_profile_from_spec,
    preset_spec,
    scaled_spec,
)
from repro.scenarios import testbed_spec as make_testbed_spec
from repro.scenarios.spec import _FAULT_PROFILE_DEFAULTS, _PREDICTION_DEFAULTS


def minimal_spec() -> dict:
    return {
        "spec_version": 1,
        "topology": {"pdus": [{"id": "p0"}]},
        "demand": {
            "tenants": [
                {
                    "name": "t",
                    "workload": "web",
                    "subscription_w": 100.0,
                    "pdu": "p0",
                }
            ]
        },
    }


class TestSchema:
    def test_schema_json_file_pinned_to_schema(self):
        # The packaged schema file must stay byte-equivalent to the
        # in-code schema — external tools validate against the file.
        path = pathlib.Path(schema_module.__file__).with_name("schema.json")
        assert json.loads(path.read_text()) == SCHEMA
        assert path.read_text() == json.dumps(SCHEMA, indent=2, sort_keys=True) + "\n"

    def test_fault_profile_defaults_mirror_dataclass(self):
        defaults = {
            f.name: f.default
            for f in dataclasses.fields(FaultProfile)
            if f.name != "derating_events"
        }
        assert defaults == _FAULT_PROFILE_DEFAULTS

    def test_prediction_defaults_mirror_dataclass(self):
        defaults = {
            f.name: f.default for f in dataclasses.fields(PredictionProfile)
        }
        assert defaults == _PREDICTION_DEFAULTS

    def test_events_defaults_mirror_dataclass(self):
        from repro.events import EventProfile
        from repro.scenarios.spec import _EVENTS_DEFAULTS

        defaults = {
            f.name: f.default for f in dataclasses.fields(EventProfile)
        }
        # The spec spells the empty schedule as a JSON list.
        assert defaults.pop("schedule") == ()
        spec_defaults = dict(_EVENTS_DEFAULTS)
        assert spec_defaults.pop("schedule") == []
        assert defaults == spec_defaults

    def test_event_kind_defaults_mirror_dataclasses(self):
        from repro.events import DeratingCascade, EdrShock, PriceSpike
        from repro.scenarios.spec import _EVENT_KIND_DEFAULTS

        kinds = {
            "edr_shock": EdrShock,
            "price_spike": PriceSpike,
            "derating_cascade": DeratingCascade,
        }
        assert set(_EVENT_KIND_DEFAULTS) == set(kinds)
        for kind, cls in kinds.items():
            defaults = {
                f.name: f.default
                for f in dataclasses.fields(cls)
                if f.name != "slot"
            }
            assert defaults == _EVENT_KIND_DEFAULTS[kind], kind

    def test_missing_required_field_has_root_pointer(self):
        spec = minimal_spec()
        del spec["spec_version"]
        with pytest.raises(ConfigurationError, match="spec_version"):
            normalize_spec(spec)

    def test_bad_tenant_field_has_json_pointer(self):
        spec = minimal_spec()
        spec["demand"]["tenants"][0]["subscription_w"] = -5.0
        with pytest.raises(
            ConfigurationError, match="/demand/tenants/0/subscription_w"
        ):
            normalize_spec(spec)

    def test_unknown_workload_has_json_pointer(self):
        spec = minimal_spec()
        spec["demand"]["tenants"][0]["workload"] = "mining"
        with pytest.raises(
            ConfigurationError, match="/demand/tenants/0/workload"
        ):
            normalize_spec(spec)

    def test_unknown_top_level_key_rejected(self):
        spec = minimal_spec()
        spec["frobnicate"] = True
        with pytest.raises(ConfigurationError, match="frobnicate"):
            normalize_spec(spec)

    def test_empty_pdu_list_rejected(self):
        spec = minimal_spec()
        spec["topology"]["pdus"] = []
        with pytest.raises(ConfigurationError, match="/topology/pdus"):
            normalize_spec(spec)

    def test_duplicate_pdu_ids_rejected(self):
        spec = minimal_spec()
        spec["topology"]["pdus"] = [{"id": "p0"}, {"id": "p0"}]
        with pytest.raises(ConfigurationError, match="p0"):
            normalize_spec(spec)

    def test_duplicate_tenant_names_rejected(self):
        spec = minimal_spec()
        spec["demand"]["tenants"].append(dict(spec["demand"]["tenants"][0]))
        with pytest.raises(ConfigurationError, match="'t'"):
            normalize_spec(spec)

    def test_unknown_pdu_reference_rejected(self):
        spec = minimal_spec()
        spec["demand"]["tenants"][0]["pdu"] = "nope"
        with pytest.raises(ConfigurationError, match="nope"):
            normalize_spec(spec)

    def test_tiered_tenant_forbids_subscription(self):
        spec = minimal_spec()
        spec["demand"]["tenants"][0] = {
            "name": "t",
            "workload": "tiered",
            "subscription_w": 100.0,
            "tiers": [
                {"subscription_w": 100.0, "pdu": "p0"},
                {"subscription_w": 50.0, "pdu": "p0"},
            ],
        }
        with pytest.raises(ConfigurationError, match="tiered"):
            normalize_spec(spec)


class TestNormalization:
    def test_defaults_filled(self):
        normal = normalize_spec(minimal_spec())
        assert normal["name"] == "scenario"
        assert normal["seed"] == DEFAULT_SEED
        assert normal["time"]["slot_seconds"] == DEFAULT_SLOT_SECONDS
        assert normal["topology"]["pdus"][0]["oversubscription"] == 1.05
        assert normal["supply"]["ups_oversubscription"] == 1.05
        assert normal["supply"]["infrastructure_cost_per_watt"] == 25.0
        assert normal["demand"]["strategy"] == "linear_elastic"
        assert normal["prediction"] == _PREDICTION_DEFAULTS
        assert normal["faults"] is None
        assert normal["telemetry"] is None
        assert normal["recovery"]["clearing_deadline_s"] is None

    def test_ints_coerced_to_floats(self):
        spec = minimal_spec()
        spec["time"] = {"slot_seconds": 60}
        normal = normalize_spec(spec)
        assert normal["time"]["slot_seconds"] == 60.0
        assert isinstance(normal["time"]["slot_seconds"], float)

    def test_dump_is_canonical_and_idempotent(self):
        normal = normalize_spec(make_testbed_spec())
        text = dump_spec(normal)
        assert text.endswith("\n")
        assert dump_spec(normalize_spec(json.loads(text))) == text

    def test_preset_registry(self):
        assert preset_spec("testbed") == make_testbed_spec()
        assert preset_spec("scaled", groups=2) == scaled_spec(groups=2)
        with pytest.raises(ConfigurationError, match="unknown scenario preset"):
            preset_spec("warehouse")


class TestFaultForms:
    def test_named_class_form(self):
        faults = normalize_spec(
            {
                **minimal_spec(),
                "faults": {"class": "bursty", "intensity": 0.2, "seed": 5},
            }
        )["faults"]
        profile = fault_profile_from_spec(faults)
        expected = dataclasses.replace(
            FaultProfile.named("bursty", 0.2), seed=5
        )
        assert profile == expected

    def test_profile_form_round_trips_scalars(self):
        faults = normalize_spec(
            {
                **minimal_spec(),
                "faults": {"profile": {"bid_loss": 0.3, "delay_slots": 7}},
            }
        )["faults"]
        profile = fault_profile_from_spec(faults)
        assert profile.bid_loss == 0.3
        assert profile.delay_slots == 7
        assert profile.burst_exit == 0.3  # untouched default

    def test_class_and_profile_together_rejected(self):
        spec = minimal_spec()
        spec["faults"] = {"class": "comm", "profile": {"bid_loss": 0.1}}
        with pytest.raises(ConfigurationError, match="/faults"):
            normalize_spec(spec)

    def test_unknown_class_rejected(self):
        spec = minimal_spec()
        spec["faults"] = {"class": "gremlins"}
        with pytest.raises(ConfigurationError, match="gremlins"):
            normalize_spec(spec)


class TestPredictionComponent:
    def test_unknown_signal_has_json_pointer(self):
        spec = minimal_spec()
        spec["prediction"] = {"signal": "oracle"}
        with pytest.raises(ConfigurationError, match="/prediction/signal"):
            normalize_spec(spec)

    def test_out_of_range_risk_quantile_rejected(self):
        spec = minimal_spec()
        for bad in (0.0, 1.5, -0.1):
            spec["prediction"] = {"risk_quantile": bad}
            with pytest.raises(
                ConfigurationError, match="/prediction/risk_quantile"
            ):
                normalize_spec(spec)

    def test_full_safety_margin_rejected(self):
        # The schema's inclusive bound admits 1.0; the cross-field rule
        # must reject it (a full margin leaves nothing to sell).
        spec = minimal_spec()
        spec["prediction"] = {"safety_margin_fraction": 1.0}
        with pytest.raises(
            ConfigurationError, match="/prediction/safety_margin_fraction"
        ):
            normalize_spec(spec)

    def test_default_block_loads_to_none(self):
        # The all-defaults block is the engine's own default path;
        # keeping the scenario field None preserves byte-identical
        # default traces.
        normal = normalize_spec(minimal_spec())
        assert prediction_profile_from_spec(normal["prediction"]) is None

    def test_non_default_block_loads_to_profile(self):
        spec = minimal_spec()
        spec["prediction"] = {"signal": "ensemble", "risk_quantile": 0.05}
        normal = normalize_spec(spec)
        profile = prediction_profile_from_spec(normal["prediction"])
        assert profile == PredictionProfile(
            signal="ensemble", risk_quantile=0.05
        )

    def test_scenario_carries_profile(self):
        from repro.scenarios import build_scenario

        spec = minimal_spec()
        spec["prediction"] = {"signal": "rolling_max", "window": 20}
        scenario = build_scenario(spec)
        assert scenario.prediction == PredictionProfile(
            signal="rolling_max", window=20
        )


class TestYaml:
    def test_yaml_parses_to_same_normal_form(self):
        yaml = pytest.importorskip("yaml")
        reference = dump_spec(make_testbed_spec())
        text = yaml.safe_dump(json.loads(reference))
        spec = parse_spec_text(text, source="inline")
        assert dump_spec(normalize_spec(spec)) == reference

    def test_non_mapping_text_reports_source(self):
        with pytest.raises(ConfigurationError, match="inline"):
            parse_spec_text("- 1\n- 2\n", source="inline")


# -- Property: dump(load(spec)) == spec -------------------------------

_prediction_strategy = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {},
        optional={
            "signal": st.sampled_from(SIGNAL_NAMES),
            "under_prediction_factor": st.sampled_from([1.0, 0.85, 0.75]),
            "safety_margin_fraction": st.sampled_from([0.0, 0.025, 0.1]),
            "window": st.one_of(
                st.none(), st.integers(min_value=1, max_value=60)
            ),
            "risk_quantile": st.one_of(
                st.none(), st.sampled_from([0.05, 0.5, 0.95])
            ),
        },
    ),
)


def _with_prediction(spec: dict, prediction) -> dict:
    if prediction is not None:
        spec = {**spec, "prediction": prediction}
    return spec


_spec_strategy = st.builds(
    _with_prediction,
    st.one_of(
        st.builds(
            make_testbed_spec,
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            slot_seconds=st.sampled_from([30.0, 60.0, 120.0, 300.0]),
            volatile_other=st.booleans(),
            pdu_oversubscription=st.floats(
                min_value=1.0, max_value=1.5, allow_nan=False, allow_infinity=False
            ),
        ),
        st.builds(
            scaled_spec,
            groups=st.integers(min_value=1, max_value=3),
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            jitter=st.floats(
                min_value=0.0, max_value=0.3, allow_nan=False, allow_infinity=False
            ),
        ),
    ),
    _prediction_strategy,
)


@settings(max_examples=25, deadline=None)
@given(spec=_spec_strategy)
def test_dump_load_round_trip(spec):
    """The tentpole's contract: spec -> text -> spec is the identity."""
    text = dump_spec(spec)
    reloaded = normalize_spec(parse_spec_text(text, source="property"))
    assert reloaded == normalize_spec(spec)
    assert dump_spec(reloaded) == text


class TestScenarioConstructionValidation:
    """Satellite: invalid scalars die at construction, not mid-run."""

    def test_bad_slot_seconds_rejected(self):
        from repro.sim.scenario import testbed_scenario

        scenario = testbed_scenario()
        for bad in (0.0, -60.0, math.nan, math.inf):
            with pytest.raises(ConfigurationError, match="slot_seconds"):
                dataclasses.replace(scenario, slot_seconds=bad)

    def test_bad_infrastructure_cost_rejected(self):
        from repro.sim.scenario import testbed_scenario

        scenario = testbed_scenario()
        for bad in (-1.0, math.nan, math.inf):
            with pytest.raises(
                ConfigurationError, match="infrastructure_cost_per_hour"
            ):
                dataclasses.replace(scenario, infrastructure_cost_per_hour=bad)

    def test_bad_clearing_deadline_rejected(self):
        from repro.sim.scenario import testbed_scenario

        scenario = testbed_scenario()
        for bad in (False, 0.0, -2.0, math.nan):
            with pytest.raises(
                ConfigurationError, match="clearing_deadline_s"
            ):
                dataclasses.replace(scenario, clearing_deadline_s=bad)

    def test_valid_clearing_deadlines_accepted(self):
        from repro.sim.scenario import testbed_scenario

        scenario = testbed_scenario()
        for ok in (None, True, 5.0):
            replaced = dataclasses.replace(scenario, clearing_deadline_s=ok)
            assert replaced.clearing_deadline_s == ok
