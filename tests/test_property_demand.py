"""Property-based tests: demand functions (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.demand import FullBid, LinearBid, StepBid

prices = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)


@st.composite
def linear_bids(draw):
    d_min = draw(st.floats(min_value=0.0, max_value=100.0))
    d_extra = draw(st.floats(min_value=0.0, max_value=100.0))
    q_min = draw(st.floats(min_value=0.0, max_value=1.0))
    q_extra = draw(st.floats(min_value=0.0, max_value=1.0))
    return LinearBid(d_min + d_extra, q_min, d_min, q_min + q_extra)


@st.composite
def step_bids(draw):
    return StepBid(
        draw(st.floats(min_value=0.0, max_value=200.0)),
        draw(st.floats(min_value=0.0, max_value=1.0)),
    )


@st.composite
def full_bids(draw):
    scale = draw(st.floats(min_value=0.1, max_value=20.0))
    width = draw(st.floats(min_value=5.0, max_value=200.0))
    max_d = draw(st.floats(min_value=10.0, max_value=300.0))
    return FullBid.from_value_curve(
        lambda d: scale * (1.0 - np.exp(-d / width)), max_d, grid_points=50
    )


class TestLinearBidProperties:
    @given(bid=linear_bids(), p1=prices, p2=prices)
    @settings(max_examples=200)
    def test_monotone_non_increasing(self, bid, p1, p2):
        lo, hi = min(p1, p2), max(p1, p2)
        assert bid.demand_at(lo) >= bid.demand_at(hi) - 1e-9

    @given(bid=linear_bids(), p=prices)
    def test_demand_bounded(self, bid, p):
        assert 0.0 <= bid.demand_at(p) <= bid.max_demand_w + 1e-9

    @given(bid=linear_bids(), p=prices)
    def test_zero_above_max_price(self, bid, p):
        if p > bid.max_price:
            assert bid.demand_at(p) == 0.0

    @given(bid=linear_bids())
    def test_grid_agrees_with_scalar(self, bid):
        grid = np.linspace(0.0, 2.0, 37)
        assert np.allclose(
            bid.demand_grid(grid), [bid.demand_at(float(p)) for p in grid]
        )

    @given(bid=linear_bids())
    def test_endpoints(self, bid):
        assert bid.demand_at(0.0) == bid.d_max_w
        assert bid.demand_at(bid.q_max) >= bid.d_min_w - 1e-9


class TestStepBidProperties:
    @given(bid=step_bids(), p1=prices, p2=prices)
    def test_monotone(self, bid, p1, p2):
        lo, hi = min(p1, p2), max(p1, p2)
        assert bid.demand_at(lo) >= bid.demand_at(hi)

    @given(bid=step_bids(), p=prices)
    def test_binary_outcome(self, bid, p):
        assert bid.demand_at(p) in (0.0, bid.demand_w)


class TestFullBidProperties:
    @given(bid=full_bids(), p1=prices, p2=prices)
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, bid, p1, p2):
        # Scale prices into the curve's meaningful range.
        hi_price = bid.max_price * 1.2
        a, b = sorted((p1 * hi_price / 2.0, p2 * hi_price / 2.0))
        assert bid.demand_at(a) >= bid.demand_at(b) - 1e-9

    @given(bid=full_bids())
    @settings(max_examples=50, deadline=None)
    def test_grid_agrees_with_scalar(self, bid):
        grid = np.linspace(0.0, bid.max_price * 1.5, 29)
        assert np.allclose(
            bid.demand_grid(grid), [bid.demand_at(float(p)) for p in grid]
        )

    @given(bid=full_bids(), p=prices)
    @settings(max_examples=100, deadline=None)
    def test_demand_bounded(self, bid, p):
        assert 0.0 <= bid.demand_at(p) <= bid.max_demand_w + 1e-9
