"""Analysis helpers: CDFs, statistics, reporting."""

import numpy as np
import pytest

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.reporting import (
    format_kv,
    format_rounded_series,
    format_series,
    format_table,
    rounded,
)
from repro.analysis.stats import (
    fraction_true,
    geometric_mean,
    normalize_to,
    relative_change,
    summarize,
)
from repro.errors import ConfigurationError


class TestEmpiricalCdf:
    def test_evaluate_basic(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(2.0) == 0.5
        assert cdf.evaluate(4.0) == 1.0

    def test_evaluate_many_matches_scalar(self):
        data = np.random.default_rng(0).normal(size=200)
        cdf = EmpiricalCdf(data)
        xs = np.linspace(-3, 3, 21)
        assert np.allclose(
            cdf.evaluate_many(xs), [cdf.evaluate(float(x)) for x in xs]
        )

    def test_quantile_inverts(self):
        data = np.random.default_rng(1).uniform(0, 100, 1000)
        cdf = EmpiricalCdf(data)
        for p in (0.1, 0.5, 0.9):
            q = cdf.quantile(p)
            assert cdf.evaluate(q) == pytest.approx(p, abs=0.01)

    def test_normalized_default_max(self):
        cdf = EmpiricalCdf([2.0, 4.0]).normalized()
        assert cdf.max == pytest.approx(1.0)
        assert cdf.min == pytest.approx(0.5)

    def test_exceedance(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.exceedance_fraction(2.5) == pytest.approx(0.5)

    def test_area_gap_to_ideal(self):
        # Samples at half capacity -> mean unused fraction 0.5.
        cdf = EmpiricalCdf([50.0] * 10)
        assert cdf.area_gap_to_ideal(100.0) == pytest.approx(0.5)

    def test_area_gap_clips_above_capacity(self):
        cdf = EmpiricalCdf([150.0])
        assert cdf.area_gap_to_ideal(100.0) == 0.0

    def test_curve_shape(self):
        cdf = EmpiricalCdf(np.arange(100.0))
        xs, ys = cdf.curve(points=10)
        assert xs.shape == ys.shape == (10,)
        assert np.all(np.diff(ys) >= 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCdf([])
        with pytest.raises(ConfigurationError):
            EmpiricalCdf([np.nan])
        with pytest.raises(ConfigurationError):
            EmpiricalCdf([1.0]).quantile(1.5)
        with pytest.raises(ConfigurationError):
            EmpiricalCdf([1.0]).normalized(0.0)
        with pytest.raises(ConfigurationError):
            EmpiricalCdf([1.0]).area_gap_to_ideal(0.0)


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_of_ratios_is_symmetric(self):
        assert geometric_mean([0.5, 2.0]) == pytest.approx(1.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_normalize_to(self):
        assert np.allclose(normalize_to([2.0, 4.0], 2.0), [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            normalize_to([1.0], 0.0)

    def test_relative_change(self):
        assert relative_change(110.0, 100.0) == pytest.approx(0.1)
        with pytest.raises(ConfigurationError):
            relative_change(1.0, 0.0)

    def test_summarize_keys_and_order(self):
        stats = summarize(np.arange(101.0))
        assert stats["min"] == 0.0
        assert stats["max"] == 100.0
        assert stats["p50"] == pytest.approx(50.0)
        assert stats["p99"] == pytest.approx(99.0)
        assert stats["mean"] == pytest.approx(50.0)

    def test_summarize_validation(self):
        with pytest.raises(ConfigurationError):
            summarize([])
        with pytest.raises(ConfigurationError):
            summarize([np.nan])

    def test_fraction_true(self):
        assert fraction_true([True, False, True, True]) == pytest.approx(0.75)
        assert np.isnan(fraction_true([]))


class TestReporting:
    def test_format_table_aligned(self):
        text = format_table(
            ["name", "value"], [["a", 1.23456], ["bb", 2]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in text  # 4 significant digits
        assert "bb" in text

    def test_format_table_validates_width(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_format_series(self):
        text = format_series("x", [1, 2], {"y": [10, 20], "z": [30, 40]})
        assert "x" in text and "y" in text and "z" in text
        assert "10" in text and "40" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_series("x", [1, 2], {"y": [10]})

    def test_format_kv(self):
        text = format_kv({"alpha": 1.0, "beta": "two"}, title="H")
        assert text.splitlines()[0] == "H"
        assert "alpha" in text and "two" in text

    def test_empty_table_renders(self):
        text = format_table(["h"], [])
        assert "h" in text

    def test_rounded_kinds(self):
        assert rounded([0.12345, -0.005], "percent") == [12.35, -0.5]
        assert rounded([1.23456], "ratio") == [1.235]
        assert rounded([1.23456], 1) == [1.2]

    def test_rounded_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="rounding kind"):
            rounded([1.0], "furlongs")
        # bool is an int subclass but not a decimal-places count.
        with pytest.raises(ConfigurationError, match="rounding kind"):
            rounded([1.0], True)

    def test_format_rounded_series_matches_manual_rounding(self):
        via_helper = format_rounded_series(
            "x",
            [1, 2],
            {"p +%": ("percent", [0.1234, 0.5]), "r x": ("ratio", [1.5, 2.25])},
            title="T",
        )
        manual = format_series(
            "x",
            [1, 2],
            {"p +%": [12.34, 50.0], "r x": [1.5, 2.25]},
            title="T",
        )
        assert via_helper == manual
