"""Best-response bidding dynamics (core.equilibrium)."""

import numpy as np
import pytest

from repro.core.equilibrium import BestResponseSimulator, Bidder
from repro.economics.valuation import SpotValueCurve
from repro.errors import ConfigurationError


def make_curve(scale=0.02, width=25.0, max_spot=60.0):
    grid = np.linspace(0.0, max_spot, 121)
    gains = scale * (1.0 - np.exp(-grid / width))
    return SpotValueCurve.from_gain_samples(100.0, grid, gains)


def make_bidder(rack="r0", pdu="p0", scale=0.02):
    return Bidder(
        rack_id=rack, pdu_id=pdu, rack_cap_w=60.0,
        value_curve=make_curve(scale=scale),
    )


def simulator(bidders, supply=80.0, **kwargs):
    pdus = {b.pdu_id for b in bidders}
    return BestResponseSimulator(
        bidders, {p: supply for p in pdus}, supply * len(pdus), **kwargs
    )


class TestBidder:
    def test_net_benefit_zero_grant(self):
        bidder = make_bidder()
        assert bidder.net_benefit(0.0, 0.5) == 0.0

    def test_net_benefit_decreases_with_price(self):
        bidder = make_bidder()
        assert bidder.net_benefit(30.0, 0.05) > bidder.net_benefit(30.0, 0.3)

    def test_bid_for_builds_consistent_linear_bid(self):
        bidder = make_bidder()
        bid = bidder.bid_for(0.05, 0.3, 1.0)
        assert bid.d_max_w >= bid.d_min_w
        assert bid.d_max_w <= bidder.rack_cap_w

    def test_shading_scales_quantities(self):
        bidder = make_bidder()
        full = bidder.bid_for(0.05, 0.3, 1.0)
        shaded = bidder.bid_for(0.05, 0.3, 0.5)
        assert shaded.d_max_w == pytest.approx(0.5 * full.d_max_w, rel=0.1)


class TestDynamics:
    def test_single_bidder_converges(self):
        result = simulator([make_bidder()]).run()
        assert result.converged
        assert result.rounds <= 5

    def test_symmetric_duopoly_converges(self):
        bidders = [make_bidder("r0"), make_bidder("r1")]
        result = simulator(bidders, supply=60.0).run()
        assert result.converged
        # Symmetric bidders end at (payoff-)symmetric outcomes.
        b0, b1 = (result.net_benefits[r] for r in ("r0", "r1"))
        assert b0 == pytest.approx(b1, rel=0.2, abs=1e-6)

    def test_fixed_point_is_unilaterally_stable(self):
        bidders = [make_bidder("r0"), make_bidder("r1", scale=0.01)]
        sim = simulator(bidders, supply=50.0)
        result = sim.run()
        assert result.converged
        # No bidder can improve by deviating within the strategy grid.
        for bidder in bidders:
            _, best = sim.best_response(bidder, result.strategies)
            assert best <= result.net_benefits[bidder.rack_id] + 1e-9

    def test_strategic_play_never_hurts_vs_default(self):
        bidders = [make_bidder("r0"), make_bidder("r1")]
        sim = simulator(bidders, supply=50.0)
        anchors = sorted({q for (q, _, _) in sim.strategy_grid})
        default = {b.rack_id: (anchors[0], anchors[-1], 1.0) for b in bidders}
        default_benefits, _, _ = sim.evaluate(default)
        result = sim.run()
        for rack_id, benefit in result.net_benefits.items():
            assert benefit >= default_benefits[rack_id] - 1e-9

    def test_net_benefits_non_negative_at_fixed_point(self):
        bidders = [make_bidder(f"r{i}") for i in range(3)]
        result = simulator(bidders, supply=40.0).run()
        for benefit in result.net_benefits.values():
            assert benefit >= -1e-9

    def test_price_history_recorded(self):
        result = simulator([make_bidder()]).run()
        assert len(result.prices) == len(result.total_granted_w)
        assert len(result.prices) >= 1

    def test_scarcity_raises_equilibrium_price(self):
        bidders = [make_bidder("r0"), make_bidder("r1")]
        tight = simulator(bidders, supply=20.0).run()
        loose = simulator(
            [make_bidder("r0"), make_bidder("r1")], supply=200.0
        ).run()
        assert tight.prices[-1] >= loose.prices[-1] - 1e-9


class TestValidation:
    def test_empty_bidders_rejected(self):
        with pytest.raises(ConfigurationError):
            BestResponseSimulator([], {}, 10.0)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            simulator([make_bidder("r0"), make_bidder("r0")])

    def test_bad_anchors_rejected(self):
        with pytest.raises(ConfigurationError):
            simulator([make_bidder()], price_anchors=[-0.1])

    def test_bad_shading_rejected(self):
        with pytest.raises(ConfigurationError):
            simulator([make_bidder()], shading_factors=[0.0])

    def test_bad_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            simulator([make_bidder()]).run(max_rounds=0)
