"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENT_REGISTRY, build_parser, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENT_REGISTRY:
            assert name in out

    def test_registry_covers_all_figures(self):
        expected = {
            "table1", "fig02", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17", "fig18", "ablations", "equilibrium", "resilience",
            "prediction-risk", "edr",
        }
        assert set(EXPERIMENT_REGISTRY) == expected


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Search-1" in out
        assert "UPS" in out

    def test_run_fig08(self, capsys):
        assert main(["run", "fig08"]) == 0
        assert "p99" in capsys.readouterr().out

    def test_run_fig12_with_options(self, capsys):
        assert main(["run", "fig12", "--slots", "300", "--seed", "5"]) == 0
        assert "operator" in capsys.readouterr().out

    def test_unknown_target_errors(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_seed_defaults_when_omitted(self, capsys):
        assert main(["run", "table1"]) == 0


class TestCompare:
    def test_compare_prints_summary(self, capsys):
        assert main(["compare", "--slots", "300"]) == 0
        out = capsys.readouterr().out
        assert "SpotDC" in out
        assert "profit increase" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])
