"""Ablation experiment runners (fast variants; full runs in benchmarks)."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    render_breakpoint_ablation,
    render_reserve_price_sweep,
    render_safety_ablation,
    run_breakpoint_ablation,
    run_reserve_price_sweep,
    run_safety_ablation,
)


class TestBreakpointAblation:
    def test_augmentation_never_loses(self):
        ablation = run_breakpoint_ablation(
            price_steps=(0.05, 0.005), racks=80, trials=4
        )
        plain = np.array(ablation.revenue_plain)
        augmented = np.array(ablation.revenue_breakpoints)
        assert np.all(augmented >= plain - 1e-12)

    def test_render(self):
        ablation = run_breakpoint_ablation(
            price_steps=(0.05,), racks=40, trials=2
        )
        assert "breakpoint" in render_breakpoint_ablation(ablation)


class TestReservePriceSweep:
    def test_low_floor_is_free(self):
        sweep = run_reserve_price_sweep(
            slots=500, reserve_prices=(0.0, 0.02)
        )
        assert sweep.profit_increase[1] == pytest.approx(
            sweep.profit_increase[0], abs=0.03
        )

    def test_render(self):
        sweep = run_reserve_price_sweep(slots=300, reserve_prices=(0.0,))
        assert "reserve" in render_reserve_price_sweep(sweep)


class TestSafetyAblation:
    def test_structure(self):
        ablation = run_safety_ablation(slots=800)
        assert len(ablation.labels) == 4
        assert len(ablation.emergencies) == 4
        # Stripping protections never *reduces* excursions.
        by_label = dict(zip(ablation.labels, ablation.emergencies))
        assert by_label["neither"] >= by_label[
            "margin + rolling refs (default)"
        ]
        assert "conservatism" in render_safety_ablation(ablation)
