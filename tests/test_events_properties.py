"""Property-based tests for the shock-absorption ladder.

Two laws the grid-event subsystem must satisfy for *every* input, not
just the curated schedules:

* **Monotone absorption** — a deeper capacity cut never releases more
  spot capacity to the market, at any unit, and released capacity is
  always within ``[0, uncut release]``.
* **Balanced settlement** — revoking any subset of grants removes
  exactly the revoked racks' bills from the slot's payments; the
  credited dollars equal the revenue the operator gave up.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import AllocationResult
from repro.core.bids import RackBid
from repro.core.demand import LinearBid
from repro.core.market import SlotMarketRecord
from repro.events import EventProfile, ShockAbsorber
from repro.forecast.release import RiskAwareReleasePolicy
from repro.prediction.spot import SpotCapacityForecast
from repro.resilience.degradation import revoke_and_rebill

_FRACTIONS = st.floats(
    min_value=0.0, max_value=0.95, allow_nan=False, allow_infinity=False
)
_WATTS = st.floats(
    min_value=0.0, max_value=5000.0, allow_nan=False, allow_infinity=False
)


def _absorber(cuts: dict, capped=()) -> ShockAbsorber:
    absorber = ShockAbsorber(EventProfile())
    absorber._cuts_in_force = {k: v for k, v in cuts.items() if v > 0.0}
    absorber._capped = set(capped)
    return absorber


@st.composite
def forecasts(draw):
    n_pdus = draw(st.integers(min_value=1, max_value=4))
    return SpotCapacityForecast(
        pdu_spot_w={f"p{i}": draw(_WATTS) for i in range(n_pdus)},
        ups_spot_w=draw(_WATTS),
    )


class TestMonotoneAbsorption:
    @given(
        forecast=forecasts(),
        shallow=_FRACTIONS,
        extra=st.floats(min_value=0.0, max_value=0.04, allow_nan=False),
        target_pdu=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_deeper_cuts_never_release_more(
        self, forecast, shallow, extra, target_pdu
    ):
        key = "p0" if target_pdu else None
        a = _absorber({key: shallow}).adjust_release(forecast)
        b = _absorber({key: shallow + extra}).adjust_release(forecast)
        assert b.ups_spot_w <= a.ups_spot_w <= forecast.ups_spot_w
        for pdu_id in forecast.pdu_spot_w:
            assert (
                b.pdu_spot_w[pdu_id]
                <= a.pdu_spot_w[pdu_id]
                <= forecast.pdu_spot_w[pdu_id]
            )
            assert b.pdu_spot_w[pdu_id] >= 0.0
        assert b.ups_spot_w >= 0.0

    @given(forecast=forecasts(), fraction=_FRACTIONS)
    @settings(max_examples=100, deadline=None)
    def test_capped_unit_releases_zero(self, forecast, fraction):
        pdu_capped = _absorber({"p0": max(fraction, 0.01)}, capped=("p0",))
        released = pdu_capped.adjust_release(forecast)
        assert released.pdu_spot_w["p0"] == 0.0
        ups_capped = _absorber({None: max(fraction, 0.01)}, capped=(None,))
        released = ups_capped.adjust_release(forecast)
        assert released.ups_spot_w == 0.0
        assert all(w == 0.0 for w in released.pdu_spot_w.values())

    @given(
        quantile=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        shallow=_FRACTIONS,
        extra=st.floats(min_value=0.0, max_value=0.04, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_quantile_tightening_is_monotone(self, quantile, shallow, extra):
        policy = RiskAwareReleasePolicy(risk_quantile=quantile)
        a = _absorber({None: shallow}).effective_release_policy(policy)
        b = _absorber({None: shallow + extra}).effective_release_policy(policy)
        assert b.risk_quantile <= a.risk_quantile <= quantile
        assert b.risk_quantile >= 0.01

    @given(forecast=forecasts())
    @settings(max_examples=50, deadline=None)
    def test_calm_absorber_is_identity(self, forecast):
        absorber = _absorber({})
        assert absorber.adjust_release(forecast) is forecast
        policy = RiskAwareReleasePolicy(risk_quantile=0.2)
        assert absorber.effective_release_policy(policy) is policy


@st.composite
def cleared_slots(draw):
    n_racks = draw(st.integers(min_value=1, max_value=8))
    n_pdus = draw(st.integers(min_value=1, max_value=3))
    price = draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
    pdu_prices = {}
    if draw(st.booleans()):
        pdu_prices = {
            f"p{j}": draw(
                st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
            )
            for j in range(n_pdus)
        }
    bids = []
    grants = {}
    for i in range(n_racks):
        rack_id = f"r{i}"
        grant = draw(st.floats(min_value=0.0, max_value=300.0, allow_nan=False))
        grants[rack_id] = grant
        bids.append(
            RackBid(
                rack_id=rack_id,
                pdu_id=f"p{i % n_pdus}",
                tenant_id=f"t{i % 3}",
                demand=LinearBid(max(grant, 1.0), 0.01, 0.0, 0.6),
                rack_cap_w=500.0,
            )
        )
    result = AllocationResult(
        price=price,
        grants_w=grants,
        revenue_rate=0.0,
        pdu_prices=pdu_prices,
    )
    slot_seconds = draw(st.floats(min_value=30.0, max_value=600.0))
    # Self-consistent original payments: what the clearing billed.
    payments = {}
    for bid in bids:
        grant = grants[bid.rack_id]
        if grant <= 0:
            continue
        bill = (grant / 1000.0) * result.price_for_pdu(bid.pdu_id) * (
            slot_seconds / 3600.0
        )
        payments[bid.tenant_id] = payments.get(bid.tenant_id, 0.0) + bill
    record = SlotMarketRecord(
        result=result, bids=tuple(bids), payments=payments
    )
    revoked = {
        bid.rack_id for bid in bids if draw(st.booleans())
    }
    return record, revoked, slot_seconds


class TestBalancedSettlement:
    @given(case=cleared_slots())
    @settings(max_examples=200, deadline=None)
    def test_revocation_removes_exactly_the_revoked_bills(self, case):
        record, revoked, slot_seconds = case
        slot_hours = slot_seconds / 3600.0
        rebilled = revoke_and_rebill(record, revoked, slot_seconds)

        def bill(bid):
            grant = record.result.grants_w[bid.rack_id]
            price = record.result.price_for_pdu(bid.pdu_id)
            return (grant / 1000.0) * price * slot_hours

        surviving = sum(
            bill(bid)
            for bid in record.bids
            if bid.rack_id not in revoked
            and record.result.grants_w[bid.rack_id] > 0
        )
        assert sum(rebilled.payments.values()) == pytest.approx(
            surviving, abs=1e-9
        )
        for rack_id in revoked:
            assert rebilled.result.grants_w[rack_id] == 0.0

    @given(case=cleared_slots())
    @settings(max_examples=200, deadline=None)
    def test_credits_equal_forgone_revenue(self, case):
        # The engine's credit notes bill exactly what revocation takes
        # away: original payments - rebilled payments.
        record, revoked, slot_seconds = case
        slot_hours = slot_seconds / 3600.0
        rebilled = revoke_and_rebill(record, revoked, slot_seconds)
        forgone = sum(
            (record.result.grants_w[bid.rack_id] / 1000.0)
            * record.result.price_for_pdu(bid.pdu_id)
            * slot_hours
            for bid in record.bids
            if bid.rack_id in revoked
            and record.result.grants_w[bid.rack_id] > 0
        )
        full = sum(
            (record.result.grants_w[bid.rack_id] / 1000.0)
            * record.result.price_for_pdu(bid.pdu_id)
            * slot_hours
            for bid in record.bids
            if record.result.grants_w[bid.rack_id] > 0
        )
        assert full - sum(rebilled.payments.values()) == pytest.approx(
            forgone, abs=1e-9
        )
