"""Property-based tests: market clearing never violates constraints."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MarketParameters
from repro.core.allocation import verify_allocation
from repro.core.bids import RackBid, TenantBid
from repro.core.clearing import MarketClearing
from repro.core.demand import LinearBid, StepBid
from repro.recovery import QUARANTINE_REASONS, inspect_rack_bid, screen_bids
from repro.tenants.misbehaving import MalformedBidTenant


@st.composite
def bid_sets(draw):
    n_racks = draw(st.integers(min_value=1, max_value=12))
    n_pdus = draw(st.integers(min_value=1, max_value=3))
    bids = []
    for i in range(n_racks):
        d_min = draw(st.floats(min_value=0.0, max_value=40.0))
        d_max = d_min + draw(st.floats(min_value=0.0, max_value=80.0))
        q_min = draw(st.floats(min_value=0.0, max_value=0.3))
        q_max = q_min + draw(st.floats(min_value=0.001, max_value=0.4))
        use_step = draw(st.booleans())
        demand = (
            StepBid(d_max, q_max)
            if use_step
            else LinearBid(d_max, q_min, d_min, q_max)
        )
        bids.append(
            RackBid(
                rack_id=f"r{i}",
                pdu_id=f"p{i % n_pdus}",
                tenant_id=f"t{i}",
                demand=demand,
                rack_cap_w=draw(st.floats(min_value=0.0, max_value=150.0)),
            )
        )
    pdu_spot = {
        f"p{j}": draw(st.floats(min_value=0.0, max_value=200.0))
        for j in range(n_pdus)
    }
    ups_spot = draw(st.floats(min_value=0.0, max_value=400.0))
    return bids, pdu_spot, ups_spot


class TestClearingInvariants:
    @given(data=bid_sets())
    @settings(max_examples=120, deadline=None)
    def test_outcome_always_verifies(self, data):
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear(bids, pdu_spot, ups_spot)
        verify_allocation(result, bids, pdu_spot, ups_spot)

    @given(data=bid_sets())
    @settings(max_examples=120, deadline=None)
    def test_revenue_consistent_and_non_negative(self, data):
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear(bids, pdu_spot, ups_spot)
        assert result.revenue_rate >= 0.0
        expected = result.price * result.total_granted_w / 1000.0
        assert result.revenue_rate == pytest.approx(expected, abs=1e-9)

    @given(data=bid_sets())
    @settings(max_examples=80, deadline=None)
    def test_grants_match_demand_at_price(self, data):
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear(bids, pdu_spot, ups_spot)
        for bid in bids:
            grant = result.grant_for(bid.rack_id)
            assert grant <= bid.clipped_demand_at(result.price) + 1e-9

    @given(data=bid_sets())
    @settings(max_examples=60, deadline=None)
    def test_finer_grid_never_loses_revenue(self, data):
        bids, pdu_spot, ups_spot = data
        coarse = MarketClearing(
            params=MarketParameters(price_step=0.02),
            include_breakpoints=False,
        ).clear(bids, pdu_spot, ups_spot)
        # A superset of candidate prices can only improve the optimum;
        # 0.01 does not strictly refine 0.02's grid offsets, so compare
        # against a true refinement.
        fine = MarketClearing(
            params=MarketParameters(price_step=0.01),
            include_breakpoints=False,
        ).clear(bids, pdu_spot, ups_spot)
        assert fine.revenue_rate >= coarse.revenue_rate - 1e-9

    @given(data=bid_sets())
    @settings(max_examples=60, deadline=None)
    def test_ample_supply_dominates_any_constrained_supply(self, data):
        # Note: revenue is NOT monotone in supply slot-by-slot — extra
        # supply can admit a large inelastic bid whose joint
        # infeasibility forces the uniform price above other bids' caps.
        # The true invariant: with supply ample enough that nothing
        # constrains (every bid admitted, every price feasible), revenue
        # upper-bounds every constrained outcome.
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        base = engine.clear(bids, pdu_spot, ups_spot)
        ample_total = sum(b.demand.max_demand_w for b in bids) + 1.0
        ample = engine.clear(
            bids,
            {p: ample_total for p in pdu_spot},
            ample_total,
        )
        assert ample.revenue_rate >= base.revenue_rate - 1e-9

    @given(data=bid_sets())
    @settings(max_examples=60, deadline=None)
    def test_per_pdu_clearing_verifies(self, data):
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear_per_pdu(bids, pdu_spot, ups_spot)
        verify_allocation(result, bids, pdu_spot, ups_spot)
        assert result.total_granted_w <= ups_spot + 1e-6

    @given(data=bid_sets())
    @settings(max_examples=40, deadline=None)
    def test_per_pdu_revenue_consistent(self, data):
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear_per_pdu(bids, pdu_spot, ups_spot)
        expected = sum(
            result.price_for_pdu(bid.pdu_id)
            * result.grant_for(bid.rack_id)
            / 1000.0
            for bid in bids
        )
        assert result.revenue_rate == pytest.approx(expected, abs=1e-9)


@st.composite
def degenerate_bid_sets(draw):
    """Degenerate-but-valid bids: every boundary equality allowed.

    Admission rejects only strict violations (``q_max < q_min``,
    ``D_min > D_max``), so zero-width demand segments, flat price
    curves, zero demand, and demand exactly at the rack cap are all
    legal inputs the clearing scan must survive.
    """
    n_racks = draw(st.integers(min_value=1, max_value=8))
    bids = []
    for i in range(n_racks):
        shape = draw(
            st.sampled_from(
                ["zero_width", "flat_price", "zero_demand", "cap_exact"]
            )
        )
        if shape == "zero_width":  # D_min == D_max: perfectly inelastic
            d = draw(st.floats(min_value=0.0, max_value=60.0))
            q_min = draw(st.floats(min_value=0.0, max_value=0.2))
            q_max = q_min + draw(st.floats(min_value=0.0, max_value=0.2))
            demand = LinearBid(d, q_min, d, q_max)
            cap = d + draw(st.floats(min_value=0.0, max_value=20.0))
        elif shape == "flat_price":  # q_min == q_max: all breakpoints equal
            d_min = draw(st.floats(min_value=0.0, max_value=30.0))
            d_max = d_min + draw(st.floats(min_value=0.0, max_value=50.0))
            q = draw(st.floats(min_value=0.0, max_value=0.3))
            demand = LinearBid(d_max, q, d_min, q)
            cap = d_max + draw(st.floats(min_value=0.0, max_value=20.0))
        elif shape == "zero_demand":
            q = draw(st.floats(min_value=0.001, max_value=0.3))
            demand = StepBid(0.0, q)
            cap = draw(st.floats(min_value=0.0, max_value=50.0))
        else:  # cap_exact: demand exactly at the rack's headroom
            d = draw(st.floats(min_value=0.1, max_value=60.0))
            q = draw(st.floats(min_value=0.001, max_value=0.3))
            demand = StepBid(d, q)
            cap = d
        bids.append(
            RackBid(
                rack_id=f"r{i}",
                pdu_id=f"p{i % 2}",
                tenant_id=f"t{i}",
                demand=demand,
                rack_cap_w=cap,
            )
        )
    pdu_spot = {
        "p0": draw(st.floats(min_value=0.0, max_value=150.0)),
        "p1": draw(st.floats(min_value=0.0, max_value=150.0)),
    }
    ups_spot = draw(st.floats(min_value=0.0, max_value=250.0))
    return bids, pdu_spot, ups_spot


class TestDegenerateBids:
    @given(data=degenerate_bid_sets())
    @settings(max_examples=100, deadline=None)
    def test_admission_accepts_degenerate_bids(self, data):
        bids, _, _ = data
        for bid in bids:
            assert inspect_rack_bid(bid) is None

    @given(data=degenerate_bid_sets())
    @settings(max_examples=100, deadline=None)
    def test_clearing_survives_degenerate_bids(self, data):
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear(bids, pdu_spot, ups_spot)
        verify_allocation(result, bids, pdu_spot, ups_spot)


@st.composite
def mixed_bundles(draw):
    """Tenant bundles where a random subset of rack bids is corrupted."""
    n_tenants = draw(st.integers(min_value=1, max_value=5))
    bundles = []
    dirty = {}
    rack = 0
    for t in range(n_tenants):
        n_bids = draw(st.integers(min_value=1, max_value=4))
        rack_bids = []
        corrupt_any = False
        for _ in range(n_bids):
            bid = RackBid(
                rack_id=f"r{rack}",
                pdu_id=f"p{rack % 2}",
                tenant_id=f"t{t}",
                demand=LinearBid(50.0, 0.02, 10.0, 0.30),
                rack_cap_w=50.0,
            )
            rack += 1
            mode = draw(
                st.sampled_from((None,) + MalformedBidTenant.CORRUPTIONS)
            )
            if mode is not None:
                bid = MalformedBidTenant._corrupt(bid, mode)
                corrupt_any = True
            rack_bids.append(bid)
        bundles.append(
            TenantBid(tenant_id=f"t{t}", rack_bids=tuple(rack_bids))
        )
        dirty[f"t{t}"] = corrupt_any
    return bundles, dirty


class TestAdmissionProperties:
    @given(data=mixed_bundles())
    @settings(max_examples=100, deadline=None)
    def test_bundles_admitted_whole_or_not_at_all(self, data):
        bundles, dirty = data
        admitted, quarantined = screen_bids(bundles)
        admitted_tenants = {b.tenant_id for b in admitted}
        quarantined_tenants = {q.tenant_id for q in quarantined}
        # A bundle with any corrupt bid is quarantined whole; a clean
        # bundle is admitted untouched.  No tenant appears on both sides.
        assert admitted_tenants.isdisjoint(quarantined_tenants)
        for tenant_id, corrupt in dirty.items():
            if corrupt:
                assert tenant_id in quarantined_tenants
            else:
                assert tenant_id in admitted_tenants
        assert all(q.reason in QUARANTINE_REASONS for q in quarantined)

    @given(data=mixed_bundles())
    @settings(max_examples=60, deadline=None)
    def test_admitted_bids_always_clear_cleanly(self, data):
        bundles, _ = data
        admitted, _ = screen_bids(bundles)
        bids = [rb for bundle in admitted for rb in bundle.rack_bids]
        pdu_spot = {"p0": 120.0, "p1": 120.0}
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear(bids, pdu_spot, 200.0)
        verify_allocation(result, bids, pdu_spot, 200.0)
