"""Property-based tests: market clearing never violates constraints."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MarketParameters
from repro.core.allocation import verify_allocation
from repro.core.bids import RackBid
from repro.core.clearing import MarketClearing
from repro.core.demand import LinearBid, StepBid


@st.composite
def bid_sets(draw):
    n_racks = draw(st.integers(min_value=1, max_value=12))
    n_pdus = draw(st.integers(min_value=1, max_value=3))
    bids = []
    for i in range(n_racks):
        d_min = draw(st.floats(min_value=0.0, max_value=40.0))
        d_max = d_min + draw(st.floats(min_value=0.0, max_value=80.0))
        q_min = draw(st.floats(min_value=0.0, max_value=0.3))
        q_max = q_min + draw(st.floats(min_value=0.001, max_value=0.4))
        use_step = draw(st.booleans())
        demand = (
            StepBid(d_max, q_max)
            if use_step
            else LinearBid(d_max, q_min, d_min, q_max)
        )
        bids.append(
            RackBid(
                rack_id=f"r{i}",
                pdu_id=f"p{i % n_pdus}",
                tenant_id=f"t{i}",
                demand=demand,
                rack_cap_w=draw(st.floats(min_value=0.0, max_value=150.0)),
            )
        )
    pdu_spot = {
        f"p{j}": draw(st.floats(min_value=0.0, max_value=200.0))
        for j in range(n_pdus)
    }
    ups_spot = draw(st.floats(min_value=0.0, max_value=400.0))
    return bids, pdu_spot, ups_spot


class TestClearingInvariants:
    @given(data=bid_sets())
    @settings(max_examples=120, deadline=None)
    def test_outcome_always_verifies(self, data):
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear(bids, pdu_spot, ups_spot)
        verify_allocation(result, bids, pdu_spot, ups_spot)

    @given(data=bid_sets())
    @settings(max_examples=120, deadline=None)
    def test_revenue_consistent_and_non_negative(self, data):
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear(bids, pdu_spot, ups_spot)
        assert result.revenue_rate >= 0.0
        expected = result.price * result.total_granted_w / 1000.0
        assert result.revenue_rate == pytest.approx(expected, abs=1e-9)

    @given(data=bid_sets())
    @settings(max_examples=80, deadline=None)
    def test_grants_match_demand_at_price(self, data):
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear(bids, pdu_spot, ups_spot)
        for bid in bids:
            grant = result.grant_for(bid.rack_id)
            assert grant <= bid.clipped_demand_at(result.price) + 1e-9

    @given(data=bid_sets())
    @settings(max_examples=60, deadline=None)
    def test_finer_grid_never_loses_revenue(self, data):
        bids, pdu_spot, ups_spot = data
        coarse = MarketClearing(
            params=MarketParameters(price_step=0.02),
            include_breakpoints=False,
        ).clear(bids, pdu_spot, ups_spot)
        # A superset of candidate prices can only improve the optimum;
        # 0.01 does not strictly refine 0.02's grid offsets, so compare
        # against a true refinement.
        fine = MarketClearing(
            params=MarketParameters(price_step=0.01),
            include_breakpoints=False,
        ).clear(bids, pdu_spot, ups_spot)
        assert fine.revenue_rate >= coarse.revenue_rate - 1e-9

    @given(data=bid_sets())
    @settings(max_examples=60, deadline=None)
    def test_ample_supply_dominates_any_constrained_supply(self, data):
        # Note: revenue is NOT monotone in supply slot-by-slot — extra
        # supply can admit a large inelastic bid whose joint
        # infeasibility forces the uniform price above other bids' caps.
        # The true invariant: with supply ample enough that nothing
        # constrains (every bid admitted, every price feasible), revenue
        # upper-bounds every constrained outcome.
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        base = engine.clear(bids, pdu_spot, ups_spot)
        ample_total = sum(b.demand.max_demand_w for b in bids) + 1.0
        ample = engine.clear(
            bids,
            {p: ample_total for p in pdu_spot},
            ample_total,
        )
        assert ample.revenue_rate >= base.revenue_rate - 1e-9

    @given(data=bid_sets())
    @settings(max_examples=60, deadline=None)
    def test_per_pdu_clearing_verifies(self, data):
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear_per_pdu(bids, pdu_spot, ups_spot)
        verify_allocation(result, bids, pdu_spot, ups_spot)
        assert result.total_granted_w <= ups_spot + 1e-6

    @given(data=bid_sets())
    @settings(max_examples=40, deadline=None)
    def test_per_pdu_revenue_consistent(self, data):
        bids, pdu_spot, ups_spot = data
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        result = engine.clear_per_pdu(bids, pdu_spot, ups_spot)
        expected = sum(
            result.price_for_pdu(bid.pdu_id)
            * result.grant_for(bid.rack_id)
            / 1000.0
            for bid in bids
        )
        assert result.revenue_rate == pytest.approx(expected, abs=1e-9)
