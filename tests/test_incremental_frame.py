"""Incremental frame building: dirty tracking and from-scratch parity.

`IncrementalFrameBuilder` keeps per-PDU column blocks alive across
slots and re-aggregates only the PDUs whose bids changed.  Its contract
is twofold: the produced frame is *element-for-element* identical to
`BidFrame.from_bids` on the same bid list, and a mutation dirties
exactly the PDUs it touches (``last_dirty``).  Tenants joining or
leaving mid-run, quarantined bundles, revocations, and fault-injected
lost-bid slots all reduce to bid-list mutations, so each gets an
explicit invalidation test; a property test then checks parity after
arbitrary mutation sequences.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MarketParameters
from repro.core.bids import RackBid
from repro.core.clearing import MarketClearing
from repro.core.demand import FullBid, LinearBid, StepBid
from repro.core.frame import KIND_CLOSED, BidFrame
from repro.core.market import SpotDCAllocator
from repro.core.sharding import IncrementalFrameBuilder
from repro.sim.engine import run_simulation
from repro.sim.scenario import testbed_scenario as build_testbed
from repro.telemetry import TelemetryConfig

SLOTS = 12

_ARRAY_COLUMNS = (
    "pdu_code",
    "tenant_code",
    "kind",
    "d_max_w",
    "q_min",
    "d_min_w",
    "q_max",
    "rack_cap_w",
    "max_demand_w",
    "floor_w",
    "breakpoints",
)


def _same_demand(da, db):
    """Value equality; reused blocks keep the prior slot's equal objects."""
    if da is db:
        return True
    if type(da) is not type(db):
        return False
    if isinstance(da, LinearBid):
        return (
            da.d_max_w == db.d_max_w
            and da.q_min == db.q_min
            and da.d_min_w == db.d_min_w
            and da.q_max == db.q_max
        )
    if isinstance(da, StepBid):
        return da.demand_w == db.demand_w and da.price_cap == db.price_cap
    if isinstance(da, FullBid):
        return (
            np.array_equal(da._demands, db._demands)
            and np.array_equal(da._marginals, db._marginals)
            and da._price_cap == db._price_cap
        )
    return False


def _assert_frames_identical(a: BidFrame, b: BidFrame):
    assert a.rack_ids == b.rack_ids
    assert a.pdu_ids == b.pdu_ids
    assert a.tenant_ids == b.tenant_ids
    for column in _ARRAY_COLUMNS:
        left, right = getattr(a, column), getattr(b, column)
        assert left.dtype == right.dtype, column
        assert np.array_equal(left, right), column
    assert len(a._demands) == len(b._demands)
    for da, db in zip(a._demands, b._demands):
        assert da is None if db is None else _same_demand(da, db)


def _bid(rack, pdu, tenant, demand=None, cap=100.0):
    return RackBid(rack, pdu, tenant, demand or LinearBid(60.0, 0.05, 10.0, 0.3), cap)


def _population():
    """Four PDUs, five tenants, all three bid kinds."""
    return [
        _bid("r0", "p0", "tA"),
        _bid("r1", "p0", "tA", StepBid(35.0, 0.2)),
        _bid("r2", "p0", "tB"),
        _bid("r3", "p1", "tB", LinearBid(80.0, 0.02, 20.0, 0.25)),
        _bid("r4", "p1", "tC", FullBid([10.0, 30.0], [0.0004, 0.0002])),
        _bid("r5", "p2", "tC"),
        _bid("r6", "p2", "tD", StepBid(50.0, 0.15)),
        _bid("r7", "p3", "tE"),
        _bid("r8", "p3", "tE", LinearBid(40.0, 0.1, 5.0, 0.4)),
    ]


def _closed_population():
    """Same shape, closed-form (Linear/Step) curves only.

    Closed-form curves compare by their defining floats, so fresh bid
    objects with equal values — what tenants submit every slot — reuse
    blocks.  ``FullBid`` rows are conservatively dirtied instead (see
    ``test_full_bid_pdus_rebuild_conservatively``).
    """
    return [
        _bid("r4", "p1", "tC", StepBid(25.0, 0.3)) if b.rack_id == "r4" else b
        for b in _population()
    ]


class TestParityWithFromBids:
    def test_initial_build_matches_from_scratch(self):
        bids = _population()
        builder = IncrementalFrameBuilder()
        _assert_frames_identical(builder.build(bids), BidFrame.from_bids(bids))

    def test_empty(self):
        builder = IncrementalFrameBuilder()
        frame = builder.build([])
        assert len(frame) == 0
        assert builder.last_dirty == ()
        # A population appearing after an empty slot still matches.
        bids = _population()
        _assert_frames_identical(builder.build(bids), BidFrame.from_bids(bids))

    def test_fresh_equal_objects_reuse_blocks(self):
        """Tenants rebuild their bids every slot; equal params must not dirty."""
        builder = IncrementalFrameBuilder()
        builder.build(_closed_population())
        # Brand-new objects, same values: nothing dirties.
        frame = builder.build(_closed_population())
        assert builder.last_dirty == ()
        _assert_frames_identical(frame, BidFrame.from_bids(_closed_population()))

    def test_full_bid_pdus_rebuild_conservatively(self):
        """Sampled curves have no cheap equality: fresh objects dirty."""
        builder = IncrementalFrameBuilder()
        builder.build(_population())
        frame = builder.build(_population())
        assert builder.last_dirty == ("p1",)  # the FullBid's PDU, only
        _assert_frames_identical(frame, BidFrame.from_bids(_population()))


class TestDirtyTracking:
    def _built(self):
        builder = IncrementalFrameBuilder()
        builder.build(_closed_population())
        return builder

    def test_unchanged_slot_returns_same_frame_object(self):
        builder = IncrementalFrameBuilder()
        first = builder.build(_closed_population())
        second = builder.build(_closed_population())
        assert second is first
        assert builder.last_dirty == ()

    def test_tenant_joins_dirties_only_its_pdu(self):
        builder = self._built()
        joined = _closed_population() + [_bid("r9", "p1", "tF")]
        frame = builder.build(joined)
        assert builder.last_dirty == ("p1",)
        _assert_frames_identical(frame, BidFrame.from_bids(joined))

    def test_tenant_leaves_dirties_only_its_pdus(self):
        builder = self._built()
        # tE leaves: both its racks are on p3.
        remaining = [b for b in _closed_population() if b.tenant_id != "tE"]
        frame = builder.build(remaining)
        assert builder.last_dirty == ("p3",)
        _assert_frames_identical(frame, BidFrame.from_bids(remaining))

    def test_quarantined_bundle_dirties_each_hosting_pdu(self):
        builder = self._built()
        # tC's bundle is rejected whole; its racks span p1 and p2.
        screened = [b for b in _closed_population() if b.tenant_id != "tC"]
        frame = builder.build(screened)
        assert builder.last_dirty == ("p1", "p2")
        _assert_frames_identical(frame, BidFrame.from_bids(screened))

    def test_modified_bid_dirties_only_its_pdu(self):
        builder = self._built()
        changed = _closed_population()
        changed[5] = _bid("r5", "p2", "tC", LinearBid(61.0, 0.05, 10.0, 0.3))
        frame = builder.build(changed)
        assert builder.last_dirty == ("p2",)
        _assert_frames_identical(frame, BidFrame.from_bids(changed))

    def test_lost_bid_slot_dirties_removed_pdu(self):
        """Fault-injected bid loss: a whole PDU's bids vanish for a slot."""
        builder = self._built()
        lost = [b for b in _closed_population() if b.pdu_id != "p1"]
        frame = builder.build(lost)
        assert builder.last_dirty == ("p1",)
        _assert_frames_identical(frame, BidFrame.from_bids(lost))
        # The bids return next slot: only p1 rebuilds, parity holds.
        restored = builder.build(_closed_population())
        assert builder.last_dirty == ("p1",)
        _assert_frames_identical(restored, BidFrame.from_bids(_closed_population()))

    def test_reuse_counters(self):
        builder = self._built()
        builder.build(_closed_population() + [_bid("r9", "p1", "tF")])
        assert builder.builds == 2
        assert builder.rebuilt_pdus == 4 + 1  # initial build + one dirty PDU
        assert builder.reused_pdus == 3


# -- property test: parity after arbitrary mutation sequences ----------

_PDUS = ("p0", "p1", "p2", "p3")
_TENANTS = ("tA", "tB", "tC", "tD", "tE", "tF")


def _apply_mutation(bids, op, rng):
    bids = list(bids)
    kind, payload = op
    if kind == "join":
        rack = f"rx{payload}"
        if any(b.rack_id == rack for b in bids):
            return bids
        pdu = _PDUS[payload % len(_PDUS)]
        tenant = _TENANTS[payload % len(_TENANTS)]
        demand = (
            StepBid(10.0 + payload, 0.2)
            if payload % 2
            else LinearBid(50.0 + payload, 0.04, 5.0, 0.35)
        )
        bids.append(RackBid(rack, pdu, tenant, demand, 120.0))
    elif kind == "leave" and bids:
        del bids[payload % len(bids)]
    elif kind == "modify" and bids:
        i = payload % len(bids)
        old = bids[i]
        bids[i] = RackBid(
            old.rack_id, old.pdu_id, old.tenant_id,
            LinearBid(30.0 + payload, 0.03, 3.0, 0.3), old.rack_cap_w,
        )
    elif kind == "drop_pdu":
        pdu = _PDUS[payload % len(_PDUS)]
        bids = [b for b in bids if b.pdu_id != pdu]
    return bids


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["join", "leave", "modify", "drop_pdu", "noop"]),
            st.integers(min_value=0, max_value=30),
        ),
        max_size=8,
    )
)
@settings(max_examples=40, deadline=None)
def test_incremental_equals_from_scratch_after_any_mutations(ops):
    builder = IncrementalFrameBuilder()
    bids = _population()
    _assert_frames_identical(builder.build(bids), BidFrame.from_bids(bids))
    for op in ops:
        bids = _apply_mutation(bids, op, None)
        frame = builder.build(bids)
        _assert_frames_identical(frame, BidFrame.from_bids(bids))
        # Every dirty PDU names a real PDU of the old or new population.
        assert set(builder.last_dirty) <= set(_PDUS) | {b.pdu_id for b in bids}


# -- per-frame caches unlocked by frame reuse --------------------------


class TestFrameCaches:
    def test_price_grid_cached_per_frame(self):
        frame = BidFrame.from_bids(_population())
        engine = MarketClearing(params=MarketParameters(price_step=0.01))
        first = engine.candidate_prices(frame)
        second = engine.candidate_prices(frame)
        assert second is first
        # A different frame object computes its own grid.
        other = BidFrame.from_bids(_population())
        assert engine.candidate_prices(other) is not first
        assert np.array_equal(engine.candidate_prices(other), first)

    def test_pdu_slices_cached_per_frame(self):
        frame = BidFrame.from_bids(_population())
        assert frame.pdu_slices() is frame.pdu_slices()

    def test_breakpoint_fast_path_matches_loop(self):
        frame = BidFrame.from_bids(_population())
        closed = np.flatnonzero(frame.kind == KIND_CLOSED)
        fast = frame._select_breakpoints(closed)
        expected = []
        for i in closed:
            expected.append(float(frame.q_min[int(i)]))
            expected.append(float(frame.q_max[int(i)]))
        assert np.array_equal(fast, np.asarray(expected))
        # Mixed subsets (sampled rows present) take the generic loop.
        mixed = frame._select_breakpoints(np.arange(len(frame)))
        assert mixed.size >= fast.size


# -- end-to-end: the incremental default changes no bytes --------------


class TestEndToEnd:
    def _trace_bytes(self, tmp_path, run_id, incremental):
        scenario = build_testbed(seed=7)
        out = tmp_path / str(run_id)
        allocator = SpotDCAllocator(
            params=MarketParameters(slot_seconds=scenario.slot_seconds),
            incremental=incremental,
        )
        run_simulation(
            scenario, slots=SLOTS, allocator=allocator,
            telemetry=TelemetryConfig(out_dir=out, label="run"),
        )
        return (out / "run_trace.jsonl").read_bytes()

    def test_incremental_matches_from_scratch_traces(self, tmp_path):
        assert self._trace_bytes(tmp_path, "inc", True) == self._trace_bytes(
            tmp_path, "scratch", False
        )
