"""Unit tests for the telemetry package: registry, tracing, exporters."""

import json
import math

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.telemetry import (
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    Telemetry,
    TelemetryConfig,
    Tracer,
    default_config,
    prometheus_text,
    read_trace_jsonl,
    set_default_config,
    trace_to_jsonl,
    validate_summary,
    write_summary_json,
)
from repro.telemetry.exporters import main as validate_main
from repro.telemetry.tracing import PHASES


class TestRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("slots_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_instruments_memoised_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("faults_total", {"kind": "bid_lost"})
        b = reg.counter("faults_total", {"kind": "bid_lost"})
        c = reg.counter("faults_total", {"kind": "grant_lost"})
        assert a is b
        assert a is not c
        assert len(reg) == 2

    def test_gauge_set_and_add(self):
        g = MetricsRegistry().gauge("price")
        g.set(0.2)
        g.add(-0.05)
        assert g.value == pytest.approx(0.15)

    def test_histogram_buckets_cumulative(self):
        h = MetricsRegistry().histogram("w", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        rows = h.cumulative_counts()
        assert rows == [(1.0, 1), (10.0, 2), (100.0, 3), (math.inf, 4)]
        assert h.count == 4
        assert h.mean == pytest.approx(555.5 / 4)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("bad", buckets=(2.0, 1.0))

    def test_timer_context_manager(self):
        t = MetricsRegistry().timer("phase_seconds")
        with t:
            pass
        t.observe(0.25)
        assert t.count == 2
        assert t.total_seconds > 0.25

    def test_null_registry_absorbs_everything(self):
        c = NULL_REGISTRY.counter("x")
        c.inc()
        NULL_REGISTRY.gauge("y").set(1.0)
        NULL_REGISTRY.histogram("z").observe(3.0)
        assert c.value == 0.0
        assert NULL_REGISTRY.instruments() == []


class TestTracer:
    def test_nesting_and_ordering(self):
        tr = Tracer()
        with tr.span("slot", slot=0) as root:
            with tr.span("clear", slot=0) as child:
                child.set(price=0.1)
            tr.event("fault.bid_lost", slot=0, unit_id="t1")
        trace = tr.finish()
        clear = trace.spans_named("clear")[0]
        assert clear.parent_id == root.span_id
        # Children close (and events fire) before the root closes.
        seqs = {r.name: r.seq for r in trace.records}
        assert seqs["clear"] < seqs["fault.bid_lost"] < seqs["slot"]

    def test_phase_spans_lookup(self):
        tr = Tracer()
        with tr.span("slot", slot=0):
            for name in PHASES:
                with tr.span(name, slot=0):
                    pass
        trace = tr.finish()
        assert set(trace.phase_spans(0)) == set(PHASES)
        assert trace.slots() == [0]

    def test_finish_with_open_span_raises(self):
        tr = Tracer()
        cm = tr.span("slot", slot=0)
        cm.__enter__()
        with pytest.raises(SimulationError):
            tr.finish()

    def test_unknown_slot_raises(self):
        tr = Tracer()
        with tr.span("slot", slot=0):
            pass
        with pytest.raises(SimulationError):
            tr.finish().slot_span(5)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("slot", slot=0) as span:
            span.set(anything=1)
        NULL_TRACER.event("x")
        assert NULL_TRACER.finish().records == []


class TestTraceJsonl:
    def _trace(self):
        tr = Tracer()
        with tr.span("slot", slot=0) as s:
            s.set(price=0.12, prices=[0.1, 0.12])
            tr.event("emergency", slot=0, unit_id="pdu:0")
        return tr.finish()

    def test_round_trip(self, tmp_path):
        from repro.telemetry import write_trace_jsonl

        path = write_trace_jsonl(tmp_path / "t.jsonl", self._trace())
        records = read_trace_jsonl(path)
        assert [r["kind"] for r in records] == ["event", "span"]
        assert records[1]["attrs"]["price"] == 0.12

    def test_timings_excluded_by_default(self):
        lines = trace_to_jsonl(self._trace())
        assert all("duration_s" not in json.loads(line) for line in lines)
        timed = trace_to_jsonl(self._trace(), include_timings=True)
        assert "duration_s" in json.loads(timed[-1])

    def test_non_finite_attr_stringified(self):
        # Traces must stay byte-deterministic even with degenerate
        # attribute values; non-finite floats become strings.
        tr = Tracer()
        with tr.span("slot", slot=0) as s:
            s.set(bad=float("nan"))
        (line,) = trace_to_jsonl(tr.finish())
        assert json.loads(line)["attrs"]["bad"] == "nan"


class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("slots_total").inc(3)
        reg.gauge("price", {"pdu": "pdu:0"}).set(0.12)
        reg.histogram("w", buckets=(1.0, 10.0)).observe(5.0)
        text = prometheus_text(reg)
        assert "# TYPE spotdc_slots_total counter" in text
        assert "spotdc_slots_total 3" in text
        assert 'spotdc_price{pdu="pdu:0"} 0.12' in text
        assert 'spotdc_w_bucket{le="+Inf"} 1' in text
        assert "spotdc_w_count 1" in text


class TestSummary:
    def test_validate_accepts_written_file(self, tmp_path):
        path = write_summary_json(
            tmp_path / "s.json", bench="engine", data={"x": 1.5},
            meta={"seed": 1},
        )
        assert json.loads(path.read_text())["schema_version"] == 1
        assert validate_main([str(path)]) == 0

    def test_rejects_non_finite(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_summary_json(
                tmp_path / "s.json", bench="x", data={"bad": float("inf")}
            )

    def test_rejects_bad_envelope(self):
        with pytest.raises(ConfigurationError):
            validate_summary({"bench": "x"})  # missing keys
        with pytest.raises(ConfigurationError):
            validate_summary(
                {"bench": "x", "schema_version": 1, "data": {}, "bogus": 1}
            )

    def test_cli_validator_flags_bad_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"bench\": \"x\"}")
        assert validate_main([str(bad)]) == 1


class TestConfigAndRuntime:
    def test_resolve_paths(self):
        assert Telemetry.resolve(None).enabled is False
        assert Telemetry.resolve(TelemetryConfig()).enabled is True
        t = Telemetry(TelemetryConfig())
        assert Telemetry.resolve(t) is t
        with pytest.raises(ConfigurationError):
            Telemetry.resolve("yes")

    def test_disabled_uses_null_singletons(self):
        t = Telemetry.resolve(TelemetryConfig.disabled())
        assert t.registry is NULL_REGISTRY
        assert t.tracer is NULL_TRACER

    def test_next_label_never_overwrites(self):
        cfg = TelemetryConfig()
        assert cfg.next_label("spotdc") == "spotdc-001"
        assert cfg.next_label("spotdc") == "spotdc-002"
        pinned = TelemetryConfig(label="runA")
        assert pinned.next_label("spotdc") == "runA"
        assert pinned.next_label("spotdc") == "runA-002"

    def test_default_config_round_trip(self):
        previous = set_default_config(TelemetryConfig())
        try:
            assert default_config().enabled is True
        finally:
            set_default_config(previous)

    def test_finish_exports_all_artifacts(self, tmp_path):
        t = Telemetry(TelemetryConfig(out_dir=tmp_path, label="run"))
        with t.tracer.span("slot", slot=0):
            pass
        t.registry.counter("slots_total").inc()
        trace = t.finish("spotdc", {"slots": 1})
        assert len(trace.spans) == 1
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "run_metrics.prom", "run_summary.json", "run_trace.jsonl"
        ]
        assert [p.name for p in map(
            __import__("pathlib").Path, t.config.manifest
        )] == ["run_trace.jsonl", "run_metrics.prom", "run_summary.json"]

    def test_finish_feeds_phase_timers(self):
        t = Telemetry(TelemetryConfig())
        with t.tracer.span("slot", slot=0):
            with t.tracer.span("clear", slot=0):
                pass
        t.finish("spotdc", {})
        timer = t.registry.timer("phase_seconds", {"phase": "clear"})
        assert timer.count == 1
