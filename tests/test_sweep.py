"""Sweep grids, the parallel runner, sweep files, and their CLI."""

import json

import pytest

from repro.errors import ConfigurationError, SweepCellError
from repro.scenarios import normalize_spec
from repro.scenarios import testbed_spec as make_testbed_spec
from repro.sweep import (
    apply_overrides,
    build_cells,
    derive_cell_seed,
    expand_axes,
    load_sweep_file,
    parallel_map,
    run_sweep,
    sweep_summary_path,
)

SMALL_CONFIG = {
    "name": "unit",
    "base": {"preset": "testbed"},
    "slots": 12,
    "seed": 7,
    "compare": False,
    "axes": {
        "supply.ups_oversubscription": [1.0, 1.05],
        "time.slot_seconds": [60, 120],
    },
}


class TestGrid:
    def test_expand_axes_order_first_axis_slowest(self):
        cells = expand_axes({"a.x": [1, 2], "b.y": ["u", "v"]})
        assert cells == [
            {"a.x": 1, "b.y": "u"},
            {"a.x": 1, "b.y": "v"},
            {"a.x": 2, "b.y": "u"},
            {"a.x": 2, "b.y": "v"},
        ]

    def test_expand_empty_grid_is_single_base_cell(self):
        assert expand_axes({}) == [{}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            expand_axes({"a.x": []})

    def test_apply_override_sets_value(self):
        spec = normalize_spec(make_testbed_spec())
        out = apply_overrides(spec, {"supply.ups_oversubscription": 1.2})
        assert out["supply"]["ups_oversubscription"] == 1.2
        # Original untouched.
        assert spec["supply"]["ups_oversubscription"] == 1.05

    def test_apply_override_indexes_lists(self):
        spec = normalize_spec(make_testbed_spec())
        out = apply_overrides(spec, {"topology.pdus.1.oversubscription": 1.3})
        assert out["topology"]["pdus"][1]["oversubscription"] == 1.3

    def test_unknown_field_fails_with_pointer(self):
        spec = normalize_spec(make_testbed_spec())
        with pytest.raises(ConfigurationError, match="/supply/nope"):
            apply_overrides(spec, {"supply.nope": 1.0})

    def test_bad_list_index_fails(self):
        spec = normalize_spec(make_testbed_spec())
        with pytest.raises(ConfigurationError, match="index a list"):
            apply_overrides(spec, {"topology.pdus.9.oversubscription": 1.3})

    def test_override_value_revalidated(self):
        spec = normalize_spec(make_testbed_spec())
        with pytest.raises(ConfigurationError, match="/time/slot_seconds"):
            apply_overrides(spec, {"time.slot_seconds": -60})

    def test_cell_seed_deterministic_and_decorrelated(self):
        a = derive_cell_seed(7, {"x": 1})
        assert a == derive_cell_seed(7, {"x": 1})
        assert a != derive_cell_seed(7, {"x": 2})
        assert a != derive_cell_seed(8, {"x": 1})
        # Empty overrides keep the base seed: 1-cell sweep == plain run.
        assert derive_cell_seed(7, {}) == 7

    def test_build_cells_applies_seed_to_spec(self):
        cells = build_cells(make_testbed_spec(), SMALL_CONFIG["axes"], base_seed=7)
        assert len(cells) == 4
        for cell in cells:
            assert cell.spec["seed"] == cell.seed


class TestRunner:
    def test_parallel_map_matches_serial(self):
        items = list(range(7))
        assert parallel_map(_square, items, jobs=3) == [x * x for x in items]

    def test_results_identical_across_job_counts(self):
        serial = run_sweep(SMALL_CONFIG, jobs=1)
        parallel = run_sweep(SMALL_CONFIG, jobs=2)
        assert serial == parallel

    def test_envelope_written_and_valid(self, tmp_path):
        from repro.telemetry.exporters import validate_summary_file

        run_sweep(SMALL_CONFIG, jobs=1, out_dir=tmp_path)
        path = sweep_summary_path(tmp_path, "unit")
        assert path.exists()
        validate_summary_file(path)
        envelope = json.loads(path.read_text())
        assert envelope["bench"] == "sweep_unit"
        assert envelope["meta"]["cell_count"] == 4
        assert len(envelope["data"]["cells"]) == 4

    def test_base_must_be_exactly_one_form(self):
        config = dict(SMALL_CONFIG, base={})
        with pytest.raises(ConfigurationError, match="exactly one"):
            run_sweep(config)
        config = dict(
            SMALL_CONFIG, base={"preset": "testbed", "spec": {"spec_version": 1}}
        )
        with pytest.raises(ConfigurationError, match="exactly one"):
            run_sweep(config)

    def test_args_only_with_preset(self):
        config = dict(
            SMALL_CONFIG,
            base={"spec": normalize_spec(make_testbed_spec()), "args": {"x": 1}},
        )
        with pytest.raises(ConfigurationError, match="/base/args"):
            run_sweep(config)


def _square(x):
    return x * x


class TestCellFailure:
    # The absurd subscription passes spec validation but dies inside the
    # worker (`run_simulation` rejects a valuation with no marginal
    # value) — a genuine worker-side failure, not a parent-side one.
    FAILING_CONFIG = {
        "name": "failing",
        "base": {"preset": "testbed"},
        "slots": 5,
        "seed": 7,
        "compare": False,
        "axes": {
            "demand.tenants.0.subscription_w": [125.0, 1e12],
            "time.slot_seconds": [60, 120],
        },
    }

    def test_failure_surfaces_with_overrides_attached(self):
        with pytest.raises(SweepCellError) as exc:
            run_sweep(self.FAILING_CONFIG, jobs=1)
        err = exc.value
        assert err.index == 2  # first axis slowest: cells 2 and 3 fail
        assert err.overrides["demand.tenants.0.subscription_w"] == 1e12
        assert "ConfigurationError" in str(err)

    def test_remaining_cells_complete_before_the_raise(self):
        # Both bad cells are reported, which is only possible if the
        # grid ran to completion instead of aborting at the first
        # failure; the healthy cells' work is likewise not lost.
        with pytest.raises(SweepCellError, match=r"\+1 more failing cell"):
            run_sweep(self.FAILING_CONFIG, jobs=1)

    def test_which_cell_fails_is_jobs_independent(self):
        def failure(jobs):
            with pytest.raises(SweepCellError) as exc:
                run_sweep(self.FAILING_CONFIG, jobs=jobs)
            return (exc.value.index, exc.value.overrides, str(exc.value))

        assert failure(1) == failure(2)


class TestSweepFiles:
    def test_json_sweep_file_loads(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(SMALL_CONFIG))
        config = load_sweep_file(path)
        assert config["name"] == "unit"

    def test_base_file_resolved_relative_to_sweep_file(self, tmp_path):
        from repro.scenarios import dump_spec

        (tmp_path / "base.json").write_text(dump_spec(make_testbed_spec()))
        sweep = dict(SMALL_CONFIG, base={"file": "base.json"})
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(sweep))
        config = load_sweep_file(path)
        assert config["base"]["file"] == str((tmp_path / "base.json").resolve())
        data = run_sweep(dict(config, axes={}, slots=5))
        assert len(data["cells"]) == 1

    def test_unknown_key_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(dict(SMALL_CONFIG, bogus=1)))
        with pytest.raises(ConfigurationError, match="bogus"):
            load_sweep_file(path)

    def test_example_sweep_files_validate(self):
        import pathlib

        pytest.importorskip("yaml")
        examples = pathlib.Path(__file__).parent.parent / "examples" / "scenarios"
        for name in (
            "sweep_smoke.yaml",
            "sweep_oversubscription.yaml",
            "sweep_edr.yaml",
        ):
            config = load_sweep_file(examples / name)
            assert config["axes"]


class TestCli:
    def test_scenario_validate_example(self, capsys):
        import pathlib

        from repro.cli import main

        example = (
            pathlib.Path(__file__).parent.parent
            / "examples"
            / "scenarios"
            / "testbed.json"
        )
        assert main(["scenario", "validate", str(example)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_scenario_show_is_canonical(self, capsys):
        from repro.cli import main
        from repro.scenarios import dump_spec

        assert main(["scenario", "show", "--preset", "testbed"]) == 0
        assert capsys.readouterr().out == dump_spec(make_testbed_spec())

    def test_scenario_validate_rejects_bad_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"spec_version": 1}))
        assert main(["scenario", "validate", str(bad)]) == 2
        assert "invalid scenario" in capsys.readouterr().err

    def test_scenario_needs_file_or_preset(self, capsys):
        from repro.cli import main

        assert main(["scenario", "validate"]) == 2

    def test_sweep_run_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(dict(SMALL_CONFIG, slots=5)))
        assert main(
            ["sweep", "run", str(path), "--jobs", "2", "--out", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out
        assert (tmp_path / "BENCH_sweep_unit.json").exists()
