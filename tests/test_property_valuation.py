"""Property-based tests: value curves and cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.economics.cost import OpportunisticCostModel, SprintingCostModel
from repro.economics.valuation import (
    SpotValueCurve,
    opportunistic_value_curve,
    sprinting_value_curve,
)
from repro.power.latency import LatencyModel
from repro.power.server import ServerPowerModel
from repro.power.throughput import ThroughputModel


@st.composite
def gain_curves(draw):
    """Random raw gain samples -> a SpotValueCurve."""
    n = draw(st.integers(min_value=3, max_value=30))
    max_spot = draw(st.floats(min_value=10.0, max_value=200.0))
    grid = np.linspace(0.0, max_spot, n)
    gains = np.cumsum(
        [draw(st.floats(min_value=-0.5, max_value=2.0)) for _ in range(n)]
    )
    return SpotValueCurve.from_gain_samples(100.0, grid, gains)


class TestValueCurveProperties:
    @given(curve=gain_curves(), d1=st.floats(0, 250), d2=st.floats(0, 250))
    @settings(max_examples=150)
    def test_gain_monotone_non_decreasing(self, curve, d1, d2):
        lo, hi = min(d1, d2), max(d1, d2)
        assert curve.gain_per_hour(hi) >= curve.gain_per_hour(lo) - 1e-9

    @given(curve=gain_curves())
    @settings(max_examples=100)
    def test_gain_concave(self, curve):
        ds = np.linspace(0, curve.max_spot_w, 20)
        gains = np.array([curve.gain_per_hour(float(d)) for d in ds])
        increments = np.diff(gains)
        assert np.all(np.diff(increments) <= 1e-6)

    @given(
        curve=gain_curves(),
        q1=st.floats(min_value=0.0, max_value=5.0),
        q2=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=150)
    def test_optimal_demand_monotone_in_price(self, curve, q1, q2):
        lo, hi = min(q1, q2), max(q1, q2)
        assert curve.optimal_demand_w(lo) >= curve.optimal_demand_w(hi) - 1e-9

    @given(curve=gain_curves(), q=st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=100)
    def test_optimal_demand_has_non_negative_net_benefit(self, curve, q):
        demand = curve.optimal_demand_w(q)
        net = curve.gain_per_hour(demand) - (q / 1000.0) * demand
        assert net >= -1e-9


class TestCostModelProperties:
    @given(
        a=st.floats(min_value=0.0, max_value=1.0),
        b=st.floats(min_value=0.0, max_value=1.0),
        d1=st.floats(min_value=0.0, max_value=500.0),
        d2=st.floats(min_value=0.0, max_value=500.0),
    )
    def test_sprinting_cost_monotone_in_latency(self, a, b, d1, d2):
        model = SprintingCostModel(a=a, b=b, slo_ms=100.0)
        lo, hi = min(d1, d2), max(d1, d2)
        assert model.cost_per_job(hi) >= model.cost_per_job(lo) - 1e-12

    @given(
        rho=st.floats(min_value=0.0, max_value=10.0),
        t=st.floats(min_value=0.0, max_value=1e4),
    )
    def test_opportunistic_cost_linear(self, rho, t):
        model = OpportunisticCostModel(rho=rho)
        assert model.cost_per_job(2 * t) == pytest.approx(
            2 * model.cost_per_job(t), rel=1e-9, abs=1e-12
        )


@st.composite
def latency_setups(draw):
    idle = draw(st.floats(min_value=20.0, max_value=80.0))
    span = draw(st.floats(min_value=50.0, max_value=200.0))
    power = ServerPowerModel(idle, idle + span)
    model = LatencyModel(power_model=power, mu_max_rps=span * 1.2)
    base = draw(st.floats(min_value=0.5, max_value=0.9)) * (idle + span)
    rate = draw(st.floats(min_value=0.3, max_value=0.9)) * model.mu_max_rps
    headroom = (idle + span) - base
    return model, base, rate, max(headroom, 1.0)


class TestDerivedValueCurves:
    @given(setup=latency_setups())
    @settings(max_examples=60, deadline=None)
    def test_sprinting_curve_valid_shape(self, setup):
        model, base, rate, headroom = setup
        cost = SprintingCostModel(a=1e-6, b=1e-6, slo_ms=100.0)
        curve = sprinting_value_curve(model, cost, base, rate, headroom)
        ds = np.linspace(0, headroom, 15)
        gains = [curve.gain_per_hour(float(d)) for d in ds]
        assert gains[0] == 0.0
        assert all(g >= 0 for g in gains)
        assert all(b2 >= a2 - 1e-9 for a2, b2 in zip(gains, gains[1:]))

    @given(
        idle=st.floats(min_value=20.0, max_value=80.0),
        span=st.floats(min_value=50.0, max_value=200.0),
        base_frac=st.floats(min_value=0.4, max_value=0.9),
        rho=st.floats(min_value=1e-5, max_value=1e-2),
    )
    @settings(max_examples=60, deadline=None)
    def test_opportunistic_curve_valid_shape(self, idle, span, base_frac, rho):
        power = ServerPowerModel(idle, idle + span)
        model = ThroughputModel(power_model=power, rate_max=span * 0.5)
        base = idle + base_frac * span
        headroom = (idle + span) - base
        curve = opportunistic_value_curve(
            model, OpportunisticCostModel(rho=rho), base, 100.0, max(headroom, 1.0)
        )
        ds = np.linspace(0, curve.max_spot_w, 15)
        gains = [curve.gain_per_hour(float(d)) for d in ds]
        assert gains[0] == 0.0
        assert all(b2 >= a2 - 1e-9 for a2, b2 in zip(gains, gains[1:]))
