"""Bundled multi-rack bidding (paper §III-B3, Fig. 4)."""

import pytest

from repro.config import make_rng
from repro.core.clearing import clear_market
from repro.economics.cost import SprintingCostModel
from repro.errors import ConfigurationError, WorkloadError
from repro.power.latency import LatencyModel
from repro.power.server import ServerPowerModel
from repro.tenants.bundled import BundledSprintingTenant, TierWorkload
from repro.tenants.calibration import calibrate_sprinting_cost
from repro.tenants.portfolio import TenantRack
from repro.workloads.traces import GoogleStyleArrivalTrace

SLOTS = 300


def make_tier(name, subscription, mu_per_watt=1.3, target_ms=45.0):
    power = ServerPowerModel(0.45 * subscription, 1.3 * subscription)
    model = LatencyModel(
        power_model=power,
        mu_max_rps=mu_per_watt * power.dynamic_range_w,
        d_min_ms=12.0,
        tail_const_ms_rps=2500.0,
    )
    workload = TierWorkload(name, model, target_ms=target_ms)
    rack = TenantRack(
        rack_id=f"rack:{name}",
        pdu_id="pdu:0",
        guaranteed_w=subscription,
        max_spot_w=0.5 * subscription,
        power_model=power,
        workload=workload,
    )
    return rack, model


@pytest.fixture
def tenant():
    front, front_model = make_tier("front", 120.0)
    back, _ = make_tier("back", 100.0)
    trace = GoogleStyleArrivalTrace(
        max_rate_rps=front_model.mu_max_rps,
        base_fraction=0.30,
        slots_per_day=720,
    )
    cost = calibrate_sprinting_cost(
        front_model,
        guaranteed_w=120.0,
        reference_rps=0.6 * front_model.mu_max_rps,
        max_spot_w=36.0,
        target_marginal_per_kw_hour=0.25,
    )
    bundled = BundledSprintingTenant(
        "Shop",
        [front, back],
        arrival_trace=trace,
        cost_model=cost,
        q_low=0.18,
        q_high=0.32,
        increment_w=2.0,
    )
    bundled.prepare(SLOTS, make_rng(4))
    return bundled


def busy_slot(tenant, min_racks=1):
    for slot in range(SLOTS):
        if len(tenant.needed_spot_w(slot)) >= min_racks:
            return slot
    pytest.fail("no busy slot found")


def bidding_slot(tenant):
    """First slot where the tenant's joint demand is worth bidding."""
    for slot in range(SLOTS):
        if tenant.needed_spot_w(slot) and tenant.make_bid(slot) is not None:
            return slot
    pytest.fail("tenant never bid")


class TestTierWorkload:
    def test_requires_installed_arrivals(self):
        rack, model = make_tier("solo", 100.0)
        with pytest.raises(WorkloadError):
            rack.workload.prepare(10, make_rng(0))

    def test_shared_stream_across_tiers(self, tenant):
        rates = [
            tier.workload.intensity(5) for tier in tenant._tiers
        ]
        assert rates[0] == rates[1]

    def test_validation(self):
        _, model = make_tier("x", 100.0)
        with pytest.raises(ConfigurationError):
            TierWorkload("x", model, target_ms=0.0)


class TestJointValuation:
    def test_end_to_end_is_sum_of_tiers(self, tenant):
        slot = busy_slot(tenant)
        budgets = {
            tier.rack.rack_id: tier.rack.guaranteed_w for tier in tenant._tiers
        }
        total = tenant.end_to_end_latency_ms(slot, budgets)
        parts = sum(
            tier.workload.latency_model.latency_ms(
                min(
                    tier.workload.desired_power_w(slot),
                    tier.rack.guaranteed_w,
                ),
                tier.workload.intensity(slot),
            )
            for tier in tenant._tiers
        )
        assert total == pytest.approx(parts)

    def test_optimal_vector_decreases_with_price(self, tenant):
        slot = busy_slot(tenant)
        cheap = tenant.optimal_vector(slot, 0.05)
        dear = tenant.optimal_vector(slot, 0.40)
        assert sum(cheap.values()) >= sum(dear.values()) - 1e-9

    def test_optimal_vector_respects_headroom(self, tenant):
        slot = busy_slot(tenant)
        vector = tenant.optimal_vector(slot, 0.01)
        for tier in tenant._tiers:
            assert vector[tier.rack.rack_id] <= tier.rack.useful_spot_w + 1e-9

    def test_joint_beats_lopsided_allocation(self, tenant):
        # Spending the same watts via the greedy joint optimum must not
        # cost more than dumping them all on one tier.
        slot = busy_slot(tenant)
        vector = tenant.optimal_vector(slot, 0.05)
        watts = sum(vector.values())
        if watts < 4.0:
            pytest.skip("no meaningful joint demand at this slot")
        joint_cost = tenant._cost_rate(slot, vector)
        first = tenant._tiers[0].rack
        lopsided = {first.rack_id: min(watts, first.useful_spot_w)}
        assert joint_cost <= tenant._cost_rate(slot, lopsided) + 1e-9


class TestBundledBid:
    def test_bid_shares_price_anchors(self, tenant):
        slot = bidding_slot(tenant)
        bid = tenant.make_bid(slot)
        assert bid is not None
        for rack_bid in bid.rack_bids:
            assert rack_bid.demand.q_min == tenant.q_low
            assert rack_bid.demand.q_max == tenant.q_high

    def test_bid_quantities_follow_optimal_vectors(self, tenant):
        slot = bidding_slot(tenant)
        bid = tenant.make_bid(slot)
        d_max = tenant.optimal_vector(slot, tenant.q_low)
        for rack_bid in bid.rack_bids:
            assert rack_bid.demand.d_max_w == pytest.approx(
                min(
                    d_max[rack_bid.rack_id],
                    rack_bid.rack_cap_w,
                ),
                abs=1e-9,
            )

    def test_no_bid_when_idle(self, tenant):
        for slot in range(SLOTS):
            if not tenant.needed_spot_w(slot):
                assert tenant.make_bid(slot) is None
                return
        pytest.fail("no idle slot")

    def test_bundle_clears_in_market(self, tenant):
        slot = bidding_slot(tenant)
        bid = tenant.make_bid(slot)
        result = clear_market(list(bid.rack_bids), {"pdu:0": 150.0}, 150.0)
        assert result.total_granted_w >= 0.0


class TestExecution:
    def test_all_tiers_report_end_to_end(self, tenant):
        outcomes = tenant.execute_slot(0, {}, 120.0)
        values = {perf.value for perf in outcomes.values()}
        assert len(values) == 1  # same end-to-end latency on every rack

    def test_spot_improves_end_to_end(self):
        a_front, front_model = make_tier("f1", 120.0)
        a_back, _ = make_tier("b1", 100.0)
        trace = GoogleStyleArrivalTrace(
            max_rate_rps=front_model.mu_max_rps,
            base_fraction=0.45,
            slots_per_day=720,
        )
        cost = SprintingCostModel(a=1e-6, b=1e-6)
        tenant = BundledSprintingTenant(
            "Shop", [a_front, a_back], trace, cost, 0.18, 0.32
        )
        tenant.prepare(SLOTS, make_rng(4))
        slot = busy_slot(tenant)
        boosted_budgets = {
            tier.rack.rack_id: tier.rack.guaranteed_w + tier.rack.useful_spot_w
            for tier in tenant._tiers
        }
        base = tenant.end_to_end_latency_ms(slot, {})
        boosted = tenant.end_to_end_latency_ms(slot, boosted_budgets)
        assert boosted <= base

    def test_validation(self):
        rack, _ = make_tier("v", 100.0)
        cost = SprintingCostModel(a=1.0, b=1.0)
        with pytest.raises(ConfigurationError):
            BundledSprintingTenant("X", [rack], None, cost, 0.3, 0.1)
        with pytest.raises(ConfigurationError):
            BundledSprintingTenant(
                "X", [rack], None, cost, 0.1, 0.3, increment_w=0.0
            )
