"""Uniform-price market clearing (the core of SpotDC)."""

import numpy as np
import pytest

from repro.config import MarketParameters
from repro.core.allocation import verify_allocation
from repro.core.bids import RackBid
from repro.core.clearing import MarketClearing, clear_market
from repro.core.demand import FullBid, LinearBid, StepBid
from repro.errors import CapacityError, ClearingError


def bid(rack, pdu, demand, cap=1000.0, tenant=None):
    return RackBid(
        rack_id=rack,
        pdu_id=pdu,
        tenant_id=tenant or f"tenant-{rack}",
        demand=demand,
        rack_cap_w=cap,
    )


class TestBasicClearing:
    def test_no_bids_empty_allocation(self):
        result = clear_market([], {"p1": 100.0}, 100.0)
        assert result.total_granted_w == 0.0
        assert result.revenue_rate == 0.0

    def test_single_unconstrained_bid_clears_at_profit_max(self):
        # Demand 100 flat to 0.1, declining to 20 at 0.4.
        # q*D: at 0.1 -> 10; interior optimum near q where derivative 0.
        result = clear_market(
            [bid("r1", "p1", LinearBid(100.0, 0.1, 20.0, 0.4))],
            {"p1": 1000.0},
            1000.0,
        )
        # Analytic optimum of q*(100 - (q-0.1)*80/0.3) on [0.1, 0.4]:
        # d/dq = 100 + 80/3 - 2q*800/3 = 0 -> q ~ 0.2375
        assert result.price == pytest.approx(0.2375, abs=0.002)
        grant = result.grants_w["r1"]
        assert grant == pytest.approx(100 - (result.price - 0.1) * 80 / 0.3, abs=0.5)

    def test_revenue_rate_matches_price_times_quantity(self):
        result = clear_market(
            [bid("r1", "p1", StepBid(50.0, 0.2))], {"p1": 100.0}, 100.0
        )
        assert result.revenue_rate == pytest.approx(
            result.price * result.total_granted_w / 1000.0
        )

    def test_rack_cap_clips_demand(self):
        result = clear_market(
            [bid("r1", "p1", StepBid(500.0, 0.2), cap=50.0)],
            {"p1": 1000.0},
            1000.0,
        )
        assert result.grants_w["r1"] <= 50.0 + 1e-9


class TestConstraints:
    def test_pdu_constraint_forces_price_up(self):
        bids = [
            bid("r1", "p1", LinearBid(100.0, 0.1, 0.0, 0.4)),
            bid("r2", "p1", LinearBid(100.0, 0.1, 0.0, 0.4)),
        ]
        result = clear_market(bids, {"p1": 80.0}, 1000.0)
        total = result.total_granted_w
        assert total <= 80.0 + 1e-6
        # The price must be high enough to ration demand to the PDU cap.
        assert result.price > 0.1

    def test_ups_constraint_binds_across_pdus(self):
        bids = [
            bid("r1", "p1", StepBid(60.0, 0.5)),
            bid("r2", "p2", StepBid(60.0, 0.5)),
        ]
        result = clear_market(bids, {"p1": 100.0, "p2": 100.0}, 70.0)
        assert result.total_granted_w <= 70.0 + 1e-6

    def test_unlisted_pdu_treated_as_zero_capacity(self):
        result = clear_market(
            [bid("r1", "ghost-pdu", StepBid(50.0, 0.3))], {}, 1000.0
        )
        assert result.grants_w.get("r1", 0.0) == 0.0

    def test_infeasible_step_demand_gets_priced_out(self):
        # A step bid larger than the PDU capacity can never be satisfied;
        # market clears above its cap with zero revenue.
        result = clear_market(
            [bid("r1", "p1", StepBid(200.0, 0.3))], {"p1": 100.0}, 1000.0
        )
        assert result.total_granted_w == 0.0
        assert result.revenue_rate == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ClearingError):
            clear_market([bid("r1", "p1", StepBid(10, 0.1))], {"p1": -5.0}, 10.0)
        with pytest.raises(ClearingError):
            clear_market([bid("r1", "p1", StepBid(10, 0.1))], {"p1": 5.0}, -10.0)

    def test_every_outcome_verifies(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            bids = [
                bid(
                    f"r{i}",
                    f"p{i % 3}",
                    LinearBid(
                        float(rng.uniform(10, 100)),
                        float(rng.uniform(0.01, 0.2)),
                        float(rng.uniform(0, 10)),
                        float(rng.uniform(0.21, 0.5)),
                    ),
                    cap=float(rng.uniform(20, 120)),
                )
                for i in range(8)
            ]
            pdu_spot = {f"p{j}": float(rng.uniform(30, 150)) for j in range(3)}
            ups = float(rng.uniform(50, 250))
            result = clear_market(bids, pdu_spot, ups)
            verify_allocation(result, bids, pdu_spot, ups)


class TestPriceSelection:
    def test_lowest_price_wins_ties(self):
        # Perfectly inelastic demand: every feasible price yields
        # price-proportional revenue, so the maximum is at q_max; but two
        # identical candidate grids must produce a deterministic result.
        bids = [bid("r1", "p1", StepBid(10.0, 0.3))]
        r1 = clear_market(bids, {"p1": 100.0}, 100.0)
        r2 = clear_market(bids, {"p1": 100.0}, 100.0)
        assert r1.price == r2.price

    def test_reserve_price_floors_scan(self):
        params = MarketParameters(reserve_price=0.15)
        result = MarketClearing(params=params).clear(
            [bid("r1", "p1", StepBid(50.0, 0.3))], {"p1": 100.0}, 100.0
        )
        assert result.price >= 0.15

    def test_step_size_controls_candidates(self):
        coarse = MarketClearing(
            params=MarketParameters(price_step=0.01), include_breakpoints=False
        ).clear([bid("r1", "p1", StepBid(50.0, 0.3))], {"p1": 100.0}, 100.0)
        fine = MarketClearing(
            params=MarketParameters(price_step=0.001), include_breakpoints=False
        ).clear([bid("r1", "p1", StepBid(50.0, 0.3))], {"p1": 100.0}, 100.0)
        assert fine.candidate_prices > coarse.candidate_prices

    def test_breakpoints_recover_kink_profit_on_coarse_grid(self):
        # Optimal price is exactly the step's cap (0.3), which a coarse
        # 0.07-step grid misses without breakpoint augmentation.
        bids = [bid("r1", "p1", StepBid(50.0, 0.3))]
        with_bp = MarketClearing(
            params=MarketParameters(price_step=0.07), include_breakpoints=True
        ).clear(bids, {"p1": 100.0}, 100.0)
        without_bp = MarketClearing(
            params=MarketParameters(price_step=0.07), include_breakpoints=False
        ).clear(bids, {"p1": 100.0}, 100.0)
        assert with_bp.revenue_rate >= without_bp.revenue_rate
        assert with_bp.price == pytest.approx(0.3)

    def test_feasible_set_is_upward_closed(self):
        # Verify the monotone-feasibility property the scan exploits.
        bids = [
            bid("r1", "p1", LinearBid(100.0, 0.05, 10.0, 0.45)),
            bid("r2", "p1", LinearBid(80.0, 0.1, 5.0, 0.5)),
        ]
        engine = MarketClearing()
        prices = engine.candidate_prices(bids)
        pdu_cap = {"p1": 90.0}
        feasible = []
        for p in prices:
            total = sum(b.clipped_demand_at(float(p)) for b in bids)
            feasible.append(total <= pdu_cap["p1"] + 1e-9)
        first_true = next((i for i, f in enumerate(feasible) if f), None)
        assert first_true is not None
        assert all(feasible[first_true:])


class TestMixedDemandFunctions:
    def test_mixed_bid_types_clear_together(self):
        full = FullBid.from_value_curve(
            lambda d: 5.0 * (1 - np.exp(-d / 30.0)), 100.0, price_cap=0.4
        )
        bids = [
            bid("r1", "p1", LinearBid(60.0, 0.1, 10.0, 0.3)),
            bid("r2", "p1", StepBid(40.0, 0.25)),
            bid("r3", "p2", full),
        ]
        result = clear_market(bids, {"p1": 80.0, "p2": 60.0}, 120.0)
        verify_allocation(result, bids, {"p1": 80.0, "p2": 60.0}, 120.0)
        assert result.total_granted_w > 0

    def test_verify_catches_overgrant(self):
        from repro.core.allocation import AllocationResult

        bids = [bid("r1", "p1", StepBid(50.0, 0.3), cap=50.0)]
        bad = AllocationResult(
            price=0.1, grants_w={"r1": 60.0}, revenue_rate=0.006
        )
        with pytest.raises(CapacityError):
            verify_allocation(bad, bids, {"p1": 100.0}, 100.0)

    def test_verify_catches_unknown_rack(self):
        from repro.core.allocation import AllocationResult

        bad = AllocationResult(price=0.1, grants_w={"ghost": 5.0}, revenue_rate=0.0)
        with pytest.raises(CapacityError):
            verify_allocation(bad, [], {}, 100.0)

    def test_verify_catches_pdu_violation(self):
        from repro.core.allocation import AllocationResult

        bids = [
            bid("r1", "p1", StepBid(50.0, 0.3)),
            bid("r2", "p1", StepBid(50.0, 0.3)),
        ]
        bad = AllocationResult(
            price=0.1, grants_w={"r1": 50.0, "r2": 50.0}, revenue_rate=0.01
        )
        with pytest.raises(CapacityError):
            verify_allocation(bad, bids, {"p1": 80.0}, 1000.0)


class TestVectorizedLinearPath:
    """The vectorised LinearBid accumulation must agree exactly with the
    generic per-bid path (exercised by subclassing LinearBid, which the
    fast path deliberately does not match)."""

    class _OpaqueLinear(LinearBid):
        """A LinearBid the type check routes through the generic path."""

    def _random_bids(self, rng, n, opaque):
        cls = self._OpaqueLinear if opaque else LinearBid
        bids = []
        for i in range(n):
            d_min = float(rng.uniform(0, 30))
            d_max = d_min + float(rng.uniform(0, 60))
            q_min = float(rng.uniform(0, 0.2))
            q_max = q_min + float(rng.uniform(0.001, 0.3))
            bids.append(
                bid(
                    f"r{i}",
                    f"p{i % 3}",
                    cls(d_max, q_min, d_min, q_max),
                    cap=float(rng.uniform(10, 80)),
                )
            )
        return bids

    def test_paths_agree(self):
        rng = np.random.default_rng(5)
        for trial in range(10):
            fast = self._random_bids(rng, 15, opaque=False)
            slow = [
                bid(b.rack_id, b.pdu_id,
                    self._OpaqueLinear(*b.demand.as_parameters()),
                    cap=b.rack_cap_w)
                for b in fast
            ]
            pdu_spot = {f"p{j}": float(rng.uniform(20, 200)) for j in range(3)}
            ups = float(rng.uniform(50, 400))
            a = clear_market(fast, pdu_spot, ups)
            b2 = clear_market(slow, pdu_spot, ups)
            assert a.price == pytest.approx(b2.price)
            assert a.revenue_rate == pytest.approx(b2.revenue_rate)
            for rack_id, grant in a.grants_w.items():
                assert grant == pytest.approx(b2.grants_w[rack_id])

    def test_paths_agree_with_constraints(self):
        from repro.infrastructure.constraints import CapacityConstraint

        rng = np.random.default_rng(9)
        fast = self._random_bids(rng, 10, opaque=False)
        slow = [
            bid(b.rack_id, b.pdu_id,
                self._OpaqueLinear(*b.demand.as_parameters()),
                cap=b.rack_cap_w)
            for b in fast
        ]
        constraint = CapacityConstraint(
            "zone", frozenset(b.rack_id for b in fast[:5]), 40.0
        )
        pdu_spot = {f"p{j}": 150.0 for j in range(3)}
        a = clear_market(fast, pdu_spot, 400.0, extra_constraints=[constraint])
        b2 = clear_market(slow, pdu_spot, 400.0, extra_constraints=[constraint])
        assert a.price == pytest.approx(b2.price)
        assert a.total_granted_w == pytest.approx(b2.total_granted_w)


class TestPriceGrid:
    """Regression tests for the counted-step grid and breakpoint merge."""

    def _engine(self, step, max_price, breakpoints=True):
        return MarketClearing(
            params=MarketParameters(price_step=step, max_price=max_price),
            include_breakpoints=breakpoints,
        )

    def test_grid_never_overshoots_max_acceptable_price(self):
        # np.arange(lo, hi + step, step) can emit a whole extra element
        # past hi under float error; the counted-step grid must not.
        cases = [(0.01, 0.07), (0.001, 0.256), (0.007, 0.7), (0.03, 0.3)]
        for step, hi in cases:
            engine = self._engine(step, 1.0, breakpoints=False)
            grid = engine.candidate_prices([bid("r1", "p1", StepBid(10.0, hi))])
            assert grid[-1] <= hi + step * 1e-6, (step, hi)
            # ... while still reaching hi (no short grid either).
            assert hi - grid[-1] < step, (step, hi)

    def test_grid_element_count_is_exact(self):
        engine = self._engine(0.01, 0.4, breakpoints=False)
        grid = engine.candidate_prices([bid("r1", "p1", StepBid(10.0, 0.3))])
        assert len(grid) == 31  # 0.00, 0.01, ..., 0.30
        assert grid[0] == 0.0

    def test_breakpoint_near_grid_point_deduplicates(self):
        # 0.1 + 0.2 lands one ulp off 0.3; the q_max breakpoint must
        # merge with the grid point instead of surviving as a duplicate
        # candidate price.
        q_max = 0.1 + 0.2  # 0.30000000000000004
        engine = self._engine(0.01, 0.5)
        grid = engine.candidate_prices(
            [bid("r1", "p1", LinearBid(50.0, 0.05, 10.0, q_max))]
        )
        near = grid[np.abs(grid - 0.3) < 1e-6]
        assert near.size == 1
        assert np.all(np.diff(grid) > 0.01 * 1e-9)

    def test_off_grid_kink_survives_merge(self):
        # A q_max kink between coarse grid points must be added, and the
        # tolerance dedupe must keep it (the smaller of any near-pair).
        engine = self._engine(0.1, 0.5)
        grid = engine.candidate_prices(
            [bid("r1", "p1", LinearBid(50.0, 0.05, 10.0, 0.23))]
        )
        assert 0.23 in grid
        assert 0.05 in grid


class TestAdmission:
    def test_rejected_bid_gets_exact_zero_grant(self):
        # r1's minimum demand (60 W at its price cap) exceeds its PDU's
        # spot capacity: rejected at admission, but it must still appear
        # in the outcome with an exact 0.0 grant.
        result = clear_market(
            [
                bid("r1", "p1", LinearBid(80.0, 0.05, 60.0, 0.3)),
                bid("r2", "p2", StepBid(40.0, 0.25)),
            ],
            {"p1": 50.0, "p2": 100.0},
            200.0,
        )
        assert result.grants_w["r1"] == 0.0
        assert result.grants_w["r2"] > 0.0

    def test_all_bids_rejected_yields_zero_grants(self):
        result = clear_market(
            [bid("r1", "p1", LinearBid(80.0, 0.05, 60.0, 0.3))],
            {"p1": 10.0},
            10.0,
        )
        assert result.grants_w == {"r1": 0.0}
        assert result.total_granted_w == 0.0

    def test_rejection_matches_object_path(self):
        bids = [
            bid("r1", "p1", LinearBid(80.0, 0.05, 60.0, 0.3)),
            bid("r2", "p1", StepBid(30.0, 0.25)),
        ]
        frame_result = clear_market(bids, {"p1": 45.0}, 100.0)
        legacy = MarketClearing(columnar=False)
        object_result = legacy.clear(bids, {"p1": 45.0}, 100.0)
        assert frame_result.grants_w == object_result.grants_w
        assert frame_result.price == object_result.price
