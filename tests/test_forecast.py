"""repro.forecast: signals, bands, risk-aware release, byte-identity.

Three property suites pin the subsystem's contract:

* no signal, at any risk quantile, releases more than the usable
  (margin-adjusted) physical capacity at any level;
* released capacity is monotone non-decreasing in the risk quantile;
* the quantile ensemble's empirical coverage matches the nominal level
  on seeded synthetic noise.

Plus the integration contract: every default-path construction route
(implicit default, raw ``spot_predictor``, explicit signal, spec-built
scenario, all-defaults profile) produces byte-identical JSONL traces.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.forecast import (
    BAND_LEVELS,
    SIGNAL_NAMES,
    BandedForecast,
    CurrentDrawSignal,
    PredictionProfile,
    QuantileEnsembleSignal,
    RiskAwareReleasePolicy,
    build_signal,
)
from repro.infrastructure.monitor import PowerMonitor
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.topology import PowerTopology
from repro.infrastructure.ups import Ups
from repro.prediction.spot import SpotCapacityPredictor

UPS_W = 1000.0
PDU_W = 1000.0
GUARANTEED_W = 300.0


def make_topology() -> PowerTopology:
    return PowerTopology.build(
        Ups("ups", UPS_W),
        [Pdu("p0", PDU_W)],
        [
            Rack("r0", "t0", "p0", GUARANTEED_W, 500.0),
            Rack("r1", "t1", "p0", GUARANTEED_W, 500.0),
        ],
    )


def feed(seed: int, slots: int, low: float = 0.0, high: float = 290.0):
    """A monitored topology with ``slots`` of seeded rack draws recorded."""
    rng = np.random.default_rng(seed)
    topology = make_topology()
    monitor = PowerMonitor(topology)
    for _ in range(slots):
        monitor.record_slot(
            {
                "r0": float(rng.uniform(low, high)),
                "r1": float(rng.uniform(low, high)),
            }
        )
    return topology, monitor


QUANTILE_GRID = (0.05, 0.25, 0.5, 0.75, 0.95, 1.0)


# -- Property: release never exceeds usable physical capacity ----------


@settings(max_examples=25, deadline=None)
@given(
    signal_name=st.sampled_from(SIGNAL_NAMES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    slots=st.integers(min_value=1, max_value=80),
)
def test_release_never_exceeds_usable_capacity(signal_name, seed, slots):
    topology, monitor = feed(seed, slots)
    signal = build_signal(signal_name)
    banded = signal.forecast_slot(topology, [], monitor, slots)
    usable = signal.usable_fraction
    for q in QUANTILE_GRID:
        released = RiskAwareReleasePolicy(q).release(banded, topology)
        assert released.ups_spot_w <= UPS_W * usable + 1e-6
        for pdu_id, pdu in topology.pdus.items():
            assert released.pdu_spot_w[pdu_id] <= pdu.capacity_w * usable + 1e-6
    # The point release obeys the same ceiling (predictor construction).
    point = RiskAwareReleasePolicy(None).release(banded, topology)
    assert point.ups_spot_w <= UPS_W * usable + 1e-6


# -- Property: release is monotone non-decreasing in the quantile ------


@settings(max_examples=25, deadline=None)
@given(
    signal_name=st.sampled_from(SIGNAL_NAMES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    slots=st.integers(min_value=3, max_value=80),
)
def test_release_monotone_in_risk_quantile(signal_name, seed, slots):
    topology, monitor = feed(seed, slots)
    signal = build_signal(signal_name)
    banded = signal.forecast_slot(topology, [], monitor, slots)
    releases = [
        RiskAwareReleasePolicy(q).release(banded, topology)
        for q in QUANTILE_GRID
    ]
    for lower, upper in zip(releases, releases[1:]):
        assert lower.ups_spot_w <= upper.ups_spot_w + 1e-9
        for pdu_id in lower.pdu_spot_w:
            assert lower.pdu_spot_w[pdu_id] <= upper.pdu_spot_w[pdu_id] + 1e-9


# -- Property: ensemble coverage matches the nominal level -------------


def test_ensemble_coverage_matches_nominal():
    """P(realised headroom >= release at q) ~ 1 - q on i.i.d. noise.

    A single-member ensemble over ``CurrentDrawSignal(window=1)`` makes
    the point reference exactly the current draw, so the coverage
    identity ``release <= realised  <=>  e_{t+1} <= Q_e(1 - q)`` is
    exact under i.i.d. innovations.
    """
    rng = np.random.default_rng(7)
    n = 600
    warmup = 60
    draws = {
        "r0": np.clip(rng.normal(200.0, 15.0, n), 100.0, 290.0),
        "r1": np.clip(rng.normal(180.0, 12.0, n), 100.0, 290.0),
    }
    topology = make_topology()
    monitor = PowerMonitor(topology)
    signal = QuantileEnsembleSignal(
        members=(CurrentDrawSignal(window=1),), band_window=400
    )
    usable = signal.usable_fraction
    quantiles = (0.25, 0.5, 0.75)
    covered = {q: 0 for q in quantiles}
    total = 0
    for t in range(n - 1):
        monitor.record_slot({rid: float(draws[rid][t]) for rid in draws})
        if t < warmup:
            continue
        banded = signal.forecast_slot(topology, [], monitor, t + 1)
        assert banded.has_band
        realised = UPS_W * usable - float(
            draws["r0"][t + 1] + draws["r1"][t + 1]
        )
        total += 1
        for q in quantiles:
            released = RiskAwareReleasePolicy(q).release(banded, topology)
            if released.ups_spot_w <= realised + 1e-9:
                covered[q] += 1
    assert total > 400
    for q in quantiles:
        assert abs(covered[q] / total - (1.0 - q)) < 0.12


# -- Unit: band mechanics and validation -------------------------------


class TestBandedForecast:
    def test_degenerate_band_returns_point(self):
        topology, monitor = feed(3, 10)
        signal = CurrentDrawSignal()
        banded = signal.forecast_slot(topology, [], monitor, 10)
        assert not banded.has_band
        assert banded.at_quantile(0.05) is banded.point
        assert banded.at_quantile(0.95) is banded.point

    def test_quantile_out_of_range_rejected(self):
        banded = BandedForecast(point=None)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError, match="risk quantile"):
                banded.at_quantile(bad)

    def test_band_clamps_outside_knots(self):
        topology, monitor = feed(11, 50)
        signal = build_signal("moving_average")
        banded = signal.forecast_slot(topology, [], monitor, 50)
        assert banded.has_band
        lowest = banded.at_quantile(min(BAND_LEVELS))
        below = banded.at_quantile(0.001)
        assert below.ups_spot_w == lowest.ups_spot_w

    def test_slot_zero_is_the_zero_forecast(self):
        topology, monitor = feed(5, 0)
        for name in SIGNAL_NAMES:
            banded = build_signal(name).forecast_slot(topology, [], monitor, 0)
            assert banded.point.ups_spot_w == 0.0
            assert set(banded.point.pdu_spot_w) == set(topology.pdus)
            assert not banded.has_band

    def test_current_draw_matches_inline_rule(self):
        # The refactored paper rule must be float-identical to feeding
        # rack_recent_max_w references into the predictor directly.
        topology, monitor = feed(13, 25)
        signal = CurrentDrawSignal()
        banded = signal.forecast_slot(topology, ["r0"], monitor, 25)
        predictor = SpotCapacityPredictor()
        expected = predictor.forecast(
            topology,
            ["r0"],
            {
                rid: monitor.rack_recent_max_w(rid, 5)
                for rid in topology.racks
            },
        )
        assert banded.point == expected

    def test_unknown_signal_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown forecasting"):
            build_signal("oracle")

    def test_profile_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            PredictionProfile(signal="nope")
        with pytest.raises(ConfigurationError):
            PredictionProfile(risk_quantile=2.0)
        with pytest.raises(ConfigurationError):
            PredictionProfile(window=0)
        with pytest.raises(ConfigurationError):
            PredictionProfile(under_prediction_factor=0.0)


# -- Integration: one forecast-producing code path ---------------------


def _trace_bytes(tmp_path, label, **run_kwargs) -> bytes:
    from repro.sim.engine import run_simulation
    from repro.sim.scenario import testbed_scenario
    from repro.telemetry import TelemetryConfig

    scenario = run_kwargs.pop("scenario", None)
    if scenario is None:
        scenario = testbed_scenario(seed=3)
    run_simulation(
        scenario,
        40,
        telemetry=TelemetryConfig(out_dir=tmp_path / label, label="run"),
        **run_kwargs,
    )
    return (tmp_path / label / "run_trace.jsonl").read_bytes()


def test_default_path_trace_byte_identity(tmp_path):
    """Every default-path construction route emits the same bytes."""
    from repro.scenarios import build_scenario, testbed_spec
    from repro.sim.scenario import testbed_scenario

    reference = _trace_bytes(tmp_path, "default")
    assert reference  # non-empty trace

    # Legacy raw-predictor argument.
    assert _trace_bytes(
        tmp_path, "predictor", spot_predictor=SpotCapacityPredictor()
    ) == reference
    # Explicit default signal.
    assert _trace_bytes(
        tmp_path, "signal", signal=CurrentDrawSignal()
    ) == reference
    # All-defaults profile carried on the scenario.
    assert _trace_bytes(
        tmp_path,
        "profile",
        scenario=dataclasses.replace(
            testbed_scenario(seed=3), prediction=PredictionProfile()
        ),
    ) == reference
    # Spec-built scenario without a prediction component.
    assert _trace_bytes(
        tmp_path, "spec", scenario=build_scenario(testbed_spec(seed=3))
    ) == reference


def test_forecast_telemetry_summary_keys(tmp_path):
    """A banded run exports forecast-error and coverage telemetry."""
    from repro.sim.engine import run_simulation
    from repro.sim.scenario import testbed_scenario
    from repro.telemetry import TelemetryConfig

    scenario = dataclasses.replace(
        testbed_scenario(seed=3),
        prediction=PredictionProfile(signal="ensemble", risk_quantile=0.5),
    )
    run_simulation(
        scenario,
        30,
        telemetry=TelemetryConfig(out_dir=tmp_path, label="banded"),
    )
    summary = json.loads((tmp_path / "banded_summary.json").read_text())
    data = summary["data"]
    assert data["signal"] == "ensemble"
    assert data["risk_quantile"] == 0.5
    assert 0.0 <= data["forecast_coverage"] <= 1.0
    assert "forecast_mean_error_w" in data
    assert "forecast_mean_abs_error_w" in data
    # The banded predict span carries the band edges.
    trace = (tmp_path / "banded_trace.jsonl").read_text().splitlines()
    predict_spans = [
        r for r in map(json.loads, trace)
        if r.get("kind") == "span" and r.get("name") == "predict"
    ]
    banded_spans = [s for s in predict_spans if "band_low_ups_w" in s["attrs"]]
    assert banded_spans
    assert all(
        s["attrs"]["band_low_ups_w"] <= s["attrs"]["band_high_ups_w"] + 1e-9
        for s in banded_spans
    )
