"""Fig. 2(b): power CDFs and the oversubscription / spot-capacity areas."""

from repro.experiments import render_fig02, run_fig02


def test_fig02_spot_opportunity(benchmark, archive):
    result = benchmark.pedantic(
        run_fig02, kwargs={"slots": 60_000}, rounds=1, iterations=1
    )
    archive("fig02_spot_opportunity", render_fig02(result))
    # Shape: oversubscription gains utilization (area A), emergencies
    # stay occasional (area B), and spot capacity remains (area C).
    assert result.utilization_gain > 0.05
    assert 0.0 < result.emergency_fraction < 0.25
    assert result.spot_fraction > 0.1
    # The oversubscribed CDF sits right of the original everywhere.
    for x in (0.5, 0.7, 0.9):
        assert result.oversubscribed_cdf.evaluate(x) <= (
            result.base_cdf.evaluate(x) + 1e-9
        )
