"""Fig. 13: CDFs of market price (by tenant class) and UPS utilization."""

from repro.experiments import render_fig13, run_fig13


def test_fig13_price_power_cdf(benchmark, archive):
    result = benchmark.pedantic(
        run_fig13, kwargs={"slots": 5000}, rounds=1, iterations=1
    )
    archive("fig13_price_power_cdf", render_fig13(result))
    # (a) Sprinting tenants bid and pay higher prices; opportunistic
    # tenants never above the amortised guaranteed rate (~$0.2/kW/h).
    assert result.sprint_price_cdf.quantile(0.5) > (
        result.opportunistic_price_cdf.quantile(0.5)
    )
    assert result.opportunistic_price_cdf.max <= 0.205 + 1e-9
    # (b) SpotDC improves infrastructure utilization at the top of the
    # distribution: more mass at high utilization than PowerCapped.
    tail = 0.95
    assert result.ups_cdf_spotdc.exceedance_fraction(tail) >= (
        result.ups_cdf_powercapped.exceedance_fraction(tail)
    )
    assert result.mean_utilization_gain >= 0.0
