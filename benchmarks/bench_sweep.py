"""Parallel sweep-runner benchmark: serial vs ``--jobs 4``.

Runs the same 12-cell sweep grid twice — serially and fanned out over
4 worker processes — asserts the results are *identical* (the sweep
runner's determinism contract), and writes
``results/BENCH_sweep.json`` with both wall times.

The >= 2x speedup assertion only arms on machines with at least 4 CPU
cores; single-core CI sandboxes still run the benchmark for the
result-identity check and record their core count in the envelope.

``BENCH_SMOKE=1`` shrinks the per-cell horizon; grid shape and
assertions are unchanged.
"""

import os
import pathlib
import time

from repro.sweep import run_sweep
from repro.telemetry import write_summary_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Per-cell horizon: long enough that pool startup amortises away.
SLOTS = 30 if SMOKE else 150

#: The benchmark grid: 3 x 2 x 2 = 12 cells over the testbed preset.
SWEEP_CONFIG = {
    "name": "bench",
    "base": {"preset": "testbed"},
    "slots": SLOTS,
    "seed": 7,
    "compare": True,
    "axes": {
        "supply.ups_oversubscription": [1.0, 1.05, 1.1],
        "time.slot_seconds": [60, 120],
        "supply.infrastructure_cost_per_watt": [15.0, 25.0],
    },
}

PARALLEL_JOBS = 4


def _timed_sweep(jobs: int) -> tuple[dict, float]:
    start = time.perf_counter()
    data = run_sweep(SWEEP_CONFIG, jobs=jobs)
    return data, time.perf_counter() - start


def test_sweep_parallel_speedup(archive):
    cpus = os.cpu_count() or 1
    serial, serial_s = _timed_sweep(jobs=1)
    parallel, parallel_s = _timed_sweep(jobs=PARALLEL_JOBS)

    # The determinism contract holds on any machine: fan-out may change
    # wall-clock, never a number.
    assert serial == parallel

    speedup = serial_s / parallel_s
    data = {
        "cells": len(serial["cells"]),
        "slots": SLOTS,
        "jobs": PARALLEL_JOBS,
        "cpu_count": cpus,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "speedup_asserted": cpus >= PARALLEL_JOBS,
    }
    write_summary_json(
        RESULTS_DIR / "BENCH_sweep.json",
        bench="sweep",
        data=data,
        meta={"seed": SWEEP_CONFIG["seed"], "smoke": SMOKE},
    )
    archive(
        "sweep_parallel",
        "\n".join(
            f"{k}: {v:.4f}" if isinstance(v, float) else f"{k}: {v}"
            for k, v in data.items()
        ),
    )
    if cpus >= PARALLEL_JOBS:
        assert speedup >= 2.0, (
            f"12-cell sweep at --jobs {PARALLEL_JOBS} on {cpus} cores sped "
            f"up only {speedup:.2f}x (serial {serial_s:.2f}s, parallel "
            f"{parallel_s:.2f}s)"
        )
