"""Ablation benchmarks for the design choices DESIGN.md calls out."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    render_breakpoint_ablation,
    render_pricing_ablation,
    render_safety_ablation,
    run_breakpoint_ablation,
    run_pricing_ablation,
    run_safety_ablation,
)


def test_ablation_pricing_locality(benchmark, archive):
    ablation = benchmark.pedantic(
        run_pricing_ablation,
        kwargs={"slots": 500, "groups": (1, 5, 15)},
        rounds=1,
        iterations=1,
    )
    archive("ablation_pricing", render_pricing_ablation(ablation))
    per_pdu = np.array(ablation.profit_per_pdu)
    uniform = np.array(ablation.profit_uniform)
    # At the testbed scale the two modes are comparable...
    assert abs(per_pdu[0] - uniform[0]) < 0.05
    # ...but the single facility-wide price decays with scale while the
    # locational price holds (the Fig. 18 stability finding).
    assert uniform[-1] < 0.6 * per_pdu[-1]
    assert per_pdu[-1] > 0.8 * per_pdu[0]


def test_ablation_predictor_conservatism(benchmark, archive):
    ablation = benchmark.pedantic(
        run_safety_ablation, kwargs={"slots": 3000}, rounds=1, iterations=1
    )
    archive("ablation_safety", render_safety_ablation(ablation))
    by_label = dict(zip(ablation.labels, ablation.emergencies))
    default = by_label["margin + rolling refs (default)"]
    neither = by_label["neither"]
    # The conservative predictor keeps "no additional emergencies" true;
    # stripping both protections produces measurably more excursions.
    assert default <= ablation.baseline_emergencies + 1
    assert neither >= default
    # Conservatism costs only a modest slice of profit.
    profits = dict(zip(ablation.labels, ablation.profit_increase))
    assert profits["margin + rolling refs (default)"] > 0.6 * profits["neither"]


def test_ablation_breakpoint_augmentation(benchmark, archive):
    ablation = benchmark.pedantic(
        run_breakpoint_ablation,
        kwargs={"racks": 150, "trials": 8},
        rounds=1,
        iterations=1,
    )
    archive("ablation_breakpoints", render_breakpoint_ablation(ablation))
    plain = np.array(ablation.revenue_plain)
    augmented = np.array(ablation.revenue_breakpoints)
    # Augmentation never loses revenue, and recovers the most on the
    # coarsest grids (where kinks fall between grid points).
    assert np.all(augmented >= plain - 1e-12)
    coarse_gain = augmented[0] - plain[0]
    fine_gain = augmented[-1] - plain[-1]
    assert coarse_gain >= fine_gain - 1e-9


def test_ablation_reserve_price(benchmark, archive):
    from repro.experiments.ablations import (
        render_reserve_price_sweep,
        run_reserve_price_sweep,
    )

    sweep = benchmark.pedantic(
        run_reserve_price_sweep,
        kwargs={"slots": 1200, "reserve_prices": (0.0, 0.05, 0.1, 0.15)},
        rounds=1,
        iterations=1,
    )
    archive("ablation_reserve_price", render_reserve_price_sweep(sweep))
    # A modest floor is harmless (the profit-maximising price already
    # clears above it); a high floor prices out opportunistic demand.
    assert sweep.profit_increase[1] == pytest.approx(
        sweep.profit_increase[0], abs=0.02
    )
    assert sweep.perf_improvement[-1] <= sweep.perf_improvement[0] + 1e-9
    assert sweep.mean_price[-1] >= sweep.mean_price[0]


def test_ablation_slot_length(benchmark, archive):
    from repro.experiments.ablations import (
        render_slot_length_sweep,
        run_slot_length_sweep,
    )

    sweep = benchmark.pedantic(
        run_slot_length_sweep,
        kwargs={"duration_hours": 80.0, "slot_lengths": (60.0, 120.0, 300.0)},
        rounds=1,
        iterations=1,
    )
    archive("ablation_slot_length", render_slot_length_sweep(sweep))
    profit = np.array(sweep.profit_increase)
    perf = np.array(sweep.perf_improvement)
    # The paper's 1-5 minute range all works: outcomes stay in the
    # headline bands and no slot length piles up emergencies.
    assert np.all(profit > 0.04)
    assert np.all((perf > 1.1) & (perf < 1.8))
    assert np.all(np.array(sweep.emergencies) < 3.0)
