"""Fig. 10: the 20-minute SpotDC execution trace (allocation + price)."""

import numpy as np

from repro.experiments import render_fig10, run_fig10


def test_fig10_execution_trace(benchmark, archive):
    trace = benchmark.pedantic(
        run_fig10, kwargs={"search_slots": 600}, rounds=1, iterations=1
    )
    archive("fig10_execution_trace", render_fig10(trace))
    total_alloc = trace.sprint_alloc_w + trace.opportunistic_alloc_w
    # Market activity exists in the selected window.
    assert total_alloc.max() > 0
    assert (trace.price > 0).any()
    # Allocation never exceeds availability (multi-level constraints).
    assert np.all(total_alloc <= trace.available_spot_w + 1e-6)
    # Price moves against availability: correlate across the window.
    if np.std(trace.available_spot_w) > 0 and np.std(trace.price) > 0:
        corr = np.corrcoef(trace.available_spot_w, trace.price)[0, 1]
        assert corr < 0.5  # more supply should not mean much higher price
