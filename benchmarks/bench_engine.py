"""End-to-end slot-loop benchmark and the telemetry overhead guard.

Two jobs:

* ``test_engine_slot_loop`` times the full simulation loop (testbed
  scenario, SpotDC market) with telemetry enabled and disabled and
  writes ``results/BENCH_engine.json`` via the summary exporter, so the
  engine's end-to-end throughput accumulates a trajectory across PRs.
* ``test_disabled_telemetry_overhead`` pins the subsystem's core
  promise: with telemetry *disabled*, the instrumentation wrapped
  around the 15,000-rack clearing hot path costs < 2% wall time versus
  the bare, registry-free call.

``BENCH_SMOKE=1`` (the CI job) shrinks both to smoke sizes; the
assertions are identical.
"""

import os
import pathlib
import time

from repro.config import DEFAULT_SEED, MarketParameters, make_rng
from repro.core.clearing import MarketClearing
from repro.core.frame import BidFrame
from repro.experiments.fig07_prediction_and_scaling import make_synthetic_bids
from repro.sim.engine import run_simulation
from repro.sim.scenario import testbed_scenario as _testbed_scenario
from repro.sweep import parallel_map
from repro.telemetry import TelemetryConfig, write_summary_json
from repro.telemetry.registry import NULL_REGISTRY
from repro.telemetry.tracing import NULL_TRACER

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Worker processes for the telemetry-mode timing runs; 1 (default)
#: times them serially for the least contention noise.
JOBS = int(os.environ.get("BENCH_JOBS", "1"))

#: (slots, clearing racks, timing repeats) per mode.
SLOTS = 80 if SMOKE else 400
CLEARING_RACKS = 2_000 if SMOKE else 15_000
REPEATS = 3 if SMOKE else 5


def _run_once(slots: int, telemetry: TelemetryConfig | None) -> float:
    scenario = _testbed_scenario(seed=DEFAULT_SEED)
    start = time.perf_counter()
    run_simulation(scenario, slots=slots, telemetry=telemetry)
    return time.perf_counter() - start


def _timed_mode(telemetry_enabled: bool) -> float:
    """Module-level cell for :func:`parallel_map` (must pickle).

    Builds the :class:`TelemetryConfig` inside the worker — in-memory
    trace + metrics, no export — so the payload is a plain bool.
    """
    config = TelemetryConfig() if telemetry_enabled else None
    return _run_once(SLOTS, config)


def test_engine_slot_loop(archive):
    disabled_s, enabled_s = parallel_map(_timed_mode, [False, True], jobs=JOBS)
    scenario = _testbed_scenario(seed=DEFAULT_SEED)
    result = run_simulation(
        scenario, slots=SLOTS, telemetry=TelemetryConfig()
    )
    trace = result.trace
    data = {
        "slots": SLOTS,
        "disabled_seconds": disabled_s,
        "enabled_seconds": enabled_s,
        "telemetry_overhead": enabled_s / disabled_s - 1.0,
        "slots_per_second_disabled": SLOTS / disabled_s,
        "spans": len(trace.spans),
        "events": len(trace.events),
    }
    write_summary_json(
        RESULTS_DIR / "BENCH_engine.json",
        bench="engine",
        data=data,
        meta={"seed": DEFAULT_SEED, "smoke": SMOKE, "jobs": JOBS},
    )
    archive(
        "engine_slot_loop",
        "\n".join(f"{k}: {v:.4f}" if isinstance(v, float) else f"{k}: {v}"
                  for k, v in data.items()),
    )
    # Structural sanity: one root + six phase spans per slot.
    assert len(trace.spans) == 7 * SLOTS
    # Enabled telemetry stays cheap even end-to-end (generous bound —
    # the hard guarantee is for the *disabled* path, below).
    assert enabled_s < 2.0 * disabled_s


def _best_clear_seconds(engine, frame, pdu_spot, ups_spot, wrapped: bool) -> float:
    """Min-of-N wall time for one clearing, bare or null-instrumented.

    ``wrapped`` reproduces exactly what the disabled telemetry path adds
    around a clearing call: one null span enter/exit and one null
    counter increment.
    """
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        if wrapped:
            with NULL_TRACER.span("clear", slot=0):
                engine.clear(frame, pdu_spot, ups_spot)
            NULL_REGISTRY.counter("clearings_total").inc()
        else:
            engine.clear(frame, pdu_spot, ups_spot)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_telemetry_overhead():
    rng = make_rng(DEFAULT_SEED)
    bids, pdu_spot, ups_spot = make_synthetic_bids(CLEARING_RACKS, rng)
    frame = BidFrame.from_bids(bids)
    engine = MarketClearing(
        params=MarketParameters(price_step=0.001), include_breakpoints=False
    )
    # Warm both code paths before timing.
    engine.clear(frame, pdu_spot, ups_spot)
    bare = _best_clear_seconds(engine, frame, pdu_spot, ups_spot, wrapped=False)
    wrapped = _best_clear_seconds(engine, frame, pdu_spot, ups_spot, wrapped=True)
    overhead = wrapped / bare - 1.0
    print(
        f"\n{CLEARING_RACKS} racks: bare {bare * 1e3:.2f} ms, "
        f"null-instrumented {wrapped * 1e3:.2f} ms, "
        f"overhead {100 * overhead:+.3f}%"
    )
    assert wrapped < 1.02 * bare, (
        f"disabled telemetry adds {100 * overhead:.2f}% to the "
        f"{CLEARING_RACKS}-rack clearing (budget: 2%)"
    )
