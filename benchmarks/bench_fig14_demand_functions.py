"""Fig. 14: LinearBid vs StepBid vs FullBid across spot availability."""

import numpy as np

from repro.experiments import render_fig14, run_fig14


def test_fig14_demand_functions(benchmark, archive):
    sweep = benchmark.pedantic(
        run_fig14,
        kwargs={
            "slots": 1500,
            "oversubscription_ratios": (1.10, 1.05, 1.0),
        },
        rounds=1,
        iterations=1,
    )
    archive("fig14_demand_functions", render_fig14(sweep))
    linear = np.array(sweep.profit_increase["LinearBid"])
    step = np.array(sweep.profit_increase["StepBid"])
    full = np.array(sweep.profit_increase["FullBid"])
    # LinearBid beats StepBid on average, and by the most when spot
    # capacity is scarce (first sweep point).
    assert linear.mean() > step.mean()
    assert linear[0] > step[0]
    # LinearBid is close to FullBid (within a third of FullBid's level).
    assert linear.mean() > 0.66 * full.mean()
    # Tenants also do better with elastic bids than all-or-nothing.
    assert np.mean(sweep.perf_improvement["LinearBid"]) >= (
        np.mean(sweep.perf_improvement["StepBid"]) - 0.02
    )
