"""Table I: testbed configuration (consistency benchmark)."""

import pytest

from repro.experiments import render_table1, run_table1


def test_table1_testbed(benchmark, archive):
    summary = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    archive("table1_testbed", render_table1(summary))
    assert summary.leased_w["pdu:0"] == pytest.approx(750.0)
    assert summary.leased_w["pdu:1"] == pytest.approx(760.0)
    assert summary.pdu_capacities_w["pdu:0"] == pytest.approx(715.0, abs=1.0)
    assert summary.pdu_capacities_w["pdu:1"] == pytest.approx(724.0, abs=1.0)
    assert summary.ups_capacity_w == pytest.approx(1370.0, abs=1.0)
