"""Fig. 8: power-performance relations at different workload levels."""

from repro.experiments import render_fig08, run_fig08


def test_fig08_power_performance(benchmark, archive):
    result = benchmark.pedantic(
        run_fig08, kwargs={"samples": 60}, rounds=3, iterations=1
    )
    archive("fig08_power_performance", render_fig08(result))
    # Latency falls with power and rises with load; throughput rises.
    assert result.search.is_monotone()
    assert result.web.is_monotone()
    assert result.count.is_monotone()
    for profile in (result.search, result.web):
        low, mid, high = profile.curves
        peak = low.power_w[-1]
        assert low.performance_at(peak) < mid.performance_at(peak)
        assert mid.performance_at(peak) < high.performance_at(peak)
    # Throughput roughly doubles over the upper half of the power range.
    count = result.count.curves[0]
    mid_power = 0.5 * (count.power_w[0] + count.power_w[-1])
    assert count.performance_at(count.power_w[-1]) > 1.5 * count.performance_at(
        mid_power
    )
