"""Forecast subsystem benchmarks: predict-phase overhead + frontier.

Two jobs:

* ``test_default_signal_predict_overhead`` pins the subsystem's core
  promise: the default ``CurrentDrawSignal`` + point release — the one
  forecast-producing path the engine now has — costs < 2% wall time
  versus the pre-refactor inline rule (reference dict comprehension
  straight into ``SpotCapacityPredictor.forecast``), reconstructed here
  verbatim.  Timed on a synthetic facility large enough that the
  per-call reference work dominates timer noise.  Writes
  ``results/BENCH_forecast.json`` so the predict phase accumulates a
  cost trajectory across PRs.
* ``test_prediction_risk_frontier_smoke`` regenerates the
  ``ext_prediction_risk`` predictor x risk-quantile frontier (strict
  machine checks on), archives the rendered figure, and writes
  ``results/BENCH_prediction_risk.json`` via the summary exporter.

``BENCH_SMOKE=1`` (the CI job) shrinks sizes; assertions are identical.
"""

import os
import pathlib
import time

import numpy as np

from repro.config import DEFAULT_SEED
from repro.experiments.ext_prediction_risk import (
    run_prediction_risk,
    render_prediction_risk,
    write_prediction_risk_summary,
)
from repro.forecast import CurrentDrawSignal, RiskAwareReleasePolicy, build_signal
from repro.infrastructure.monitor import PowerMonitor
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.topology import PowerTopology
from repro.infrastructure.ups import Ups
from repro.prediction.spot import SpotCapacityPredictor
from repro.telemetry import write_summary_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Worker processes for the frontier cells; 1 (default) runs serially.
JOBS = int(os.environ.get("BENCH_JOBS", "1"))

#: Synthetic facility size for the per-call predict timing.
RACKS = 120 if SMOKE else 480
RACKS_PER_PDU = 12
#: Predict calls per timed batch and min-of-N batches.
CALLS = 200 if SMOKE else 400
REPEATS = 5
#: History depth recorded before timing (> the 5-slot window).
WARM_SLOTS = 40

#: Frontier smoke size — the tier-2 CI invocation uses the same slots.
FRONTIER_SLOTS = 120


def _warm_monitor(racks: int):
    """A synthetic topology with ``WARM_SLOTS`` of seeded draws recorded."""
    n_pdus = racks // RACKS_PER_PDU
    pdus = [Pdu(f"p{i}", RACKS_PER_PDU * 500.0) for i in range(n_pdus)]
    rack_objs = [
        Rack(f"r{i}", f"t{i % 8}", f"p{i % n_pdus}", 300.0, 500.0)
        for i in range(racks)
    ]
    topology = PowerTopology.build(Ups("ups", racks * 500.0), pdus, rack_objs)
    monitor = PowerMonitor(topology)
    rng = np.random.default_rng(DEFAULT_SEED)
    for _ in range(WARM_SLOTS):
        draws = rng.uniform(50.0, 290.0, racks)
        monitor.record_slot(
            {f"r{i}": float(draws[i]) for i in range(racks)}
        )
    return topology, monitor


def _best_batch_seconds(*fns) -> "list[float]":
    """Min-of-``REPEATS`` wall time for ``CALLS`` back-to-back calls.

    The candidates' batches are interleaved within each repeat so clock
    drift or a noisy CI neighbour biases every candidate equally rather
    than whichever happened to be timed last.
    """
    best = [float("inf")] * len(fns)
    for _ in range(REPEATS):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            for _ in range(CALLS):
                fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def test_default_signal_predict_overhead(archive):
    topology, monitor = _warm_monitor(RACKS)
    requesting = [f"r{i}" for i in range(0, RACKS, 7)]
    slot = WARM_SLOTS

    signal = CurrentDrawSignal()
    policy = RiskAwareReleasePolicy(None)
    predictor = SpotCapacityPredictor()
    window = signal.window

    def signal_path():
        banded = signal.forecast_slot(topology, requesting, monitor, slot)
        return policy.release(banded, topology)

    def inline_path():
        # The engine's pre-refactor predict phase, verbatim.
        references = {
            rid: monitor.rack_recent_max_w(rid, window)
            for rid in topology.racks
        }
        return predictor.forecast(topology, requesting, references)

    assert signal_path() == inline_path()  # identical maths, and a warm-up
    inline_s, signal_s = _best_batch_seconds(inline_path, signal_path)
    overhead = signal_s / inline_s - 1.0

    # Informational: the banded ensemble path, for the cost trajectory.
    ensemble = build_signal("ensemble")
    (ensemble_s,) = _best_batch_seconds(
        lambda: ensemble.forecast_slot(topology, requesting, monitor, slot)
    )

    data = {
        "racks": RACKS,
        "calls_per_batch": CALLS,
        "inline_us_per_call": 1e6 * inline_s / CALLS,
        "signal_us_per_call": 1e6 * signal_s / CALLS,
        "ensemble_us_per_call": 1e6 * ensemble_s / CALLS,
        "default_signal_overhead": overhead,
    }
    write_summary_json(
        RESULTS_DIR / "BENCH_forecast.json",
        bench="forecast",
        data=data,
        meta={"seed": DEFAULT_SEED, "smoke": SMOKE},
    )
    archive(
        "forecast_predict_overhead",
        "\n".join(
            f"{k}: {v:.4f}" if isinstance(v, float) else f"{k}: {v}"
            for k, v in data.items()
        ),
    )
    assert signal_s < 1.02 * inline_s, (
        f"default signal adds {100 * overhead:.2f}% to the {RACKS}-rack "
        f"predict phase (budget: 2%)"
    )


def test_prediction_risk_frontier_smoke(archive):
    study = run_prediction_risk(slots=FRONTIER_SLOTS, jobs=JOBS)
    archive("ext_prediction_risk", render_prediction_risk(study))
    write_prediction_risk_summary(
        study, RESULTS_DIR / "BENCH_prediction_risk.json"
    )
    # run_prediction_risk is strict by default; re-assert the headline
    # invariants so a future default flip cannot silently weaken this.
    assert not study.violations()
    assert study.fig17_profit is not None  # current-draw column == Fig. 17
