"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures, prints
the paper-style rows, and archives them under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the latest reproduction output.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def archive():
    """Persist a figure's rendered text and echo it to stdout."""

    def _archive(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _archive
