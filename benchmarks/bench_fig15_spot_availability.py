"""Fig. 15: impact of available spot capacity."""

import numpy as np

from repro.experiments import render_fig15, run_fig15


def test_fig15_spot_availability(benchmark, archive):
    sweep = benchmark.pedantic(
        run_fig15,
        kwargs={
            "slots": 1500,
            "oversubscription_ratios": (1.10, 1.05, 1.02, 1.0),
        },
        rounds=1,
        iterations=1,
    )
    archive("fig15_spot_availability", render_fig15(sweep))
    spot = np.array(sweep.spot_fractions)
    profit = np.array(sweep.profit_increase)
    perf = np.array(sweep.perf_improvement)
    price = np.array(sweep.mean_price)
    # The sweep actually varies availability, ascending.
    assert np.all(np.diff(spot) > 0)
    # Profit and performance rise with availability; price falls.
    assert profit[-1] > profit[0]
    assert perf[-1] > perf[0]
    assert price[-1] < price[0]
