"""Fig. 17: impact of spot-capacity under-prediction."""

import numpy as np

from repro.experiments import render_fig17, run_fig17


def test_fig17_underprediction(benchmark, archive):
    sweep = benchmark.pedantic(
        run_fig17,
        kwargs={"slots": 1500, "factors": (1.0, 0.95, 0.90, 0.85, 0.80, 0.75)},
        rounds=1,
        iterations=1,
    )
    archive("fig17_underprediction", render_fig17(sweep))
    profit = np.array(sweep.profit_increase)
    perf = np.array(sweep.perf_improvement)
    # Paper: under-prediction has "nearly no impact".  Even at 25%
    # under-prediction, profit and performance retain most of their value.
    assert profit[-1] > 0.6 * profit[0]
    assert perf[-1] - 1.0 > 0.6 * (perf[0] - 1.0)
    # And the trend is monotone-ish downward (no pathological behaviour).
    assert profit[0] >= profit[-1] - 1e-9
