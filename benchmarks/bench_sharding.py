"""The million-rack slot: incremental frame delta + sharded clear.

The ROADMAP's scaling target is one slot — re-aggregate what changed,
clear, reconcile — inside a 1-minute market slot at 1M racks.  This
bench pins that budget in ``results/BENCH_sharding.json`` with a
per-phase breakdown, and separately pins the incremental builder's
unchanged-slot speedup at the 15k-rack reference point (the frame
rebuild the builder replaces costs ~32 ms there).

Slot model: every tenant re-submits fresh bid objects (equal values —
the builder must prove them unchanged), while ~1% of PDUs carry a
genuinely changed bid and re-aggregate.  The clear then runs sharded
through the same decomposition the engine uses.

``BENCH_SMOKE=1`` shrinks the fleet; assertions are identical except
the 60 s budget, which only means something at full scale.
"""

import os
import pathlib
import time

from repro.config import DEFAULT_SEED, MarketParameters, make_rng
from repro.core.bids import RackBid
from repro.core.clearing import MarketClearing
from repro.core.demand import LinearBid
from repro.core.frame import BidFrame
from repro.core.sharding import IncrementalFrameBuilder, clear_per_pdu_sharded
from repro.experiments.fig07_prediction_and_scaling import make_synthetic_bids
from repro.telemetry import write_summary_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
JOBS = int(os.environ.get("BENCH_JOBS", "1"))

RACKS = 20_000 if SMOKE else 1_000_000
RACKS_PER_PDU = 250
SHARDS = 16
SLOT_BUDGET_S = 60.0

#: The incremental builder's reference point: the 15k-rack frame build
#: the ROADMAP quotes at ~32 ms, and the speedup the builder must keep.
REFERENCE_RACKS = 2_000 if SMOKE else 15_000
MIN_UNCHANGED_SPEEDUP = 5.0


def _rebid(bids, mutate_every_pdu=0):
    """Fresh bid objects for every rack, as tenants submit each slot.

    Demand objects are re-used (value-identical curves), so the builder
    must walk every bid's parameters to prove blocks clean.  When
    ``mutate_every_pdu`` is n > 0, the first rack of every n-th PDU gets
    a genuinely different curve — those PDUs must re-aggregate.
    """
    fresh = []
    for i, b in enumerate(bids):
        demand = b.demand
        if mutate_every_pdu and i % (RACKS_PER_PDU * mutate_every_pdu) == 0:
            demand = LinearBid(
                b.demand.d_max_w * 0.9,
                b.demand.q_min,
                b.demand.d_min_w,
                b.demand.q_max,
            )
        fresh.append(
            RackBid(b.rack_id, b.pdu_id, b.tenant_id, demand, b.rack_cap_w)
        )
    return fresh


def test_million_rack_slot(archive):
    rng = make_rng(DEFAULT_SEED)
    bids, pdu_spot, ups_spot = make_synthetic_bids(
        RACKS, rng, racks_per_pdu=RACKS_PER_PDU
    )
    engine = MarketClearing(
        params=MarketParameters(price_step=0.001), include_breakpoints=False
    )
    builder = IncrementalFrameBuilder()

    start = time.perf_counter()
    builder.build(bids)
    initial_build_s = time.perf_counter() - start

    # The timed slot: fresh equal bids everywhere, 1-in-100 PDUs dirty.
    slot_bids = _rebid(bids, mutate_every_pdu=100)
    start = time.perf_counter()
    frame = builder.build(slot_bids)
    frame_delta_s = time.perf_counter() - start
    dirty_pdus = len(builder.last_dirty)
    assert 0 < dirty_pdus <= len(pdu_spot) // 50

    start = time.perf_counter()
    result = clear_per_pdu_sharded(
        engine, frame, pdu_spot, ups_spot, shards=SHARDS, jobs=JOBS
    )
    clear_s = time.perf_counter() - start
    slot_s = frame_delta_s + clear_s
    assert result.grants_w and result.price > 0.0

    data = {
        "racks": RACKS,
        "pdus": len(pdu_spot),
        "shards": SHARDS,
        "jobs": JOBS,
        "initial_build_seconds": initial_build_s,
        "frame_delta_seconds": frame_delta_s,
        "dirty_pdus": dirty_pdus,
        "clear_seconds": clear_s,
        "slot_seconds": slot_s,
        "slot_budget_seconds": SLOT_BUDGET_S,
        "granted_racks": sum(1 for g in result.grants_w.values() if g > 0),
    }
    write_summary_json(
        RESULTS_DIR / "BENCH_sharding.json",
        bench="sharding",
        data=data,
        meta={"seed": DEFAULT_SEED, "smoke": SMOKE},
    )
    archive(
        "sharding_slot",
        "\n".join(
            f"{k}: {v:.4f}" if isinstance(v, float) else f"{k}: {v}"
            for k, v in data.items()
        ),
    )
    if not SMOKE:
        assert slot_s < SLOT_BUDGET_S, (
            f"1M-rack slot took {slot_s:.1f} s "
            f"(budget {SLOT_BUDGET_S:.0f} s)"
        )


def test_unchanged_slot_build_speedup(archive):
    rng = make_rng(DEFAULT_SEED)
    bids, _, _ = make_synthetic_bids(REFERENCE_RACKS, rng)
    builder = IncrementalFrameBuilder()
    builder.build(bids)

    best_scratch = float("inf")
    best_delta = float("inf")
    for _ in range(5):
        fresh = _rebid(bids)
        start = time.perf_counter()
        BidFrame.from_bids(fresh)
        best_scratch = min(best_scratch, time.perf_counter() - start)
        start = time.perf_counter()
        builder.build(fresh)
        best_delta = min(best_delta, time.perf_counter() - start)
        assert builder.last_dirty == ()

    speedup = best_scratch / best_delta
    archive(
        "sharding_unchanged_build",
        f"racks: {REFERENCE_RACKS}\n"
        f"from_scratch_ms: {best_scratch * 1e3:.3f}\n"
        f"unchanged_delta_ms: {best_delta * 1e3:.3f}\n"
        f"speedup: {speedup:.1f}x",
    )
    assert speedup >= MIN_UNCHANGED_SPEEDUP, (
        f"unchanged-slot frame build only {speedup:.1f}x faster than "
        f"from-scratch (need >= {MIN_UNCHANGED_SPEEDUP:.0f}x)"
    )
