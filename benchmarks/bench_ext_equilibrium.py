"""Extension benchmark: equilibrium of the bidding game (future work)."""

from repro.experiments.ext_equilibrium import (
    render_equilibrium_study,
    run_equilibrium_study,
)


def test_ext_equilibrium(benchmark, archive):
    study = benchmark.pedantic(run_equilibrium_study, rounds=1, iterations=1)
    archive("ext_equilibrium", render_equilibrium_study(study))
    # Dynamics converge quickly on the Table I-like stage game.
    assert study.converged
    assert study.rounds <= 15
    # Strategic play never leaves tenants worse off than guideline bids,
    # and the market does not unravel (capacity keeps trading).
    assert study.equilibrium_surplus >= study.guideline_surplus - 1e-9
    assert study.equilibrium_sold_w > 0.3 * study.guideline_sold_w
