"""Fig. 12: extended-run cost / performance / spot usage + the +9.7%
operator-profit headline."""

import numpy as np

from repro.experiments import render_fig12, run_fig12


def test_fig12_cost_performance(benchmark, archive):
    result = benchmark.pedantic(
        run_fig12, kwargs={"slots": 2500}, rounds=1, iterations=1
    )
    archive("fig12_cost_performance", render_fig12(result))

    # Operator headline: paper reports +9.7%; we assert the band.
    assert 0.05 < result.profit_increase < 0.15

    perf = [row.perf_ratio for row in result.rows]
    cost = [row.cost_ratio for row in result.rows]
    # Tenants improve 1.2-1.8x on average at marginal cost.
    assert 1.15 < float(np.mean(perf)) < 1.8
    assert all(c < 1.05 for c in cost)
    # SpotDC close to MaxPerf.
    for row in result.rows:
        assert row.maxperf_ratio >= row.perf_ratio - 0.05
    # Sprinting cheaper and using proportionally less spot than
    # opportunistic (Fig. 12a / 12c orderings).
    sprint = [r for r in result.rows if r.kind == "sprinting"]
    opp = [r for r in result.rows if r.kind == "opportunistic"]
    assert np.mean([r.cost_ratio for r in sprint]) < np.mean(
        [r.cost_ratio for r in opp]
    )
    assert np.mean([r.spot_use_max for r in sprint]) < np.mean(
        [r.spot_use_max for r in opp]
    )
