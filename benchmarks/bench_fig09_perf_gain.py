"""Fig. 9: performance gain ($/h) from spot capacity."""

from repro.experiments import render_fig09, run_fig09


def test_fig09_perf_gain(benchmark, archive):
    result = benchmark.pedantic(run_fig09, rounds=3, iterations=1)
    archive("fig09_perf_gain", render_fig09(result))
    # Concave, increasing, saturating value curves for all three tenants;
    # Search (highest willingness) values spot capacity the most.
    search = result.curves["Search-1"]
    web = result.curves["Web"]
    count = result.curves["Count-1"]
    for curve in (search, web, count):
        full = curve.gain_per_hour(curve.max_spot_w)
        half = curve.gain_per_hour(curve.max_spot_w / 2)
        assert full > 0
        assert half >= 0.5 * full - 1e-9  # concavity
    probe = min(c.max_spot_w for c in result.curves.values())
    assert search.gain_per_hour(probe) > count.gain_per_hour(probe)
