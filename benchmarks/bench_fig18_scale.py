"""Fig. 18: scaling to a hyper-scale facility (up to 1,000 tenants).

Alongside the paper-style text archive, the sweep is persisted as
``results/fig18_scale.json`` in the telemetry exporter's envelope
format, so scaling behaviour accumulates a machine-readable trajectory.
"""

import pathlib

import numpy as np

from repro.experiments import render_fig18, run_fig18
from repro.telemetry import write_summary_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_fig18_scale(benchmark, archive):
    sweep = benchmark.pedantic(
        run_fig18,
        kwargs={"slots": 600, "groups": (1, 3, 10, 25)},
        rounds=1,
        iterations=1,
    )
    archive("fig18_scale", render_fig18(sweep))
    write_summary_json(
        RESULTS_DIR / "fig18_scale.json",
        bench="fig18_scale",
        data={
            "tenant_counts": list(sweep.tenant_counts),
            "profit_increase": list(sweep.profit_increase),
            "perf_improvement": list(sweep.perf_improvement),
            "cost_increase": list(sweep.cost_increase),
        },
        meta={"slots": 600},
    )
    profit = np.array(sweep.profit_increase)
    perf = np.array(sweep.perf_improvement)
    cost = np.array(sweep.cost_increase)
    # Results stay consistent as the facility grows: profit in the same
    # band as the testbed, performance ~1.2-1.8x, marginal cost.
    assert np.all(profit > 0.03)
    assert np.all((perf > 1.1) & (perf < 1.9))
    assert np.all(cost < 0.06)
    # Stability at scale: the largest two points agree within 40%.
    assert abs(profit[-1] - profit[-2]) < 0.4 * max(profit[-1], profit[-2])
