"""Fig. 18: scaling to a hyper-scale facility (up to 1,000 tenants).

Alongside the paper-style text archive, the sweep is persisted as
``results/fig18_scale.json`` in the telemetry exporter's envelope
format, so scaling behaviour accumulates a machine-readable trajectory.
"""

import pathlib
import time

import numpy as np

from repro.config import DEFAULT_SEED, MarketParameters, make_rng
from repro.core.clearing import MarketClearing
from repro.core.frame import BidFrame
from repro.experiments import render_fig18, run_fig18
from repro.experiments.fig07_prediction_and_scaling import make_synthetic_bids
from repro.sim.scenario import scaled_scenario
from repro.telemetry import write_summary_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _slot_phase_times(groups: int) -> tuple[int, float, float]:
    """Frame-build and per-PDU clear time at one facility scale.

    Measured on a synthetic bid population with exactly the scaled
    facility's rack count, so the two phases that dominate a slot at
    scale accumulate their own trajectory columns alongside the
    economic series.
    """
    racks = len(scaled_scenario(groups, seed=DEFAULT_SEED).rack_infos())
    bids, pdu_spot, ups_spot = make_synthetic_bids(racks, make_rng(groups))
    engine = MarketClearing(params=MarketParameters(price_step=0.001))
    best_build = best_clear = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        frame = BidFrame.from_bids(bids)
        best_build = min(best_build, time.perf_counter() - start)
        start = time.perf_counter()
        engine.clear_per_pdu(frame, pdu_spot, ups_spot)
        best_clear = min(best_clear, time.perf_counter() - start)
    return racks, best_build * 1e3, best_clear * 1e3


def test_fig18_scale(benchmark, archive):
    sweep = benchmark.pedantic(
        run_fig18,
        kwargs={"slots": 600, "groups": (1, 3, 10, 25)},
        rounds=1,
        iterations=1,
    )
    archive("fig18_scale", render_fig18(sweep))
    phase_times = [
        _slot_phase_times(count // 10) for count in sweep.tenant_counts
    ]
    write_summary_json(
        RESULTS_DIR / "fig18_scale.json",
        bench="fig18_scale",
        data={
            "tenant_counts": list(sweep.tenant_counts),
            "profit_increase": list(sweep.profit_increase),
            "perf_improvement": list(sweep.perf_improvement),
            "cost_increase": list(sweep.cost_increase),
            "racks": [racks for racks, _, _ in phase_times],
            "frame_build_ms": [build for _, build, _ in phase_times],
            "clear_ms": [clear for _, _, clear in phase_times],
        },
        meta={"slots": 600},
    )
    profit = np.array(sweep.profit_increase)
    perf = np.array(sweep.perf_improvement)
    cost = np.array(sweep.cost_increase)
    # Results stay consistent as the facility grows: profit in the same
    # band as the testbed, performance ~1.2-1.8x, marginal cost.
    assert np.all(profit > 0.03)
    assert np.all((perf > 1.1) & (perf < 1.9))
    assert np.all(cost < 0.06)
    # Stability at scale: the largest two points agree within 40%.
    assert abs(profit[-1] - profit[-2]) < 0.4 * max(profit[-1], profit[-2])
