"""Fig. 7: (a) PDU power variation; (b) clearing time at scale.

Besides the paper-style text archive, both panels emit machine-readable
summaries in the telemetry exporter's envelope format
(``results/fig07a_pdu_variation.json`` and ``results/BENCH_clearing.json``:
racks x price-step x wall-ms for both the columnar BidFrame path and the
legacy object path) so future PRs can track the perf trajectory — see
``docs/observability.md``.
"""

import os
import pathlib

from repro.experiments import render_fig07, run_fig07a, run_fig07b
from repro.telemetry import write_summary_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Worker processes for the per-rack-count sweep cells.  Defaults to
#: serial (least timing noise); CI smoke runs can raise it to trade a
#: little noise for wall-clock.
JOBS = int(os.environ.get("BENCH_JOBS", "1"))


def test_fig07a_pdu_variation(benchmark, archive):
    result = benchmark.pedantic(
        run_fig07a, kwargs={"slots": 20_000}, rounds=1, iterations=1
    )
    # Paper: PDU power changes < ±2.5% within one minute for 99% of slots.
    assert result.p99 < 0.025
    archive("fig07a_pdu_variation", f"p50={result.p50:.4f} p90={result.p90:.4f} "
            f"p99={result.p99:.4f} max={result.max:.4f}")
    write_summary_json(
        RESULTS_DIR / "fig07a_pdu_variation.json",
        bench="fig07a_pdu_variation",
        data={"p50": result.p50, "p90": result.p90,
              "p99": result.p99, "max": result.max},
    )


def test_fig07b_clearing_time(benchmark, archive):
    result = benchmark.pedantic(
        run_fig07b,
        kwargs={
            "rack_counts": (100, 1000, 5000, 15000),
            "price_steps": (0.001, 0.01),
            "repeats": 2,
            "compare_object_path": True,
            "jobs": JOBS,
        },
        rounds=1,
        iterations=1,
    )
    variation = run_fig07a(slots=5000, pdus=2)
    archive("fig07b_clearing_time", render_fig07(variation, result))
    _write_clearing_json(result)
    # Paper: < 1 s at 15,000 racks with a 0.1 cent/kW step; < 100 ms-ish
    # with a 1 cent/kW step (we allow slack for slower machines).
    fine = result.mean_seconds[0.001][-1]
    coarse = result.mean_seconds[0.01][-1]
    assert fine < 2.0
    assert coarse <= 1.2 * fine  # coarse grids never meaningfully slower
    # Clearing time grows with the number of racks (150x more racks).
    assert result.mean_seconds[0.001][0] < result.mean_seconds[0.001][-1]
    # The columnar BidFrame path must beat the seed's object path by >= 5x
    # on the paper's headline cell (15,000 racks, 0.1 cent/kW step).
    assert result.object_seconds[0.001][-1] >= 5.0 * fine


def _write_clearing_json(result) -> None:
    """Persist racks x step x wall-ms for both paths (perf trajectory)."""
    cells = []
    for i, racks in enumerate(result.rack_counts):
        for step in result.price_steps:
            cells.append(
                {
                    "racks": racks,
                    "price_step": step,
                    "frame_ms": result.mean_seconds[step][i] * 1e3,
                    "object_ms": result.object_seconds[step][i] * 1e3,
                    "speedup": (
                        result.object_seconds[step][i]
                        / result.mean_seconds[step][i]
                    ),
                    "frame_build_ms": result.frame_build_seconds[i] * 1e3,
                }
            )
    write_summary_json(
        RESULTS_DIR / "BENCH_clearing.json",
        bench="clearing",
        data={"cells": cells},
    )
