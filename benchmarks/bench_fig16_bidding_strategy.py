"""Fig. 16: strategic (price-predicting) sprinting bids."""

from repro.experiments import render_fig16, run_fig16


def test_fig16_bidding_strategy(benchmark, archive):
    result = benchmark.pedantic(
        run_fig16, kwargs={"slots": 2000}, rounds=1, iterations=1
    )
    archive("fig16_bidding_strategy", render_fig16(result))
    # Strategic sprinting tenants gain more spot capacity ...
    assert result.sprint_grant_strategic >= result.sprint_grant_default
    # ... without losing performance ...
    assert result.sprint_perf_strategic >= result.sprint_perf_default - 0.05
    # ... while the operator's profit barely moves (paper: ~0.05%; we
    # allow a wider band for the smaller horizon).
    assert abs(result.profit_delta) < 0.03
