"""Fig. 11: tenant performance during the 20-minute execution."""

import numpy as np

from repro.experiments import render_fig11, run_fig11


def test_fig11_tenant_performance(benchmark, archive):
    trace = benchmark.pedantic(
        run_fig11, kwargs={"search_slots": 600}, rounds=1, iterations=1
    )
    archive("fig11_tenant_performance", render_fig11(trace))
    # SpotDC never does worse than PowerCapped on latency, and the
    # selected window (worst PowerCapped stretch) shows a real rescue.
    improvements = []
    for rack, latency in trace.latency_ms.items():
        capped = trace.latency_ms_capped[rack]
        assert np.all(latency <= capped + 1e-6)
        improvements.append(capped.mean() / latency.mean())
    assert max(improvements) > 1.1
    # Opportunistic tenants speed up (paper: up to 1.5x in this window).
    peak_ratio = max(r.max() for r in trace.throughput_ratio.values())
    assert peak_ratio > 1.1
