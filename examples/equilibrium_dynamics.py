#!/usr/bin/env python3
"""Strategic bidding dynamics: does the spot market settle down?

The paper leaves equilibrium analysis of the bidding game as future
work.  This example runs the computational version: four strategic
bidders (two high-value "sprinting" racks, two low-value "opportunistic"
racks) sharing one PDU repeatedly best-respond to each other's LinearBid
strategies until no one wants to deviate.

Run:
    python examples/equilibrium_dynamics.py
"""

import numpy as np

from repro.analysis import format_series, format_table
from repro.core.equilibrium import BestResponseSimulator, Bidder
from repro.economics.valuation import SpotValueCurve


def make_curve(scale: float, width: float, max_spot: float = 50.0):
    grid = np.linspace(0.0, max_spot, 101)
    gains = scale * (1.0 - np.exp(-grid / width))
    return SpotValueCurve.from_gain_samples(100.0, grid, gains)


def main() -> None:
    bidders = [
        Bidder("sprint-1", "pdu", 50.0, make_curve(0.030, 20.0)),
        Bidder("sprint-2", "pdu", 50.0, make_curve(0.026, 22.0)),
        Bidder("batch-1", "pdu", 50.0, make_curve(0.008, 30.0)),
        Bidder("batch-2", "pdu", 50.0, make_curve(0.007, 35.0)),
    ]
    simulator = BestResponseSimulator(
        bidders,
        pdu_spot_w={"pdu": 90.0},
        ups_spot_w=90.0,
        price_anchors=(0.03, 0.06, 0.1, 0.15, 0.2, 0.3),
        shading_factors=(0.6, 0.8, 1.0),
    )
    result = simulator.run(max_rounds=20)

    print(
        f"Best-response dynamics {'converged' if result.converged else 'did not converge'}"
        f" after {result.rounds} round(s).\n"
    )
    print(
        format_series(
            "round",
            list(range(1, len(result.prices) + 1)),
            {
                "clearing price [$/kW/h]": [round(p, 3) for p in result.prices],
                "capacity sold [W]": [round(t, 1) for t in result.total_granted_w],
            },
            title="Market trajectory while bidders adapt",
        )
    )
    print()
    rows = []
    for bidder in bidders:
        q_low, q_high, shading = result.strategies[bidder.rack_id]
        rows.append(
            [
                bidder.rack_id,
                f"({q_low}, {q_high})",
                shading,
                round(result.net_benefits[bidder.rack_id], 5),
            ]
        )
    print(
        format_table(
            ["bidder", "price anchors", "shading", "net benefit [$/h]"],
            rows,
            title="Equilibrium strategies",
        )
    )
    print()
    print(
        "High-value bidders keep (or raise) their acceptable price to"
        " stay served; low-value bidders shade quantities to soften the"
        " clearing price.  The fixed point is an approximate pure Nash"
        " equilibrium on the strategy grid: verified no bidder can gain"
        " by a unilateral deviation."
    )


if __name__ == "__main__":
    main()
