#!/usr/bin/env python3
"""Demand-function showdown: LinearBid vs StepBid vs FullBid.

Reproduces the design study behind the paper's Fig. 14 at a single
operating point, with full visibility into the mechanics: the same
tenant value curve expressed as the three bid families, cleared against
the same shared-PDU supply at three scarcity levels.

Run:
    python examples/demand_function_showdown.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import LinearBid, RackBid, StepBid, clear_market
from repro.core.demand import FullBid

#: A strongly concave tenant value curve: $/h gain from spot watts.
A, D0 = 0.00205, 5.0


def value(d: float) -> float:
    return A * np.log1p(d / D0)


def optimal_demand(price_per_kw_hour: float) -> float:
    """Closed-form rational demand: marginal A/(D0+d) = price/1000."""
    per_watt = price_per_kw_hour / 1000.0
    if per_watt >= A / D0:
        return 0.0
    return min(MAX_DEMAND, A / per_watt - D0)


MAX_DEMAND = 40.0
Q_LOW, Q_HIGH = 0.05, 0.205


def make_bid(style: str):
    d_max = optimal_demand(Q_LOW)
    d_min = optimal_demand(Q_HIGH)
    if style == "LinearBid":
        return LinearBid(d_max, Q_LOW, d_min, Q_HIGH)
    if style == "StepBid":
        return StepBid(d_max, Q_HIGH)
    return FullBid.from_value_curve(value, MAX_DEMAND, price_cap=Q_HIGH)


def main() -> None:
    print("One tenant value curve, three ways to bid it:")
    print(
        f"  optimal demand: {optimal_demand(Q_LOW):.1f} W at ${Q_LOW}/kW/h, "
        f"{optimal_demand(Q_HIGH):.1f} W at ${Q_HIGH}/kW/h"
    )
    print()
    rows = []
    revenue: dict[tuple[float, str], float] = {}
    for supply_w in (25.0, 50.0, 100.0):
        for style in ("LinearBid", "StepBid", "FullBid"):
            bids = [
                RackBid(
                    rack_id=f"r{i}",
                    pdu_id="pdu",
                    tenant_id=f"t{i}",
                    demand=make_bid(style),
                    rack_cap_w=MAX_DEMAND,
                )
                for i in range(2)  # two identical racks sharing the PDU
            ]
            result = clear_market(bids, {"pdu": supply_w}, supply_w)
            revenue[(supply_w, style)] = result.revenue_rate
            rows.append(
                [
                    f"{supply_w:.0f} W",
                    style,
                    f"{result.price:.3f}",
                    f"{result.total_granted_w:.1f} W",
                    f"{1000 * result.revenue_rate:.3f} m$/h",
                ]
            )
    print(
        format_table(
            ["PDU spot supply", "demand function", "price", "sold", "revenue"],
            rows,
            title="Uniform-price clearing outcomes",
        )
    )
    print()
    scarce = 25.0
    if revenue[(scarce, "LinearBid")] > revenue[(scarce, "StepBid")]:
        print(
            "Under scarcity the all-or-nothing StepBid pair cannot be"
            " partially satisfied — the shared-PDU constraint makes both"
            " bids jointly infeasible at every acceptable price, so the"
            " operator sells nothing.  The elastic LinearBid (and the"
            " complete FullBid curve) let the price ration the shortage"
            " and keep the market trading — exactly the gap the paper's"
            " Fig. 14 shows widening as spot capacity becomes scarce."
        )


if __name__ == "__main__":
    main()
