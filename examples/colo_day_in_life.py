#!/usr/bin/env python3
"""A day in the life of a colocation spot market.

Replays the paper's 20-minute execution story (Figs. 10-11) on the
volatile-trace testbed: watch the market price respond to spot-capacity
availability and sprinting-tenant participation, and see the latency SLO
rescued in real time.

Run:
    python examples/colo_day_in_life.py
"""

from repro.experiments import (
    render_fig10,
    render_fig11,
    run_fig10,
    run_fig11,
)


def main() -> None:
    print("Searching a simulated afternoon for the busiest 20 minutes...")
    print()
    trace = run_fig10(search_slots=600)
    print(render_fig10(trace))
    print()
    print(
        "Reading the market: the price climbs when sprinting tenants join"
        " (they bid the highest to protect their 100 ms SLO) and falls"
        " when the non-participating tenants back off and more spot"
        " capacity appears."
    )
    print()
    performance = run_fig11(search_slots=600)
    print(render_fig11(performance))
    print()
    slo_rescues = 0
    for rack, latency in performance.latency_ms.items():
        capped = performance.latency_ms_capped[rack]
        slo_rescues += int(((latency <= 100.0) & (capped > 100.0)).sum())
    print(
        f"Spot capacity rescued the 100 ms SLO in {slo_rescues} tenant-slots"
        " of this window; opportunistic tenants sped up to"
        f" {max(r.max() for r in performance.throughput_ratio.values()):.2f}x."
    )


if __name__ == "__main__":
    main()
