#!/usr/bin/env python3
"""Quickstart: run SpotDC on the paper's Table I testbed.

Builds the two-PDU testbed (Table I of the paper), simulates about a
day of two-minute market slots under three policies — the SpotDC market,
the PowerCapped status quo, and the MaxPerf owner-operated upper bound —
and prints the headline comparison: operator profit, tenant performance,
and tenant cost.

Run:
    python examples/quickstart.py
"""

from repro import (
    MaxPerfAllocator,
    PowerCappedAllocator,
    run_simulation,
    testbed_scenario,
)
from repro.analysis import format_kv, format_table

SLOTS = 720  # one simulated day at 120 s slots
SEED = 1


def main() -> None:
    print("Simulating the Table I testbed under three policies...")
    spotdc = run_simulation(testbed_scenario(seed=SEED), SLOTS)
    capped = run_simulation(
        testbed_scenario(seed=SEED), SLOTS, allocator=PowerCappedAllocator()
    )
    maxperf = run_simulation(
        testbed_scenario(seed=SEED), SLOTS, allocator=MaxPerfAllocator()
    )

    rows = []
    for tenant_id in spotdc.participating_tenant_ids():
        rows.append(
            [
                tenant_id,
                spotdc.tenants[tenant_id].kind,
                spotdc.tenant_performance_improvement_vs(capped, tenant_id),
                maxperf.tenant_performance_improvement_vs(capped, tenant_id),
                100 * spotdc.tenant_cost_increase_vs(capped, tenant_id),
            ]
        )
    print()
    print(
        format_table(
            ["tenant", "type", "perf x (SpotDC)", "perf x (MaxPerf)", "cost +%"],
            rows,
            title="Tenant outcomes vs the PowerCapped status quo",
        )
    )
    print()
    print(
        format_kv(
            {
                "operator profit increase": (
                    f"{100 * spotdc.operator_profit_increase_vs(capped):.2f}%"
                ),
                "spot revenue": f"${spotdc.total_spot_revenue():.4f}",
                "mean spot capacity sold": (
                    f"{spotdc.collector.spot_granted_array().mean():.1f} W"
                ),
                "power emergencies (SpotDC / PowerCapped)": (
                    f"{spotdc.emergencies.count()} / {capped.emergencies.count()}"
                ),
            },
            title="Operator outcomes",
        )
    )


if __name__ == "__main__":
    main()
