#!/usr/bin/env python3
"""Build your own facility: the ScenarioBuilder tour.

Composes a three-PDU facility with a tiered web shop (bundled
multi-rack bidding, paper Fig. 4), classic sprinting/opportunistic
tenants, phase-balance constraints, random communication faults, and an
enforcement policy — then runs the market and prints the invoices.

Run:
    python examples/custom_facility.py
"""

from repro import PowerCappedAllocator, run_simulation
from repro.analysis import format_kv
from repro.config import make_rng
from repro.economics.settlement import build_all_invoices, reconcile, render_invoices
from repro.infrastructure.constraints import PhaseAssignment
from repro.infrastructure.enforcement import EnforcementPolicy
from repro.sim import ScenarioBuilder
from repro.sim.engine import SimulationEngine
from repro.sim.faults import CommunicationFaultModel

SLOTS = 900  # 30 simulated hours at 2-minute slots


def build():
    return (
        ScenarioBuilder(seed=11)
        .add_pdu("row-a", oversubscription=1.05)
        .add_pdu("row-b", oversubscription=1.05)
        .add_pdu("row-c", oversubscription=1.05)
        # A two-tier web shop spanning two rows (bundled Fig. 4 bidding).
        .add_tiered_tenant("shop", [(150.0, "row-a"), (120.0, "row-b")])
        .add_search_tenant("search", 145.0, "row-a")
        .add_wordcount_tenant("count", 125.0, "row-b")
        .add_terasort_tenant("sort", 125.0, "row-c")
        .add_graph_tenant("graph", 115.0, "row-c")
        .add_other_group("colo-a", 250.0, "row-a")
        .add_other_group("colo-b", 220.0, "row-b")
        .add_other_group("colo-c", 260.0, "row-c")
        .build()
    )


def main() -> None:
    scenario = build()
    phases = PhaseAssignment(scenario.topology)
    engine = SimulationEngine(
        scenario,
        constraint_provider=lambda: phases.phase_headroom(
            imbalance_tolerance=0.25
        ),
        fault_model=CommunicationFaultModel(
            bid_loss_probability=0.02,
            grant_loss_probability=0.02,
            rng=make_rng(99),
        ),
        enforcement=EnforcementPolicy(),
    )
    print(f"Simulating {SLOTS} slots of a custom three-row facility...")
    result = engine.run(SLOTS)
    baseline = run_simulation(
        build(), SLOTS, allocator=PowerCappedAllocator()
    )

    reconcile(result)  # the books must balance, faults and all
    print()
    print(render_invoices(build_all_invoices(result)))
    print()
    print(
        format_kv(
            {
                "operator profit increase": (
                    f"+{100 * result.operator_profit_increase_vs(baseline):.2f}%"
                ),
                "shop (tiered) performance": (
                    f"x{result.tenant_performance_improvement_vs(baseline, 'shop'):.2f}"
                ),
                "shop SLO violation rate": (
                    f"{100 * result.tenant_slo_violation_rate('shop'):.1f}% "
                    f"(PowerCapped: "
                    f"{100 * baseline.tenant_slo_violation_rate('shop'):.1f}%)"
                ),
                "lost bids / lost grants": (
                    f"{engine.fault_model.log.lost_bids} / "
                    f"{engine.fault_model.log.lost_grants}"
                ),
                "emergencies": result.emergencies.count(),
            },
            title="Facility outcomes",
        )
    )


if __name__ == "__main__":
    main()
