#!/usr/bin/env python3
"""Scaling the spot market to a hyper-scale facility.

Replicates the paper's Fig. 18 study: the Table I tenant composition is
cloned with ±20% diversity jitter into progressively larger facilities
(hundreds of tenants, dozens of PDUs), and the normalised outcomes —
operator profit, tenant cost, tenant performance — are shown to remain
stable.  Also demonstrates *why* locational (per-PDU) pricing is the
default: a single facility-wide price collapses at scale.

Run:
    python examples/hyperscale_market.py
"""

from repro import PowerCappedAllocator, SpotDCAllocator, run_simulation
from repro.analysis import format_table
from repro.sim import scaled_scenario

SLOTS = 500
SEED = 3


def run_policy(groups: int, pricing: str) -> tuple[float, float]:
    spotdc = run_simulation(
        scaled_scenario(groups=groups, seed=SEED),
        SLOTS,
        allocator=SpotDCAllocator(pricing=pricing),
    )
    capped = run_simulation(
        scaled_scenario(groups=groups, seed=SEED),
        SLOTS,
        allocator=PowerCappedAllocator(),
    )
    profit = spotdc.operator_profit_increase_vs(capped)
    perf = sum(
        spotdc.tenant_performance_improvement_vs(capped, t)
        for t in spotdc.participating_tenant_ids()
    ) / len(spotdc.participating_tenant_ids())
    return profit, perf


def main() -> None:
    rows = []
    for groups in (1, 5, 15, 30):
        tenants = 10 * groups
        print(f"Simulating {tenants} tenants ({2 * groups} PDUs)...")
        profit_local, perf_local = run_policy(groups, "per_pdu")
        profit_uniform, perf_uniform = run_policy(groups, "uniform")
        rows.append(
            [
                tenants,
                f"{100 * profit_local:.2f}%",
                f"{perf_local:.2f}x",
                f"{100 * profit_uniform:.2f}%",
                f"{perf_uniform:.2f}x",
            ]
        )
    print()
    print(
        format_table(
            [
                "tenants",
                "profit + (per-PDU price)",
                "perf (per-PDU)",
                "profit + (one global price)",
                "perf (global)",
            ],
            rows,
            title="Scaling behaviour: locational vs facility-wide pricing",
        )
    )
    print()
    print(
        "With locational prices the outcomes stay flat as the facility"
        " grows (the paper's Fig. 18 stability); with one facility-wide"
        " price, any single scarce PDU drags the global price above"
        " everyone's caps and the market withers."
    )


if __name__ == "__main__":
    main()
