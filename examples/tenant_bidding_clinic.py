#!/usr/bin/env python3
"""Tenant bidding clinic: from power-performance profile to bid.

Walks the tenant-side pipeline the paper describes in Sections III-B3
and IV-C, for a single search rack:

1. profile tail latency against the power budget (Fig. 8);
2. convert performance into dollars with the SLO cost model and derive
   the spot-capacity value curve (Fig. 9);
3. read the optimal demand curve off the value curve (Fig. 3a's
   "Reference") and fit the 4-parameter LinearBid to it;
4. compare simple, elastic, and price-predicting strategies for one
   high-traffic slot.

Run:
    python examples/tenant_bidding_clinic.py
"""

import numpy as np

from repro.analysis import format_series, format_table
from repro.economics.valuation import sprinting_value_curve
from repro.power.server import ServerPowerModel
from repro.tenants.bidding import (
    LinearElasticStrategy,
    PricePredictionStrategy,
    SimpleNeededPowerStrategy,
)
from repro.tenants.calibration import calibrate_sprinting_cost
from repro.tenants.portfolio import RackBidContext, TenantRack
from repro.workloads.search import make_search_latency_model

SUBSCRIPTION_W = 145.0
Q_LOW, Q_HIGH = 0.20, 0.30


def main() -> None:
    power = ServerPowerModel(idle_w=0.45 * SUBSCRIPTION_W,
                             peak_w=1.25 * SUBSCRIPTION_W)
    latency = make_search_latency_model(power)
    high_traffic_rps = 0.62 * latency.mu_max_rps

    # 1. Power-performance profile at the high-traffic intensity.
    budgets = np.linspace(SUBSCRIPTION_W * 0.9, power.peak_w, 8)
    print(
        format_series(
            "budget [W]",
            budgets.round(0),
            {
                "p99 latency [ms]": [
                    round(latency.latency_ms(float(b), high_traffic_rps), 1)
                    for b in budgets
                ]
            },
            title="1. Profile: p99 latency vs power at high traffic",
        )
    )
    print()

    # 2. Dollars: calibrate the SLO cost model and build the value curve.
    headroom = power.peak_w - SUBSCRIPTION_W
    cost = calibrate_sprinting_cost(
        latency,
        guaranteed_w=SUBSCRIPTION_W,
        reference_rps=high_traffic_rps,
        max_spot_w=headroom,
        target_marginal_per_kw_hour=0.27,
    )
    curve = sprinting_value_curve(
        latency, cost, SUBSCRIPTION_W, high_traffic_rps, headroom
    )
    spots = np.linspace(0, headroom, 7)
    print(
        format_series(
            "spot [W]",
            spots.round(1),
            {"gain [$/h]": [round(curve.gain_per_hour(float(s)), 4) for s in spots]},
            title="2. Value curve: performance gain from spot capacity",
        )
    )
    print()

    # 3. The reference demand curve and its LinearBid fit.
    prices = np.linspace(0.05, 0.35, 7)
    print(
        format_series(
            "price [$/kW/h]",
            prices.round(3),
            {
                "optimal demand [W]": [
                    round(curve.optimal_demand_w(float(q)), 1) for q in prices
                ]
            },
            title='3. The "Reference" demand curve (Fig. 3a)',
        )
    )
    print()

    # 4. Strategies side by side for this slot.
    needed = latency.power_for_latency(90.0, high_traffic_rps) - SUBSCRIPTION_W
    rack = TenantRack(
        rack_id="rack:clinic",
        pdu_id="pdu:0",
        guaranteed_w=SUBSCRIPTION_W,
        max_spot_w=headroom,
        power_model=power,
        workload=None,  # not needed for bidding
    )
    ctx = RackBidContext(
        rack=rack, needed_w=max(needed, 0.0), value_curve=curve,
        q_low=Q_LOW, q_high=Q_HIGH, predicted_price=0.24,
    )
    rows = []
    for name, strategy in (
        ("simple (needed power)", SimpleNeededPowerStrategy()),
        ("SpotDC linear fit", LinearElasticStrategy()),
        ("price-predicting", PricePredictionStrategy()),
    ):
        demand = strategy.make_rack_bid(ctx)
        rows.append(
            [
                name,
                f"{demand.demand_at(Q_LOW):.1f} W",
                f"{demand.demand_at(0.24):.1f} W",
                f"{demand.demand_at(Q_HIGH):.1f} W",
            ]
        )
    print(
        format_table(
            ["strategy", "demand @ 0.20", "demand @ 0.24 (forecast)", "demand @ 0.30"],
            rows,
            title="4. Three bidding strategies for the same slot",
        )
    )


if __name__ == "__main__":
    main()
