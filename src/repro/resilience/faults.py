"""Composable fault injection for the market loop.

Real colocation incidents are correlated and infrastructural: network
loss comes in bursts, meters stick or drop out for minutes at a time,
and a PDU/UPS can temporarily lose part of its capacity (maintenance,
failed modules, thermal derating).  The independent per-slot Bernoulli
drops of the original :class:`repro.sim.faults.CommunicationFaultModel`
cannot express any of that, so this module replaces it with a pluggable
framework:

* a :class:`FaultSource` models one failure mechanism on one *channel*
  (``"bid"``, ``"grant"``, ``"meter"``, or ``"capacity"``);
* a :class:`FaultInjector` composes any number of sources, derives a
  deterministic per-source random stream from a single seed, and keeps
  the per-slot :class:`FaultLog` the chaos experiments localise bursts
  with.

Safety framing (paper §III-C): every channel's failure state degrades to
the *default of "no spot capacity"* — a lost bid skips participation, a
lost or delayed grant leaves the rack at its guaranteed budget and is
never billed.  The two channels that can genuinely endanger the
infrastructure — corrupted meter readings inflating the operator's
headroom estimate, and capacity derating invalidating already-issued
grants — are exactly what the
:class:`repro.resilience.degradation.DegradationController` exists to
contain.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, OperatorCrash

__all__ = [
    "FaultRecord",
    "FaultLog",
    "GrantFault",
    "FaultSource",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "ScriptedLoss",
    "GrantDelaySource",
    "MeterFaultSource",
    "DeratingEvent",
    "DeratingSource",
    "CrashFault",
    "DuplicateDeliverySource",
    "FaultInjector",
]

#: Valid fault channels, in the order their random streams are derived.
#: New channels are strictly *appended* so the stream keys of earlier
#: channels — and therefore every existing seeded fault trace — are
#: unchanged: ``"crash"`` came after the original four (it never draws
#: randomness anyway: crashes are scripted), ``"duplicate"`` after that.
CHANNELS = ("bid", "grant", "meter", "capacity", "crash", "duplicate")


@dataclasses.dataclass(frozen=True)
class FaultRecord:
    """One injected fault occurrence.

    Attributes:
        slot: Simulation slot the fault was in force.
        kind: Fault kind, e.g. ``"bid_lost"``, ``"grant_lost"``,
            ``"grant_delayed"``, ``"stale_grant_applied"``,
            ``"meter_stuck"``, ``"meter_dropout"``, ``"derating_start"``,
            ``"derating_end"``.
        unit_id: Affected tenant, rack, PDU, or UPS identifier.
        magnitude: Kind-specific size: delayed slots, watts held by a
            stale grant, derated fraction, ... (0 when meaningless).
    """

    slot: int
    kind: str
    unit_id: str
    magnitude: float = 0.0


class FaultLog:
    """Per-slot time series of injected faults.

    Upgraded from the original scalar counters so experiments can
    localise bursts; :attr:`lost_bids` and :attr:`lost_grants` remain as
    derived properties for backward compatibility.
    """

    def __init__(self) -> None:
        self._records: list[FaultRecord] = []

    @property
    def records(self) -> tuple[FaultRecord, ...]:
        """Every injected fault, in injection order."""
        return tuple(self._records)

    def record(
        self, slot: int, kind: str, unit_id: str, magnitude: float = 0.0
    ) -> None:
        """Append one fault occurrence."""
        self._records.append(FaultRecord(slot, kind, unit_id, magnitude))

    def count(self, kind: str | None = None) -> int:
        """Number of recorded faults, optionally filtered by kind."""
        if kind is None:
            return len(self._records)
        return sum(1 for r in self._records if r.kind == kind)

    def slots(self, kind: str | None = None) -> list[int]:
        """Distinct slots with at least one (matching) fault, ascending."""
        return sorted(
            {r.slot for r in self._records if kind is None or r.kind == kind}
        )

    def of_kind(self, kind: str) -> list[FaultRecord]:
        """All records of one kind, in injection order."""
        return [r for r in self._records if r.kind == kind]

    def tail(self, start: int) -> list[FaultRecord]:
        """Records appended at or after index ``start``.

        Incremental consumers (the engine's telemetry event bridge)
        remember ``len(log)`` between slots and fetch only the delta —
        no per-slot full-log copies.
        """
        return self._records[start:]

    def __len__(self) -> int:
        return len(self._records)

    # Backward-compatible scalar views (the original FaultLog fields).

    @property
    def lost_bids(self) -> int:
        """Tenant-slots whose bid submission was dropped."""
        return self.count("bid_lost")

    @property
    def lost_grants(self) -> int:
        """Rack-slots whose grant/budget broadcast was dropped."""
        return self.count("grant_lost")


@dataclasses.dataclass(frozen=True)
class GrantFault:
    """Outcome of a faulty grant delivery.

    Attributes:
        kind: ``"lost"`` (broadcast never arrives) or ``"delayed"``
            (broadcast arrives ``delay_slots`` slots late and applies as
            a stale budget).
        delay_slots: Delivery delay for ``"delayed"`` faults.
    """

    kind: str
    delay_slots: int = 0


def _check_probability(name: str, p: float) -> float:
    if not 0 <= p <= 1:
        raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
    return float(p)


class FaultSource:
    """One failure mechanism on one channel.

    Subclasses implement the hook matching their channel:
    ``lost(slot, unit_id)`` for ``"bid"``/``"grant"`` loss sources,
    ``grant_fault(slot, rack_id, grant_w)`` for grant-delivery sources,
    ``metered(slot, rack_id, true_w)`` for ``"meter"`` sources, and
    ``transitions(slot, topology)`` for ``"capacity"`` sources.
    """

    #: Channel this source participates in (one of :data:`CHANNELS`).
    channel: str = "bid"
    #: Stable short name (used in logs and for stream derivation).
    name: str = "source"

    def __init__(self) -> None:
        self._rng: np.random.Generator | None = None

    def bind(self, rng: np.random.Generator) -> None:
        """Attach this source's dedicated random stream."""
        self._rng = rng

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            raise ConfigurationError(
                f"fault source {self.name!r} used before FaultInjector bound "
                "its random stream"
            )
        return self._rng

    def lost(self, slot: int, unit_id: str) -> bool:  # pragma: no cover
        """Whether the unit's message is dropped this slot."""
        return False


class BernoulliLoss(FaultSource):
    """Independent per-slot message loss (the legacy fault model).

    Args:
        channel: ``"bid"`` or ``"grant"``.
        probability: Per-unit-per-slot loss probability.
    """

    def __init__(self, channel: str, probability: float) -> None:
        super().__init__()
        if channel not in ("bid", "grant"):
            raise ConfigurationError(
                f"BernoulliLoss channel must be 'bid' or 'grant', got {channel!r}"
            )
        self.channel = channel
        self.name = f"bernoulli_{channel}"
        self.probability = _check_probability("probability", probability)

    def lost(self, slot: int, unit_id: str) -> bool:
        if self.probability <= 0:
            return False
        return bool(self.rng.random() < self.probability)


class GilbertElliottLoss(FaultSource):
    """Bursty two-state (good/bad) Markov loss channel.

    The classic Gilbert-Elliott model: each unit's channel is either in
    the *good* state (loss probability ``loss_good``, usually 0) or the
    *bad* state (``loss_bad``, usually near 1), with geometric sojourn
    times.  Losses therefore arrive in bursts — the failure shape of
    congested or flapping management networks, which independent
    Bernoulli drops cannot produce.

    Args:
        channel: ``"bid"`` or ``"grant"``.
        enter_bad: Per-slot probability a good channel turns bad.
        exit_bad: Per-slot probability a bad channel recovers.
        loss_bad: Loss probability while bad.
        loss_good: Loss probability while good.
    """

    def __init__(
        self,
        channel: str,
        enter_bad: float,
        exit_bad: float = 0.25,
        loss_bad: float = 0.9,
        loss_good: float = 0.0,
    ) -> None:
        super().__init__()
        if channel not in ("bid", "grant"):
            raise ConfigurationError(
                f"GilbertElliottLoss channel must be 'bid' or 'grant', got "
                f"{channel!r}"
            )
        self.channel = channel
        self.name = f"gilbert_elliott_{channel}"
        self.enter_bad = _check_probability("enter_bad", enter_bad)
        self.exit_bad = _check_probability("exit_bad", exit_bad)
        self.loss_bad = _check_probability("loss_bad", loss_bad)
        self.loss_good = _check_probability("loss_good", loss_good)
        self._bad: dict[str, bool] = {}

    def lost(self, slot: int, unit_id: str) -> bool:
        if self.enter_bad <= 0 and not self._bad:
            return False
        bad = self._bad.get(unit_id, False)
        flip = self.exit_bad if bad else self.enter_bad
        if self.rng.random() < flip:
            bad = not bad
        self._bad[unit_id] = bad
        p = self.loss_bad if bad else self.loss_good
        return bool(p > 0 and self.rng.random() < p)


class ScriptedLoss(FaultSource):
    """Deterministic loss at scripted slots (regression-test harness).

    Args:
        channel: ``"bid"`` or ``"grant"``.
        slots: Slots at which the loss fires.
        unit_ids: Restrict the loss to these units (``None`` = all).
    """

    def __init__(
        self,
        channel: str,
        slots: Iterable[int],
        unit_ids: Iterable[str] | None = None,
    ) -> None:
        super().__init__()
        if channel not in ("bid", "grant"):
            raise ConfigurationError(
                f"ScriptedLoss channel must be 'bid' or 'grant', got {channel!r}"
            )
        self.channel = channel
        self.name = f"scripted_{channel}"
        self.slots = frozenset(int(s) for s in slots)
        self.unit_ids = None if unit_ids is None else frozenset(unit_ids)

    def lost(self, slot: int, unit_id: str) -> bool:
        return slot in self.slots and (
            self.unit_ids is None or unit_id in self.unit_ids
        )


class GrantDelaySource(FaultSource):
    """Delayed/stale grant delivery.

    With probability ``probability`` a rack's grant broadcast is delayed
    by ``delay_slots`` slots: the rack misses the grant for the slot it
    was cleared for (reverting to the guaranteed budget, unbilled) and
    the *stale* budget later applies to a slot the market never cleared
    it for — the hazardous half that the degradation controller must
    contain.
    """

    channel = "grant"

    def __init__(self, probability: float, delay_slots: int = 3) -> None:
        super().__init__()
        self.name = "grant_delay"
        self.probability = _check_probability("probability", probability)
        if delay_slots < 1:
            raise ConfigurationError("delay_slots must be >= 1")
        self.delay_slots = int(delay_slots)

    def grant_fault(
        self, slot: int, rack_id: str, grant_w: float
    ) -> GrantFault | None:
        if self.probability <= 0:
            return None
        if self.rng.random() < self.probability:
            return GrantFault("delayed", self.delay_slots)
        return None


class MeterFaultSource(FaultSource):
    """Rack power-meter faults: stuck-at, dropout, and reading noise.

    Faulty meters are episodic: once a meter sticks (keeps reporting the
    reading it froze at) or drops out (reports zero), it stays faulty
    for a geometrically distributed number of slots.  Ambient
    multiplicative Gaussian noise models calibration error on healthy
    meters.  Corrupted readings flow through the operator's
    :class:`~repro.infrastructure.monitor.PowerMonitor` into the
    spot-capacity predictor — the operator then clears the market on
    wrong headroom, which is precisely the excursion path the
    degradation controller closes.

    Args:
        stuck_probability: Per-rack-per-slot probability a healthy meter
            enters a stuck episode.
        dropout_probability: Likewise for a zero-reading episode.
        noise_sigma: Relative σ of ambient reading noise (0 disables).
        episode_slots: Mean episode length, slots (geometric).
        unit_ids: Restrict faults to these racks (``None`` = all).
    """

    channel = "meter"

    def __init__(
        self,
        stuck_probability: float = 0.0,
        dropout_probability: float = 0.0,
        noise_sigma: float = 0.0,
        episode_slots: int = 5,
        unit_ids: Iterable[str] | None = None,
    ) -> None:
        super().__init__()
        self.name = "meter"
        self.stuck_probability = _check_probability(
            "stuck_probability", stuck_probability
        )
        self.dropout_probability = _check_probability(
            "dropout_probability", dropout_probability
        )
        if noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be >= 0")
        if episode_slots < 1:
            raise ConfigurationError("episode_slots must be >= 1")
        self.noise_sigma = float(noise_sigma)
        self.episode_slots = int(episode_slots)
        self.unit_ids = None if unit_ids is None else frozenset(unit_ids)
        # rack_id -> (kind, remaining_slots, frozen_reading)
        self._episodes: dict[str, tuple[str, int, float]] = {}

    def _maybe_start_episode(self, rack_id: str, true_w: float) -> None:
        draw = self.rng.random()
        if draw < self.stuck_probability:
            kind = "meter_stuck"
        elif draw < self.stuck_probability + self.dropout_probability:
            kind = "meter_dropout"
        else:
            return
        length = 1 + int(self.rng.geometric(1.0 / self.episode_slots))
        self._episodes[rack_id] = (kind, length, true_w)

    def metered(self, slot: int, rack_id: str, true_w: float, log: FaultLog) -> float:
        if self.unit_ids is not None and rack_id not in self.unit_ids:
            return true_w
        episode = self._episodes.get(rack_id)
        if episode is None:
            if self.stuck_probability > 0 or self.dropout_probability > 0:
                self._maybe_start_episode(rack_id, true_w)
            episode = self._episodes.get(rack_id)
        reading = true_w
        if episode is not None:
            kind, remaining, frozen = episode
            reading = frozen if kind == "meter_stuck" else 0.0
            log.record(slot, kind, rack_id, reading)
            if remaining <= 1:
                del self._episodes[rack_id]
            else:
                self._episodes[rack_id] = (kind, remaining - 1, frozen)
        if self.noise_sigma > 0:
            reading *= max(0.0, 1.0 + self.rng.normal(0.0, self.noise_sigma))
        return reading


@dataclasses.dataclass(frozen=True)
class DeratingEvent:
    """One scheduled infrastructure derating window.

    Attributes:
        slot: First slot the derating is in force.
        duration_slots: Window length.
        unit_id: PDU id, or the UPS id for a facility-level derating.
        fraction: Fraction of capacity lost, in (0, 1).
    """

    slot: int
    duration_slots: int
    unit_id: str
    fraction: float

    def __post_init__(self) -> None:
        if self.duration_slots < 1:
            raise ConfigurationError("duration_slots must be >= 1")
        if not 0 < self.fraction < 1:
            raise ConfigurationError(
                f"derating fraction must be in (0, 1), got {self.fraction}"
            )


class DeratingSource(FaultSource):
    """PDU/UPS capacity derating: scheduled or randomly arriving events.

    A derated unit temporarily loses ``fraction`` of its physical
    capacity mid-run (failed power module, thermal derating, maintenance
    bypass).  Grants already issued against the full capacity may become
    infeasible the moment the event starts — the degradation controller
    revokes them.  Events apply to the *live* topology capacities, so
    the emergency log and next-slot predictions both see them.

    Args:
        events: Explicit schedule (deterministic).
        event_rate: Per-slot probability a random event starts somewhere.
        fraction: Capacity fraction lost by random events.
        duration_slots: Mean random-event length (geometric).
        include_ups: Whether random events may hit the UPS (else PDUs
            only).
    """

    channel = "capacity"

    def __init__(
        self,
        events: Sequence[DeratingEvent] = (),
        event_rate: float = 0.0,
        fraction: float = 0.15,
        duration_slots: int = 10,
        include_ups: bool = True,
    ) -> None:
        super().__init__()
        self.name = "derating"
        self.events = tuple(events)
        self.event_rate = _check_probability("event_rate", event_rate)
        if not 0 < fraction < 1:
            raise ConfigurationError(
                f"derating fraction must be in (0, 1), got {fraction}"
            )
        if duration_slots < 1:
            raise ConfigurationError("duration_slots must be >= 1")
        self.fraction = float(fraction)
        self.duration_slots = int(duration_slots)
        self.include_ups = include_ups
        self._active: dict[str, int] = {}  # unit_id -> end slot (exclusive)

    def _unit(self, unit_id: str, topology):
        if unit_id == topology.ups.ups_id:
            return topology.ups
        return topology.pdu(unit_id)

    def transitions(self, slot: int, topology, log: FaultLog) -> None:
        """Apply this slot's derating starts/ends to the topology."""
        for unit_id, end in list(self._active.items()):
            if slot >= end:
                self._unit(unit_id, topology).restore_capacity()
                del self._active[unit_id]
                log.record(slot, "derating_end", unit_id)
        starting: list[DeratingEvent] = [
            e for e in self.events if e.slot == slot
        ]
        if self.event_rate > 0 and self.rng.random() < self.event_rate:
            units = list(topology.pdus)
            if self.include_ups:
                units.append(topology.ups.ups_id)
            unit_id = units[int(self.rng.integers(len(units)))]
            duration = 1 + int(self.rng.geometric(1.0 / self.duration_slots))
            starting.append(
                DeratingEvent(slot, duration, unit_id, self.fraction)
            )
        for event in starting:
            if event.unit_id in self._active:
                continue  # unit already derated; ignore the overlap
            self._unit(event.unit_id, topology).apply_derating(event.fraction)
            self._active[event.unit_id] = slot + event.duration_slots
            log.record(slot, "derating_start", event.unit_id, event.fraction)


class CrashFault(FaultSource):
    """Scripted operator-process crash at a fixed slot.

    Unlike every other source, a crash does not corrupt an *input* — it
    kills the operator's slot loop itself, by raising
    :class:`repro.errors.OperatorCrash` at the top of slot ``at_slot``
    (before any market work for that slot).  It exists to exercise the
    checkpoint/restore path end to end: crash at slot *k*, resume from
    the latest checkpoint, and demand byte-identical results vs. the
    uninterrupted run.

    The crash is deliberately **not** recorded in the :class:`FaultLog`
    and draws no randomness: either would make the crashed-then-resumed
    run observably different from the uninterrupted one, breaking the
    recovery invariant the source exists to test.

    Args:
        at_slot: Slot at which the crash fires (once).
    """

    channel = "crash"

    def __init__(self, at_slot: int) -> None:
        super().__init__()
        self.name = "crash"
        if at_slot < 1:
            raise ConfigurationError(
                f"CrashFault at_slot must be >= 1 (slot 0 has no market), "
                f"got {at_slot}"
            )
        self.at_slot = int(at_slot)
        self.armed = True

    def check(self, slot: int) -> None:
        """Raise :class:`OperatorCrash` if armed for this slot."""
        if self.armed and slot == self.at_slot:
            self.armed = False
            raise OperatorCrash(slot)


class DuplicateDeliverySource(FaultSource):
    """At-least-once transport: a tenant's bid bundle arrives twice.

    With probability ``probability`` per tenant per slot, the tenant's
    submitted bundle is delivered to the market a second time — the
    failure shape of any at-least-once transport (a client that retried
    after a lost ack, a message bus redelivering on timeout).  Unlike
    the loss channels, a duplicate is *not* supposed to change anything:
    the market's idempotent ingestion
    (:func:`repro.recovery.admission.dedupe_bundles`) absorbs the extra
    copy, and the chaos sweep machine-checks that settlement totals are
    identical with and without this channel.

    Args:
        probability: Per-tenant-per-slot duplicate-delivery probability.
        unit_ids: Restrict duplicates to these tenants (``None`` = all).
    """

    channel = "duplicate"

    def __init__(
        self, probability: float, unit_ids: Iterable[str] | None = None
    ) -> None:
        super().__init__()
        self.name = "duplicate_delivery"
        self.probability = _check_probability("probability", probability)
        self.unit_ids = None if unit_ids is None else frozenset(unit_ids)

    def duplicated(self, slot: int, tenant_id: str) -> bool:
        """Whether this tenant's bundle is delivered twice this slot."""
        if self.probability <= 0:
            return False
        if self.unit_ids is not None and tenant_id not in self.unit_ids:
            return False
        return bool(self.rng.random() < self.probability)


class FaultInjector:
    """Composable fault injection with one seed and one log.

    Args:
        sources: The fault sources to compose.  Sources are grouped by
            channel; within a channel they are consulted in the given
            order (for grant delivery, any loss wins over a delay).
        seed: Seed from which each source derives its own independent
            random stream.  Streams are keyed by *(seed, channel,
            ordinal within channel)*, so e.g. a derating-only injector
            and a full chaos injector built from the same seed produce
            byte-identical derating schedules — the property the
            SpotDC-vs-PowerCapped invariant check rests on.
        rng: Alternatively, a pre-built generator shared by all sources
            in call order (the legacy CommunicationFaultModel contract).
            Exactly one of ``seed``/``rng`` must be provided.
    """

    def __init__(
        self,
        sources: Sequence[FaultSource] = (),
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if (seed is None) == (rng is None):
            raise ConfigurationError(
                "pass exactly one of seed= or rng= (reproducibility is "
                "not optional)"
            )
        self.log = FaultLog()
        self._by_channel: dict[str, list[FaultSource]] = {
            c: [] for c in CHANNELS
        }
        for source in sources:
            if source.channel not in self._by_channel:
                raise ConfigurationError(
                    f"source {source.name!r} has unknown channel "
                    f"{source.channel!r}"
                )
            self._by_channel[source.channel].append(source)
        for channel_index, channel in enumerate(CHANNELS):
            for ordinal, source in enumerate(self._by_channel[channel]):
                if rng is not None:
                    source.bind(rng)
                else:
                    source.bind(
                        np.random.default_rng(
                            [int(seed), channel_index, ordinal]
                        )
                    )

    @property
    def sources(self) -> tuple[FaultSource, ...]:
        """All sources, grouped by channel in derivation order."""
        return tuple(
            s for channel in CHANNELS for s in self._by_channel[channel]
        )

    @property
    def has_meter_faults(self) -> bool:
        """Whether any meter source is configured."""
        return bool(self._by_channel["meter"])

    @property
    def has_duplicate_sources(self) -> bool:
        """Whether any duplicate-delivery source is configured."""
        return bool(self._by_channel["duplicate"])

    # ------------------------------------------------------------------
    # Channel queries (called by the simulation engine)
    # ------------------------------------------------------------------

    def bid_lost(self, slot: int, tenant_id: str) -> bool:
        """Whether this tenant's bid submission is lost this slot."""
        for source in self._by_channel["bid"]:
            if source.lost(slot, tenant_id):
                self.log.record(slot, "bid_lost", tenant_id)
                return True
        return False

    def bid_duplicated(self, slot: int, tenant_id: str) -> bool:
        """Whether this tenant's bundle is delivered twice this slot."""
        for source in self._by_channel["duplicate"]:
            if source.duplicated(slot, tenant_id):
                self.log.record(slot, "bid_duplicated", tenant_id)
                return True
        return False

    def grant_fault(
        self, slot: int, rack_id: str, grant_w: float
    ) -> GrantFault | None:
        """Delivery fault, if any, for this rack's grant broadcast."""
        delay: GrantFault | None = None
        for source in self._by_channel["grant"]:
            if hasattr(source, "grant_fault"):
                fault = source.grant_fault(slot, rack_id, grant_w)
                if fault is not None and delay is None:
                    delay = fault
            elif source.lost(slot, rack_id):
                self.log.record(slot, "grant_lost", rack_id, grant_w)
                return GrantFault("lost")
        if delay is not None:
            self.log.record(
                slot, "grant_delayed", rack_id, float(delay.delay_slots)
            )
        return delay

    def metered_power_w(self, slot: int, rack_id: str, true_w: float) -> float:
        """The operator-visible meter reading for a true draw."""
        reading = true_w
        for source in self._by_channel["meter"]:
            reading = source.metered(slot, rack_id, reading, self.log)
        return reading

    def apply_capacity_faults(self, slot: int, topology) -> None:
        """Apply this slot's derating transitions to the live topology."""
        for source in self._by_channel["capacity"]:
            source.transitions(slot, topology, self.log)

    def check_crash(self, slot: int) -> None:
        """Raise :class:`repro.errors.OperatorCrash` if a crash is due.

        Called by the engine at the top of every slot, *after* the
        previous slot's checkpoint was written, so a resumed run replays
        the crashed slot from its beginning.
        """
        for source in self._by_channel["crash"]:
            source.check(slot)

    def disarm_next_crash(self, start_slot: int) -> None:
        """Disarm the next crash at or after ``start_slot``.

        Called on resume: the restored injector still carries the armed
        :class:`CrashFault` that killed the previous process, and
        without disarming it the resumed run would crash at the same
        slot forever.  Only the *earliest* armed crash at or after the
        resume point is disarmed, so multi-crash schedules (crash →
        resume → crash again → resume) work.
        """
        armed = [
            s
            for s in self._by_channel["crash"]
            if getattr(s, "armed", False) and s.at_slot >= start_slot
        ]
        if armed:
            min(armed, key=lambda s: s.at_slot).armed = False
