"""Resilience layer: pluggable fault injection and graceful degradation.

The paper's safety story (§III-C "Handling exceptions", §V-B2 "no
additional capacity emergencies") is a *property*, not a feature: any
communication loss must leave the system in the default "no spot
capacity" state, grants must be revocable at any time, and spot capacity
must never introduce emergencies a no-spot-capacity facility would not
also have suffered.  This package makes that property testable under
realistic, correlated failure modes:

* :mod:`repro.resilience.faults` — the composable
  :class:`FaultInjector` framework: bursty (Gilbert-Elliott) bid/grant
  channel losses, delayed/stale grant delivery, meter faults (stuck-at,
  dropout, noise) feeding the operator's telemetry, and PDU/UPS
  derating events, all driven from one seed with a per-slot fault log;
* :mod:`repro.resilience.profile` — named, seedable
  :class:`FaultProfile` presets wiring fault configuration into
  scenarios and the CLI;
* :mod:`repro.resilience.degradation` — the
  :class:`DegradationController` closing the safety loop: it revokes
  over-granted spot capacity in priority order (the operator's §III-C
  revocation right), credits revoked energy in settlement, and logs
  emergency-capping escalations when revocation alone cannot clear an
  excursion.
"""

from repro.resilience.degradation import (
    ControlAction,
    CreditNote,
    DegradationController,
    revoke_and_rebill,
)
from repro.resilience.faults import (
    BernoulliLoss,
    CrashFault,
    DeratingEvent,
    DeratingSource,
    DuplicateDeliverySource,
    FaultInjector,
    FaultLog,
    FaultRecord,
    GilbertElliottLoss,
    GrantDelaySource,
    GrantFault,
    MeterFaultSource,
    ScriptedLoss,
)
from repro.resilience.profile import FAULT_CLASSES, FaultProfile

__all__ = [
    "BernoulliLoss",
    "ControlAction",
    "CrashFault",
    "CreditNote",
    "DegradationController",
    "DeratingEvent",
    "DeratingSource",
    "DuplicateDeliverySource",
    "FAULT_CLASSES",
    "FaultInjector",
    "FaultLog",
    "FaultProfile",
    "FaultRecord",
    "GilbertElliottLoss",
    "GrantDelaySource",
    "GrantFault",
    "MeterFaultSource",
    "ScriptedLoss",
    "revoke_and_rebill",
]
