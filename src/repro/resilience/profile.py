"""Named, seedable fault profiles.

A :class:`FaultProfile` is the declarative form of a
:class:`~repro.resilience.faults.FaultInjector`: a frozen bundle of
fault-class parameters that scenarios, the CLI (``--fault-profile``),
and the chaos experiment all share.  Profiles accept a plain seed int —
unlike the legacy ``CommunicationFaultModel``, which hard-required a
pre-built :class:`numpy.random.Generator` — and identical seeds yield
identical fault traces.

Named classes (scaled by one ``intensity`` knob):

* ``"none"`` — no faults (control cell);
* ``"comm"`` — independent Bernoulli bid/grant losses (the legacy
  model);
* ``"bursty"`` — Gilbert-Elliott bursty losses on both channels;
* ``"delay"`` — delayed/stale grant delivery;
* ``"meter"`` — stuck-at / dropout / noisy rack meters feeding the
  spot-capacity predictor;
* ``"derating"`` — random PDU/UPS capacity-derating events;
* ``"duplicate"`` — at-least-once bid delivery (bundles arrive twice;
  absorbed by the market's idempotent ingestion, settlement-neutral by
  invariant);
* ``"chaos"`` — all of the above at once.
"""

from __future__ import annotations

import dataclasses

from repro.config import DEFAULT_SEED
from repro.errors import ConfigurationError
from repro.resilience.faults import (
    BernoulliLoss,
    CrashFault,
    DeratingEvent,
    DeratingSource,
    DuplicateDeliverySource,
    FaultInjector,
    FaultSource,
    GilbertElliottLoss,
    GrantDelaySource,
    MeterFaultSource,
)

__all__ = ["FAULT_CLASSES", "FaultProfile"]

#: Named fault classes accepted by :meth:`FaultProfile.named` and the CLI.
FAULT_CLASSES = (
    "none",
    "comm",
    "bursty",
    "delay",
    "meter",
    "derating",
    "duplicate",
    "chaos",
)


@dataclasses.dataclass(frozen=True)
class FaultProfile:
    """Declarative fault configuration for a run.

    All probabilities are per unit per slot; zero disables the
    corresponding fault source entirely.

    Attributes:
        name: Profile label (shown in reports).
        bid_loss: Bernoulli bid-submission loss probability.
        grant_loss: Bernoulli grant-broadcast loss probability.
        burst_enter: Gilbert-Elliott good-to-bad probability (0 disables
            bursty loss on both channels).
        burst_exit: Gilbert-Elliott bad-to-good probability.
        burst_loss: Loss probability while a channel is bad.
        delay_probability: Probability a grant broadcast is delayed.
        delay_slots: Delivery delay of a delayed grant, slots.
        meter_stuck: Probability a healthy meter enters a stuck episode.
        meter_dropout: Probability a healthy meter enters a dropout
            episode.
        meter_noise_sigma: Ambient relative meter noise σ.
        meter_episode_slots: Mean meter-fault episode length.
        derating_rate: Per-slot probability a random derating event
            starts.
        derating_fraction: Capacity fraction lost while derated.
        derating_slots: Mean derating window length.
        derating_events: Explicit, deterministic derating schedule.
        duplicate_probability: Probability a tenant's bid bundle is
            delivered twice in a slot (at-least-once transports).
            Settlement-neutral by invariant: the market's idempotent
            ingestion absorbs the second copy.
        crash_at_slot: Slot at which an injected operator crash kills
            the run (``None`` disables; see
            :class:`~repro.resilience.faults.CrashFault`).  Used by the
            recovery experiments to exercise checkpoint/restore.
        seed: Default seed for :meth:`build` (``None`` falls back to the
            library default).
    """

    name: str = "custom"
    bid_loss: float = 0.0
    grant_loss: float = 0.0
    burst_enter: float = 0.0
    burst_exit: float = 0.3
    burst_loss: float = 0.9
    delay_probability: float = 0.0
    delay_slots: int = 3
    meter_stuck: float = 0.0
    meter_dropout: float = 0.0
    meter_noise_sigma: float = 0.0
    meter_episode_slots: int = 5
    derating_rate: float = 0.0
    derating_fraction: float = 0.2
    derating_slots: int = 12
    derating_events: tuple[DeratingEvent, ...] = ()
    duplicate_probability: float = 0.0
    crash_at_slot: int | None = None
    seed: int | None = None

    @classmethod
    def named(cls, name: str, intensity: float = 0.1) -> "FaultProfile":
        """Build one of the named fault classes at a given intensity.

        Args:
            name: One of :data:`FAULT_CLASSES`.
            intensity: Scales the dominant probability of the class;
                roughly "fraction of unit-slots disturbed".
        """
        if name not in FAULT_CLASSES:
            raise ConfigurationError(
                f"unknown fault class {name!r}; choose from {FAULT_CLASSES}"
            )
        if not 0 <= intensity <= 1:
            raise ConfigurationError(
                f"intensity must be in [0, 1], got {intensity}"
            )
        x = float(intensity)
        if name == "none" or x == 0:
            return cls(name="none")
        if name == "comm":
            return cls(name=name, bid_loss=x, grant_loss=x)
        if name == "bursty":
            return cls(name=name, burst_enter=x / 3.0)
        if name == "delay":
            return cls(name=name, delay_probability=x)
        if name == "meter":
            return cls(
                name=name,
                meter_stuck=x / 2.0,
                meter_dropout=x / 2.0,
                meter_noise_sigma=0.02,
            )
        if name == "derating":
            return cls(name=name, derating_rate=x / 10.0)
        if name == "duplicate":
            return cls(name=name, duplicate_probability=x)
        return cls(  # chaos: every class at once
            name=name,
            bid_loss=x / 2.0,
            grant_loss=x / 2.0,
            burst_enter=x / 3.0,
            delay_probability=x / 2.0,
            meter_stuck=x / 2.0,
            meter_dropout=x / 2.0,
            meter_noise_sigma=0.02,
            derating_rate=x / 10.0,
            duplicate_probability=x / 2.0,
        )

    def derating_only(self) -> "FaultProfile":
        """This profile's infrastructure faults alone.

        Used for the invariant baseline: the PowerCapped comparison run
        must face the *identical* derating schedule (same seed → same
        random stream, because streams are keyed per channel) while
        market-channel faults, which cannot affect a marketless run,
        are dropped.
        """
        return FaultProfile(
            name=f"{self.name}+derating_only",
            derating_rate=self.derating_rate,
            derating_fraction=self.derating_fraction,
            derating_slots=self.derating_slots,
            derating_events=self.derating_events,
            seed=self.seed,
        )

    def sources(self) -> list[FaultSource]:
        """Instantiate this profile's fault sources (unbound)."""
        sources: list[FaultSource] = []
        if self.bid_loss > 0:
            sources.append(BernoulliLoss("bid", self.bid_loss))
        if self.grant_loss > 0:
            sources.append(BernoulliLoss("grant", self.grant_loss))
        if self.burst_enter > 0:
            sources.append(
                GilbertElliottLoss(
                    "bid", self.burst_enter, self.burst_exit, self.burst_loss
                )
            )
            sources.append(
                GilbertElliottLoss(
                    "grant", self.burst_enter, self.burst_exit, self.burst_loss
                )
            )
        if self.delay_probability > 0:
            sources.append(
                GrantDelaySource(self.delay_probability, self.delay_slots)
            )
        if self.meter_stuck > 0 or self.meter_dropout > 0 or (
            self.meter_noise_sigma > 0
        ):
            sources.append(
                MeterFaultSource(
                    stuck_probability=self.meter_stuck,
                    dropout_probability=self.meter_dropout,
                    noise_sigma=self.meter_noise_sigma,
                    episode_slots=self.meter_episode_slots,
                )
            )
        if self.derating_rate > 0 or self.derating_events:
            sources.append(
                DeratingSource(
                    events=self.derating_events,
                    event_rate=self.derating_rate,
                    fraction=self.derating_fraction,
                    duration_slots=self.derating_slots,
                )
            )
        if self.crash_at_slot is not None:
            sources.append(CrashFault(self.crash_at_slot))
        if self.duplicate_probability > 0:
            sources.append(
                DuplicateDeliverySource(self.duplicate_probability)
            )
        return sources

    def build(self, seed: int | None = None) -> FaultInjector | None:
        """Build the injector, or ``None`` if the profile is fault-free.

        Args:
            seed: Overrides the profile's own seed; falls back to
                :data:`repro.config.DEFAULT_SEED`.
        """
        sources = self.sources()
        if not sources:
            return None
        if seed is None:
            seed = self.seed if self.seed is not None else DEFAULT_SEED
        return FaultInjector(sources, seed=seed)
