"""Graceful degradation: revocation-first excursion control.

Paper §III-C gives the operator an unconditional right: *"the operator
can revoke the spot capacity allocation at any time"*, and §V-B2
requires that spot capacity introduce *no additional* capacity
emergencies.  In the fault-free world the spot-capacity predictor's
conservatism guarantees that by construction.  Under injected faults it
no longer does: corrupted meter readings inflate the predicted
headroom, a derating event can invalidate already-issued grants, and a
stale (delayed) grant broadcast can raise a rack budget the market
never cleared for the current slot.

:class:`DegradationController` closes that loop.  It runs after budgets
are applied but before tenants execute the slot — the operator's
protection path is assumed hardened (breaker-level telemetry, not the
billing meters), so it projects each PDU's and the UPS's worst-case
draw from *true* telemetry and the live (possibly derated) capacities:

* granted racks are projected at their full enforced budget
  (guaranteed + spot), since a granted rack may legitimately ramp to
  its whole budget within the slot;
* all other racks are projected at their recent true peak, clamped to
  their guaranteed capacity.

If a level's projection exceeds its live capacity, spot grants on that
level are revoked in ascending clearing-value order (cheapest first —
the revenue-minimising application of the §III-C revocation right)
until the excursion clears; revoked energy is credited in settlement
(the tenant is never billed for revoked capacity).  If revoking every
grant still cannot clear the excursion — a derating below the
guaranteed-backed draw — the controller logs an ``emergency_cap``
escalation: the residual is the facility's pre-existing emergency
problem, handled by the separate power-capping mechanisms the paper
cites, and identical to what the no-spot-capacity baseline faces.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.core.allocation import AllocationResult
from repro.core.market import SlotMarketRecord
from repro.errors import ConfigurationError
from repro.infrastructure.topology import PowerTopology

__all__ = [
    "ControlAction",
    "CreditNote",
    "DegradationController",
    "revoke_and_rebill",
]


@dataclasses.dataclass(frozen=True)
class ControlAction:
    """One degradation-control event.

    Attributes:
        slot: Slot the action was taken in.
        kind: ``"revoke"`` (a spot grant was withdrawn) or
            ``"emergency_cap"`` (revocation exhausted; the residual
            excursion is escalated to the facility's power-capping
            layer).
        level: ``"pdu"`` or ``"ups"`` — the constraint that triggered it.
        unit_id: The constrained unit.
        rack_id: The revoked rack (empty for ``emergency_cap``).
        watts: Spot watts revoked, or residual excursion watts for an
            escalation.
    """

    slot: int
    kind: str
    level: str
    unit_id: str
    rack_id: str
    watts: float


@dataclasses.dataclass(frozen=True)
class CreditNote:
    """Settlement credit for revoked (never-delivered) spot capacity.

    Attributes:
        slot: Slot the revoked grant had been cleared for.
        tenant_id: Credited tenant.
        rack_id: Rack whose grant was revoked.
        watts: Revoked spot capacity.
        dollars: Amount the tenant would otherwise have been billed.
        reason: Why the grant was revoked.
    """

    slot: int
    tenant_id: str
    rack_id: str
    watts: float
    dollars: float
    reason: str


def revoke_and_rebill(
    record: SlotMarketRecord, revoked: set[str], slot_seconds: float
) -> SlotMarketRecord:
    """Zero a set of grants and rebill the survivors.

    Shared by every revocation path — lost grant broadcasts, delayed
    deliveries, enforcement bars, and degradation control: the rack PDU
    stays at the guaranteed budget and the operator does not bill the
    revoked grant, so a revocation is strictly safe (feasible capacity
    is simply unused) and strictly unbilled (§III-C: the tenant pays
    nothing for capacity it never received).
    """
    result = record.result
    if not revoked:
        return record
    grants = {
        rack_id: (0.0 if rack_id in revoked else grant)
        for rack_id, grant in result.grants_w.items()
    }
    if record.frame is not None:
        # Rebill straight off the slot's columnar frame: only surviving
        # positive grants pay (the revocation semantics).
        hourly, payments = record.frame.settle(
            grants,
            result.pdu_prices,
            result.price,
            slot_seconds,
            positive_only=True,
        )
        revenue_rate = hourly
    else:
        bid_of = {bid.rack_id: bid for bid in record.bids}
        slot_hours = slot_seconds / 3600.0
        payments = {}
        revenue_rate = 0.0
        for rack_id, grant in grants.items():
            if grant <= 0 or rack_id not in bid_of:
                continue
            bid = bid_of[rack_id]
            price = result.price_for_pdu(bid.pdu_id)
            revenue_rate += price * grant / 1000.0
            payments[bid.tenant_id] = payments.get(bid.tenant_id, 0.0) + (
                grant / 1000.0
            ) * price * slot_hours
    adjusted = AllocationResult(
        price=result.price,
        grants_w=grants,
        revenue_rate=revenue_rate,
        candidate_prices=result.candidate_prices,
        feasible_prices=result.feasible_prices,
        pdu_prices=result.pdu_prices,
    )
    return dataclasses.replace(record, result=adjusted, payments=payments)


class DegradationController:
    """Revocation-first containment of capacity excursions.

    Args:
        safety_margin_fraction: Fraction of each level's *live* capacity
            held back before an excursion is declared.  The default 0
            keeps the controller strictly less conservative than the
            spot-capacity predictor (2.5% margin), so fault-free runs
            are never perturbed: a clearing that respected the
            predictor's offered headroom always passes the projection.
        tolerance_w: Absolute slack before watts count as an excursion
            (float round-off guard).
    """

    def __init__(
        self, safety_margin_fraction: float = 0.0, tolerance_w: float = 1e-6
    ) -> None:
        if not 0 <= safety_margin_fraction < 1:
            raise ConfigurationError(
                "safety_margin_fraction must be in [0, 1), got "
                f"{safety_margin_fraction}"
            )
        if tolerance_w < 0:
            raise ConfigurationError("tolerance_w must be >= 0")
        self.safety_margin_fraction = float(safety_margin_fraction)
        self.tolerance_w = float(tolerance_w)
        self._actions: list[ControlAction] = []
        self._credits: list[CreditNote] = []

    @property
    def actions(self) -> tuple[ControlAction, ...]:
        """All control actions, in issue order."""
        return tuple(self._actions)

    @property
    def credits(self) -> tuple[CreditNote, ...]:
        """All settlement credits, in issue order."""
        return tuple(self._credits)

    def revocation_count(self) -> int:
        """Number of revoked grants across the run."""
        return sum(1 for a in self._actions if a.kind == "revoke")

    def new_actions(self, start: int) -> list[ControlAction]:
        """Actions issued at or after index ``start`` (incremental view)."""
        return self._actions[start:]

    def new_credits(self, start: int) -> list[CreditNote]:
        """Credits issued at or after index ``start`` (incremental view)."""
        return self._credits[start:]

    def credited_dollars(self) -> float:
        """Total settlement credits across the run."""
        return sum(note.dollars for note in self._credits)

    # ------------------------------------------------------------------
    # Per-slot enforcement
    # ------------------------------------------------------------------

    def _projected_w(self, racks, reference_w: Mapping[str, float]) -> float:
        """Worst-case draw projection for a set of racks."""
        total = 0.0
        for rack in racks:
            if rack.spot_budget_w > 0:
                total += rack.guaranteed_w + rack.spot_budget_w
            else:
                ref = reference_w.get(rack.rack_id, rack.power_w)
                total += min(ref, rack.guaranteed_w)
        return total

    def _relieve(
        self,
        racks,
        capacity_w: float,
        level: str,
        unit_id: str,
        record: SlotMarketRecord,
        slot: int,
        slot_seconds: float,
        reference_w: Mapping[str, float],
        revoked: set[str],
        tenant_of: Mapping[str, str],
    ) -> None:
        """Revoke grants under one constraint until its projection fits."""
        limit = capacity_w * (1.0 - self.safety_margin_fraction)
        excess = self._projected_w(racks, reference_w) - limit
        if excess <= self.tolerance_w:
            return
        slot_hours = slot_seconds / 3600.0

        def clearing_value(rack) -> float:
            # Stale budgets (no grant on record) carry zero clearing
            # value and are revoked first.
            grant = record.result.grant_for(rack.rack_id)
            if grant <= 0:
                return 0.0
            return record.result.price_for_pdu(rack.pdu_id) * grant / 1000.0

        candidates = sorted(
            (rack for rack in racks if rack.spot_budget_w > 0),
            key=lambda rack: (clearing_value(rack), rack.rack_id),
        )
        for rack in candidates:
            if excess <= self.tolerance_w:
                break
            spot_w = rack.spot_budget_w
            ref = min(
                reference_w.get(rack.rack_id, rack.power_w), rack.guaranteed_w
            )
            freed = rack.guaranteed_w + spot_w - ref
            rack.clear_spot_budget()
            excess -= freed
            self._actions.append(
                ControlAction(slot, "revoke", level, unit_id, rack.rack_id, spot_w)
            )
            granted = record.result.grant_for(rack.rack_id)
            if granted > 0 and rack.rack_id not in revoked:
                revoked.add(rack.rack_id)
                price = record.result.price_for_pdu(rack.pdu_id)
                self._credits.append(
                    CreditNote(
                        slot=slot,
                        tenant_id=tenant_of.get(rack.rack_id, rack.tenant_id),
                        rack_id=rack.rack_id,
                        watts=granted,
                        dollars=(granted / 1000.0) * price * slot_hours,
                        reason=f"{level}_excursion:{unit_id}",
                    )
                )
        if excess > self.tolerance_w:
            self._actions.append(
                ControlAction(slot, "emergency_cap", level, unit_id, "", excess)
            )

    def enforce(
        self,
        topology: PowerTopology,
        record: SlotMarketRecord,
        slot: int,
        slot_seconds: float,
        true_reference_w: Mapping[str, float] | None = None,
    ) -> SlotMarketRecord:
        """Contain any projected excursion for the current slot.

        Call after all spot budgets (including stale deliveries) are
        applied and any derating events are in force, before tenants
        execute the slot.  Revoked racks' budgets are cleared in place;
        the returned record is rebilled so settlement never charges for
        revoked capacity.

        Args:
            topology: Live topology (budgets set, capacities possibly
                derated).
            record: The slot's market record (billing attribution).
            slot: Current slot index.
            slot_seconds: Slot length (for credit accounting).
            true_reference_w: Per-rack conservative reference draws from
                the hardened telemetry path (e.g. a rolling recent
                maximum of *true* rack power).  Defaults to each rack's
                last true sample.
        """
        reference_w = true_reference_w or {}
        revoked: set[str] = set()
        tenant_of = {
            rack_id: rack.tenant_id for rack_id, rack in topology.racks.items()
        }
        for pdu_id, pdu in topology.pdus.items():
            self._relieve(
                topology.racks_of_pdu(pdu_id),
                pdu.capacity_w,
                "pdu",
                pdu_id,
                record,
                slot,
                slot_seconds,
                reference_w,
                revoked,
                tenant_of,
            )
        self._relieve(
            list(topology.racks.values()),
            topology.ups.capacity_w,
            "ups",
            topology.ups.ups_id,
            record,
            slot,
            slot_seconds,
            reference_w,
            revoked,
            tenant_of,
        )
        if revoked:
            record = revoke_and_rebill(record, revoked, slot_seconds)
        return record
