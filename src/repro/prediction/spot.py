"""Spot-capacity prediction (paper Section III-C).

The operator predicts the spot capacity available for the next slot by
subtracting a *reference* power from each level's physical capacity:

* for racks that are **not** requesting (or currently using) spot
  capacity, the reference is their current metered draw — statistical
  multiplexing makes PDU-level power change only marginally over a few
  minutes (Fig. 7a), so the current draw is a good one-slot-ahead
  predictor;
* for racks that request spot capacity for the next slot (or hold a
  grant now), the reference is their full **guaranteed capacity** — the
  conservative choice, since those racks may legitimately ramp to their
  whole subscription independent of the spot market.

A configurable *under-prediction factor* scales the result down
(Fig. 17's sensitivity study): 15% under-prediction multiplies the
predicted headroom by 0.85.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.infrastructure.topology import PowerTopology

__all__ = ["SpotCapacityForecast", "SpotCapacityPredictor"]


@dataclasses.dataclass(frozen=True)
class SpotCapacityForecast:
    """Predicted spot capacity for one upcoming slot.

    Attributes:
        pdu_spot_w: Predicted headroom per PDU (``P_m(t)``, Eq. 3).
        ups_spot_w: Predicted facility headroom (``P_o(t)``, Eq. 4).
    """

    pdu_spot_w: dict[str, float]
    ups_spot_w: float

    @property
    def total_pdu_spot_w(self) -> float:
        """Sum of per-PDU headrooms (bounded below by no constraint)."""
        return sum(self.pdu_spot_w.values())


@dataclasses.dataclass
class SpotCapacityPredictor:
    """Predicts next-slot spot capacity from current rack telemetry.

    Args:
        under_prediction_factor: Multiplier in (0, 1] applied to every
            predicted headroom; 1.0 (default) is the paper's base case,
            0.85 reproduces "15% under-prediction".
        safety_margin_fraction: Fraction of each level's physical
            capacity held back from the market.  Covers the residual
            slot-to-slot drift of non-requesting racks (the paper's
            ±2.5%/min, Fig. 7a) so that spot capacity introduces no
            additional power emergencies (Section V-B2); the circuit-
            breaker tolerance then only ever absorbs drift beyond that.
    """

    under_prediction_factor: float = 1.0
    safety_margin_fraction: float = 0.025

    def __post_init__(self) -> None:
        if not 0 < self.under_prediction_factor <= 1:
            raise ConfigurationError(
                "under_prediction_factor must be in (0, 1], got "
                f"{self.under_prediction_factor}"
            )
        if not 0 <= self.safety_margin_fraction < 1:
            raise ConfigurationError(
                "safety_margin_fraction must be in [0, 1), got "
                f"{self.safety_margin_fraction}"
            )

    def forecast(
        self,
        topology: PowerTopology,
        requesting_rack_ids: Iterable[str],
        reference_power_w: Mapping[str, float] | None = None,
    ) -> SpotCapacityForecast:
        """Predict per-PDU and UPS spot capacity for the next slot.

        Args:
            topology: Facility with current rack power samples recorded.
            requesting_rack_ids: Racks bidding for (or currently holding)
                spot capacity; their reference power is their guaranteed
                capacity rather than their current draw.
            reference_power_w: Optional per-rack reference overriding the
                instantaneous draw of non-requesting racks — e.g. a
                rolling recent maximum
                (:meth:`repro.infrastructure.monitor.PowerMonitor.rack_recent_max_w`)
                that covers racks whose draw can ramp within one slot.
                Entries are clamped to the rack's guaranteed capacity
                (a non-requesting rack never exceeds its budget).
        """
        requesting = set(requesting_rack_ids)
        unknown = requesting - set(topology.racks)
        if unknown:
            raise ConfigurationError(
                f"requesting racks not in topology: {sorted(unknown)[:5]}"
            )
        reference_power_w = reference_power_w or {}
        usable = 1.0 - self.safety_margin_fraction
        pdu_spot: dict[str, float] = {}
        total_reference = 0.0
        for pdu_id, pdu in topology.pdus.items():
            reference = 0.0
            for rack in topology.racks_of_pdu(pdu_id):
                if rack.rack_id in requesting or rack.spot_budget_w > 0:
                    reference += rack.guaranteed_w
                else:
                    reference += min(
                        reference_power_w.get(rack.rack_id, rack.power_w),
                        rack.guaranteed_w,
                    )
            total_reference += reference
            headroom = max(0.0, pdu.capacity_w * usable - reference)
            pdu_spot[pdu_id] = headroom * self.under_prediction_factor
        ups_headroom = max(0.0, topology.ups.capacity_w * usable - total_reference)
        return SpotCapacityForecast(
            pdu_spot_w=pdu_spot,
            ups_spot_w=ups_headroom * self.under_prediction_factor,
        )
