"""Market-price prediction for strategic tenant bidding (paper Fig. 16).

The sensitivity study considers sprinting tenants that "bid with a
perfect knowledge of market price".  Two predictors are provided:

* :class:`EwmaPricePredictor` — an exponentially weighted moving average
  of past clearing prices: what a real tenant could compute from the
  broadcast price history.
* :class:`OraclePricePredictor` — perfect next-slot knowledge, injected
  by the engine's two-pass clearing mode; the upper bound the paper
  evaluates.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["PricePredictor", "EwmaPricePredictor", "OraclePricePredictor"]


class PricePredictor:
    """Interface: observe clearing prices, predict the next one."""

    def observe(self, price: float) -> None:
        """Record a broadcast clearing price."""
        raise NotImplementedError

    def predict(self) -> float | None:
        """Predicted next-slot price; ``None`` before any observation."""
        raise NotImplementedError


class EwmaPricePredictor(PricePredictor):
    """EWMA over the broadcast price history.

    Args:
        alpha: Smoothing weight on the newest observation, in (0, 1].
            ``alpha=1`` is last-value prediction.
        skip_zero: Ignore zero-price slots (no market activity) so the
            estimate tracks the price *when a market exists*, which is
            what a bidding tenant cares about.
    """

    def __init__(self, alpha: float = 0.5, skip_zero: bool = True) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.skip_zero = skip_zero
        self._estimate: float | None = None

    def observe(self, price: float) -> None:
        if price < 0:
            raise ConfigurationError(f"price must be >= 0, got {price}")
        if self.skip_zero and price == 0.0:
            return
        if self._estimate is None:
            self._estimate = price
        else:
            self._estimate = self.alpha * price + (1 - self.alpha) * self._estimate

    def predict(self) -> float | None:
        return self._estimate


class OraclePricePredictor(PricePredictor):
    """Perfect next-slot price knowledge (Fig. 16's assumption).

    The simulation engine runs a provisional clearing pass with default
    bids, injects the provisional price here via :meth:`set_oracle`, and
    lets strategic tenants re-bid before the real clearing.
    """

    def __init__(self) -> None:
        self._oracle_price: float | None = None

    def set_oracle(self, price: float) -> None:
        """Inject the upcoming clearing price (engine-only API)."""
        if price < 0:
            raise ConfigurationError(f"price must be >= 0, got {price}")
        self._oracle_price = price

    def observe(self, price: float) -> None:
        """Broadcast observations are ignored; the oracle already knows."""

    def predict(self) -> float | None:
        return self._oracle_price
