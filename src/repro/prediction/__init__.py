"""Operator- and tenant-side prediction: next-slot spot capacity and
market-price forecasting.
"""

from repro.prediction.price import (
    EwmaPricePredictor,
    OraclePricePredictor,
    PricePredictor,
)
from repro.prediction.spot import SpotCapacityForecast, SpotCapacityPredictor

__all__ = [
    "EwmaPricePredictor",
    "OraclePricePredictor",
    "PricePredictor",
    "SpotCapacityForecast",
    "SpotCapacityPredictor",
]
