"""Fig. 10: a 20-minute execution of SpotDC — allocation and price traces.

The paper runs SpotDC on the testbed for 10 two-minute slots with a
deliberately volatile non-participating-tenant trace, and plots (for
PDU#1) the available spot capacity, the per-class allocations, and the
market price.  Key qualitative behaviours to reproduce:

* sprinting participation drives the price up;
* more available spot capacity drives the price down;
* allocation stays below availability (multi-level constraints).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.reporting import format_series
from repro.config import DEFAULT_SEED
from repro.sim.engine import SimulationEngine
from repro.sim.results import SimulationResult
from repro.sim.scenario import testbed_scenario

__all__ = ["ExecutionTraceResult", "run_fig10", "render_fig10"]


@dataclasses.dataclass
class ExecutionTraceResult:
    """Per-slot traces of the 20-minute experiment (PDU#1 view).

    Attributes:
        result: The underlying simulation result.
        available_spot_w: Forecast spot capacity per slot (facility).
        sprint_alloc_w: Spot watts granted to PDU#1 sprinting racks.
        opportunistic_alloc_w: Spot watts granted to PDU#1 opportunistic
            racks.
        price: Clearing price per slot, $/kW/h.
    """

    result: SimulationResult
    available_spot_w: np.ndarray
    sprint_alloc_w: np.ndarray
    opportunistic_alloc_w: np.ndarray
    price: np.ndarray


#: PDU#1's participating racks, by tenant class (Table I).
_PDU1_SPRINT = ("rack:Search-1", "rack:Web")
_PDU1_OPPORTUNISTIC = ("rack:Count-1", "rack:Graph-1")


def run_fig10(
    seed: int = DEFAULT_SEED, slots: int = 10, search_slots: int = 600
) -> ExecutionTraceResult:
    """Run the 20-minute (10-slot) volatile-trace experiment.

    The paper's 20-minute window is curated: sprinting tenants
    participate partway through and spot availability visibly varies.
    We simulate ``search_slots`` slots and report the ``slots``-long
    window with the most market activity (sprinting and opportunistic
    participation plus availability variation).

    Args:
        seed: Scenario seed.
        slots: Window length (paper: 10 slots of 120 s).
        search_slots: Simulated horizon searched for the window.
    """
    scenario = testbed_scenario(seed=seed, volatile_other=True)
    engine = SimulationEngine(scenario)
    result = engine.run(max(search_slots, slots))
    collector = result.collector
    sprint = np.asarray(sum(collector.rack_granted_array(r) for r in _PDU1_SPRINT))
    opportunistic = np.asarray(
        sum(collector.rack_granted_array(r) for r in _PDU1_OPPORTUNISTIC)
    )
    available = collector.forecast_ups_array()
    price = collector.price_array()

    best_start, best_score = 0, -1.0
    for start in range(0, available.size - slots + 1):
        window = slice(start, start + slots)
        sprint_active = float((sprint[window] > 0.5).mean())
        opp_active = float((opportunistic[window] > 0.5).mean())
        supply_active = float((available[window] > 20.0).mean())
        variation = min(
            1.0, float(available[window].std() / max(available[window].mean(), 1.0))
        )
        score = sprint_active + opp_active + supply_active + 0.5 * variation
        if score > best_score:
            best_start, best_score = start, score
    window = slice(best_start, best_start + slots)
    return ExecutionTraceResult(
        result=result,
        available_spot_w=available[window],
        sprint_alloc_w=sprint[window],
        opportunistic_alloc_w=opportunistic[window],
        price=price[window],
    )


def render_fig10(trace: ExecutionTraceResult) -> str:
    """Paper-style text: the Fig. 10 traces, one row per slot."""
    slots = np.arange(trace.price.size)
    seconds = (slots * trace.result.slot_seconds).astype(int)
    return format_series(
        "t [s]",
        seconds,
        {
            "avail spot [W]": trace.available_spot_w.round(0),
            "sprint alloc [W]": trace.sprint_alloc_w.round(1),
            "opport alloc [W]": trace.opportunistic_alloc_w.round(1),
            "price [$/kW/h]": trace.price.round(3),
        },
        title="Fig. 10: 20-minute SpotDC execution (PDU#1)",
    )
