"""Ablations of SpotDC's design choices.

DESIGN.md commits to justifying four mechanisms that the paper either
leaves implicit or that this reproduction added; each ablation switches
one off and measures the damage:

* **Pricing locality** — per-PDU locational prices vs the literal single
  facility-wide price, across facility scale (the Fig. 18 stability
  finding).
* **Predictor safety margin** — the 2.5% capacity hold-back vs none:
  emergencies avoided vs revenue forgone.
* **Conservative rack references** — rolling-peak reference power vs
  instantaneous draw.
* **Breakpoint augmentation** — adding bid kinks to a coarse price grid
  vs the pure fixed-step scan: profit recovered per price evaluated.

Every sweep point is a pure, module-level cell function of its payload,
so each runner takes ``jobs=N`` and fans cells out over worker
processes via :func:`repro.sweep.parallel_map` without changing any
number.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.reporting import (
    format_rounded_series,
    format_table,
)
from repro.config import DEFAULT_SEED, MarketParameters, make_rng
from repro.core.baselines import PowerCappedAllocator
from repro.core.clearing import MarketClearing
from repro.core.market import SpotDCAllocator
from repro.experiments.common import (
    mean_perf_improvement,
    parallel_map,
    powercapped_baseline,
)
from repro.experiments.fig07_prediction_and_scaling import make_synthetic_bids
from repro.prediction.spot import SpotCapacityPredictor
from repro.sim.engine import SimulationEngine, run_simulation
from repro.sim.scenario import scaled_scenario, testbed_scenario

__all__ = [
    "PricingAblation",
    "ReservePriceSweep",
    "SafetyAblation",
    "BreakpointAblation",
    "run_pricing_ablation",
    "run_safety_ablation",
    "run_breakpoint_ablation",
    "render_pricing_ablation",
    "render_safety_ablation",
    "render_breakpoint_ablation",
    "run_reserve_price_sweep",
    "render_reserve_price_sweep",
    "SlotLengthSweep",
    "run_slot_length_sweep",
    "render_slot_length_sweep",
]


@dataclasses.dataclass
class PricingAblation:
    """Per-PDU vs facility-wide pricing across scale.

    Attributes:
        tenant_counts: Facility sizes swept.
        profit_per_pdu / profit_uniform: Operator profit increase vs
            PowerCapped under each pricing mode.
        perf_per_pdu / perf_uniform: Mean tenant performance improvement.
    """

    tenant_counts: list[int]
    profit_per_pdu: list[float]
    profit_uniform: list[float]
    perf_per_pdu: list[float]
    perf_uniform: list[float]


def _pricing_cell(payload) -> tuple[int, float, float, float, float]:
    """One facility size: PowerCapped baseline plus both pricing modes."""
    seed, slots, count = payload
    baseline = run_simulation(
        scaled_scenario(groups=count, seed=seed),
        slots,
        allocator=PowerCappedAllocator(),
    )
    outcomes = []
    for mode in ("per_pdu", "uniform"):
        result = run_simulation(
            scaled_scenario(groups=count, seed=seed),
            slots,
            allocator=SpotDCAllocator(pricing=mode),
        )
        outcomes.append(
            (
                result.operator_profit_increase_vs(baseline),
                mean_perf_improvement(result, baseline),
            )
        )
    (profit_per_pdu, perf_per_pdu), (profit_uniform, perf_uniform) = outcomes
    return (10 * count, profit_per_pdu, profit_uniform, perf_per_pdu, perf_uniform)


def run_pricing_ablation(
    seed: int = DEFAULT_SEED,
    slots: int = 500,
    groups=(1, 5, 15),
    jobs: int = 1,
) -> PricingAblation:
    """Measure how each pricing mode scales with facility size."""
    rows = parallel_map(
        _pricing_cell, [(seed, slots, count) for count in groups], jobs=jobs
    )
    ablation = PricingAblation([], [], [], [], [])
    for tenants, profit_pp, profit_u, perf_pp, perf_u in rows:
        ablation.tenant_counts.append(tenants)
        ablation.profit_per_pdu.append(profit_pp)
        ablation.profit_uniform.append(profit_u)
        ablation.perf_per_pdu.append(perf_pp)
        ablation.perf_uniform.append(perf_u)
    return ablation


def render_pricing_ablation(ablation: PricingAblation) -> str:
    """Table of profit/performance per pricing mode across scale."""
    return format_rounded_series(
        "tenants",
        ablation.tenant_counts,
        {
            "profit +% (per-PDU)": ("percent", ablation.profit_per_pdu),
            "profit +% (uniform)": ("percent", ablation.profit_uniform),
            "perf x (per-PDU)": ("ratio", ablation.perf_per_pdu),
            "perf x (uniform)": ("ratio", ablation.perf_uniform),
        },
        title="Ablation: locational vs facility-wide pricing",
    )


@dataclasses.dataclass
class SafetyAblation:
    """Predictor conservatism: margins and references on vs off.

    Attributes:
        labels: Configuration labels.
        emergencies: Capacity-excursion count per configuration (the
            PowerCapped baseline count is the floor).
        baseline_emergencies: The PowerCapped run's count.
        profit_increase: Operator profit increase per configuration.
    """

    labels: list[str]
    emergencies: list[int]
    baseline_emergencies: int
    profit_increase: list[float]


#: The four conservatism configurations: (label, safety margin override
#: — ``None`` keeps the predictor's default — and reference window).
_SAFETY_CONFIGS = (
    ("margin + rolling refs (default)", None, 5),
    ("no safety margin", 0.0, 5),
    ("instantaneous references", None, 1),
    ("neither", 0.0, 1),
)


def _safety_cell(payload) -> tuple[str, int, float]:
    """One predictor-conservatism configuration."""
    seed, slots, label, margin, window = payload
    baseline = powercapped_baseline(seed, slots)
    predictor = (
        SpotCapacityPredictor()
        if margin is None
        else SpotCapacityPredictor(safety_margin_fraction=margin)
    )
    engine = SimulationEngine(
        testbed_scenario(seed=seed),
        spot_predictor=predictor,
        reference_window=window,
    )
    result = engine.run(slots)
    return (
        label,
        result.emergencies.count(),
        result.operator_profit_increase_vs(baseline),
    )


def run_safety_ablation(
    seed: int = DEFAULT_SEED, slots: int = 3000, jobs: int = 1
) -> SafetyAblation:
    """Switch off the safety margin and the rolling-peak references."""
    payloads = [
        (seed, slots, label, margin, window)
        for label, margin, window in _SAFETY_CONFIGS
    ]
    rows = parallel_map(_safety_cell, payloads, jobs=jobs)
    ablation = SafetyAblation(
        labels=[],
        emergencies=[],
        baseline_emergencies=powercapped_baseline(seed, slots)
        .emergencies.count(),
        profit_increase=[],
    )
    for label, emergencies, profit in rows:
        ablation.labels.append(label)
        ablation.emergencies.append(emergencies)
        ablation.profit_increase.append(profit)
    return ablation


def render_safety_ablation(ablation: SafetyAblation) -> str:
    """Table of emergencies vs profit across predictor conservatism."""
    rows = [
        [label, count, round(100 * profit, 2)]
        for label, count, profit in zip(
            ablation.labels, ablation.emergencies, ablation.profit_increase
        )
    ]
    table = format_table(
        ["configuration", "emergencies", "profit +%"],
        rows,
        title="Ablation: predictor conservatism",
    )
    return (
        table
        + f"\n(PowerCapped baseline emergencies: {ablation.baseline_emergencies})"
    )


@dataclasses.dataclass
class BreakpointAblation:
    """Breakpoint augmentation of the price grid.

    Attributes:
        price_steps: Grid steps swept, $/kW/h.
        revenue_plain / revenue_breakpoints: Mean clearing revenue rate
            over the random bid sets, without/with bid-kink candidates.
    """

    price_steps: list[float]
    revenue_plain: list[float]
    revenue_breakpoints: list[float]


def _breakpoint_cell(payload) -> tuple[float, float, float]:
    """One price-step point.

    Regenerates the shared synthetic bid sets from the seed rather than
    shipping them across the process boundary: ``make_rng(seed)`` is
    deterministic, so every cell sees the byte-identical sets the
    original single-loop implementation shared.
    """
    seed, racks, trials, step = payload
    rng = make_rng(seed)
    bid_sets = [make_synthetic_bids(racks, rng) for _ in range(trials)]
    plain = MarketClearing(
        params=MarketParameters(price_step=step), include_breakpoints=False
    )
    augmented = MarketClearing(
        params=MarketParameters(price_step=step), include_breakpoints=True
    )
    plain_revenue = np.mean(
        [plain.clear(b, p, u).revenue_rate for b, p, u in bid_sets]
    )
    augmented_revenue = np.mean(
        [augmented.clear(b, p, u).revenue_rate for b, p, u in bid_sets]
    )
    return (step, float(plain_revenue), float(augmented_revenue))


def run_breakpoint_ablation(
    seed: int = DEFAULT_SEED,
    price_steps=(0.05, 0.02, 0.01, 0.005, 0.001),
    racks: int = 200,
    trials: int = 10,
    jobs: int = 1,
) -> BreakpointAblation:
    """Measure the profit recovered by breakpoint candidates per step size."""
    rows = parallel_map(
        _breakpoint_cell,
        [(seed, racks, trials, step) for step in price_steps],
        jobs=jobs,
    )
    ablation = BreakpointAblation([], [], [])
    for step, plain, augmented in rows:
        ablation.price_steps.append(step)
        ablation.revenue_plain.append(plain)
        ablation.revenue_breakpoints.append(augmented)
    return ablation


def render_breakpoint_ablation(ablation: BreakpointAblation) -> str:
    """Table of revenue with and without breakpoint augmentation."""
    gain = [
        (b / p - 1.0) if p > 0 else 0.0
        for p, b in zip(ablation.revenue_plain, ablation.revenue_breakpoints)
    ]
    return format_rounded_series(
        "price step [$/kW/h]",
        ablation.price_steps,
        {
            "revenue, plain grid [$/h]": (4, ablation.revenue_plain),
            "revenue, +breakpoints [$/h]": (4, ablation.revenue_breakpoints),
            "gain [%]": ("percent", gain),
        },
        title="Ablation: breakpoint augmentation of the price grid",
    )


@dataclasses.dataclass
class ReservePriceSweep:
    """Operator reserve-price sweep (the paper's reservation-price note).

    Attributes:
        reserve_prices: Floors swept, $/kW/h.
        profit_increase: Operator profit increase vs PowerCapped.
        perf_improvement: Mean tenant performance improvement.
        mean_price: Mean positive clearing price.
    """

    reserve_prices: list[float]
    profit_increase: list[float]
    perf_improvement: list[float]
    mean_price: list[float]


def _reserve_cell(payload) -> tuple[float, float, float, float]:
    """One reserve-price point."""
    seed, slots, reserve = payload
    baseline = powercapped_baseline(seed, slots)
    allocator = SpotDCAllocator(params=MarketParameters(reserve_price=reserve))
    result = run_simulation(
        testbed_scenario(seed=seed), slots, allocator=allocator
    )
    prices = result.price_series()
    positive = prices[prices > 0]
    return (
        reserve,
        result.operator_profit_increase_vs(baseline),
        mean_perf_improvement(result, baseline),
        float(positive.mean()) if positive.size else 0.0,
    )


def run_reserve_price_sweep(
    seed: int = DEFAULT_SEED,
    slots: int = 1500,
    reserve_prices=(0.0, 0.02, 0.05, 0.1, 0.15),
    jobs: int = 1,
) -> ReservePriceSweep:
    """Sweep the market's price floor.

    The paper notes a reservation price can recoup energy costs
    (Section III-A); this sweep measures what a floor costs: low floors
    are free (the profit-maximising price already sits above them),
    high floors start pricing out the cheap opportunistic demand.
    """
    rows = parallel_map(
        _reserve_cell,
        [(seed, slots, reserve) for reserve in reserve_prices],
        jobs=jobs,
    )
    sweep = ReservePriceSweep([], [], [], [])
    for reserve, profit, perf, price in rows:
        sweep.reserve_prices.append(reserve)
        sweep.profit_increase.append(profit)
        sweep.perf_improvement.append(perf)
        sweep.mean_price.append(price)
    return sweep


def render_reserve_price_sweep(sweep: ReservePriceSweep) -> str:
    """Table of market outcomes across reserve prices."""
    return format_rounded_series(
        "reserve price [$/kW/h]",
        sweep.reserve_prices,
        {
            "profit +%": ("percent", sweep.profit_increase),
            "perf x": ("ratio", sweep.perf_improvement),
            "mean price [$/kW/h]": ("ratio", sweep.mean_price),
        },
        title="Ablation: operator reserve price",
    )


@dataclasses.dataclass
class SlotLengthSweep:
    """Slot-length sensitivity (the paper's "1-5 minutes" claim).

    Attributes:
        slot_seconds: Slot lengths swept.
        profit_increase: Operator profit increase vs PowerCapped (each
            point simulates the same wall-clock duration).
        perf_improvement: Mean tenant performance improvement.
        emergencies: Capacity excursions per simulated day.
    """

    slot_seconds: list[float]
    profit_increase: list[float]
    perf_improvement: list[float]
    emergencies: list[float]


def _slot_length_cell(payload) -> tuple[float, float, float, float]:
    """One slot-length point (fixed simulated duration)."""
    seed, duration_hours, slot_seconds = payload
    slots = int(duration_hours * 3600.0 / slot_seconds)
    baseline = run_simulation(
        testbed_scenario(seed=seed, slot_seconds=slot_seconds),
        slots,
        allocator=PowerCappedAllocator(),
    )
    result = run_simulation(
        testbed_scenario(seed=seed, slot_seconds=slot_seconds), slots
    )
    days = duration_hours / 24.0
    return (
        slot_seconds,
        result.operator_profit_increase_vs(baseline),
        mean_perf_improvement(result, baseline),
        result.emergencies.count() / days,
    )


def run_slot_length_sweep(
    seed: int = DEFAULT_SEED,
    duration_hours: float = 80.0,
    slot_lengths=(60.0, 120.0, 300.0),
    jobs: int = 1,
) -> SlotLengthSweep:
    """Sweep the market slot length at a fixed simulated duration.

    The paper asserts slots of 1-5 minutes all work ("each time slot can
    be 1-5 minutes" §III-A); this sweep verifies the outcomes are not an
    artifact of the 2-minute default: headline profit and performance
    should be stable and no slot length should add emergencies.
    """
    rows = parallel_map(
        _slot_length_cell,
        [(seed, duration_hours, s) for s in slot_lengths],
        jobs=jobs,
    )
    sweep = SlotLengthSweep([], [], [], [])
    for slot_seconds, profit, perf, emergencies in rows:
        sweep.slot_seconds.append(slot_seconds)
        sweep.profit_increase.append(profit)
        sweep.perf_improvement.append(perf)
        sweep.emergencies.append(emergencies)
    return sweep


def render_slot_length_sweep(sweep: SlotLengthSweep) -> str:
    """Table of outcomes across slot lengths."""
    return format_rounded_series(
        "slot length [s]",
        sweep.slot_seconds,
        {
            "profit +%": ("percent", sweep.profit_increase),
            "perf x": ("ratio", sweep.perf_improvement),
            "emergencies/day": (2, sweep.emergencies),
        },
        title="Ablation: market slot length (paper: 1-5 minutes)",
    )
