"""Fig. 12: extended-run cost, performance, and spot-capacity usage.

The paper extends the testbed experiment via simulation and reports, per
participating tenant and normalised to PowerCapped:

* (a) total cost (subscription + energy + spot payments);
* (b) performance, with MaxPerf as the upper bound;
* (c) maximum and average spot usage relative to the subscription.

Headlines: SpotDC performance is close to MaxPerf; cost increases are
marginal, with sprinting tenants below opportunistic ones; and the
operator's net profit rises ~9.7%.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.reporting import format_kv, format_table
from repro.config import DEFAULT_SEED
from repro.experiments.common import DEFAULT_SLOTS, ComparisonRuns, run_comparison

__all__ = ["TenantRow", "CostPerformanceResult", "run_fig12", "render_fig12"]


@dataclasses.dataclass(frozen=True)
class TenantRow:
    """One tenant's Fig. 12 numbers.

    Attributes:
        tenant_id: Tenant name.
        kind: ``"sprinting"`` or ``"opportunistic"``.
        cost_ratio: Total cost / PowerCapped total cost (Fig. 12a).
        perf_ratio: Performance / PowerCapped (Fig. 12b).
        maxperf_ratio: MaxPerf performance / PowerCapped (Fig. 12b).
        spot_use_max: Max spot grant / subscription (Fig. 12c).
        spot_use_mean: Mean grant over need-spot slots / subscription.
    """

    tenant_id: str
    kind: str
    cost_ratio: float
    perf_ratio: float
    maxperf_ratio: float
    spot_use_max: float
    spot_use_mean: float


@dataclasses.dataclass
class CostPerformanceResult:
    """Fig. 12's table plus the operator headline.

    Attributes:
        rows: Per-tenant numbers.
        profit_increase: Operator net-profit increase vs PowerCapped
            (paper: ~9.7%).
        runs: The underlying three runs.
    """

    rows: list[TenantRow]
    profit_increase: float
    runs: ComparisonRuns


def run_fig12(
    seed: int = DEFAULT_SEED, slots: int = DEFAULT_SLOTS
) -> CostPerformanceResult:
    """Run the extended comparison behind Fig. 12."""
    runs = run_comparison(slots=slots, seed=seed, include_maxperf=True)
    rows = []
    for tenant_id in runs.spotdc.participating_tenant_ids():
        cost_ratio = 1.0 + runs.spotdc.tenant_cost_increase_vs(
            runs.powercapped, tenant_id
        )
        perf_ratio = runs.spotdc.tenant_performance_improvement_vs(
            runs.powercapped, tenant_id
        )
        maxperf_ratio = runs.maxperf.tenant_performance_improvement_vs(
            runs.powercapped, tenant_id
        )
        use_max, use_mean = runs.spotdc.tenant_spot_usage_fraction(tenant_id)
        rows.append(
            TenantRow(
                tenant_id=tenant_id,
                kind=runs.spotdc.tenants[tenant_id].kind,
                cost_ratio=cost_ratio,
                perf_ratio=perf_ratio,
                maxperf_ratio=maxperf_ratio,
                spot_use_max=use_max,
                spot_use_mean=use_mean,
            )
        )
    return CostPerformanceResult(
        rows=rows,
        profit_increase=runs.profit_increase(),
        runs=runs,
    )


def render_fig12(result: CostPerformanceResult) -> str:
    """Paper-style text: the per-tenant table plus the profit headline."""
    table = format_table(
        [
            "tenant", "type", "cost (norm)", "perf (norm)",
            "MaxPerf perf", "spot use max", "spot use mean",
        ],
        [
            [
                row.tenant_id,
                row.kind,
                row.cost_ratio,
                row.perf_ratio,
                row.maxperf_ratio,
                row.spot_use_max,
                row.spot_use_mean,
            ]
            for row in result.rows
        ],
        title="Fig. 12: cost / performance / spot usage, normalised to PowerCapped",
    )
    summary = format_kv(
        {"operator net-profit increase (paper: ~9.7%)": result.profit_increase}
    )
    return table + "\n" + summary
