"""Fig. 2(b): the spot-capacity opportunity in tenant power CDFs.

The paper plots the CDF of measured PDU power for five tenants over
three months, normalised to the maximum, then shows how adding two more
tenants (oversubscription) moves the CDF toward the ideal vertical line
— gaining utilization (area "A") at the cost of occasional emergencies
(area "B") while still leaving spot capacity (area "C").

We regenerate the same construction from the synthetic colo trace: a
5-tenant aggregate sets the PDU capacity at its maximum demand; a
7-tenant aggregate shares the same capacity.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.reporting import format_kv, format_series
from repro.config import DEFAULT_SEED, make_rng, spawn_rngs
from repro.workloads.traces import ColoPowerTrace

__all__ = ["SpotOpportunityResult", "run_fig02", "render_fig02"]

#: Three months of 1-minute slots, as in the measured trace.
_THREE_MONTHS_SLOTS = 90 * 24 * 60


@dataclasses.dataclass
class SpotOpportunityResult:
    """Outputs of the Fig. 2(b) reconstruction.

    Attributes:
        base_cdf: CDF of 5-tenant aggregate power, normalised to the
            capacity (the maximum 5-tenant demand).
        oversubscribed_cdf: CDF of 7-tenant aggregate power under the
            same capacity (values above 1 are emergency mass).
        utilization_gain: Area "A" — mean utilization gained by adding
            tenants, as a fraction of capacity.
        emergency_fraction: Area-"B" proxy — fraction of slots in which
            the 7-tenant demand exceeds the capacity.
        spot_fraction: Area "C" — mean unused capacity remaining under
            oversubscription, as a fraction of capacity.
    """

    base_cdf: EmpiricalCdf
    oversubscribed_cdf: EmpiricalCdf
    utilization_gain: float
    emergency_fraction: float
    spot_fraction: float


def run_fig02(
    seed: int = DEFAULT_SEED,
    slots: int = _THREE_MONTHS_SLOTS,
    base_tenants: int = 5,
    added_tenants: int = 2,
    tenant_subscription_w: float = 150.0,
    added_subscription_w: float = 75.0,
) -> SpotOpportunityResult:
    """Reconstruct Fig. 2(b) from synthetic colo power traces.

    Args:
        seed: Trace seed.
        slots: Trace length (default: three months of 1-minute slots).
        base_tenants: Tenants setting the original CDF (paper: 5).
        added_tenants: Extra tenants under oversubscription (paper: 2).
        tenant_subscription_w: Per-tenant subscription scale.
        added_subscription_w: Subscription of the tenants added under
            oversubscription — smaller than the incumbents, chosen so
            that the emergency mass (area "B") stays occasional while
            the utilization gain (area "A") is substantial, matching the
            figure's proportions.
    """
    rng = make_rng(seed)
    total = base_tenants + added_tenants
    rngs = spawn_rngs(rng, total)
    traces = []
    for i, tenant_rng in enumerate(rngs):
        trace = ColoPowerTrace(
            subscription_w=(
                tenant_subscription_w if i < base_tenants else added_subscription_w
            ),
            # Per-tenant power is peakier and only partially aligned
            # across tenants; statistical multiplexing smooths the sum,
            # which is exactly why oversubscription leaves spot capacity.
            phase=float(rng.uniform(0.0, 0.5)),
            mean_fraction=0.50,
            diurnal_amplitude=0.28,
            noise_sigma=0.08,
        )
        traces.append(trace.generate(slots, tenant_rng))
    base_power = np.sum(traces[:base_tenants], axis=0)
    over_power = np.sum(traces, axis=0)

    capacity = float(base_power.max())
    base_cdf = EmpiricalCdf(base_power / capacity)
    over_cdf = EmpiricalCdf(over_power / capacity)

    base_unused = base_cdf.area_gap_to_ideal(1.0)
    over_unused = over_cdf.area_gap_to_ideal(1.0)
    return SpotOpportunityResult(
        base_cdf=base_cdf,
        oversubscribed_cdf=over_cdf,
        utilization_gain=base_unused - over_unused,
        emergency_fraction=over_cdf.exceedance_fraction(1.0),
        spot_fraction=over_unused,
    )


def render_fig02(result: SpotOpportunityResult, points: int = 11) -> str:
    """Paper-style text: the two CDF curves plus the A/B/C areas."""
    xs = np.linspace(0.0, max(1.0, result.oversubscribed_cdf.max), points)
    series = {
        "cdf_5_tenants": result.base_cdf.evaluate_many(xs).round(3),
        "cdf_7_tenants": result.oversubscribed_cdf.evaluate_many(xs).round(3),
    }
    table = format_series(
        "power/capacity", xs.round(2), series,
        title="Fig. 2(b): power CDFs, 5 vs 7 tenants on the same PDU capacity",
    )
    summary = format_kv(
        {
            "utilization gained by oversubscription (area A)": result.utilization_gain,
            "emergency slot fraction (area B)": result.emergency_fraction,
            "remaining spot capacity fraction (area C)": result.spot_fraction,
        }
    )
    return table + "\n" + summary
