"""Table I: the testbed configuration, regenerated from the scenario.

The paper's Table I lists each tenant's PDU, type, workload, and
guaranteed-capacity subscription, plus the derived PDU/UPS capacities
(715 W / 724 W / 1370 W at 5% oversubscription).  This runner rebuilds
the scenario and reports the same rows — a consistency check that the
library's Table I encoding matches the paper's arithmetic.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.reporting import format_kv, format_table
from repro.config import DEFAULT_SEED
from repro.sim.scenario import TABLE1_SPECS, testbed_scenario

__all__ = ["TestbedSummary", "run_table1", "render_table1"]


@dataclasses.dataclass
class TestbedSummary:
    """The regenerated Table I.

    Attributes:
        rows: (pdu, tenant, type, workload, subscription W) per tenant.
        pdu_capacities_w: Physical capacity per PDU id.
        ups_capacity_w: Physical UPS capacity.
        leased_w: Total leased capacity per PDU id.
    """

    rows: list[tuple[str, str, str, str, float]]
    pdu_capacities_w: dict[str, float]
    ups_capacity_w: float
    leased_w: dict[str, float]


def run_table1(seed: int = DEFAULT_SEED) -> TestbedSummary:
    """Rebuild the testbed scenario and extract Table I."""
    scenario = testbed_scenario(seed=seed)
    workload_of = {spec.name: spec.workload for spec in TABLE1_SPECS}
    rows = []
    for tenant in scenario.tenants:
        for rack in tenant.racks:
            rows.append(
                (
                    rack.pdu_id,
                    tenant.tenant_id,
                    tenant.kind,
                    workload_of[tenant.tenant_id],
                    rack.guaranteed_w,
                )
            )
    leased: dict[str, float] = {}
    for pdu_id, _, _, _, sub in rows:
        leased[pdu_id] = leased.get(pdu_id, 0.0) + sub
    return TestbedSummary(
        rows=rows,
        pdu_capacities_w={
            pdu_id: pdu.capacity_w
            for pdu_id, pdu in scenario.topology.pdus.items()
        },
        ups_capacity_w=scenario.topology.ups.capacity_w,
        leased_w=leased,
    )


def render_table1(summary: TestbedSummary) -> str:
    """Paper-style text: the tenant roster plus capacity arithmetic."""
    table = format_table(
        ["PDU", "tenant", "type", "workload", "subscription [W]"],
        [list(row) for row in summary.rows],
        title="Table I: testbed configuration",
    )
    caps = {
        f"{pdu_id} leased/physical [W]":
            f"{summary.leased_w[pdu_id]:.0f} / {cap:.1f}"
        for pdu_id, cap in summary.pdu_capacities_w.items()
    }
    caps["UPS capacity [W] (paper: 1370)"] = f"{summary.ups_capacity_w:.1f}"
    return table + "\n" + format_kv(caps)
