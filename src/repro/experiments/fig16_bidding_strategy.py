"""Fig. 16: impact of strategic (price-predicting) sprinting bids.

The paper assumes sprinting tenants bid with perfect knowledge of the
market price while opportunistic tenants bid as before, and finds that
strategic sprinting tenants gain more spot capacity and performance at
no extra cost, while the operator's profit barely moves (within ~0.05%,
since spot capacity carries no operating expense).

We reproduce the "perfect knowledge" assumption with the allocator's
two-pass oracle mode: a provisional clearing reveals the price, the
strategic tenants re-bid their exact optimum at that price, and the
market clears again.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.reporting import format_table
from repro.config import DEFAULT_SEED
from repro.core.baselines import PowerCappedAllocator
from repro.core.market import SpotDCAllocator
from repro.experiments.common import DEFAULT_SLOTS, sprinting_ids
from repro.sim.engine import run_simulation
from repro.sim.scenario import testbed_scenario
from repro.tenants.bidding import LinearElasticStrategy, PricePredictionStrategy

__all__ = ["BiddingStrategyResult", "run_fig16", "render_fig16"]


@dataclasses.dataclass
class BiddingStrategyResult:
    """Fig. 16's comparison: default vs strategic sprinting bids.

    Attributes:
        sprint_grant_default / sprint_grant_strategic: Mean spot watts
            granted to sprinting racks over their need-spot slots.
        sprint_perf_default / sprint_perf_strategic: Mean sprinting
            performance improvement over PowerCapped.
        sprint_cost_default / sprint_cost_strategic: Mean sprinting
            total-cost increase over PowerCapped.
        profit_delta: Relative operator-profit change from strategic
            bidding (paper: within ~0.05%).
    """

    sprint_grant_default: float
    sprint_grant_strategic: float
    sprint_perf_default: float
    sprint_perf_strategic: float
    sprint_cost_default: float
    sprint_cost_strategic: float
    profit_delta: float


def _strategic_factory(kind: str):
    if kind == "sprinting":
        return PricePredictionStrategy(fallback=LinearElasticStrategy())
    return LinearElasticStrategy()


def _mean_sprint_grant(result) -> float:
    grants = []
    for tenant_id in sprinting_ids(result):
        for rack_id in result.tenants[tenant_id].rack_ids:
            wanted = result.rack_wanted_mask(rack_id)
            if wanted.any():
                granted = result.collector.rack_granted_array(rack_id)
                grants.append(float(granted[wanted].mean()))
    return float(np.mean(grants)) if grants else 0.0


def run_fig16(
    seed: int = DEFAULT_SEED, slots: int = DEFAULT_SLOTS
) -> BiddingStrategyResult:
    """Run the default-vs-strategic sprinting-bid comparison."""
    default = run_simulation(testbed_scenario(seed=seed), slots)
    strategic = run_simulation(
        testbed_scenario(seed=seed, strategy_factory=_strategic_factory),
        slots,
        allocator=SpotDCAllocator(oracle_rebid=True),
    )
    base = run_simulation(
        testbed_scenario(seed=seed), slots, allocator=PowerCappedAllocator()
    )

    def mean_over_sprinters(result, fn):
        values = [fn(result, t) for t in sprinting_ids(result)]
        return float(np.mean(values)) if values else 0.0

    perf_default = mean_over_sprinters(
        default, lambda r, t: r.tenant_performance_improvement_vs(base, t)
    )
    perf_strategic = mean_over_sprinters(
        strategic, lambda r, t: r.tenant_performance_improvement_vs(base, t)
    )
    cost_default = mean_over_sprinters(
        default, lambda r, t: r.tenant_cost_increase_vs(base, t)
    )
    cost_strategic = mean_over_sprinters(
        strategic, lambda r, t: r.tenant_cost_increase_vs(base, t)
    )
    profit_default = default.ledger.net_profit
    profit_strategic = strategic.ledger.net_profit
    return BiddingStrategyResult(
        sprint_grant_default=_mean_sprint_grant(default),
        sprint_grant_strategic=_mean_sprint_grant(strategic),
        sprint_perf_default=perf_default,
        sprint_perf_strategic=perf_strategic,
        sprint_cost_default=cost_default,
        sprint_cost_strategic=cost_strategic,
        profit_delta=(profit_strategic - profit_default) / profit_default,
    )


def render_fig16(result: BiddingStrategyResult) -> str:
    """Paper-style text: default vs strategic sprinting outcomes."""
    return format_table(
        ["metric", "default bid", "price-predicting bid"],
        [
            [
                "mean sprint grant over need-spot slots [W]",
                result.sprint_grant_default,
                result.sprint_grant_strategic,
            ],
            [
                "sprint performance (x PowerCapped)",
                result.sprint_perf_default,
                result.sprint_perf_strategic,
            ],
            [
                "sprint cost increase [%]",
                100 * result.sprint_cost_default,
                100 * result.sprint_cost_strategic,
            ],
            ["operator profit change [%]", 0.0, 100 * result.profit_delta],
        ],
        title="Fig. 16: impact of strategic sprinting bids",
    )
