"""Fig. 9: performance gain in dollars per hour versus spot capacity.

The paper converts the Fig. 8 performance curves to money using the
tenants' cost models, yielding concave, saturating value curves for
Search-1, Web, and Count-1.  These are exactly the value curves the
tenants bid from, so we build them through the same scenario path.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.reporting import format_series
from repro.config import DEFAULT_SEED
from repro.economics.valuation import SpotValueCurve
from repro.errors import SimulationError
from repro.sim.scenario import testbed_scenario
from repro.tenants.tenant import OpportunisticTenant, SprintingTenant

__all__ = ["PerfGainResult", "run_fig09", "render_fig09"]


@dataclasses.dataclass
class PerfGainResult:
    """Fig. 9's three value curves.

    Attributes:
        curves: Tenant name -> value curve ($/h gain vs spot watts),
            evaluated at a representative bidding intensity.
    """

    curves: dict[str, SpotValueCurve]


def run_fig09(
    seed: int = DEFAULT_SEED,
    tenants: tuple[str, ...] = ("Search-1", "Web", "Count-1"),
    probe_slots: int = 1500,
) -> PerfGainResult:
    """Build the Fig. 9 value curves from the testbed scenario.

    For sprinting tenants the curve depends on the arrival rate; we use
    the first simulated slot in which the tenant actually wants spot
    capacity (a representative high-traffic slot).

    Args:
        seed: Scenario seed.
        tenants: Tenants to include (paper: Search-1, Web, Count-1).
        probe_slots: How many slots to scan for a bidding slot.
    """
    scenario = testbed_scenario(seed=seed)
    scenario.prepare(probe_slots)
    by_id = {t.tenant_id: t for t in scenario.tenants}
    curves: dict[str, SpotValueCurve] = {}
    for name in tenants:
        tenant = by_id.get(name)
        if tenant is None:
            raise SimulationError(f"tenant {name!r} not in the testbed scenario")
        if isinstance(tenant, OpportunisticTenant):
            # Backlog-independent: any slot gives the same normalised curve.
            curves[name] = tenant.value_curves(0)[tenant.racks[0].rack_id]
            continue
        if not isinstance(tenant, SprintingTenant):
            raise SimulationError(f"tenant {name!r} does not bid for spot capacity")
        for slot in range(probe_slots):
            needed = tenant.needed_spot_w(slot)
            if needed:
                rack_id = next(iter(needed))
                curves[name] = tenant.value_curves(slot)[rack_id]
                break
        else:
            raise SimulationError(
                f"tenant {name!r} never wanted spot capacity in "
                f"{probe_slots} slots; increase probe_slots"
            )
    return PerfGainResult(curves=curves)


def render_fig09(result: PerfGainResult, points: int = 9) -> str:
    """Paper-style text: $/h gain per spot allocation for each tenant."""
    max_spot = max(c.max_spot_w for c in result.curves.values())
    xs = np.linspace(0.0, max_spot, points)
    series = {
        f"{name} [$/h]": [round(curve.gain_per_hour(float(x)), 4) for x in xs]
        for name, curve in result.curves.items()
    }
    return format_series(
        "spot capacity [W]", xs.round(0), series,
        title="Fig. 9: performance gain from spot capacity",
    )
