"""Fig. 14: LinearBid vs StepBid vs FullBid across spot availability.

The paper compares the operator's profit under the three demand-function
families while varying the average available spot capacity (by adjusting
the shared PDU capacity, keeping workloads fixed).  Expected shape:

* SpotDC's LinearBid earns close to FullBid;
* both beat StepBid, with the gap largest when spot capacity is scarce
  (localised constraints bind and all-or-nothing demand can't be
  partially satisfied);
* the extra profit saturates once spot capacity is plentiful.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.reporting import format_series
from repro.config import DEFAULT_SEED
from repro.experiments.common import DEFAULT_SLOTS, run_comparison
from repro.tenants.bidding import (
    FullCurveStrategy,
    LinearElasticStrategy,
    StepStrategy,
)

__all__ = ["DemandFunctionSweep", "run_fig14", "render_fig14"]

#: PDU oversubscription ratios swept to vary spot availability (higher
#: ratio -> smaller physical capacity -> scarcer spot capacity).
_DEFAULT_RATIOS = (1.12, 1.08, 1.05, 1.02, 1.0)

_STRATEGIES = {
    "LinearBid": LinearElasticStrategy,
    "StepBid": StepStrategy,
    "FullBid": FullCurveStrategy,
}


@dataclasses.dataclass
class DemandFunctionSweep:
    """Fig. 14's series.

    Attributes:
        spot_fractions: Measured average spot capacity (fraction of
            total subscription) per sweep point, under LinearBid.
        profit_increase: Strategy name -> operator profit increase vs
            PowerCapped at each sweep point.
        perf_improvement: Strategy name -> mean tenant performance
            improvement at each sweep point (the result the paper
            mentions but omits for space).
    """

    spot_fractions: list[float]
    profit_increase: dict[str, list[float]]
    perf_improvement: dict[str, list[float]]


def run_fig14(
    seed: int = DEFAULT_SEED,
    slots: int = DEFAULT_SLOTS,
    oversubscription_ratios=_DEFAULT_RATIOS,
) -> DemandFunctionSweep:
    """Sweep spot availability for the three demand-function families."""
    spot_fractions: list[float] = []
    profit: dict[str, list[float]] = {name: [] for name in _STRATEGIES}
    perf: dict[str, list[float]] = {name: [] for name in _STRATEGIES}
    for ratio in oversubscription_ratios:
        for name, strategy_cls in _STRATEGIES.items():
            runs = run_comparison(
                slots=slots,
                seed=seed,
                pdu_oversubscription=ratio,
                strategy_factory=lambda kind, cls=strategy_cls: cls(),
            )
            profit[name].append(runs.profit_increase())
            ratios = [
                runs.spotdc.tenant_performance_improvement_vs(
                    runs.powercapped, t
                )
                for t in runs.spotdc.participating_tenant_ids()
            ]
            perf[name].append(sum(ratios) / len(ratios))
            if name == "LinearBid":
                spot_fractions.append(runs.spotdc.average_spot_fraction())
    return DemandFunctionSweep(
        spot_fractions=spot_fractions,
        profit_increase=profit,
        perf_improvement=perf,
    )


def render_fig14(sweep: DemandFunctionSweep) -> str:
    """Paper-style text: profit per demand function vs spot availability."""
    xs = [round(100 * f, 1) for f in sweep.spot_fractions]
    series = {
        f"{name} profit +%": [round(100 * v, 2) for v in values]
        for name, values in sweep.profit_increase.items()
    }
    series.update(
        {
            f"{name} perf x": [round(v, 3) for v in values]
            for name, values in sweep.perf_improvement.items()
        }
    )
    return format_series(
        "avg spot [% of subscribed]", xs, series,
        title="Fig. 14: demand-function comparison across spot availability",
    )
