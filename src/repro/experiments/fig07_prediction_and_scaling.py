"""Fig. 7: (a) PDU power variation; (b) market-clearing time at scale.

Fig. 7(a) validates the predictor's core assumption: PDU-level power
changes slowly across consecutive slots (the paper reports <±2.5% within
one minute for 99% of slots).  We measure the same statistic on a
simulated run.

Fig. 7(b) measures the uniform-price scan's wall-clock clearing time for
up to 15,000 bidding racks at two price-step sizes (0.1 and 1 cent/kW);
the paper reports <1 s and <100 ms respectively on a desktop.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.analysis.reporting import format_kv, format_series
from repro.config import DEFAULT_SEED, MarketParameters, make_rng
from repro.core.bids import RackBid
from repro.core.clearing import MarketClearing
from repro.core.demand import LinearBid
from repro.core.frame import BidFrame

__all__ = [
    "PduVariationResult",
    "ClearingTimeResult",
    "run_fig07a",
    "run_fig07b",
    "make_synthetic_bids",
    "render_fig07",
]


@dataclasses.dataclass
class PduVariationResult:
    """Fig. 7(a): slot-to-slot PDU power variation statistics.

    Attributes:
        p50 / p90 / p99: Quantiles of the relative slot-to-slot change
            ``|dP| / P`` pooled over all PDUs.
        max: Largest observed relative change.
    """

    p50: float
    p90: float
    p99: float
    max: float


@dataclasses.dataclass
class ClearingTimeResult:
    """Fig. 7(b): mean clearing wall-clock time per (racks, step) cell.

    Attributes:
        rack_counts: Number of bidding racks per column.
        price_steps: Scan step sizes, $/kW/h.
        mean_seconds: ``mean_seconds[step][racks]`` mean clearing time on
            the default columnar (:class:`BidFrame`) path, frame prebuilt
            once per rack count — the per-slot steady state.
        object_seconds: Same cells timed through the legacy
            object-at-a-time path (``columnar=False``); empty when the
            comparison was not requested.
        frame_build_seconds: ``BidFrame.from_bids`` wall-clock per rack
            count (the once-per-slot adapter cost).
    """

    rack_counts: list[int]
    price_steps: list[float]
    mean_seconds: dict[float, list[float]]
    object_seconds: dict[float, list[float]] = dataclasses.field(
        default_factory=dict
    )
    frame_build_seconds: list[float] = dataclasses.field(default_factory=list)


def run_fig07a(
    seed: int = DEFAULT_SEED,
    slots: int = 20_000,
    pdus: int = 4,
    groups_per_pdu: int = 5,
    group_subscription_w: float = 150.0,
) -> PduVariationResult:
    """Measure slot-to-slot PDU power variation on the simulation trace.

    As in the paper, the statistic is computed on the *power trace* fed
    to the simulation (the colo trace standing in for the measured
    commercial-facility trace), aggregated to PDU level: each PDU's
    series is the sum of several tenant-group traces, and the reported
    quantiles are over ``|dP| / P`` across consecutive slots.

    Args:
        seed: Trace seed.
        slots: Trace length per PDU.
        pdus: Number of PDU aggregates sampled.
        groups_per_pdu: Tenant groups summed per PDU.
        group_subscription_w: Per-group subscription scale.
    """
    from repro.config import make_rng, spawn_rngs
    from repro.workloads.traces import ColoPowerTrace

    rng = make_rng(seed)
    variations = []
    for p in range(pdus):
        group_rngs = spawn_rngs(rng, groups_per_pdu)
        series = np.zeros(slots)
        for g, group_rng in enumerate(group_rngs):
            trace = ColoPowerTrace(
                subscription_w=group_subscription_w,
                phase=float(rng.uniform(0, 1)),
            )
            series += trace.generate(slots, group_rng)
        rel = np.abs(np.diff(series)) / series[:-1]
        variations.append(rel)
    pooled = np.concatenate(variations)
    return PduVariationResult(
        p50=float(np.quantile(pooled, 0.50)),
        p90=float(np.quantile(pooled, 0.90)),
        p99=float(np.quantile(pooled, 0.99)),
        max=float(pooled.max()),
    )


def make_synthetic_bids(
    racks: int,
    rng: np.random.Generator,
    racks_per_pdu: int = 60,
) -> tuple[list[RackBid], dict[str, float], float]:
    """Generate a large random bid set with realistic structure.

    Rack demands and prices are drawn around the testbed's ranges; PDUs
    host ``racks_per_pdu`` racks each with spot capacity for roughly a
    third of the aggregate maximum demand (so constraints genuinely
    bind, as in a busy facility).

    Returns:
        (bids, per-PDU spot capacity, UPS spot capacity).
    """
    bids = []
    pdu_demand: dict[str, float] = {}
    for i in range(racks):
        pdu_id = f"pdu:{i // racks_per_pdu}"
        d_max = float(rng.uniform(10.0, 80.0))
        d_min = float(rng.uniform(0.1, 0.9)) * d_max
        q_min = float(rng.uniform(0.02, 0.2))
        q_max = q_min + float(rng.uniform(0.02, 0.3))
        bids.append(
            RackBid(
                rack_id=f"rack:{i}",
                pdu_id=pdu_id,
                tenant_id=f"tenant:{i}",
                demand=LinearBid(d_max, q_min, d_min, q_max),
                rack_cap_w=d_max,
            )
        )
        pdu_demand[pdu_id] = pdu_demand.get(pdu_id, 0.0) + d_max
    pdu_spot = {p: total / 3.0 for p, total in pdu_demand.items()}
    ups_spot = sum(pdu_spot.values()) / 1.5
    return bids, pdu_spot, ups_spot


def _fig07b_cell(payload) -> dict:
    """Time one rack-count column of Fig. 7(b).

    Module-level and plain-data in/out so it can cross a
    :func:`repro.sweep.parallel_map` process boundary.  ``payload`` is
    ``(racks, price_steps, repeats, rng, compare_object_path)`` — the
    generator is spawned per cell *by the parent*, so the bid set for a
    rack count never depends on ``jobs`` or on which other rack counts
    run.
    """
    racks, price_steps, repeats, rng, compare_object_path = payload
    bids, pdu_spot, ups_spot = make_synthetic_bids(racks, rng)
    start = time.perf_counter()
    frame = BidFrame.from_bids(bids)
    cell = {
        "frame_build": time.perf_counter() - start,
        "mean": {},
        "object": {},
    }
    for step in price_steps:
        engine = MarketClearing(
            params=MarketParameters(price_step=step),
            include_breakpoints=False,  # pure fixed-step scan, as timed
        )
        start = time.perf_counter()
        for _ in range(repeats):
            engine.clear(frame, pdu_spot, ups_spot)
        cell["mean"][step] = (time.perf_counter() - start) / repeats
        if compare_object_path:
            legacy = MarketClearing(
                params=MarketParameters(price_step=step),
                include_breakpoints=False,
                columnar=False,
            )
            start = time.perf_counter()
            for _ in range(repeats):
                legacy.clear(bids, pdu_spot, ups_spot)
            cell["object"][step] = (time.perf_counter() - start) / repeats
    return cell


def run_fig07b(
    rack_counts=(100, 1000, 5000, 15000),
    price_steps=(0.001, 0.01),
    repeats: int = 3,
    seed: int = DEFAULT_SEED,
    compare_object_path: bool = False,
    jobs: int = 1,
) -> ClearingTimeResult:
    """Measure clearing wall-clock time versus scale (Fig. 7b).

    The default timing is the columnar :class:`BidFrame` path with the
    frame prebuilt per rack count (the per-slot steady state — the frame
    is built once per slot, then every stage consumes it).

    Args:
        rack_counts: Bidding-rack counts to scan (paper: up to 15,000).
        price_steps: Price-grid steps in $/kW/h; 0.001 ≈ 0.1 cent/kW and
            0.01 ≈ 1 cent/kW match the paper's two curves.
        repeats: Clearing repetitions averaged per cell.
        seed: Bid-generation seed.
        compare_object_path: Also time the legacy object-at-a-time path
            on the same cells (``object_seconds``), for the perf
            trajectory in ``BENCH_clearing.json``.
        jobs: Worker processes for the per-rack-count cells; 1 times
            them serially in-process (the least-noisy option — parallel
            cells contend for cores, so use ``jobs > 1`` for quick scans,
            not for archived timings).  Each cell draws its bids from a
            generator spawned in the parent, so the bid sets are
            identical at any job count.
    """
    from repro.config import spawn_rngs
    from repro.sweep.runner import parallel_map

    rngs = spawn_rngs(make_rng(seed), len(rack_counts))
    payloads = [
        (racks, tuple(price_steps), repeats, rng, compare_object_path)
        for racks, rng in zip(rack_counts, rngs)
    ]
    cells = parallel_map(_fig07b_cell, payloads, jobs=jobs)
    mean_seconds: dict[float, list[float]] = {
        step: [cell["mean"][step] for cell in cells] for step in price_steps
    }
    object_seconds: dict[float, list[float]] = (
        {step: [cell["object"][step] for cell in cells] for step in price_steps}
        if compare_object_path
        else {}
    )
    frame_build_seconds = [cell["frame_build"] for cell in cells]
    return ClearingTimeResult(
        rack_counts=list(rack_counts),
        price_steps=list(price_steps),
        mean_seconds=mean_seconds,
        object_seconds=object_seconds,
        frame_build_seconds=frame_build_seconds,
    )


def render_fig07(
    variation: PduVariationResult, timing: ClearingTimeResult
) -> str:
    """Paper-style text for both panels."""
    part_a = format_kv(
        {
            "PDU |dP|/P p50": variation.p50,
            "PDU |dP|/P p90": variation.p90,
            "PDU |dP|/P p99 (paper: < 0.025)": variation.p99,
            "PDU |dP|/P max": variation.max,
        },
        title="Fig. 7(a): slot-to-slot PDU power variation",
    )
    series = {
        f"step={step:g} $/kW/h [s]": [round(v, 4) for v in timing.mean_seconds[step]]
        for step in timing.price_steps
    }
    for step in timing.price_steps:
        if step in timing.object_seconds:
            series[f"object path step={step:g} [s]"] = [
                round(v, 4) for v in timing.object_seconds[step]
            ]
    part_b = format_series(
        "racks", timing.rack_counts, series,
        title="Fig. 7(b): mean market clearing time",
    )
    return part_a + "\n\n" + part_b
