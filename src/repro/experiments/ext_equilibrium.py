"""Extension experiment: equilibrium of the bidding game.

The paper defers equilibrium analysis of the demand-function game to
future work (Section III-B3).  This experiment runs the computational
version on a representative stage game — value curves drawn from the
Table I tenant classes, one shared PDU — and reports:

* whether round-robin best responses converge (and how fast);
* how the equilibrium clearing price and operator revenue compare with
  the "guideline" (non-strategic) bidding profile;
* who captures the surplus when everyone is strategic.

The stable empirical finding: dynamics converge in a handful of rounds;
strategic play shades quantities and lowers the clearing price somewhat,
transferring part of the operator's profit to tenants — while total
traded capacity stays close to the guideline profile (the market does
not unravel).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.reporting import format_kv, format_table
from repro.config import DEFAULT_SEED, make_rng
from repro.core.equilibrium import BestResponseSimulator, Bidder
from repro.economics.valuation import SpotValueCurve

__all__ = ["EquilibriumStudy", "run_equilibrium_study", "render_equilibrium_study"]


@dataclasses.dataclass
class EquilibriumStudy:
    """Results of the equilibrium extension experiment.

    Attributes:
        converged: Whether the dynamics reached a fixed point.
        rounds: Rounds to convergence (or the cap).
        guideline_price / equilibrium_price: Clearing price under
            non-strategic and equilibrium bids.
        guideline_revenue / equilibrium_revenue: Operator revenue rate.
        guideline_sold_w / equilibrium_sold_w: Capacity traded.
        guideline_surplus / equilibrium_surplus: Total tenant net
            benefit, $/h.
        strategies: Final per-bidder strategies.
    """

    converged: bool
    rounds: int
    guideline_price: float
    equilibrium_price: float
    guideline_revenue: float
    equilibrium_revenue: float
    guideline_sold_w: float
    equilibrium_sold_w: float
    guideline_surplus: float
    equilibrium_surplus: float
    strategies: dict[str, tuple[float, float, float]]


def _class_curve(scale: float, width: float, max_spot: float) -> SpotValueCurve:
    grid = np.linspace(0.0, max_spot, 101)
    gains = scale * (1.0 - np.exp(-grid / width))
    return SpotValueCurve.from_gain_samples(100.0, grid, gains)


def run_equilibrium_study(
    seed: int = DEFAULT_SEED,
    supply_w: float = 120.0,
    jitter: float = 0.15,
    max_rounds: int = 20,
) -> EquilibriumStudy:
    """Run the bidding-game study on a Table I-like bidder mix.

    Args:
        seed: Jitter seed for bidder diversity.
        supply_w: Spot capacity of the shared PDU.
        jitter: Relative diversity of bidder value scales.
        max_rounds: Best-response round cap.
    """
    rng = make_rng(seed)
    # Two sprinting-class and three opportunistic-class bidders (the
    # Table I PDU#2 mix), with jittered value scales.
    specs = [
        ("sprint-1", 0.030, 18.0),
        ("sprint-2", 0.026, 20.0),
        ("batch-1", 0.009, 30.0),
        ("batch-2", 0.008, 32.0),
        ("batch-3", 0.007, 35.0),
    ]
    bidders = [
        Bidder(
            rack_id=name,
            pdu_id="pdu",
            rack_cap_w=55.0,
            value_curve=_class_curve(
                scale * float(1 + rng.uniform(-jitter, jitter)), width, 55.0
            ),
        )
        for name, scale, width in specs
    ]
    simulator = BestResponseSimulator(
        bidders,
        {"pdu": supply_w},
        supply_w,
        price_anchors=(0.03, 0.06, 0.1, 0.15, 0.2, 0.3),
        shading_factors=(0.6, 0.8, 1.0),
    )
    anchors = sorted(
        {q for (q, _, _) in simulator.strategy_grid}
        | {q for (_, q, _) in simulator.strategy_grid}
    )
    guideline = {b.rack_id: (anchors[0], anchors[-1], 1.0) for b in bidders}
    guideline_benefits, guideline_price, guideline_sold = simulator.evaluate(
        guideline
    )
    guideline_result = simulator.engine.clear(
        simulator._rack_bids(guideline), {"pdu": supply_w}, supply_w
    )

    outcome = simulator.run(max_rounds=max_rounds)
    eq_result = simulator.engine.clear(
        simulator._rack_bids(outcome.strategies), {"pdu": supply_w}, supply_w
    )
    return EquilibriumStudy(
        converged=outcome.converged,
        rounds=outcome.rounds,
        guideline_price=guideline_price,
        equilibrium_price=outcome.prices[-1],
        guideline_revenue=guideline_result.revenue_rate,
        equilibrium_revenue=eq_result.revenue_rate,
        guideline_sold_w=guideline_sold,
        equilibrium_sold_w=outcome.total_granted_w[-1],
        guideline_surplus=float(sum(guideline_benefits.values())),
        equilibrium_surplus=float(sum(outcome.net_benefits.values())),
        strategies=outcome.strategies,
    )


def render_equilibrium_study(study: EquilibriumStudy) -> str:
    """Guideline vs equilibrium comparison table."""
    table = format_table(
        ["quantity", "guideline bids", "equilibrium bids"],
        [
            ["clearing price [$/kW/h]", study.guideline_price, study.equilibrium_price],
            ["operator revenue [$/h]", study.guideline_revenue, study.equilibrium_revenue],
            ["capacity sold [W]", study.guideline_sold_w, study.equilibrium_sold_w],
            ["tenant surplus [$/h]", study.guideline_surplus, study.equilibrium_surplus],
        ],
        title="Extension: bidding-game equilibrium vs guideline bidding",
    )
    summary = format_kv(
        {
            "converged": study.converged,
            "rounds": study.rounds,
        }
    )
    return table + "\n" + summary
