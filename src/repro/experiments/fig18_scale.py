"""Fig. 18: scaling to a hyper-scale facility (up to 1,000 tenants).

The paper replicates the Table I composition with up-to-±20% jitter on
workloads and cost models, scaling PDU/UPS capacities proportionally,
and finds the normalised results stabilise: profit +9.7%, performance
~1.4x on average, marginal cost.  We replicate with
:func:`repro.sim.scenario.scaled_scenario` (10 tenants per group; 1,000
tenants = 100 groups).
"""

from __future__ import annotations

import dataclasses

from repro.analysis.reporting import format_rounded_series
from repro.config import DEFAULT_SEED
from repro.experiments.common import (
    mean_cost_increase,
    mean_perf_improvement,
    parallel_map,
    run_comparison,
)
from repro.sim.scenario import scaled_scenario

__all__ = ["ScaleSweep", "run_fig18", "render_fig18"]

#: Table I groups per sweep point (10 tenants per group).
_DEFAULT_GROUPS = (1, 3, 10, 25, 50, 100)


@dataclasses.dataclass
class ScaleSweep:
    """Fig. 18's series.

    Attributes:
        tenant_counts: Total tenants per sweep point.
        profit_increase: Operator profit increase vs PowerCapped.
        cost_increase: Mean participating-tenant cost increase.
        perf_improvement: Mean tenant performance improvement.
    """

    tenant_counts: list[int]
    profit_increase: list[float]
    cost_increase: list[float]
    perf_improvement: list[float]


def _fig18_cell(payload) -> tuple[int, float, float, float]:
    """One facility-scale point (module-level: picklable)."""
    seed, slots, count = payload
    runs = run_comparison(
        scenario_factory=scaled_scenario,
        slots=slots,
        seed=seed,
        groups=count,
    )
    return (
        10 * count,
        runs.profit_increase(),
        mean_cost_increase(runs.spotdc, runs.powercapped),
        mean_perf_improvement(runs.spotdc, runs.powercapped),
    )


def run_fig18(
    seed: int = DEFAULT_SEED,
    slots: int = 1200,
    groups=_DEFAULT_GROUPS,
    jobs: int = 1,
) -> ScaleSweep:
    """Sweep the facility scale.

    Args:
        seed: Scenario seed.
        slots: Run length per point (shorter than the testbed sweeps —
            large facilities average over many tenants per slot).
        groups: Table I replication counts.
        jobs: Worker processes; each scale point is an independent,
            deterministic cell, so fan-out never changes a number.
    """
    rows = parallel_map(
        _fig18_cell, [(seed, slots, count) for count in groups], jobs=jobs
    )
    sweep = ScaleSweep([], [], [], [])
    for tenants, profit, cost, perf in rows:
        sweep.tenant_counts.append(tenants)
        sweep.profit_increase.append(profit)
        sweep.cost_increase.append(cost)
        sweep.perf_improvement.append(perf)
    return sweep


def render_fig18(sweep: ScaleSweep) -> str:
    """Paper-style text: normalised outcomes vs number of tenants."""
    return format_rounded_series(
        "tenants",
        sweep.tenant_counts,
        {
            "profit +%": ("percent", sweep.profit_increase),
            "tenant cost +%": ("percent", sweep.cost_increase),
            "perf x": ("ratio", sweep.perf_improvement),
        },
        title="Fig. 18: impact of the number of tenants",
    )
