"""Fig. 13: CDFs of market price and UPS-level power utilization.

* (a) The market prices paid by PDU#1's participating tenants:
  sprinting tenants bid and pay higher prices than opportunistic ones,
  with opportunistic tenants never above the amortised guaranteed-
  capacity rate (~US$0.2/kW/h).
* (b) UPS power normalised to the designed capacity: SpotDC shifts the
  whole distribution right of PowerCapped (higher infrastructure
  utilization), with only the pre-existing emergency mass above 1.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.reporting import format_kv, format_series
from repro.config import DEFAULT_SEED
from repro.experiments.common import LONG_SLOTS, run_comparison
from repro.sim.results import SimulationResult

__all__ = ["PricePowerCdfResult", "run_fig13", "render_fig13"]


@dataclasses.dataclass
class PricePowerCdfResult:
    """Fig. 13's two panels.

    Attributes:
        sprint_price_cdf: CDF of prices paid by sprinting racks (slots
            where they received a non-zero grant).
        opportunistic_price_cdf: Same for opportunistic racks.
        ups_cdf_spotdc: CDF of UPS power / UPS capacity under SpotDC.
        ups_cdf_powercapped: Same under PowerCapped.
        ups_capacity_w: The designed UPS capacity used to normalise.
        mean_utilization_gain: Mean UPS utilization gain of SpotDC.
    """

    sprint_price_cdf: EmpiricalCdf
    opportunistic_price_cdf: EmpiricalCdf
    ups_cdf_spotdc: EmpiricalCdf
    ups_cdf_powercapped: EmpiricalCdf
    ups_capacity_w: float
    mean_utilization_gain: float


def _paid_prices(result: SimulationResult, kind: str) -> np.ndarray:
    """Clearing prices in slots where racks of a tenant class got grants.

    Under locational pricing each rack pays its own PDU's price.
    """
    paid = []
    for tenant_id in result.participating_tenant_ids():
        if result.tenants[tenant_id].kind != kind:
            continue
        for rack_id in result.tenants[tenant_id].rack_ids:
            prices = result.collector.pdu_price_array(
                result.racks[rack_id].pdu_id
            )
            granted = result.collector.rack_granted_array(rack_id) > 0.5
            paid.append(prices[granted])
    return np.concatenate(paid) if paid else np.empty(0)


def run_fig13(
    seed: int = DEFAULT_SEED,
    slots: int = LONG_SLOTS,
    ups_capacity_w: float | None = None,
) -> PricePowerCdfResult:
    """Run the extended comparison and build the Fig. 13 CDFs.

    Args:
        seed: Scenario seed.
        slots: Run length (CDFs want a longer horizon).
        ups_capacity_w: Normalisation capacity; defaults to the
            testbed's designed UPS capacity (≈1370 W).
    """
    runs = run_comparison(slots=slots, seed=seed)
    capacity = ups_capacity_w or runs.spotdc.ups_capacity_w

    sprint_prices = _paid_prices(runs.spotdc, "sprinting")
    opportunistic_prices = _paid_prices(runs.spotdc, "opportunistic")
    ups_spotdc = runs.spotdc.collector.ups_power_array() / capacity
    ups_capped = runs.powercapped.collector.ups_power_array() / capacity
    return PricePowerCdfResult(
        sprint_price_cdf=EmpiricalCdf(sprint_prices),
        opportunistic_price_cdf=EmpiricalCdf(opportunistic_prices),
        ups_cdf_spotdc=EmpiricalCdf(ups_spotdc),
        ups_cdf_powercapped=EmpiricalCdf(ups_capped),
        ups_capacity_w=capacity,
        mean_utilization_gain=float(ups_spotdc.mean() - ups_capped.mean()),
    )


def render_fig13(result: PricePowerCdfResult, points: int = 9) -> str:
    """Paper-style text for both panels."""
    price_hi = max(result.sprint_price_cdf.max, result.opportunistic_price_cdf.max)
    price_xs = np.linspace(0.0, price_hi, points)
    part_a = format_series(
        "price [$/kW/h]",
        price_xs.round(3),
        {
            "sprinting CDF": result.sprint_price_cdf.evaluate_many(price_xs).round(3),
            "opportunistic CDF": result.opportunistic_price_cdf.evaluate_many(
                price_xs
            ).round(3),
        },
        title="Fig. 13(a): CDF of market prices paid, by tenant class",
    )
    util_xs = np.linspace(0.6, 1.05, points)
    part_b = format_series(
        "UPS power/capacity",
        util_xs.round(3),
        {
            "PowerCapped CDF": result.ups_cdf_powercapped.evaluate_many(
                util_xs
            ).round(3),
            "SpotDC CDF": result.ups_cdf_spotdc.evaluate_many(util_xs).round(3),
        },
        title="Fig. 13(b): CDF of UPS-level power utilization",
    )
    summary = format_kv(
        {
            "sprinting median price": result.sprint_price_cdf.quantile(0.5),
            "opportunistic median price": result.opportunistic_price_cdf.quantile(0.5),
            "mean UPS utilization gain": result.mean_utilization_gain,
        }
    )
    return part_a + "\n\n" + part_b + "\n" + summary
