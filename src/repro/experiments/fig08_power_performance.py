"""Fig. 8: power-performance relations at different workload levels.

The paper profiles Search-1 (p99 latency), Web (p90 latency), and
Count-1 (processing rate) against the rack power budget at selected
workload intensities.  We regenerate the same curves from the latency
and throughput models the tenants actually use.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.reporting import format_series
from repro.power.profiles import PowerPerformanceProfile
from repro.power.server import ServerPowerModel
from repro.power.throughput import ThroughputModel
from repro.workloads.hadoop import WORDCOUNT_DEFAULTS
from repro.workloads.search import make_search_latency_model
from repro.workloads.web import make_web_latency_model

__all__ = ["PowerPerformanceResult", "run_fig08", "render_fig08"]

#: Table I power scales: Search 145 W, Web 115 W, Count 125 W
#: subscriptions, with the scenario's idle/peak shape.
_SEARCH_POWER = ServerPowerModel(idle_w=0.45 * 145, peak_w=1.25 * 145)
_WEB_POWER = ServerPowerModel(idle_w=0.45 * 115, peak_w=1.25 * 115)
_COUNT_POWER = ServerPowerModel(idle_w=0.45 * 125, peak_w=1.55 * 125)


@dataclasses.dataclass
class PowerPerformanceResult:
    """Fig. 8's three panels, one profile per workload.

    Attributes:
        search: p99 latency (ms) vs power at three request rates.
        web: p90 latency (ms) vs power at three request rates.
        count: WordCount rate (MB/s) vs power.
    """

    search: PowerPerformanceProfile
    web: PowerPerformanceProfile
    count: PowerPerformanceProfile


def run_fig08(
    load_fractions=(0.4, 0.55, 0.7), samples: int = 40
) -> PowerPerformanceResult:
    """Profile the three Fig. 8 workloads.

    Args:
        load_fractions: Interactive workload intensities, as fractions
            of the full-power service rate.
        samples: Power-grid resolution.
    """
    search_model = make_search_latency_model(_SEARCH_POWER)
    web_model = make_web_latency_model(_WEB_POWER)
    count_model = ThroughputModel(
        power_model=_COUNT_POWER,
        rate_max=WORDCOUNT_DEFAULTS["rate_max_mb_per_watt"]
        * _COUNT_POWER.dynamic_range_w,
        scaling_exponent=WORDCOUNT_DEFAULTS["scaling_exponent"],
    )
    search = PowerPerformanceProfile.profile_latency(
        search_model,
        [f * search_model.mu_max_rps for f in load_fractions],
        samples=samples,
    )
    web = PowerPerformanceProfile.profile_latency(
        web_model,
        [f * web_model.mu_max_rps for f in load_fractions],
        samples=samples,
    )
    count = PowerPerformanceProfile.profile_throughput(count_model, samples=samples)
    return PowerPerformanceResult(search=search, web=web, count=count)


def render_fig08(result: PowerPerformanceResult, points: int = 8) -> str:
    """Paper-style text: one small table per panel."""
    sections = []
    for label, profile, unit in (
        ("Search-1 (p99 latency)", result.search, "ms"),
        ("Web (p90 latency)", result.web, "ms"),
        ("Count-1 (throughput)", result.count, "MB/s"),
    ):
        grid = profile.curves[0].power_w
        xs = np.linspace(grid[0], grid[-1], points)
        series = {}
        for curve in profile.curves:
            name = (
                f"load={curve.intensity:.0f}rps"
                if profile.metric == "latency_ms"
                else f"rate [{unit}]"
            )
            series[name] = [round(curve.performance_at(float(x)), 1) for x in xs]
        sections.append(
            format_series(
                "power [W]", xs.round(0), series,
                title=f"Fig. 8: {label} vs power budget",
            )
        )
    return "\n\n".join(sections)
