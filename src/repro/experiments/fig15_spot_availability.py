"""Fig. 15: impact of available spot capacity.

Keeping tenants unchanged and varying the operator's PDU
oversubscription (hence the available spot capacity), the paper shows:
the market price falls, the operator's extra profit rises, and tenants'
performance improves as more spot capacity becomes available.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.reporting import format_series
from repro.config import DEFAULT_SEED
from repro.experiments.common import (
    DEFAULT_SLOTS,
    mean_perf_improvement,
    run_comparison,
)

__all__ = ["SpotAvailabilitySweep", "run_fig15", "render_fig15"]

_DEFAULT_RATIOS = (1.12, 1.08, 1.05, 1.02, 1.0)


@dataclasses.dataclass
class SpotAvailabilitySweep:
    """Fig. 15's series.

    Attributes:
        spot_fractions: Measured average spot fraction per sweep point.
        profit_increase: Operator profit increase vs PowerCapped.
        perf_improvement: Mean tenant performance improvement.
        mean_price: Mean positive clearing price (falls with supply).
    """

    spot_fractions: list[float]
    profit_increase: list[float]
    perf_improvement: list[float]
    mean_price: list[float]


def run_fig15(
    seed: int = DEFAULT_SEED,
    slots: int = DEFAULT_SLOTS,
    oversubscription_ratios=_DEFAULT_RATIOS,
) -> SpotAvailabilitySweep:
    """Sweep spot availability under the default SpotDC market."""
    sweep = SpotAvailabilitySweep([], [], [], [])
    for ratio in oversubscription_ratios:
        runs = run_comparison(
            slots=slots, seed=seed, pdu_oversubscription=ratio
        )
        prices = runs.spotdc.price_series()
        positive = prices[prices > 0]
        sweep.spot_fractions.append(runs.spotdc.average_spot_fraction())
        sweep.profit_increase.append(runs.profit_increase())
        sweep.perf_improvement.append(
            mean_perf_improvement(runs.spotdc, runs.powercapped)
        )
        sweep.mean_price.append(float(positive.mean()) if positive.size else 0.0)
    return sweep


def render_fig15(sweep: SpotAvailabilitySweep) -> str:
    """Paper-style text: profit / performance / price vs availability."""
    xs = [round(100 * f, 1) for f in sweep.spot_fractions]
    return format_series(
        "avg spot [% of subscribed]",
        xs,
        {
            "profit +%": [round(100 * v, 2) for v in sweep.profit_increase],
            "perf x": [round(v, 3) for v in sweep.perf_improvement],
            "mean price [$/kW/h]": [round(v, 3) for v in sweep.mean_price],
        },
        title="Fig. 15: impact of available spot capacity",
    )
