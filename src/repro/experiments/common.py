"""Shared plumbing for the per-figure experiment runners.

Every runner follows the same pattern: build fresh scenarios from one
seed, run them under the relevant allocators, and reduce the results to
exactly the rows/series the paper's figure reports.  Run lengths default
to a multi-day window (a faithful, fast proxy for the paper's simulated
year — all reported quantities are rates/averages that stabilise within
days); pass larger ``slots`` for longer horizons.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from repro.config import DEFAULT_SEED
from repro.core.baselines import MaxPerfAllocator, PowerCappedAllocator
from repro.core.market import SpotDCAllocator
from repro.sim.engine import run_simulation
from repro.sim.results import SimulationResult
from repro.sim.scenario import testbed_scenario
from repro.sweep import parallel_map

__all__ = [
    "DEFAULT_SLOTS",
    "LONG_SLOTS",
    "TRACE_SLOTS",
    "ComparisonRuns",
    "parallel_map",
    "powercapped_baseline",
    "run_comparison",
    "sprinting_ids",
    "opportunistic_ids",
    "mean_perf_improvement",
    "mean_cost_increase",
]

#: Default horizon for headline comparisons: 2,500 two-minute slots
#: (~3.5 days), enough for every reported rate to stabilise.
DEFAULT_SLOTS = 2500

#: Longer horizon for CDF figures (about one simulated week).
LONG_SLOTS = 5000

#: The paper's 20-minute testbed execution: 10 slots of 120 s.
TRACE_SLOTS = 10


@dataclasses.dataclass
class ComparisonRuns:
    """SpotDC / PowerCapped / (optionally) MaxPerf runs of one scenario."""

    spotdc: SimulationResult
    powercapped: SimulationResult
    maxperf: SimulationResult | None = None

    def profit_increase(self) -> float:
        """Operator net-profit increase of SpotDC over PowerCapped."""
        return self.spotdc.operator_profit_increase_vs(self.powercapped)


def run_comparison(
    scenario_factory=None,
    slots: int = DEFAULT_SLOTS,
    seed: int = DEFAULT_SEED,
    include_maxperf: bool = False,
    fault_profile=None,
    **scenario_kwargs,
) -> ComparisonRuns:
    """Run one scenario under SpotDC, PowerCapped, and optionally MaxPerf.

    Args:
        scenario_factory: Callable building a fresh scenario from
            ``seed=..., **scenario_kwargs`` (default: the Table I
            testbed).  A fresh scenario is built per run because
            workload state is consumed by a run.
        slots: Simulation length.
        seed: Shared seed, so all runs see identical traces.
        include_maxperf: Also run the MaxPerf upper bound.
        fault_profile: Optional :class:`repro.resilience.FaultProfile`.
            The market runs face the full profile; the marketless
            PowerCapped baseline faces only its infrastructure faults
            (identical derating streams, no market channels to fail).
        **scenario_kwargs: Forwarded to the factory.
    """
    factory = scenario_factory or testbed_scenario
    baseline_profile = (
        fault_profile.derating_only() if fault_profile is not None else None
    )
    spotdc = run_simulation(
        factory(seed=seed, **scenario_kwargs),
        slots,
        allocator=SpotDCAllocator(),
        fault_profile=fault_profile,
    )
    powercapped = run_simulation(
        factory(seed=seed, **scenario_kwargs),
        slots,
        allocator=PowerCappedAllocator(),
        fault_profile=baseline_profile,
    )
    maxperf = None
    if include_maxperf:
        maxperf = run_simulation(
            factory(seed=seed, **scenario_kwargs),
            slots,
            allocator=MaxPerfAllocator(),
            fault_profile=fault_profile,
        )
    return ComparisonRuns(spotdc=spotdc, powercapped=powercapped, maxperf=maxperf)


@functools.lru_cache(maxsize=4)
def powercapped_baseline(
    seed: int = DEFAULT_SEED, slots: int = DEFAULT_SLOTS
) -> SimulationResult:
    """The testbed PowerCapped reference run, cached per process.

    Several sweeps compare every cell against the same no-market run.
    Caching it per ``(seed, slots)`` makes the serial path compute it
    once; parallel workers recompute it in their own processes, which is
    numerically identical because the run is deterministic in the seed.
    """
    return run_simulation(
        testbed_scenario(seed=seed), slots, allocator=PowerCappedAllocator()
    )


def sprinting_ids(result: SimulationResult) -> list[str]:
    """Sprinting tenants in a result, in roster order."""
    return [t for t in result.participating_tenant_ids()
            if result.tenants[t].kind == "sprinting"]


def opportunistic_ids(result: SimulationResult) -> list[str]:
    """Opportunistic tenants in a result, in roster order."""
    return [t for t in result.participating_tenant_ids()
            if result.tenants[t].kind == "opportunistic"]


def mean_perf_improvement(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """Mean performance improvement over all participating tenants."""
    ratios = [
        result.tenant_performance_improvement_vs(baseline, t)
        for t in result.participating_tenant_ids()
    ]
    return float(np.mean(ratios)) if ratios else 1.0


def mean_cost_increase(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """Mean total-cost increase over all participating tenants."""
    increases = [
        result.tenant_cost_increase_vs(baseline, t)
        for t in result.participating_tenant_ids()
    ]
    return float(np.mean(increases)) if increases else 0.0
