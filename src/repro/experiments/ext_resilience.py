"""Extension experiment: chaos sweep over fault intensity x fault class.

The paper's safety story (§III-C, §V-B2) is that spot capacity is
*forgeable on failure*: any communication loss degrades to the default
"no spot capacity", the operator can revoke grants at any time, and
spot capacity must introduce **no additional capacity emergencies** over
the no-spot baseline.  This experiment stress-tests that claim far
beyond the paper's fault model: for every fault class in
:data:`repro.resilience.FAULT_CLASSES` (independent losses, bursty
Gilbert-Elliott losses, delayed/stale grants, meter corruption,
PDU/UPS deratings, and all at once) at several intensities, it runs

* **SpotDC** under the full fault profile (with the degradation
  controller active), and
* **PowerCapped** under the *infrastructure faults only* — a marketless
  run cannot lose bids or grants, but it faces the byte-identical
  derating schedule (per-channel seeded streams make that exact);

and machine-checks the invariant: the SpotDC run must log **no more
UPS/PDU overload slots** than the identical PowerCapped run.  The books
must also still balance (revoked grants are credited, never billed).
"""

from __future__ import annotations

import dataclasses
import pathlib
import tempfile

import numpy as np

from repro.analysis.reporting import format_table
from repro.config import DEFAULT_SEED
from repro.core.baselines import PowerCappedAllocator
from repro.economics.settlement import build_all_invoices, reconcile
from repro.errors import OperatorCrash, SimulationError
from repro.experiments.common import parallel_map
from repro.recovery import latest_checkpoint
from repro.resilience import FAULT_CLASSES, FaultProfile
from repro.sim.engine import run_simulation
from repro.sim.results import SimulationResult
from repro.sim.scenario import testbed_scenario
from repro.telemetry import TelemetryConfig

__all__ = [
    "DuplicateNeutralityCell",
    "RecoveryCell",
    "ResilienceCell",
    "ResilienceStudy",
    "run_duplicate_neutrality_check",
    "run_recovery_check",
    "run_resilience_cell",
    "run_resilience_study",
    "render_resilience_study",
]

#: Default fault intensities swept by the study.
DEFAULT_INTENSITIES = (0.05, 0.25)

#: Default horizon: long enough for bursts, episodes, and derating
#: windows to occur many times over, short enough for CI smoke runs.
DEFAULT_SLOTS = 400


@dataclasses.dataclass(frozen=True)
class ResilienceCell:
    """One (fault class, intensity) cell of the chaos sweep.

    Attributes:
        fault_class: Name from :data:`repro.resilience.FAULT_CLASSES`.
        intensity: Sweep intensity in [0, 1].
        fault_count: Total injected-fault records in the SpotDC run.
        lost_bids / lost_grants / delayed_grants / stale_applied /
            meter_faults / deratings: Per-kind fault counts.
        revocations: Degradation-control grant revocations.
        emergency_caps: Escalations after revocation was exhausted.
        credited_dollars: Settlement credits for revoked grants.
        spot_overload_slots / capped_overload_slots: Distinct UPS+PDU
            overload slots in the SpotDC and PowerCapped runs.
        invariant_ok: Whether SpotDC logged no more overload slots than
            PowerCapped (the §V-B2 invariant) at both levels.
        spot_revenue: SpotDC spot revenue over the run, dollars.
    """

    fault_class: str
    intensity: float
    fault_count: int
    lost_bids: int
    lost_grants: int
    delayed_grants: int
    stale_applied: int
    meter_faults: int
    deratings: int
    revocations: int
    emergency_caps: int
    credited_dollars: float
    spot_overload_slots: int
    capped_overload_slots: int
    invariant_ok: bool
    spot_revenue: float


@dataclasses.dataclass(frozen=True)
class RecoveryCell:
    """The crash-at-slot-k + resume case of the chaos sweep.

    A run is killed mid-flight by an injected
    :class:`~repro.resilience.faults.CrashFault`, restored from its last
    checkpoint, and run to completion; the recovery invariant is that
    the stitched run is *indistinguishable* from the same-seed run that
    never crashed.

    Attributes:
        fault_class: The fault class active alongside the crash.
        intensity: Its sweep intensity.
        crash_slot: Slot at which the run was killed.
        resumed_slot: First slot replayed by the resumed run.
        trace_identical: Whether the resumed run's exported JSONL trace
            is byte-identical to the uninterrupted run's.
        result_identical: Whether prices, UPS power, and revenue match
            the uninterrupted run exactly.
    """

    fault_class: str
    intensity: float
    crash_slot: int
    resumed_slot: int
    trace_identical: bool
    result_identical: bool

    @property
    def ok(self) -> bool:
        """The byte-identical-recovery invariant."""
        return self.trace_identical and self.result_identical


@dataclasses.dataclass(frozen=True)
class DuplicateNeutralityCell:
    """The at-least-once-delivery leg of the chaos sweep.

    A run under the ``"duplicate"`` fault class (tenant bundles randomly
    delivered twice) is compared against the clean same-seed run.  The
    invariant is *settlement neutrality*: idempotent ingestion absorbs
    every duplicate, so the spot price series, spot revenue, and every
    tenant's invoice total must be **exactly** equal — a duplicate that
    moves one cent has double-billed somebody.

    Attributes:
        intensity: Duplicate-delivery probability swept.
        duplicates_injected: ``bid_duplicated`` fault records in the
            duplicate run (must be > 0 for the check to mean anything).
        revenue_equal: Spot revenue identical between the two runs.
        prices_equal: Spot price series identical between the two runs.
        invoices_equal: Every tenant's invoice total identical.
    """

    intensity: float
    duplicates_injected: int
    revenue_equal: bool
    prices_equal: bool
    invoices_equal: bool

    @property
    def ok(self) -> bool:
        """Duplicates fired and changed nothing."""
        return (
            self.duplicates_injected > 0
            and self.revenue_equal
            and self.prices_equal
            and self.invoices_equal
        )


@dataclasses.dataclass
class ResilienceStudy:
    """Results of the chaos sweep.

    Attributes:
        cells: One entry per (fault class, intensity) pair.
        seed: Seed every run shared.
        slots: Horizon of every run.
        recovery: The crash-and-resume recovery check (``None`` when the
            study was run without it).
        duplicate_neutrality: The settlement-neutrality check for
            duplicate deliveries (``None`` when skipped).
        edr: The grid-event (EDR shock) leg: SpotDC under a capacity
            shock must log no more overload slots than PowerCapped
            under the same shock, during *and after* the event window
            (``None`` when skipped).
    """

    cells: list[ResilienceCell]
    seed: int
    slots: int
    recovery: RecoveryCell | None = None
    duplicate_neutrality: DuplicateNeutralityCell | None = None
    edr: "object | None" = None

    def violations(self) -> list[ResilienceCell]:
        """Cells in which SpotDC logged more overload slots than the
        no-spot baseline (must be empty)."""
        return [c for c in self.cells if not c.invariant_ok]


def _overloads(result: SimulationResult) -> tuple[int, int]:
    """(UPS, PDU) distinct overload slot counts for one run."""
    return (
        result.emergencies.overload_slot_count("ups"),
        result.emergencies.overload_slot_count("pdu"),
    )


def run_resilience_cell(
    fault_class: str,
    intensity: float,
    seed: int = DEFAULT_SEED,
    slots: int = DEFAULT_SLOTS,
) -> ResilienceCell:
    """Run one chaos cell: SpotDC vs PowerCapped under one fault profile.

    Both runs are built from the same scenario seed (identical
    workloads) and the same fault seed; the PowerCapped baseline keeps
    only the profile's infrastructure faults, which per-channel stream
    derivation makes byte-identical to the SpotDC run's.
    """
    profile = FaultProfile.named(fault_class, intensity)
    profile = dataclasses.replace(profile, seed=seed)
    spotdc = run_simulation(
        testbed_scenario(seed=seed), slots, fault_profile=profile
    )
    capped = run_simulation(
        testbed_scenario(seed=seed),
        slots,
        allocator=PowerCappedAllocator(),
        fault_profile=profile.derating_only(),
    )
    reconcile(spotdc)
    spot_ups, spot_pdu = _overloads(spotdc)
    capped_ups, capped_pdu = _overloads(capped)
    log = spotdc.faults
    actions = spotdc.control_actions
    return ResilienceCell(
        fault_class=fault_class,
        intensity=intensity,
        fault_count=log.count() if log is not None else 0,
        lost_bids=log.lost_bids if log is not None else 0,
        lost_grants=log.lost_grants if log is not None else 0,
        delayed_grants=log.count("grant_delayed") if log is not None else 0,
        stale_applied=log.count("stale_grant_applied") if log is not None else 0,
        meter_faults=(
            log.count("meter_stuck") + log.count("meter_dropout")
            if log is not None
            else 0
        ),
        deratings=log.count("derating_start") if log is not None else 0,
        revocations=sum(1 for a in actions if a.kind == "revoke"),
        emergency_caps=sum(1 for a in actions if a.kind == "emergency_cap"),
        credited_dollars=sum(n.dollars for n in spotdc.credit_notes),
        spot_overload_slots=spot_ups + spot_pdu,
        capped_overload_slots=capped_ups + capped_pdu,
        invariant_ok=(spot_ups <= capped_ups and spot_pdu <= capped_pdu),
        spot_revenue=spotdc.total_spot_revenue(),
    )


def run_recovery_check(
    seed: int = DEFAULT_SEED,
    slots: int = 120,
    crash_at: int | None = None,
    fault_class: str = "chaos",
    intensity: float = 0.25,
    checkpoint_every: int = 10,
) -> RecoveryCell:
    """Crash a run at slot k, resume it, and compare against never crashing.

    Three runs over one scenario seed: (1) the victim, checkpointing
    every ``checkpoint_every`` slots until an injected
    :class:`~repro.resilience.faults.CrashFault` kills it at
    ``crash_at``; (2) its resumption from the latest checkpoint; (3) the
    uninterrupted reference under the same profile minus the crash (the
    ``crash`` channel draws no randomness, so every other fault stream
    is byte-identical).  The check is exact: the resumed run's exported
    JSONL trace must equal the reference's byte for byte, and the
    numeric results must match with no tolerance.
    """
    crash_at = crash_at if crash_at is not None else max(2, 2 * slots // 3)
    base = dataclasses.replace(FaultProfile.named(fault_class, intensity), seed=seed)
    crashing = dataclasses.replace(base, crash_at_slot=crash_at)
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        ckpt_dir = tmp / "ckpt"
        try:
            run_simulation(
                testbed_scenario(seed=seed),
                slots,
                fault_profile=crashing,
                telemetry=TelemetryConfig(out_dir=tmp / "crashed", label="run"),
                checkpoint_every=checkpoint_every,
                checkpoint_dir=ckpt_dir,
            )
        except OperatorCrash:
            pass
        else:
            raise SimulationError(
                f"injected crash at slot {crash_at} never fired"
            )
        checkpoint = latest_checkpoint(ckpt_dir)
        if checkpoint is None:
            raise SimulationError("crashed run left no checkpoint behind")
        resumed_slot = int(checkpoint.stem.split("_")[1]) + 1
        # The scenario/telemetry arguments here only shape the engine
        # that the checkpointed state *replaces*; the resumed run keeps
        # exporting into the crashed run's telemetry directory.
        resumed = run_simulation(
            testbed_scenario(seed=seed),
            slots,
            fault_profile=crashing,
            resume_from=checkpoint,
        )
        reference = run_simulation(
            testbed_scenario(seed=seed),
            slots,
            fault_profile=base,
            telemetry=TelemetryConfig(out_dir=tmp / "reference", label="run"),
        )
        trace_identical = (
            (tmp / "crashed" / "run_trace.jsonl").read_bytes()
            == (tmp / "reference" / "run_trace.jsonl").read_bytes()
        )
    result_identical = (
        np.array_equal(resumed.price_series(), reference.price_series())
        and np.array_equal(
            resumed.ups_power_series(), reference.ups_power_series()
        )
        and resumed.total_spot_revenue() == reference.total_spot_revenue()
    )
    return RecoveryCell(
        fault_class=fault_class,
        intensity=intensity,
        crash_slot=crash_at,
        resumed_slot=resumed_slot,
        trace_identical=trace_identical,
        result_identical=result_identical,
    )


def run_duplicate_neutrality_check(
    seed: int = DEFAULT_SEED,
    slots: int = 200,
    intensity: float = 0.3,
) -> DuplicateNeutralityCell:
    """Machine-check that duplicate bid deliveries are settlement-neutral.

    Runs SpotDC twice over one scenario seed: once under the
    ``"duplicate"`` fault class (bundles randomly redelivered) and once
    clean.  The duplicate channel draws from its own per-channel random
    stream and every extra copy must be absorbed by the market's
    idempotent ingestion, so the comparison is *exact* — no tolerance.
    """
    profile = dataclasses.replace(
        FaultProfile.named("duplicate", intensity), seed=seed
    )
    duplicated = run_simulation(
        testbed_scenario(seed=seed), slots, fault_profile=profile
    )
    clean = run_simulation(testbed_scenario(seed=seed), slots)
    reconcile(duplicated)
    dup_invoices = {i.tenant_id: i for i in build_all_invoices(duplicated)}
    clean_invoices = {i.tenant_id: i for i in build_all_invoices(clean)}
    return DuplicateNeutralityCell(
        intensity=intensity,
        duplicates_injected=(
            duplicated.faults.count("bid_duplicated")
            if duplicated.faults is not None
            else 0
        ),
        revenue_equal=(
            duplicated.total_spot_revenue() == clean.total_spot_revenue()
        ),
        prices_equal=bool(
            np.array_equal(
                duplicated.price_series(), clean.price_series()
            )
        ),
        invoices_equal=(
            set(dup_invoices) == set(clean_invoices)
            and all(
                dup_invoices[t].total == clean_invoices[t].total
                for t in dup_invoices
            )
        ),
    )


def _study_cell(payload) -> ResilienceCell:
    """One chaos cell as a picklable payload (for ``parallel_map``)."""
    fault_class, intensity, seed, slots = payload
    return run_resilience_cell(fault_class, intensity, seed, slots)


def run_resilience_study(
    seed: int = DEFAULT_SEED,
    slots: int = DEFAULT_SLOTS,
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    fault_classes: tuple[str, ...] = FAULT_CLASSES,
    strict: bool = True,
    with_recovery: bool = True,
    with_edr: bool = True,
    jobs: int = 1,
) -> ResilienceStudy:
    """Sweep fault class x intensity and machine-check the invariant.

    Args:
        seed: Shared scenario/fault seed.
        slots: Horizon per run.
        intensities: Fault intensities to sweep (the ``"none"`` control
            cell runs once regardless).
        fault_classes: Fault classes to include.
        strict: Raise :class:`~repro.errors.SimulationError` on any
            invariant violation (the machine check); pass ``False`` to
            inspect violations in the returned study instead.
        with_recovery: Also run the crash-and-resume recovery check
            (byte-identical trace and result after restoring from a
            checkpoint).
        with_edr: Also run the grid-event leg: an EDR capacity shock
            (see :mod:`repro.experiments.ext_edr`) must introduce no
            additional overload slots over the same-shock PowerCapped
            baseline, during or after the event window, and must reach
            compliance within the profile's budget.
        jobs: Worker processes for the chaos cells (each cell is an
            independent, seed-deterministic pair of runs).  The recovery
            check stays serial — it is one stateful crash/resume story,
            not a grid.

    The sweep always runs the duplicate-delivery settlement-neutrality
    leg when the ``"duplicate"`` class is in scope: duplicates must fire
    and must change no price, no revenue, and no invoice total.
    """
    payloads = []
    for fault_class in fault_classes:
        levels = (0.0,) if fault_class == "none" else intensities
        for intensity in levels:
            payloads.append((fault_class, intensity, seed, slots))
    cells = parallel_map(_study_cell, payloads, jobs=jobs)
    recovery = run_recovery_check(seed=seed) if with_recovery else None
    duplicate_neutrality = (
        run_duplicate_neutrality_check(
            seed=seed, slots=slots, intensity=max(intensities)
        )
        if "duplicate" in fault_classes or "chaos" in fault_classes
        else None
    )
    edr = None
    if with_edr:
        from repro.experiments.ext_edr import run_edr_shock_check

        edr = run_edr_shock_check(seed=seed, slots=min(slots, 200))
    study = ResilienceStudy(
        cells=cells,
        seed=seed,
        slots=slots,
        recovery=recovery,
        duplicate_neutrality=duplicate_neutrality,
        edr=edr,
    )
    violations = study.violations()
    if strict and violations:
        worst = violations[0]
        raise SimulationError(
            f"resilience invariant violated: {len(violations)} cell(s) "
            f"logged more overload slots under SpotDC than PowerCapped "
            f"(first: {worst.fault_class}@{worst.intensity} — "
            f"{worst.spot_overload_slots} vs {worst.capped_overload_slots})"
        )
    if strict and recovery is not None and not recovery.ok:
        raise SimulationError(
            f"recovery invariant violated: crash at slot "
            f"{recovery.crash_slot}, resume from slot "
            f"{recovery.resumed_slot} — trace_identical="
            f"{recovery.trace_identical}, result_identical="
            f"{recovery.result_identical}"
        )
    if strict and edr is not None and not (
        edr.overloads_ok and edr.compliance_ok
    ):
        raise SimulationError(
            f"EDR-shock invariant violated: overload slots during "
            f"{edr.spot_overloads_during} (spot) vs "
            f"{edr.capped_overloads_during} (capped), after "
            f"{edr.spot_overloads_after} vs {edr.capped_overloads_after}, "
            f"compliance_violations={edr.compliance_violations}"
        )
    d = duplicate_neutrality
    if strict and d is not None and not d.ok:
        raise SimulationError(
            f"duplicate-delivery invariant violated at intensity "
            f"{d.intensity}: {d.duplicates_injected} duplicates injected, "
            f"revenue_equal={d.revenue_equal}, prices_equal="
            f"{d.prices_equal}, invoices_equal={d.invoices_equal}"
        )
    return study


def render_resilience_study(study: ResilienceStudy) -> str:
    """The chaos-sweep table, one row per cell."""
    rows = []
    for c in study.cells:
        rows.append(
            [
                c.fault_class,
                c.intensity,
                c.fault_count,
                c.lost_bids,
                c.lost_grants,
                c.stale_applied,
                c.deratings,
                c.revocations,
                c.emergency_caps,
                c.credited_dollars,
                c.spot_overload_slots,
                c.capped_overload_slots,
                "ok" if c.invariant_ok else "VIOLATED",
            ]
        )
    table = format_table(
        [
            "fault class", "intensity", "faults", "lost bids", "lost grants",
            "stale applied", "deratings", "revocations", "escalations",
            "credited [$]", "SpotDC ovl slots", "PowerCapped ovl slots",
            "invariant",
        ],
        rows,
        title=(
            f"Chaos sweep: no additional emergencies under faults "
            f"(seed {study.seed}, {study.slots} slots)"
        ),
    )
    n_bad = len(study.violations())
    verdict = (
        "invariant holds in every cell: SpotDC logged no more UPS/PDU "
        "overload slots than the identical PowerCapped run"
        if n_bad == 0
        else f"INVARIANT VIOLATED in {n_bad} cell(s)"
    )
    lines = [table, verdict]
    d = study.duplicate_neutrality
    if d is not None:
        status = "ok" if d.ok else "VIOLATED"
        lines.append(
            f"duplicate-delivery check (p={d.intensity}): "
            f"{d.duplicates_injected} duplicates injected, settlement "
            f"totals unchanged: {d.revenue_equal and d.invoices_equal} "
            f"[{status}]"
        )
    r = study.recovery
    if r is not None:
        status = "ok" if r.ok else "VIOLATED"
        lines.append(
            f"recovery check ({r.fault_class}@{r.intensity}): crash at "
            f"slot {r.crash_slot}, resumed from slot {r.resumed_slot} — "
            f"trace byte-identical: {r.trace_identical}, result "
            f"identical: {r.result_identical} [{status}]"
        )
    e = study.edr
    if e is not None:
        ok = e.overloads_ok and e.compliance_ok
        status = "ok" if ok else "VIOLATED"
        lines.append(
            f"EDR-shock check ({e.name}): {e.event_slots} shocked slots, "
            f"{e.shed_watts:.1f} W shed, overload slots during/after "
            f"{e.spot_overloads_during}/{e.spot_overloads_after} (spot) vs "
            f"{e.capped_overloads_during}/{e.capped_overloads_after} "
            f"(capped), compliance lag {e.compliance_max_lag} [{status}]"
        )
    return "\n".join(lines)
