"""Extension experiment: predictor x risk quantile x trace volatility.

Fig. 17 studies one axis of the prediction problem: scale the paper's
current-draw headroom rule down by a fixed under-prediction factor and
observe that profit and performance barely move.  This experiment
extends that single line into a frontier over :mod:`repro.forecast`:
every forecasting signal (current draw, rolling max, moving average,
AR(1), quantile ensemble) runs at three *risk levels* on both the calm
and the high-volatility "Other" testbed trace, and each cell reports
profit increase, tenant performance, mean released spot capacity, and
capacity emergencies against the matching PowerCapped baseline.

A risk level means the same thing across signals while mapping onto
each signal's native knob:

* ``current_draw`` has no confidence band, so a level is the paper's
  under-prediction factor (:data:`LEVEL_FACTORS`; 0.15 -> x0.85) —
  making the current-draw column of this frontier *exactly* Fig. 17's
  (1.0, 0.85, 0.75) points, which the strict machine check enforces by
  re-running :func:`~repro.experiments.fig17_underprediction.run_fig17`
  and comparing float-for-float.
* Banded signals release at a risk quantile (:data:`LEVEL_QUANTILES`;
  level 0 releases the median, higher levels release conservative
  low quantiles of the band).

Two further machine checks run on the grid.  Every cell's released
spot capacity must stay within the usable (margin-adjusted) UPS
capacity.  The no-extra-emergencies claim (§V-B2) is enforced where
the paper makes it — on the calm testbed trace, for the
``current_draw`` rule at every level and for *every* signal at the
most conservative level.  Everything else is the frontier's payload,
not an invariant: on the high-volatility trace even the paper's own
rule takes occasional emergencies over a long enough horizon, and
releasing an optimistic signal's band median (q = 0.5) genuinely
trades extra emergencies for extra released capacity.  Those cells
render as ``overcommit``; quantifying that trade is the point of the
experiment.
"""

from __future__ import annotations

import dataclasses
import functools

from repro.analysis.reporting import format_table
from repro.config import DEFAULT_SEED
from repro.core.baselines import PowerCappedAllocator
from repro.errors import SimulationError
from repro.experiments.common import mean_perf_improvement, parallel_map
from repro.experiments.fig17_underprediction import run_fig17
from repro.forecast import SIGNAL_NAMES, PredictionProfile
from repro.sim.engine import run_simulation
from repro.sim.results import SimulationResult
from repro.sim.scenario import testbed_scenario
from repro.telemetry.exporters import write_summary_json

__all__ = [
    "LEVEL_FACTORS",
    "LEVEL_QUANTILES",
    "RISK_LEVELS",
    "PredictionRiskCell",
    "PredictionRiskStudy",
    "run_prediction_risk",
    "render_prediction_risk",
    "write_prediction_risk_summary",
]

#: Risk levels swept, as "fraction under-predicted" (Fig. 17's x-axis).
RISK_LEVELS = (0.0, 0.15, 0.25)

#: Level -> under-prediction factor for the bandless current-draw
#: signal.  Literal values, not ``1 - level``: Fig. 17 runs with the
#: factors 0.85 and 0.75 exactly, and ``1.0 - 0.15 != 0.85`` in floats.
LEVEL_FACTORS = {0.0: 1.0, 0.15: 0.85, 0.25: 0.75}

#: Level -> release quantile for the banded signals.  Level 0 releases
#: the band median (the point forecast, risk-neutral); higher levels
#: release lower quantiles of the band (more conservative).
LEVEL_QUANTILES = {0.0: 0.5, 0.15: 0.25, 0.25: 0.05}

#: Default horizon: long enough for every signal's window and the
#: ensemble's innovation history to fill many times over, short enough
#: for a 5 x 3 x 2 grid to stay CI-friendly.
DEFAULT_SLOTS = 400


@dataclasses.dataclass(frozen=True)
class PredictionRiskCell:
    """One (signal, risk level, volatility) cell of the frontier.

    Attributes:
        signal: Forecasting signal name from
            :data:`repro.forecast.SIGNAL_NAMES`.
        risk_level: Sweep level from :data:`RISK_LEVELS`.
        under_prediction_factor: The factor the cell ran with (bandless
            signals; ``None`` for banded ones).
        risk_quantile: The release quantile the cell ran with (banded
            signals; ``None`` for ``current_draw``).
        volatile: Whether the high-volatility "Other" trace was used.
        profit_increase: Operator profit increase vs the matching
            PowerCapped baseline.
        perf_improvement: Mean tenant performance improvement vs it.
        mean_released_w: Mean UPS spot capacity released per slot
            (slot 0, which always releases nothing, excluded).
        max_released_w: Largest single-slot release of the run.
        usable_capacity_w: Margin-adjusted UPS capacity the release is
            never allowed to exceed.
        emergencies: Capacity-emergency events logged by the run.
        baseline_emergencies: Same count for the PowerCapped baseline.
    """

    signal: str
    risk_level: float
    under_prediction_factor: float | None
    risk_quantile: float | None
    volatile: bool
    profit_increase: float
    perf_improvement: float
    mean_released_w: float
    max_released_w: float
    usable_capacity_w: float
    emergencies: int
    baseline_emergencies: int

    @property
    def within_capacity(self) -> bool:
        """Released spot capacity never exceeded the usable capacity."""
        return self.max_released_w <= self.usable_capacity_w + 1e-6

    @property
    def no_extra_emergencies(self) -> bool:
        """The run logged no more emergencies than its baseline."""
        return self.emergencies <= self.baseline_emergencies


@dataclasses.dataclass
class PredictionRiskStudy:
    """The frontier: one cell per (signal, risk level, volatility).

    Attributes:
        cells: Cells in sweep order (signal-major, then level, then
            volatility).
        seed: Shared scenario seed.
        slots: Horizon of every run.
        fig17_profit / fig17_perf: The Fig. 17 reference column re-run
            at this study's factors (``None`` when the current-draw
            column was not in scope).
    """

    cells: list[PredictionRiskCell]
    seed: int
    slots: int
    fig17_profit: list[float] | None = None
    fig17_perf: list[float] | None = None

    def column(
        self, signal: str, volatile: bool = False
    ) -> list[PredictionRiskCell]:
        """One signal's cells at one volatility, in risk-level order."""
        return [
            c for c in self.cells
            if c.signal == signal and c.volatile == volatile
        ]

    def violations(self) -> list[PredictionRiskCell]:
        """Cells breaking a machine check (must be empty).

        Capacity is checked everywhere; no-extra-emergencies only where
        the paper claims it — on the calm trace, for the
        ``current_draw`` column and the most conservative level of
        every signal.  Volatile-trace and intermediate cells may
        legitimately trade emergencies for released capacity; that
        trade-off *is* the frontier.
        """
        if not self.cells:
            return []
        top = max(c.risk_level for c in self.cells)
        out = []
        for c in self.cells:
            safety_required = not c.volatile and (
                c.signal == "current_draw" or c.risk_level == top
            )
            if not c.within_capacity:
                out.append(c)
            elif safety_required and not c.no_extra_emergencies:
                out.append(c)
        return out


def _profile_for(signal: str, level: float) -> PredictionProfile:
    """The :class:`PredictionProfile` one (signal, level) cell runs with."""
    if signal == "current_draw":
        return PredictionProfile(
            signal=signal, under_prediction_factor=LEVEL_FACTORS[level]
        )
    return PredictionProfile(signal=signal, risk_quantile=LEVEL_QUANTILES[level])


@functools.lru_cache(maxsize=8)
def _volatility_baseline(
    seed: int, slots: int, volatile: bool
) -> SimulationResult:
    """The PowerCapped reference run per volatility, cached per process.

    :func:`repro.experiments.common.powercapped_baseline` is pinned to
    the calm testbed; the frontier also needs the volatile-trace
    counterpart, and every cell of one volatility shares it.
    """
    return run_simulation(
        testbed_scenario(seed=seed, volatile_other=volatile),
        slots,
        allocator=PowerCappedAllocator(),
    )


def _risk_cell(payload) -> PredictionRiskCell:
    """One frontier cell (module-level: picklable for ``parallel_map``)."""
    seed, slots, signal, level, volatile = payload
    profile = _profile_for(signal, level)
    scenario = dataclasses.replace(
        testbed_scenario(seed=seed, volatile_other=volatile),
        prediction=profile,
    )
    result = run_simulation(scenario, slots)
    baseline = _volatility_baseline(seed, slots, volatile)
    released = result.collector.forecast_ups_array()
    steady = released[1:] if released.size > 1 else released
    return PredictionRiskCell(
        signal=signal,
        risk_level=level,
        under_prediction_factor=(
            profile.under_prediction_factor
            if signal == "current_draw"
            else None
        ),
        risk_quantile=profile.risk_quantile,
        volatile=volatile,
        profit_increase=result.operator_profit_increase_vs(baseline),
        perf_improvement=mean_perf_improvement(result, baseline),
        mean_released_w=float(steady.mean()) if steady.size else 0.0,
        max_released_w=float(released.max()) if released.size else 0.0,
        usable_capacity_w=(
            result.ups_capacity_w * (1.0 - profile.safety_margin_fraction)
        ),
        emergencies=len(result.emergencies.events),
        baseline_emergencies=len(baseline.emergencies.events),
    )


def run_prediction_risk(
    seed: int = DEFAULT_SEED,
    slots: int = DEFAULT_SLOTS,
    signals: tuple[str, ...] = SIGNAL_NAMES,
    risk_levels: tuple[float, ...] = RISK_LEVELS,
    volatilities: tuple[bool, ...] = (False, True),
    strict: bool = True,
    jobs: int = 1,
) -> PredictionRiskStudy:
    """Sweep signal x risk level x volatility and machine-check the frontier.

    Args:
        seed: Shared scenario seed (identical workload traces per
            volatility across all cells).
        slots: Horizon per run.
        signals: Signal names to sweep (default: all registered).
        risk_levels: Levels from :data:`RISK_LEVELS` (each must have a
            factor and a quantile mapping).
        volatilities: Which "Other"-trace volatilities to include.
        strict: Raise :class:`~repro.errors.SimulationError` when a cell
            releases above usable capacity, a safety-required cell (on
            the calm trace: the current-draw column, or any signal at
            the most conservative level) logs more emergencies than its
            baseline, or the current-draw column diverges from the
            re-run Fig. 17 reference; pass ``False`` to inspect the
            returned study instead.
        jobs: Worker processes for the cells (each is an independent,
            seed-deterministic run; results are identical at any job
            count).
    """
    unknown = [lv for lv in risk_levels if lv not in LEVEL_FACTORS]
    if unknown:
        known = ", ".join(str(lv) for lv in RISK_LEVELS)
        raise SimulationError(
            f"unknown risk level(s) {unknown!r} (known: {known})"
        )
    payloads = [
        (seed, slots, signal, level, volatile)
        for signal in signals
        for level in risk_levels
        for volatile in volatilities
    ]
    cells = parallel_map(_risk_cell, payloads, jobs=jobs)
    fig17_profit = fig17_perf = None
    if "current_draw" in signals and False in volatilities:
        factors = tuple(LEVEL_FACTORS[lv] for lv in risk_levels)
        reference = run_fig17(seed=seed, slots=slots, factors=factors, jobs=jobs)
        fig17_profit = reference.profit_increase
        fig17_perf = reference.perf_improvement
    study = PredictionRiskStudy(
        cells=cells,
        seed=seed,
        slots=slots,
        fig17_profit=fig17_profit,
        fig17_perf=fig17_perf,
    )
    if strict:
        violations = study.violations()
        if violations:
            worst = violations[0]
            raise SimulationError(
                f"prediction-risk invariant violated in "
                f"{len(violations)} cell(s) (first: {worst.signal}@"
                f"{worst.risk_level} volatile={worst.volatile} — "
                f"released {worst.max_released_w:.1f} W of "
                f"{worst.usable_capacity_w:.1f} W usable, "
                f"{worst.emergencies} vs {worst.baseline_emergencies} "
                f"baseline emergencies)"
            )
        if fig17_profit is not None:
            column = study.column("current_draw", volatile=False)
            exact = (
                [c.profit_increase for c in column] == fig17_profit
                and [c.perf_improvement for c in column] == fig17_perf
            )
            if not exact:
                raise SimulationError(
                    "current-draw column diverged from the Fig. 17 "
                    f"reference: profit "
                    f"{[c.profit_increase for c in column]} vs "
                    f"{fig17_profit}, perf "
                    f"{[c.perf_improvement for c in column]} vs "
                    f"{fig17_perf}"
                )
    return study


def render_prediction_risk(study: PredictionRiskStudy) -> str:
    """The frontier table plus the machine-check verdict lines."""
    violating = {id(c) for c in study.violations()}
    rows = []
    for c in study.cells:
        knob = (
            f"factor {c.under_prediction_factor:g}"
            if c.under_prediction_factor is not None
            else f"q={c.risk_quantile:g}"
        )
        rows.append(
            [
                c.signal,
                c.risk_level,
                knob,
                "volatile" if c.volatile else "calm",
                100 * c.profit_increase,
                c.perf_improvement,
                c.mean_released_w,
                c.emergencies,
                c.baseline_emergencies,
                (
                    "VIOLATED"
                    if id(c) in violating
                    else "ok"
                    if c.no_extra_emergencies
                    else "overcommit"
                ),
            ]
        )
    table = format_table(
        [
            "signal", "risk level", "knob", "trace", "profit +%", "perf x",
            "released [W]", "emerg", "base emerg", "checks",
        ],
        rows,
        title=(
            f"Prediction-risk frontier: signal x risk x volatility "
            f"(seed {study.seed}, {study.slots} slots)"
        ),
    )
    n_bad = len(study.violations())
    lines = [
        table,
        (
            "capacity check holds everywhere; no-extra-emergencies holds "
            "on the calm trace for the current-draw column and at the "
            "most conservative level of every signal"
            if n_bad == 0
            else f"CHECKS VIOLATED in {n_bad} cell(s)"
        ),
    ]
    if study.fig17_profit is not None:
        column = study.column("current_draw", volatile=False)
        exact = (
            [c.profit_increase for c in column] == study.fig17_profit
            and [c.perf_improvement for c in column] == study.fig17_perf
        )
        lines.append(
            "current-draw column reproduces Fig. 17 exactly "
            f"(factors {[LEVEL_FACTORS[c.risk_level] for c in column]}): "
            f"{'ok' if exact else 'DIVERGED'}"
        )
    return "\n".join(lines)


def write_prediction_risk_summary(study: PredictionRiskStudy, path):
    """Archive the frontier as a validated summary-JSON envelope."""
    data = {
        "cells": [
            {
                "signal": c.signal,
                "risk_level": c.risk_level,
                "under_prediction_factor": c.under_prediction_factor,
                "risk_quantile": c.risk_quantile,
                "volatile": c.volatile,
                "profit_increase": c.profit_increase,
                "perf_improvement": c.perf_improvement,
                "mean_released_w": c.mean_released_w,
                "max_released_w": c.max_released_w,
                "emergencies": c.emergencies,
                "baseline_emergencies": c.baseline_emergencies,
            }
            for c in study.cells
        ],
        "fig17_profit": study.fig17_profit,
        "fig17_perf": study.fig17_perf,
        "violations": len(study.violations()),
    }
    return write_summary_json(
        path,
        "prediction_risk",
        data,
        meta={"seed": study.seed, "slots": study.slots},
    )
