"""Fig. 17: impact of spot-capacity under-prediction.

The operator can conservatively scale down its predicted spot capacity
to guard against power emergencies.  The paper multiplies the predicted
headroom by an under-prediction factor (15% under-prediction = x0.85)
and finds nearly no impact on the operator's profit or tenants'
performance — because the profit-maximising price usually leaves spot
capacity unsold anyway.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.reporting import format_rounded_series
from repro.config import DEFAULT_SEED
from repro.experiments.common import (
    DEFAULT_SLOTS,
    mean_perf_improvement,
    parallel_map,
    powercapped_baseline,
)
from repro.prediction.spot import SpotCapacityPredictor
from repro.sim.engine import run_simulation
from repro.sim.scenario import testbed_scenario

__all__ = ["UnderPredictionSweep", "run_fig17", "render_fig17"]

_DEFAULT_FACTORS = (1.0, 0.95, 0.90, 0.85, 0.80, 0.75)


@dataclasses.dataclass
class UnderPredictionSweep:
    """Fig. 17's series.

    Attributes:
        under_prediction: Fraction under-predicted per point (0 = exact,
            0.15 = the paper's "15% under-prediction").
        profit_increase: Operator profit increase vs PowerCapped.
        perf_improvement: Mean tenant performance improvement.
    """

    under_prediction: list[float]
    profit_increase: list[float]
    perf_improvement: list[float]


def _fig17_cell(payload) -> tuple[float, float, float]:
    """One under-prediction-factor point (module-level: picklable)."""
    seed, slots, factor = payload
    baseline = powercapped_baseline(seed, slots)
    result = run_simulation(
        testbed_scenario(seed=seed),
        slots,
        spot_predictor=SpotCapacityPredictor(under_prediction_factor=factor),
    )
    return (
        1.0 - factor,
        result.operator_profit_increase_vs(baseline),
        mean_perf_improvement(result, baseline),
    )


def run_fig17(
    seed: int = DEFAULT_SEED,
    slots: int = DEFAULT_SLOTS,
    factors=_DEFAULT_FACTORS,
    jobs: int = 1,
) -> UnderPredictionSweep:
    """Sweep the under-prediction factor (shared traces via the seed).

    ``jobs > 1`` fans the factor points out over worker processes; every
    run is deterministic in the seed, so results are identical to the
    serial path.
    """
    rows = parallel_map(
        _fig17_cell, [(seed, slots, f) for f in factors], jobs=jobs
    )
    sweep = UnderPredictionSweep([], [], [])
    for under, profit, perf in rows:
        sweep.under_prediction.append(under)
        sweep.profit_increase.append(profit)
        sweep.perf_improvement.append(perf)
    return sweep


def render_fig17(sweep: UnderPredictionSweep) -> str:
    """Paper-style text: profit and performance vs under-prediction."""
    xs = [round(100 * u, 0) for u in sweep.under_prediction]
    return format_rounded_series(
        "under-prediction [%]",
        xs,
        {
            "profit +%": ("percent", sweep.profit_increase),
            "perf x": ("ratio", sweep.perf_improvement),
        },
        title="Fig. 17: impact of spot-capacity under-prediction",
    )
