"""Extension experiment: grid-event survivability (EDR shocks).

Multi-tenant data centers participate in utility emergency demand
response (EDR): the grid occasionally orders the facility to shed load
or survive a capacity derating for a contracted window.  The paper's
market leans on exactly the property EDR needs — spot capacity is
revocable at any time — so an event-coupled market should ride through
capacity shocks by *selling less* (and pricing the scarcity) instead of
browning out guaranteed load.

This experiment machine-checks that story.  For each shock schedule
(single EDR cut, staged derating cascade, and a storm that couples
price spikes with capacity cuts) it runs

* **SpotDC** with the event-coupled shock absorber (reserve-price
  escalation, release tightening, grant revocation, emergency caps),
  and
* **PowerCapped** under the *same* capacity cuts — a static-price,
  marketless operator facing the identical shocked infrastructure;

and checks four invariants:

1. **No additional overloads** — the SpotDC run logs no more UPS/PDU
   overload slots than the PowerCapped run, both *during* event windows
   and *after* they close (shock state must unwind fully).
2. **EDR compliance** — aggregate draw returns under the shocked
   capacity within the profile's compliance budget of event onset.
3. **Settlement neutrality** — revoked-grant credit notes exactly equal
   the spot-credit memo lines on tenant invoices, and the operator
   ledger reconciles.
4. **Crash-safe events** — killing the operator *mid-event* and
   resuming from the latest checkpoint replays the remaining event
   window byte-identically (JSONL trace and numeric results).

The headline economics: the event-coupled market must still beat the
static-price baseline on operator profit under every shock schedule.
"""

from __future__ import annotations

import dataclasses
import pathlib
import tempfile

import numpy as np

from repro.analysis.reporting import format_table
from repro.config import DEFAULT_SEED
from repro.core.baselines import PowerCappedAllocator
from repro.economics.settlement import build_all_invoices, reconcile
from repro.errors import OperatorCrash, SimulationError
from repro.events import DeratingCascade, EdrShock, EventProfile, PriceSpike
from repro.experiments.common import parallel_map
from repro.recovery import latest_checkpoint
from repro.resilience import FaultProfile
from repro.sim.engine import run_simulation
from repro.sim.results import SimulationResult
from repro.sim.scenario import testbed_scenario
from repro.telemetry import TelemetryConfig

__all__ = [
    "DEFAULT_SLOTS",
    "EdrCell",
    "EdrRecoveryCell",
    "EdrStudy",
    "render_edr_study",
    "run_edr_cell",
    "run_edr_recovery_check",
    "run_edr_shock_check",
    "run_edr_study",
    "shock_schedules",
]

#: Default horizon: long enough that every schedule's event windows
#: open, deepen, and close with plenty of steady-state on both sides,
#: short enough for CI smoke runs.
DEFAULT_SLOTS = 400

#: Shock depth for the EDR legs.  The Table I testbed runs at ~90% of
#: UPS capacity on guaranteed load alone (peaks near 1,296 W of the
#: 1,370 W UPS), so cuts beyond ~5% leave the shocked capacity below
#: the guaranteed peak and are physically unabsorbable by revoking
#: spot capacity — the market sheds what it sold, not what tenants
#: subscribed to.  5% keeps compliance achievable while still forcing
#: every ladder rung to fire.
_SHOCK_FRACTION = 0.05


def shock_schedules(slots: int) -> dict[str, EventProfile]:
    """The named shock schedules, scaled to the run horizon.

    Event placement scales with ``slots`` (onset near the first
    quarter, window about a quarter of the run) so that short CI
    horizons still contain complete event windows.
    """
    onset = max(2, slots // 4)
    window = max(8, slots // 4)
    stage_slots = max(2, window // 4)
    return {
        "single_edr": EventProfile(
            schedule=(
                EdrShock(
                    slot=onset, duration_slots=window, fraction=_SHOCK_FRACTION
                ),
            ),
        ),
        "cascade": EventProfile(
            schedule=(
                DeratingCascade(
                    slot=onset,
                    stages=3,
                    stage_slots=stage_slots,
                    fraction_per_stage=_SHOCK_FRACTION / 3,
                ),
            ),
            compliance_slots=5,
        ),
        "storm": EventProfile(
            schedule=(
                EdrShock(
                    slot=onset, duration_slots=window, fraction=_SHOCK_FRACTION
                ),
                PriceSpike(
                    slot=onset, duration_slots=window, reserve_price=0.2
                ),
                EdrShock(
                    slot=onset + window + stage_slots,
                    duration_slots=stage_slots,
                    fraction=_SHOCK_FRACTION / 2,
                ),
            ),
            reserve_uplift=0.02,
        ),
    }


@dataclasses.dataclass
class EdrCell:
    """One shock schedule: SpotDC vs PowerCapped under the same events."""

    name: str
    events: int
    event_slots: int
    shed_watts: float
    emergency_caps: int
    compliance_max_lag: int
    compliance_violations: int
    max_reserve_price: float
    spot_profit: float
    capped_profit: float
    credited_dollars: float
    credit_match: bool
    spot_overloads_during: int
    capped_overloads_during: int
    spot_overloads_after: int
    capped_overloads_after: int

    @property
    def overloads_ok(self) -> bool:
        """Invariant 1: no additional overloads, during or after events."""
        return (
            self.spot_overloads_during <= self.capped_overloads_during
            and self.spot_overloads_after <= self.capped_overloads_after
        )

    @property
    def compliance_ok(self) -> bool:
        """Invariant 2: every event reached compliance within budget."""
        return self.compliance_violations == 0

    @property
    def profit_edge(self) -> float:
        """Operator profit of the event-coupled market over the static
        baseline, dollars."""
        return self.spot_profit - self.capped_profit

    @property
    def ok(self) -> bool:
        """All per-cell invariants at once (3 is ``credit_match``)."""
        return (
            self.overloads_ok
            and self.compliance_ok
            and self.credit_match
            and self.profit_edge > 0.0
        )


@dataclasses.dataclass
class EdrRecoveryCell:
    """Invariant 4: SIGKILL mid-event + resume replays byte-identically."""

    schedule: str
    crash_slot: int
    resumed_slot: int
    trace_identical: bool
    result_identical: bool
    events_report_equal: bool

    @property
    def ok(self) -> bool:
        """Crash landed inside the event window and nothing diverged."""
        return (
            self.trace_identical
            and self.result_identical
            and self.events_report_equal
        )


@dataclasses.dataclass
class EdrStudy:
    """Results of the grid-event survivability study."""

    cells: list[EdrCell]
    seed: int
    slots: int
    recovery: EdrRecoveryCell | None = None

    def violations(self) -> list[EdrCell]:
        """Cells that broke any machine-checked invariant."""
        return [c for c in self.cells if not c.ok]


def _event_windows(profile: EventProfile) -> list[tuple[int, int]]:
    """Half-open ``[onset, end)`` windows of a manual schedule."""
    return [(e.slot, e.end_slot) for e in profile.schedule]


def _overload_split(
    result: SimulationResult, windows: list[tuple[int, int]]
) -> tuple[int, int]:
    """(during, after) distinct UPS/PDU overload slot counts."""
    onset = min(start for start, _ in windows)
    during = set()
    after = set()
    for emergency in result.emergencies.events:
        if emergency.level not in ("ups", "pdu"):
            continue
        slot = emergency.slot
        if any(start <= slot < end for start, end in windows):
            during.add((emergency.level, slot))
        elif slot >= onset:
            after.add((emergency.level, slot))
    return len(during), len(after)


def _shocked_scenario(seed: int, profile: EventProfile):
    return dataclasses.replace(testbed_scenario(seed=seed), events=profile)


def run_edr_cell(
    name: str,
    profile: EventProfile | None = None,
    seed: int = DEFAULT_SEED,
    slots: int = DEFAULT_SLOTS,
) -> EdrCell:
    """Run one shock schedule under SpotDC and PowerCapped.

    Both runs share the scenario seed (identical workloads) and the
    identical event profile: capacity cuts shock both operators, while
    the price-coupling rungs only matter to the market run — the
    static-price baseline has no reserve price to raise and no spot
    grants to revoke.
    """
    if profile is None:
        profile = shock_schedules(slots)[name]
    spot = run_simulation(_shocked_scenario(seed, profile), slots)
    capped = run_simulation(
        _shocked_scenario(seed, profile),
        slots,
        allocator=PowerCappedAllocator(),
    )
    reconcile(spot)
    report = getattr(spot, "events_report", None)
    if report is None:
        raise SimulationError(
            f"shock schedule {name!r} produced no events report"
        )
    invoices = build_all_invoices(spot)
    credited = sum(n.dollars for n in spot.credit_notes)
    invoice_credits = sum(i.spot_credit for i in invoices)
    windows = _event_windows(profile)
    spot_during, spot_after = _overload_split(spot, windows)
    capped_during, capped_after = _overload_split(capped, windows)
    return EdrCell(
        name=name,
        events=report["events"],
        event_slots=report["event_slots"],
        shed_watts=report["shed_watts"],
        emergency_caps=report["emergency_caps"],
        compliance_max_lag=report["compliance_max_lag_slots"],
        compliance_violations=report["compliance_violations"],
        max_reserve_price=report["max_reserve_price"],
        spot_profit=spot.ledger.net_profit,
        capped_profit=capped.ledger.net_profit,
        credited_dollars=credited,
        credit_match=abs(credited - invoice_credits) < 1e-6,
        spot_overloads_during=spot_during,
        capped_overloads_during=capped_during,
        spot_overloads_after=spot_after,
        capped_overloads_after=capped_after,
    )


def run_edr_shock_check(
    seed: int = DEFAULT_SEED, slots: int = 200
) -> EdrCell:
    """The single-EDR cell, sized for the resilience study's event leg."""
    return run_edr_cell("single_edr", seed=seed, slots=slots)


def run_edr_recovery_check(
    seed: int = DEFAULT_SEED,
    slots: int = 120,
    schedule: str = "single_edr",
    checkpoint_every: int = 10,
) -> EdrRecoveryCell:
    """Crash the operator *inside* an event window, resume, compare.

    Mirrors :func:`repro.experiments.ext_resilience.run_recovery_check`
    but places the injected crash mid-event, so the resumed run must
    replay the remaining event window — cuts still in force, ladder
    state, compliance watches — from the pickled checkpoint alone.  The
    check is exact: byte-identical JSONL trace, equal numeric results,
    and an equal end-of-run events report.
    """
    profile = shock_schedules(slots)[schedule]
    windows = _event_windows(profile)
    onset = min(start for start, _ in windows)
    end = max(end for _, end in windows)
    crash_at = onset + max(1, (min(end, slots) - onset) // 2)
    crashing = dataclasses.replace(
        FaultProfile.named("none", 0.0), seed=seed, crash_at_slot=crash_at
    )
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        ckpt_dir = tmp / "ckpt"
        try:
            run_simulation(
                _shocked_scenario(seed, profile),
                slots,
                fault_profile=crashing,
                telemetry=TelemetryConfig(out_dir=tmp / "crashed", label="run"),
                checkpoint_every=checkpoint_every,
                checkpoint_dir=ckpt_dir,
            )
        except OperatorCrash:
            pass
        else:
            raise SimulationError(
                f"injected mid-event crash at slot {crash_at} never fired"
            )
        checkpoint = latest_checkpoint(ckpt_dir)
        if checkpoint is None:
            raise SimulationError("crashed run left no checkpoint behind")
        resumed_slot = int(checkpoint.stem.split("_")[1]) + 1
        resumed = run_simulation(
            _shocked_scenario(seed, profile),
            slots,
            fault_profile=crashing,
            resume_from=checkpoint,
        )
        reference = run_simulation(
            _shocked_scenario(seed, profile),
            slots,
            telemetry=TelemetryConfig(
                out_dir=tmp / "reference", label="run"
            ),
        )
        trace_identical = (
            (tmp / "crashed" / "run_trace.jsonl").read_bytes()
            == (tmp / "reference" / "run_trace.jsonl").read_bytes()
        )
    result_identical = (
        np.array_equal(resumed.price_series(), reference.price_series())
        and np.array_equal(
            resumed.ups_power_series(), reference.ups_power_series()
        )
        and resumed.total_spot_revenue() == reference.total_spot_revenue()
    )
    return EdrRecoveryCell(
        schedule=schedule,
        crash_slot=crash_at,
        resumed_slot=resumed_slot,
        trace_identical=trace_identical,
        result_identical=result_identical,
        events_report_equal=(
            getattr(resumed, "events_report", None)
            == getattr(reference, "events_report", None)
        ),
    )


def _study_cell(payload) -> EdrCell:
    """One shock cell as a picklable payload (for ``parallel_map``)."""
    name, seed, slots = payload
    return run_edr_cell(name, seed=seed, slots=slots)


def run_edr_study(
    seed: int = DEFAULT_SEED,
    slots: int = DEFAULT_SLOTS,
    schedules: tuple[str, ...] | None = None,
    strict: bool = True,
    with_recovery: bool = True,
    jobs: int = 1,
) -> EdrStudy:
    """Run every shock schedule and machine-check the four invariants.

    Args:
        seed: Shared scenario seed.
        slots: Horizon per run.
        schedules: Schedule names to include (default: all of
            :func:`shock_schedules`).
        strict: Raise :class:`~repro.errors.SimulationError` on any
            invariant violation; pass ``False`` to inspect the study.
        with_recovery: Also run the mid-event crash/resume check.
        jobs: Worker processes for the shock cells.
    """
    names = tuple(schedules or shock_schedules(slots))
    payloads = [(name, seed, slots) for name in names]
    cells = parallel_map(_study_cell, payloads, jobs=jobs)
    recovery = (
        run_edr_recovery_check(seed=seed) if with_recovery else None
    )
    study = EdrStudy(cells=cells, seed=seed, slots=slots, recovery=recovery)
    violations = study.violations()
    if strict and violations:
        worst = violations[0]
        raise SimulationError(
            f"EDR invariant violated in {len(violations)} cell(s) "
            f"(first: {worst.name} — overloads_ok={worst.overloads_ok}, "
            f"compliance_violations={worst.compliance_violations}, "
            f"credit_match={worst.credit_match}, "
            f"profit_edge={worst.profit_edge:.4f})"
        )
    if strict and recovery is not None and not recovery.ok:
        raise SimulationError(
            f"mid-event recovery invariant violated: crash at slot "
            f"{recovery.crash_slot}, resume from slot "
            f"{recovery.resumed_slot} — trace_identical="
            f"{recovery.trace_identical}, result_identical="
            f"{recovery.result_identical}, events_report_equal="
            f"{recovery.events_report_equal}"
        )
    return study


def render_edr_study(study: EdrStudy) -> str:
    """The survivability table, one row per shock schedule."""
    rows = []
    for c in study.cells:
        rows.append(
            [
                c.name,
                c.events,
                c.event_slots,
                round(c.shed_watts, 1),
                c.emergency_caps,
                c.compliance_max_lag,
                c.max_reserve_price,
                round(c.spot_profit, 4),
                round(c.capped_profit, 4),
                f"{c.spot_overloads_during}/{c.capped_overloads_during}",
                f"{c.spot_overloads_after}/{c.capped_overloads_after}",
                "ok" if c.ok else "VIOLATED",
            ]
        )
    table = format_table(
        [
            "schedule", "events", "event slots", "shed [W]", "caps",
            "max lag", "max reserve", "SpotDC profit [$]",
            "PowerCapped profit [$]", "ovl during (spot/capped)",
            "ovl after (spot/capped)", "invariants",
        ],
        rows,
        title=(
            f"Grid-event survivability: event-coupled market vs "
            f"static-price baseline (seed {study.seed}, "
            f"{study.slots} slots)"
        ),
    )
    n_bad = len(study.violations())
    verdict = (
        "invariants hold in every cell: no additional overloads, "
        "compliance within budget, credits balance, and the market "
        "out-earns the static baseline under every shock schedule"
        if n_bad == 0
        else f"INVARIANT VIOLATED in {n_bad} cell(s)"
    )
    lines = [table, verdict]
    r = study.recovery
    if r is not None:
        status = "ok" if r.ok else "VIOLATED"
        lines.append(
            f"mid-event crash/resume ({r.schedule}): killed at slot "
            f"{r.crash_slot}, resumed from slot {r.resumed_slot}, "
            f"byte-identical replay: {r.trace_identical} [{status}]"
        )
    return "\n".join(lines)
