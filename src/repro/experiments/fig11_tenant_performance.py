"""Fig. 11: tenant performance during the 20-minute execution.

Search-1 and Web must meet the 100 ms SLO when spot capacity is
available, while Count-1 and Graph-1 opportunistically raise throughput
(the paper reports up to 1.5x).  We run the same volatile 10-slot
experiment as Fig. 10 with and without SpotDC and compare per-slot
performance.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.reporting import format_series
from repro.config import DEFAULT_SEED
from repro.core.baselines import PowerCappedAllocator
from repro.sim.engine import SimulationEngine
from repro.sim.results import SimulationResult
from repro.sim.scenario import testbed_scenario

__all__ = ["TenantPerformanceTrace", "run_fig11", "render_fig11"]

_LATENCY_RACKS = ("rack:Search-1", "rack:Web")
_THROUGHPUT_RACKS = ("rack:Count-1", "rack:Graph-1")


@dataclasses.dataclass
class TenantPerformanceTrace:
    """Per-slot performance traces, SpotDC vs PowerCapped.

    Attributes:
        spotdc / powercapped: The two runs.
        latency_ms: Rack -> per-slot tail latency under SpotDC.
        latency_ms_capped: Same racks under PowerCapped.
        throughput_ratio: Rack -> per-slot throughput normalised to the
            PowerCapped run (1.0 where both idle).
    """

    spotdc: SimulationResult
    powercapped: SimulationResult
    latency_ms: dict[str, np.ndarray]
    latency_ms_capped: dict[str, np.ndarray]
    throughput_ratio: dict[str, np.ndarray]


def run_fig11(
    seed: int = DEFAULT_SEED, slots: int = 10, search_slots: int = 600
) -> TenantPerformanceTrace:
    """Run the Fig. 11 performance comparison (same traces, two policies).

    Like Fig. 10, the reported window is the most interesting stretch of
    a longer run: the one where PowerCapped suffers the most SLO
    violations, so the spot-capacity rescue is visible.

    Args:
        seed: Scenario seed.
        slots: Window length (paper: 10 slots of 120 s).
        search_slots: Simulated horizon searched for the window.
    """
    horizon = max(search_slots, slots)
    spotdc = SimulationEngine(
        testbed_scenario(seed=seed, volatile_other=True)
    ).run(horizon)
    capped = SimulationEngine(
        testbed_scenario(seed=seed, volatile_other=True),
        allocator=PowerCappedAllocator(),
    ).run(horizon)

    # Prefer windows where spot capacity actually rescues the SLO
    # (PowerCapped violates, SpotDC does not — extreme overloads beyond
    # the rack's full power are unfixable and uninteresting to plot) and
    # where throughput racks hold grants (visible speed-up).
    rescues = sum(
        (
            capped.collector.rack_slo_violation_array(r)
            & ~spotdc.collector.rack_slo_violation_array(r)
        ).astype(int)
        for r in _LATENCY_RACKS
    )
    boosts = sum(
        (spotdc.collector.rack_granted_array(r) > 0.5).astype(int)
        for r in _THROUGHPUT_RACKS
    )
    kernel = np.ones(slots)
    scores = np.convolve(rescues, kernel, mode="valid") + 0.5 * np.convolve(
        np.minimum(boosts, 1), kernel, mode="valid"
    )
    start = int(np.argmax(scores))
    window = slice(start, start + slots)

    latency = {
        r: spotdc.collector.rack_perf_array(r)[window] for r in _LATENCY_RACKS
    }
    latency_capped = {
        r: capped.collector.rack_perf_array(r)[window] for r in _LATENCY_RACKS
    }
    throughput_ratio = {}
    for rack in _THROUGHPUT_RACKS:
        mine = spotdc.collector.rack_perf_array(rack)[window]
        base = capped.collector.rack_perf_array(rack)[window]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(base > 0, mine / np.maximum(base, 1e-12), 1.0)
        throughput_ratio[rack] = ratio
    return TenantPerformanceTrace(
        spotdc=spotdc,
        powercapped=capped,
        latency_ms=latency,
        latency_ms_capped=latency_capped,
        throughput_ratio=throughput_ratio,
    )


def render_fig11(trace: TenantPerformanceTrace) -> str:
    """Paper-style text: latency and throughput traces per slot."""
    slots = np.arange(
        next(iter(trace.latency_ms.values())).size
    )
    seconds = (slots * trace.spotdc.slot_seconds).astype(int)
    series: dict[str, list] = {}
    for rack, values in trace.latency_ms.items():
        name = rack.removeprefix("rack:")
        series[f"{name} p-lat [ms]"] = values.round(0)
        series[f"{name} capped [ms]"] = trace.latency_ms_capped[rack].round(0)
    for rack, values in trace.throughput_ratio.items():
        name = rack.removeprefix("rack:")
        series[f"{name} thpt x"] = values.round(2)
    return format_series(
        "t [s]", seconds, series,
        title="Fig. 11: tenant performance over the 20-minute execution",
    )
