"""Experiment runners: one module per table/figure of the paper's
evaluation.  Each exposes a ``run_*`` function returning structured
results and a ``render_*`` function printing the paper-style rows;
``benchmarks/`` wraps these with pytest-benchmark.
"""

from repro.experiments import (
    ablations,
    ext_edr,
    ext_equilibrium,
    ext_prediction_risk,
    ext_resilience,
)
from repro.experiments.common import ComparisonRuns, run_comparison
from repro.experiments.fig02_spot_opportunity import run_fig02, render_fig02
from repro.experiments.fig07_prediction_and_scaling import (
    run_fig07a,
    run_fig07b,
    render_fig07,
)
from repro.experiments.fig08_power_performance import run_fig08, render_fig08
from repro.experiments.fig09_perf_gain import run_fig09, render_fig09
from repro.experiments.fig10_execution_trace import run_fig10, render_fig10
from repro.experiments.fig11_tenant_performance import run_fig11, render_fig11
from repro.experiments.fig12_cost_performance import run_fig12, render_fig12
from repro.experiments.fig13_price_power_cdf import run_fig13, render_fig13
from repro.experiments.fig14_demand_functions import run_fig14, render_fig14
from repro.experiments.fig15_spot_availability import run_fig15, render_fig15
from repro.experiments.fig16_bidding_strategy import run_fig16, render_fig16
from repro.experiments.fig17_underprediction import run_fig17, render_fig17
from repro.experiments.fig18_scale import run_fig18, render_fig18
from repro.experiments.table1_testbed import run_table1, render_table1

__all__ = [
    "ComparisonRuns",
    "ablations",
    "ext_edr",
    "ext_equilibrium",
    "ext_prediction_risk",
    "ext_resilience",
    "render_fig02", "render_fig07", "render_fig08", "render_fig09",
    "render_fig10", "render_fig11", "render_fig12", "render_fig13",
    "render_fig14", "render_fig15", "render_fig16", "render_fig17",
    "render_fig18", "render_table1",
    "run_comparison",
    "run_fig02", "run_fig07a", "run_fig07b", "run_fig08", "run_fig09",
    "run_fig10", "run_fig11", "run_fig12", "run_fig13", "run_fig14",
    "run_fig15", "run_fig16", "run_fig17", "run_fig18", "run_table1",
]
