"""Bid containers: per-rack bids and bundled multi-rack tenant bids.

A tenant submits at most one demand function per rack that needs spot
capacity (racks that need nothing submit nothing — that is what keeps the
market lightweight, paper Section III-C "Scalability").  Because the
power budgets of a tenant's racks jointly determine application
performance, tenants bundle their per-rack bids into one
:class:`TenantBid` with shared price parameters (Section III-B3).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

from repro.core.demand import DemandFunction, LinearBid
from repro.errors import BidError

__all__ = ["RackBid", "TenantBid", "bundle_linear_bid", "flatten_bids"]


@dataclasses.dataclass(frozen=True)
class RackBid:
    """One rack's spot-capacity bid, as seen by the clearing engine.

    Attributes:
        rack_id: Rack the demand applies to.
        pdu_id: PDU feeding the rack (denormalised here so clearing does
            not need the topology object).
        tenant_id: Owner, used for billing the cleared allocation.
        demand: The rack's demand function.
        rack_cap_w: Physical spot headroom ``P_r^R`` of the rack; the
            clearing engine clips demand to this (Eq. 2).
    """

    rack_id: str
    pdu_id: str
    tenant_id: str
    demand: DemandFunction
    rack_cap_w: float

    def __post_init__(self) -> None:
        if self.rack_cap_w < 0:
            raise BidError(
                f"rack {self.rack_id}: rack_cap_w must be >= 0, got {self.rack_cap_w}"
            )

    def clipped_demand_at(self, price: float) -> float:
        """Demand at ``price``, clipped to the rack's physical headroom."""
        return min(self.demand.demand_at(price), self.rack_cap_w)


@dataclasses.dataclass(frozen=True)
class TenantBid:
    """A bundled bid covering all of one tenant's racks that need capacity.

    The paper's bundled bid shares the two price parameters across racks
    while each rack gets its own quantity pair; this container does not
    enforce that (tenants "can bid freely", Section III-B3) but
    :func:`bundle_linear_bid` builds the shared-price form.
    """

    tenant_id: str
    rack_bids: tuple[RackBid, ...]

    def __post_init__(self) -> None:
        if not self.rack_bids:
            raise BidError(f"tenant {self.tenant_id}: empty bid bundle")
        for bid in self.rack_bids:
            if bid.tenant_id != self.tenant_id:
                raise BidError(
                    f"tenant {self.tenant_id}: bundled bid for rack "
                    f"{bid.rack_id} carries tenant {bid.tenant_id}"
                )
        rack_ids = [b.rack_id for b in self.rack_bids]
        if len(set(rack_ids)) != len(rack_ids):
            raise BidError(
                f"tenant {self.tenant_id}: duplicate rack in bundle: {rack_ids}"
            )

    @property
    def parameter_count(self) -> int:
        """Number of solicited parameters (4 per rack for LinearBid)."""
        return 4 * len(self.rack_bids)

    def total_demand_at(self, price: float) -> float:
        """Bundle-wide demand at a price, rack-clipped."""
        return sum(b.clipped_demand_at(price) for b in self.rack_bids)


def bundle_linear_bid(
    tenant_id: str,
    racks: Sequence[tuple[str, str, float]],
    d_max_w: Sequence[float],
    d_min_w: Sequence[float],
    q_min: float,
    q_max: float,
) -> TenantBid:
    """Build the paper's shared-price bundled linear bid.

    The tenant decides maximum and minimum demand *vectors* for its K
    racks, joined affinely between the two shared prices (Section
    III-B3, Fig. 4).

    Args:
        tenant_id: Bidding tenant.
        racks: ``(rack_id, pdu_id, rack_cap_w)`` per participating rack.
        d_max_w: Maximum demand vector (one entry per rack).
        d_min_w: Minimum demand vector.
        q_min: Shared price up to which the maximum vector is demanded.
        q_max: Shared maximum acceptable price.
    """
    if not (len(racks) == len(d_max_w) == len(d_min_w)):
        raise BidError("racks, d_max_w and d_min_w must have equal length")
    rack_bids = []
    for (rack_id, pdu_id, cap_w), dmax, dmin in zip(racks, d_max_w, d_min_w):
        rack_bids.append(
            RackBid(
                rack_id=rack_id,
                pdu_id=pdu_id,
                tenant_id=tenant_id,
                demand=LinearBid(dmax, q_min, dmin, q_max),
                rack_cap_w=cap_w,
            )
        )
    return TenantBid(tenant_id=tenant_id, rack_bids=tuple(rack_bids))


def flatten_bids(tenant_bids: Iterable[TenantBid]) -> list[RackBid]:
    """Flatten tenant bundles into the rack-bid list clearing consumes."""
    rack_bids: list[RackBid] = []
    seen: set[str] = set()
    for tenant_bid in tenant_bids:
        for bid in tenant_bid.rack_bids:
            if bid.rack_id in seen:
                raise BidError(f"rack {bid.rack_id} appears in multiple bundles")
            seen.add(bid.rack_id)
            rack_bids.append(bid)
    return rack_bids
