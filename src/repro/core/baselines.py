"""Baseline allocators: PowerCapped and MaxPerf (paper Section V-B).

* **PowerCapped** — the status quo: no spot capacity is ever offered;
  tenants cap power at their guaranteed capacity.  All evaluation
  metrics are normalised to this baseline.
* **MaxPerf** — the owner-operated upper bound: the operator fully
  controls all servers (as in power routing [9]) and allocates spot
  capacity to maximise the *total performance gain*, with no payments.
  Implemented as greedy marginal-value water-filling: each increment of
  capacity goes to the rack with the highest marginal gain whose rack /
  PDU / UPS constraints still have room.  With concave per-rack value
  curves this greedy is optimal up to the increment size.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Sequence

import numpy as np

from repro.core.allocation import AllocationResult
from repro.core.market import Allocator, SlotMarketRecord
from repro.errors import ConfigurationError
from repro.prediction.spot import SpotCapacityForecast
from repro.tenants.tenant import Tenant

__all__ = ["PowerCappedAllocator", "MaxPerfAllocator"]


class PowerCappedAllocator(Allocator):
    """No spot capacity, ever: the paper's normalisation baseline."""

    name = "powercapped"
    charges_tenants = False
    provisions_spot = False

    def allocate(
        self,
        slot: int,
        tenants: Sequence[Tenant],
        forecast: SpotCapacityForecast,
        slot_seconds: float,
        predicted_price: float | None = None,
        extra_constraints: Sequence = (),
        tracer=None,
        submitted_bids=None,
        duplicated=None,
    ) -> SlotMarketRecord:
        if tracer is not None:
            with tracer.span("bid_collect", slot=slot) as span:
                span.set(tenants=len(tenants), racks_bid=0)
            with tracer.span("clear", slot=slot) as span:
                span.set(price=0.0, granted_racks=0, granted_w=0.0)
        return SlotMarketRecord(
            result=AllocationResult.empty(), bids=(), payments={}
        )


class MaxPerfAllocator(Allocator):
    """Welfare-maximising water-filling with full server control.

    Args:
        increment_w: Water-filling step.  Smaller is closer to the exact
            optimum; the default (1 W at testbed scale) is far below any
            rack's headroom.
        max_steps: Safety bound on iterations.
    """

    name = "maxperf"
    charges_tenants = False

    def __init__(self, increment_w: float = 1.0, max_steps: int = 1_000_000) -> None:
        if increment_w <= 0:
            raise ConfigurationError("increment_w must be positive")
        if max_steps <= 0:
            raise ConfigurationError("max_steps must be positive")
        self.increment_w = increment_w
        self.max_steps = max_steps

    def allocate(
        self,
        slot: int,
        tenants: Sequence[Tenant],
        forecast: SpotCapacityForecast,
        slot_seconds: float,
        predicted_price: float | None = None,
        extra_constraints: Sequence = (),
        tracer=None,
        submitted_bids=None,
        duplicated=None,
    ) -> SlotMarketRecord:
        if tracer is None:
            from repro.telemetry.tracing import NULL_TRACER

            tracer = NULL_TRACER
        # Gather candidate racks: those whose owners want spot capacity
        # now, with their value curves and physical caps.
        candidates = []  # (rack_id, pdu_id, curve, cap_w)
        with tracer.span("bid_collect", slot=slot) as bid_span:
            for tenant in tenants:
                needed = tenant.needed_spot_w(slot)
                if not needed:
                    continue
                curves = tenant.value_curves(slot)
                rack_by_id = {r.rack_id: r for r in tenant.racks}
                for rack_id in needed:
                    rack = rack_by_id[rack_id]
                    curve = curves.get(rack_id)
                    if curve is None:
                        continue
                    cap = min(rack.max_spot_w, curve.max_spot_w)
                    if cap > 0:
                        candidates.append((rack_id, rack.pdu_id, curve, cap))
            bid_span.set(tenants=len(tenants), racks_bid=len(candidates))
        if not candidates:
            with tracer.span("clear", slot=slot) as span:
                span.set(price=0.0, granted_racks=0, granted_w=0.0)
            return SlotMarketRecord(
                result=AllocationResult.empty(), bids=(), payments={}
            )
        with tracer.span("clear", slot=slot) as clear_span:
            record = self._water_fill(
                candidates, forecast, extra_constraints
            )
        clear_span.set(
            price=0.0,
            granted_racks=sum(
                1 for g in record.result.grants_w.values() if g > 0
            ),
            granted_w=record.result.total_granted_w,
        )
        return record

    def _water_fill(
        self,
        candidates: list,
        forecast: SpotCapacityForecast,
        extra_constraints: Sequence,
    ) -> SlotMarketRecord:
        """Greedy marginal-value water-filling over the candidate racks."""

        # Columnar bookkeeping: candidates become index-addressed columns
        # (grant, cap, PDU code, constraint memberships) so each greedy
        # step is O(1) array updates plus only the constraint groups that
        # actually contain the rack — no dict hops, no full group scans.
        n = len(candidates)
        rack_ids = [c[0] for c in candidates]
        curves = [c[2] for c in candidates]
        caps = np.fromiter((c[3] for c in candidates), dtype=float, count=n)
        grants = np.zeros(n)

        pdu_ids = sorted(
            {c[1] for c in candidates} | set(forecast.pdu_spot_w)
        )
        pdu_index = {p: i for i, p in enumerate(pdu_ids)}
        pdu_code = np.fromiter(
            (pdu_index[c[1]] for c in candidates), dtype=np.intp, count=n
        )
        pdu_room = np.fromiter(
            (forecast.pdu_spot_w.get(p, 0.0) for p in pdu_ids),
            dtype=float,
            count=len(pdu_ids),
        )
        ups_room = forecast.ups_spot_w
        group_room = np.fromiter(
            (c.cap_w for c in extra_constraints),
            dtype=float,
            count=len(extra_constraints),
        )
        groups_of = [
            [
                k
                for k, constraint in enumerate(extra_constraints)
                if rack_ids[i] in constraint.rack_ids
            ]
            for i in range(n)
        ]

        # Max-heap of (-marginal, tiebreak, candidate index).
        counter = itertools.count()
        heap: list[tuple[float, int, int]] = []
        for i in range(n):
            marginal = curves[i].marginal_gain_per_hour(0.0, self.increment_w)
            if marginal > 0:
                heapq.heappush(heap, (-marginal, next(counter), i))

        steps = 0
        while heap and ups_room > 1e-9 and steps < self.max_steps:
            steps += 1
            neg_marginal, _, i = heapq.heappop(heap)
            if -neg_marginal <= 0:
                break
            code = pdu_code[i]
            room = min(caps[i] - grants[i], pdu_room[code], ups_room)
            for k in groups_of[i]:
                room = min(room, group_room[k])
            if room <= 1e-9:
                continue  # this rack is blocked; drop it
            step = min(self.increment_w, room)
            grants[i] += step
            pdu_room[code] -= step
            ups_room -= step
            for k in groups_of[i]:
                group_room[k] -= step
            if grants[i] < caps[i] - 1e-9:
                marginal = curves[i].marginal_gain_per_hour(
                    grants[i], self.increment_w
                )
                if marginal > 0:
                    heapq.heappush(heap, (-marginal, next(counter), i))

        granted = {
            rack_ids[i]: float(grants[i])
            for i in np.flatnonzero(grants > 0)
        }
        result = AllocationResult(price=0.0, grants_w=granted, revenue_rate=0.0)
        return SlotMarketRecord(result=result, bids=(), payments={})
