"""Baseline allocators: PowerCapped and MaxPerf (paper Section V-B).

* **PowerCapped** — the status quo: no spot capacity is ever offered;
  tenants cap power at their guaranteed capacity.  All evaluation
  metrics are normalised to this baseline.
* **MaxPerf** — the owner-operated upper bound: the operator fully
  controls all servers (as in power routing [9]) and allocates spot
  capacity to maximise the *total performance gain*, with no payments.
  Implemented as greedy marginal-value water-filling: each increment of
  capacity goes to the rack with the highest marginal gain whose rack /
  PDU / UPS constraints still have room.  With concave per-rack value
  curves this greedy is optimal up to the increment size.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Sequence

from repro.core.allocation import AllocationResult
from repro.core.market import Allocator, SlotMarketRecord
from repro.errors import ConfigurationError
from repro.prediction.spot import SpotCapacityForecast
from repro.tenants.tenant import Tenant

__all__ = ["PowerCappedAllocator", "MaxPerfAllocator"]


class PowerCappedAllocator(Allocator):
    """No spot capacity, ever: the paper's normalisation baseline."""

    name = "powercapped"
    charges_tenants = False
    provisions_spot = False

    def allocate(
        self,
        slot: int,
        tenants: Sequence[Tenant],
        forecast: SpotCapacityForecast,
        slot_seconds: float,
        predicted_price: float | None = None,
        extra_constraints: Sequence = (),
    ) -> SlotMarketRecord:
        return SlotMarketRecord(
            result=AllocationResult.empty(), bids=(), payments={}
        )


class MaxPerfAllocator(Allocator):
    """Welfare-maximising water-filling with full server control.

    Args:
        increment_w: Water-filling step.  Smaller is closer to the exact
            optimum; the default (1 W at testbed scale) is far below any
            rack's headroom.
        max_steps: Safety bound on iterations.
    """

    name = "maxperf"
    charges_tenants = False

    def __init__(self, increment_w: float = 1.0, max_steps: int = 1_000_000) -> None:
        if increment_w <= 0:
            raise ConfigurationError("increment_w must be positive")
        if max_steps <= 0:
            raise ConfigurationError("max_steps must be positive")
        self.increment_w = increment_w
        self.max_steps = max_steps

    def allocate(
        self,
        slot: int,
        tenants: Sequence[Tenant],
        forecast: SpotCapacityForecast,
        slot_seconds: float,
        predicted_price: float | None = None,
        extra_constraints: Sequence = (),
    ) -> SlotMarketRecord:
        # Gather candidate racks: those whose owners want spot capacity
        # now, with their value curves and physical caps.
        candidates = []  # (rack_id, pdu_id, curve, cap_w)
        for tenant in tenants:
            needed = tenant.needed_spot_w(slot)
            if not needed:
                continue
            curves = tenant.value_curves(slot)
            rack_by_id = {r.rack_id: r for r in tenant.racks}
            for rack_id in needed:
                rack = rack_by_id[rack_id]
                curve = curves.get(rack_id)
                if curve is None:
                    continue
                cap = min(rack.max_spot_w, curve.max_spot_w)
                if cap > 0:
                    candidates.append((rack_id, rack.pdu_id, curve, cap))
        if not candidates:
            return SlotMarketRecord(
                result=AllocationResult.empty(), bids=(), payments={}
            )

        pdu_room = dict(forecast.pdu_spot_w)
        ups_room = forecast.ups_spot_w
        extra_room = [
            [constraint.rack_ids, constraint.cap_w]
            for constraint in extra_constraints
        ]
        grants = {rack_id: 0.0 for rack_id, *_ in candidates}
        info = {rack_id: (pdu_id, curve, cap) for rack_id, pdu_id, curve, cap in candidates}

        # Max-heap of (-marginal, tiebreak, rack_id).
        counter = itertools.count()
        heap: list[tuple[float, int, str]] = []
        for rack_id, _, curve, cap in candidates:
            marginal = curve.marginal_gain_per_hour(0.0, self.increment_w)
            if marginal > 0:
                heapq.heappush(heap, (-marginal, next(counter), rack_id))

        steps = 0
        while heap and ups_room > 1e-9 and steps < self.max_steps:
            steps += 1
            neg_marginal, _, rack_id = heapq.heappop(heap)
            if -neg_marginal <= 0:
                break
            pdu_id, curve, cap = info[rack_id]
            room = min(
                cap - grants[rack_id],
                pdu_room.get(pdu_id, 0.0),
                ups_room,
            )
            for group in extra_room:
                if rack_id in group[0]:
                    room = min(room, group[1])
            if room <= 1e-9:
                continue  # this rack is blocked; drop it
            step = min(self.increment_w, room)
            grants[rack_id] += step
            pdu_room[pdu_id] = pdu_room.get(pdu_id, 0.0) - step
            ups_room -= step
            for group in extra_room:
                if rack_id in group[0]:
                    group[1] -= step
            if grants[rack_id] < cap - 1e-9:
                marginal = curve.marginal_gain_per_hour(
                    grants[rack_id], self.increment_w
                )
                if marginal > 0:
                    heapq.heappush(heap, (-marginal, next(counter), rack_id))

        grants = {rid: g for rid, g in grants.items() if g > 0}
        result = AllocationResult(price=0.0, grants_w=grants, revenue_rate=0.0)
        return SlotMarketRecord(result=result, bids=(), payments={})
