"""Columnar bid representation: the ``BidFrame`` struct-of-arrays.

The clearing engine's hot path used to walk Python :class:`RackBid`
objects one at a time — admission, PDU grouping, demand accumulation,
and grant extraction all scaled with rack count in *interpreter* time.
A :class:`BidFrame` stores one slot's bids as flat, aligned ndarrays
(struct-of-arrays) so every stage of the pipeline — candidate-grid
construction, admission masking, the ``(n_bids, n_prices)`` demand
kernel, per-PDU segment sums, and grant extraction — runs in ndarray
time instead (paper Fig. 7b: 15,000 racks cleared in well under a
second at a 0.1 ¢/kW price step).

Design points:

* **Rows are sorted by PDU** (stably, preserving submission order within
  a PDU), so per-PDU demand totals are contiguous segment sums
  (``np.add.reduceat``) rather than scattered ``np.add.at`` updates, and
  per-PDU locational clearing slices the frame instead of regrouping
  objects.
* **The object API stays**: :meth:`BidFrame.from_bids` /
  :meth:`BidFrame.to_bids` form a thin adapter, so tenants, enforcement,
  faults, and settlement keep speaking :class:`RackBid`.
* ``LinearBid`` and ``StepBid`` rows evaluate through the exact
  closed-form kernel (:func:`repro.core.demand.demand_matrix`);
  ``FullBid`` and custom demand functions are *sampled* onto the price
  grid through their own ``demand_grid``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.bids import RackBid
from repro.core.demand import (
    DemandFunction,
    LinearBid,
    StepBid,
    demand_matrix,
)

__all__ = ["BidFrame"]


def _validate_columns(d_max, q_min, d_min, q_max, caps) -> None:
    """Vectorised admission checks for array-built frames.

    Mirrors :func:`repro.recovery.admission.inspect_rack_bid` check by
    check (same reasons, same order) so columnar and object callers
    reject the same inputs for the same stated reason.
    """
    from repro.errors import BidValidationError

    def first_bad(mask, reason, message):
        rows = np.flatnonzero(mask)
        if rows.size:
            raise BidValidationError(
                f"row {int(rows[0])}: {message}", reason=reason
            )

    finite = (
        np.isfinite(d_max)
        & np.isfinite(q_min)
        & np.isfinite(d_min)
        & np.isfinite(q_max)
        & np.isfinite(caps)
    )
    first_bad(~finite, "non_finite", "non-finite bid parameter")
    first_bad(q_max < q_min, "inverted_prices", "q_max below q_min")
    first_bad(d_min > d_max, "inverted_quantities", "D_min above D_max")
    negative = (d_max < 0) | (q_min < 0) | (d_min < 0) | (q_max < 0) | (caps < 0)
    first_bad(negative, "negative_value", "negative bid parameter")
    first_bad(
        d_max > caps * (1.0 + 1e-9) + 1e-9,
        "exceeds_rack_cap",
        "demand exceeds rack headroom",
    )

#: Row kinds: closed-form rows evaluate through the vectorised kernel;
#: sampled rows go through their demand object's ``demand_grid``.
KIND_CLOSED = 0
KIND_SAMPLED = 1


class BidFrame:
    """One slot's rack bids as aligned columns, sorted by PDU.

    Build with :meth:`from_bids` (adapter from the object API) or
    :meth:`from_arrays` (directly columnar, e.g. synthetic benchmark
    fleets).  All columns share row order; rows are grouped by PDU.

    Attributes:
        rack_ids: Rack id per row.
        pdu_ids: Unique PDU ids (sorted); ``pdu_code`` indexes into it.
        pdu_code: Per-row index into ``pdu_ids``.
        tenant_ids: Unique tenant ids; ``tenant_code`` indexes into it.
        tenant_code: Per-row index into ``tenant_ids``.
        kind: Per-row evaluation kind (closed-form vs sampled).
        d_max_w / q_min / d_min_w / q_max: Piece-wise linear bid columns
            (StepBid encoded as the degenerate ``q_min == q_max`` curve;
            for sampled rows only ``q_max`` — the max acceptable price —
            is meaningful).
        rack_cap_w: Physical rack spot headroom per row (Eq. 2 clip).
        max_demand_w: Demand at zero price per row.
        floor_w: Rack-clipped demand at the row's own maximum acceptable
            price — the least capacity the bid must receive at *any*
            acceptable price (drives admission).
    """

    __slots__ = (
        "rack_ids",
        "pdu_ids",
        "pdu_code",
        "tenant_ids",
        "tenant_code",
        "kind",
        "d_max_w",
        "q_min",
        "d_min_w",
        "q_max",
        "rack_cap_w",
        "max_demand_w",
        "floor_w",
        "breakpoints",
        "_demands",
        "_bids",
        "_row_of",
        "_segments",
        "_sampled_rows",
        "_grid_cache",
        "_pdu_slices_cache",
    )

    def __init__(
        self,
        rack_ids: tuple[str, ...],
        pdu_ids: tuple[str, ...],
        pdu_code: np.ndarray,
        tenant_ids: tuple[str, ...],
        tenant_code: np.ndarray,
        kind: np.ndarray,
        d_max_w: np.ndarray,
        q_min: np.ndarray,
        d_min_w: np.ndarray,
        q_max: np.ndarray,
        rack_cap_w: np.ndarray,
        max_demand_w: np.ndarray,
        floor_w: np.ndarray,
        breakpoints: np.ndarray,
        demands: tuple[DemandFunction | None, ...],
        bids: tuple[RackBid, ...] | None,
    ) -> None:
        self.rack_ids = rack_ids
        self.pdu_ids = pdu_ids
        self.pdu_code = pdu_code
        self.tenant_ids = tenant_ids
        self.tenant_code = tenant_code
        self.kind = kind
        self.d_max_w = d_max_w
        self.q_min = q_min
        self.d_min_w = d_min_w
        self.q_max = q_max
        self.rack_cap_w = rack_cap_w
        self.max_demand_w = max_demand_w
        self.floor_w = floor_w
        self.breakpoints = breakpoints
        self._demands = demands
        self._bids = bids
        self._row_of: dict[str, int] | None = None
        self._segments: tuple[np.ndarray, np.ndarray] | None = None
        self._sampled_rows: np.ndarray | None = None
        self._grid_cache: dict | None = None
        self._pdu_slices_cache: list[tuple[str, "BidFrame"]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_bids(cls, bids: Sequence[RackBid]) -> "BidFrame":
        """Build the columnar frame from object bids (the slot adapter).

        Called once per slot; every downstream stage (admission, demand
        evaluation, clearing, billing) then reads columns instead of
        objects.
        """
        n = len(bids)
        pdu_ids = tuple(sorted({b.pdu_id for b in bids}))
        pdu_index = {p: i for i, p in enumerate(pdu_ids)}
        raw_code = np.fromiter(
            (pdu_index[b.pdu_id] for b in bids), dtype=np.intp, count=n
        )
        order = np.argsort(raw_code, kind="stable")
        ordered = [bids[int(i)] for i in order]

        tenant_ids = tuple(dict.fromkeys(b.tenant_id for b in ordered))
        tenant_index = {t: i for i, t in enumerate(tenant_ids)}

        kind = np.empty(n, dtype=np.uint8)
        d_max = np.empty(n)
        q_min = np.empty(n)
        d_min = np.empty(n)
        q_max = np.empty(n)
        caps = np.empty(n)
        max_demand = np.empty(n)
        floor = np.empty(n)
        demands: list[DemandFunction | None] = []
        points: list[float] = []
        for i, b in enumerate(ordered):
            fn = b.demand
            caps[i] = b.rack_cap_w
            # The type checks are deliberately exact: subclasses may
            # override demand_at/demand_grid, so they must be sampled.
            if type(fn) is LinearBid:
                kind[i] = KIND_CLOSED
                d_max[i] = fn.d_max_w
                q_min[i] = fn.q_min
                d_min[i] = fn.d_min_w
                q_max[i] = fn.q_max
                max_demand[i] = fn.d_max_w
                demands.append(None)
            elif type(fn) is StepBid:
                kind[i] = KIND_CLOSED
                d_max[i] = fn.demand_w
                d_min[i] = fn.demand_w
                q_min[i] = fn.price_cap
                q_max[i] = fn.price_cap
                max_demand[i] = fn.demand_w
                demands.append(None)
            else:
                kind[i] = KIND_SAMPLED
                d_max[i] = 0.0
                d_min[i] = 0.0
                q_min[i] = 0.0
                q_max[i] = fn.max_price
                max_demand[i] = fn.max_demand_w
                demands.append(fn)
            # Grid augmentation points, collected exactly as the object
            # path does (public curve attributes only).
            for attr in ("q_min", "q_max", "price_cap"):
                value = getattr(fn, attr, None)
                if value is not None:
                    points.append(float(value))
        # Rack-clipped demand at each row's own max acceptable price,
        # with the same float arithmetic as demand_at(max_price).
        for i, b in enumerate(ordered):
            if kind[i] == KIND_CLOSED:
                at_cap = (
                    d_max[i]
                    if q_max[i] <= q_min[i]
                    else d_max[i] + (d_min[i] - d_max[i])
                )
            else:
                at_cap = b.demand.demand_at(b.demand.max_price)
            floor[i] = min(at_cap, caps[i])
        return cls(
            rack_ids=tuple(b.rack_id for b in ordered),
            pdu_ids=pdu_ids,
            pdu_code=raw_code[order],
            tenant_ids=tenant_ids,
            tenant_code=np.fromiter(
                (tenant_index[b.tenant_id] for b in ordered),
                dtype=np.intp,
                count=n,
            ),
            kind=kind,
            d_max_w=d_max,
            q_min=q_min,
            d_min_w=d_min,
            q_max=q_max,
            rack_cap_w=caps,
            max_demand_w=max_demand,
            floor_w=floor,
            breakpoints=np.asarray(points, dtype=float),
            demands=tuple(demands),
            bids=tuple(ordered),
        )

    @classmethod
    def from_arrays(
        cls,
        rack_ids: Sequence[str],
        pdu_ids: Sequence[str],
        tenant_ids: Sequence[str],
        d_max_w: Iterable[float],
        q_min: Iterable[float],
        d_min_w: Iterable[float],
        q_max: Iterable[float],
        rack_cap_w: Iterable[float],
        validate: bool = False,
    ) -> "BidFrame":
        """Build a frame of LinearBid rows directly from columns.

        ``pdu_ids`` / ``tenant_ids`` here are *per-row* (parallel to
        ``rack_ids``); the frame deduplicates them into its code tables.
        No :class:`RackBid` objects are materialised — :meth:`to_bids`
        creates them lazily if ever asked.

        With ``validate`` the columns pass the admission checks of
        :mod:`repro.recovery.admission` in one vectorised sweep —
        columnar callers (benchmark fleets, replayed bid logs) bypass
        the per-object front door, so this is their equivalent guard.
        Raises :class:`repro.errors.BidValidationError` on the first
        violated check.
        """
        if validate:
            _validate_columns(
                np.asarray(d_max_w, dtype=float),
                np.asarray(q_min, dtype=float),
                np.asarray(d_min_w, dtype=float),
                np.asarray(q_max, dtype=float),
                np.asarray(rack_cap_w, dtype=float),
            )
        d_max = np.ascontiguousarray(d_max_w, dtype=float)
        n = d_max.shape[0]
        unique_pdus = tuple(sorted(set(pdu_ids)))
        pdu_index = {p: i for i, p in enumerate(unique_pdus)}
        raw_code = np.fromiter(
            (pdu_index[p] for p in pdu_ids), dtype=np.intp, count=n
        )
        order = np.argsort(raw_code, kind="stable")
        rack_col = tuple(rack_ids[int(i)] for i in order)
        tenant_col = [tenant_ids[int(i)] for i in order]
        unique_tenants = tuple(dict.fromkeys(tenant_col))
        tenant_index = {t: i for i, t in enumerate(unique_tenants)}
        d_max = d_max[order]
        q_lo = np.ascontiguousarray(q_min, dtype=float)[order]
        d_min = np.ascontiguousarray(d_min_w, dtype=float)[order]
        q_hi = np.ascontiguousarray(q_max, dtype=float)[order]
        caps = np.ascontiguousarray(rack_cap_w, dtype=float)[order]
        floor = np.minimum(
            np.where(q_hi <= q_lo, d_max, d_max + (d_min - d_max)), caps
        )
        return cls(
            rack_ids=rack_col,
            pdu_ids=unique_pdus,
            pdu_code=raw_code[order],
            tenant_ids=unique_tenants,
            tenant_code=np.fromiter(
                (tenant_index[t] for t in tenant_col), dtype=np.intp, count=n
            ),
            kind=np.zeros(n, dtype=np.uint8),
            d_max_w=d_max,
            q_min=q_lo,
            d_min_w=d_min,
            q_max=q_hi,
            rack_cap_w=caps,
            max_demand_w=d_max,
            floor_w=floor,
            breakpoints=np.concatenate([q_lo, q_hi]),
            demands=(None,) * n,
            bids=None,
        )

    @classmethod
    def from_blocks(cls, blocks: Sequence) -> "BidFrame":
        """Assemble a frame from per-PDU column blocks (sorted by PDU).

        Blocks are :class:`repro.core.sharding.PduBlock`-shaped objects:
        one PDU's rows, already columnar, with a *local* tenant table.
        The result is value-identical to ``from_bids`` over the
        concatenated bid lists: rows concatenate in block (= PDU-sorted,
        submission-stable) order, and the merged tenant table preserves
        first appearance over rows — within a block the local table is
        first-appearance ordered, and blocks merge in row order, so
        ``dict.setdefault`` over block tables reproduces
        ``dict.fromkeys`` over rows exactly.
        """
        blocks = [b for b in blocks if len(b.rack_ids)]
        if not blocks:
            return cls.from_bids([])
        tenant_index: dict[str, int] = {}
        tenant_cols = []
        pdu_cols = []
        for i, b in enumerate(blocks):
            remap = np.fromiter(
                (
                    tenant_index.setdefault(t, len(tenant_index))
                    for t in b.tenant_table
                ),
                dtype=np.intp,
                count=len(b.tenant_table),
            )
            tenant_cols.append(remap[b.tenant_code_local])
            pdu_cols.append(np.full(len(b.rack_ids), i, dtype=np.intp))
        return cls(
            rack_ids=tuple(r for b in blocks for r in b.rack_ids),
            pdu_ids=tuple(b.pdu_id for b in blocks),
            pdu_code=np.concatenate(pdu_cols),
            tenant_ids=tuple(tenant_index),
            tenant_code=np.concatenate(tenant_cols),
            kind=np.concatenate([b.kind for b in blocks]),
            d_max_w=np.concatenate([b.d_max_w for b in blocks]),
            q_min=np.concatenate([b.q_min for b in blocks]),
            d_min_w=np.concatenate([b.d_min_w for b in blocks]),
            q_max=np.concatenate([b.q_max for b in blocks]),
            rack_cap_w=np.concatenate([b.rack_cap_w for b in blocks]),
            max_demand_w=np.concatenate([b.max_demand_w for b in blocks]),
            floor_w=np.concatenate([b.floor_w for b in blocks]),
            breakpoints=np.concatenate([b.breakpoints for b in blocks]),
            demands=tuple(d for b in blocks for d in b.demands),
            bids=tuple(bid for b in blocks for bid in b.bids),
        )

    # ------------------------------------------------------------------
    # Adapter back to the object API
    # ------------------------------------------------------------------

    def to_bids(self) -> tuple[RackBid, ...]:
        """The frame's rows as :class:`RackBid` objects (frame row order).

        Frames built by :meth:`from_bids` return the original objects;
        array-built frames materialise equivalent ``LinearBid`` rows.
        """
        if self._bids is None:
            self._bids = tuple(
                RackBid(
                    rack_id=self.rack_ids[i],
                    pdu_id=self.pdu_ids[int(self.pdu_code[i])],
                    tenant_id=self.tenant_ids[int(self.tenant_code[i])],
                    demand=(
                        self._demands[i]
                        if self._demands[i] is not None
                        else LinearBid(
                            float(self.d_max_w[i]),
                            float(self.q_min[i]),
                            float(self.d_min_w[i]),
                            float(self.q_max[i]),
                        )
                    ),
                    rack_cap_w=float(self.rack_cap_w[i]),
                )
                for i in range(len(self))
            )
        return self._bids

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rack_ids)

    def __repr__(self) -> str:
        return (
            f"BidFrame(bids={len(self)}, pdus={len(self.pdu_ids)}, "
            f"tenants={len(self.tenant_ids)})"
        )

    @property
    def row_of(self) -> dict[str, int]:
        """Rack id → row index (built lazily, cached)."""
        if self._row_of is None:
            self._row_of = {rid: i for i, rid in enumerate(self.rack_ids)}
        return self._row_of

    def rows_for(self, rack_ids: Iterable[str]) -> np.ndarray:
        """Sorted row indices of the racks present in this frame."""
        row_of = self.row_of
        rows = [row_of[r] for r in rack_ids if r in row_of]
        rows.sort()
        return np.asarray(rows, dtype=np.intp)

    def segments(self) -> tuple[np.ndarray, np.ndarray]:
        """Contiguous per-PDU row segments: ``(starts, segment_codes)``.

        ``starts`` are the first-row indices of each non-empty PDU run
        (suitable for ``np.add.reduceat``); ``segment_codes`` maps each
        run back to its index in :attr:`pdu_ids`.
        """
        if self._segments is None:
            boundaries = np.flatnonzero(np.diff(self.pdu_code)) + 1
            starts = np.concatenate([[0], boundaries])
            self._segments = (starts, self.pdu_code[starts])
        return self._segments

    @property
    def sampled_rows(self) -> np.ndarray:
        """Row indices that must be sampled through their demand object."""
        if self._sampled_rows is None:
            self._sampled_rows = np.flatnonzero(self.kind == KIND_SAMPLED)
        return self._sampled_rows

    def max_acceptable_price(self) -> float:
        """Highest price any row still demands at (scan upper bound)."""
        return float(self.q_max.max()) if len(self) else 0.0

    # ------------------------------------------------------------------
    # Demand evaluation
    # ------------------------------------------------------------------

    def demand_matrix(
        self, prices: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Rack-clipped ``(n_bids, n_prices)`` demand over a price grid."""
        rows = self.sampled_rows
        return demand_matrix(
            self.d_max_w,
            self.q_min,
            self.d_min_w,
            self.q_max,
            self.rack_cap_w,
            prices,
            sampled_rows=rows,
            sampled_demands=tuple(self._demands[int(r)] for r in rows),
            out=out,
        )

    def demand_at(self, price: float) -> np.ndarray:
        """Rack-clipped demand vector at one price (grant extraction)."""
        return self.demand_matrix(np.array([float(price)]))[:, 0]

    def pdu_demand(
        self, demand: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-PDU totals of a ``(n_bids, n_prices)`` demand block.

        Rows are PDU-sorted, so this is a contiguous segment sum — the
        columnar replacement for the object path's per-bid scatter adds.
        """
        if out is None:
            out = np.zeros((len(self.pdu_ids), demand.shape[1]))
        starts, seg_codes = self.segments()
        out[seg_codes] = np.add.reduceat(demand, starts, axis=0)
        return out

    def demand_totals(
        self,
        prices: np.ndarray,
        group_rows: "Sequence[np.ndarray]" = (),
    ) -> tuple[np.ndarray, np.ndarray]:
        """Aggregate rack-clipped demand over an ascending price grid.

        This is the clearing scan's workhorse.  Materialising the full
        ``(n_bids, n_prices)`` demand matrix and summing it is O(n x P)
        in both time and memory traffic; but each closed-form row is
        piece-wise *linear* in price — flat at ``min(d_max, cap)``, one
        descending segment, then zero — so its contribution to a total
        is three breakpoints.  The totals are therefore built as
        difference arrays over the grid (slope/intercept increments at
        each row's breakpoint indices) and integrated with one
        ``cumsum`` per aggregate: O(n log P + n_aggregates x P).

        An exact integer count of active rows per grid cell pins totals
        to exactly 0.0 where no row demands anything — float cancellation
        noise there could otherwise masquerade as revenue.  Sampled rows
        (``FullBid`` and custom curves) are evaluated through their own
        ``demand_grid`` and added in.

        Args:
            prices: Ascending candidate price grid, shape ``(P,)``.
            group_rows: For each extra constraint group, the frame row
                indices of its member racks.

        Returns:
            ``(pdu_demand, group_demand)`` with shapes
            ``(n_pdus, P)`` and ``(len(group_rows), P)``.
        """
        prices = np.asarray(prices, dtype=float)
        n_prices = prices.size
        n_pdu = len(self.pdu_ids)
        n_groups = len(group_rows)
        pdu_demand = np.zeros((n_pdu, n_prices))
        group_demand = np.zeros((n_groups, n_prices))
        if not len(self):
            return pdu_demand, group_demand

        closed = np.flatnonzero(self.kind == KIND_CLOSED)
        if closed.size:
            d_max = self.d_max_w[closed]
            d_min = self.d_min_w[closed]
            q_lo = self.q_min[closed]
            q_hi = self.q_max[closed]
            cap = self.rack_cap_w[closed]

            flat_w = np.minimum(d_max, cap)
            # Demand is zero strictly above q_max: first grid index past it.
            j_end = np.searchsorted(prices, q_hi, side="right")
            span = q_hi - q_lo
            safe_span = np.where(span > 0, span, 1.0)
            slope = np.where(span > 0, (d_min - d_max) / safe_span, 0.0)
            # A descending segment exists only when the curve actually
            # falls and the rack cap does not flatten it entirely.
            sloped = (slope < 0) & (cap > d_min)
            intercept = d_max - slope * q_lo
            # Where the rack cap cuts the descending segment, the row
            # stays flat (at the cap) until the line drops below it.
            safe_slope = np.where(slope < 0, slope, -1.0)
            # Near-flat curves make this quotient overflow to +/-inf;
            # searchsorted and the clamp below absorb either extreme.
            with np.errstate(over="ignore"):
                crossing = np.where(
                    sloped & (cap < d_max),
                    (cap - intercept) / safe_slope,
                    q_lo,
                )
            j_start = np.minimum(
                np.searchsorted(
                    prices, np.maximum(q_lo, crossing), side="right"
                ),
                j_end,
            )
            # For cap-clipped rows the division can land the crossing a
            # float-ulp on the wrong side of a grid point; classify the
            # boundary point by value (j_start must be the first index
            # where the line is below the cap) so flat cells are exactly
            # `cap`, matching the object path's min() bit for bit.
            # Unclipped rows break at q_lo, which searchsorted gets exact.
            clipped = sloped & (cap < d_max)
            at_prev = intercept + slope * prices[np.maximum(j_start - 1, 0)]
            j_start = np.where(
                clipped & (j_start > 0) & (at_prev < cap),
                j_start - 1,
                j_start,
            )
            at_here = intercept + slope * prices[np.minimum(j_start, n_prices - 1)]
            j_start = np.where(
                clipped & (j_start < j_end) & (at_here >= cap),
                j_start + 1,
                j_start,
            )
            j_start = np.minimum(j_start, j_end)
            j_start = np.where(sloped, j_start, j_end)
            # The active count pins totals to exactly 0.0 where *no row
            # can demand anything* — so it must exclude zero-size rows
            # and, for curves falling to d_min == 0, the q_max grid
            # point itself (demand there is exactly zero).  Otherwise
            # cumsum cancellation residue (~1e-16) from other rows'
            # add/remove pairs survives the mask and masquerades as
            # revenue in empty regions of the scan.
            counted = flat_w > 0
            j_count = np.where(
                sloped & (d_min == 0.0),
                np.searchsorted(prices, q_hi, side="left"),
                j_end,
            )

            def scatter(codes, width):
                """Difference arrays for one aggregation (PDUs or groups)."""
                d_const = np.zeros((width, n_prices + 1))
                d_slope = np.zeros((width, n_prices + 1))
                d_count = np.zeros((width, n_prices + 1), dtype=np.int64)
                base = np.zeros(width)
                np.add.at(base, codes, flat_w)
                d_const[:, 0] += base
                np.add.at(d_const, (codes, j_start), -flat_w)
                cnt = np.flatnonzero(counted)
                counts = np.zeros(width, dtype=np.int64)
                np.add.at(counts, codes[cnt], 1)
                d_count[:, 0] += counts
                np.add.at(d_count, (codes[cnt], j_count[cnt]), -1)
                lin = np.flatnonzero(sloped)
                if lin.size:
                    np.add.at(d_const, (codes[lin], j_start[lin]), intercept[lin])
                    np.add.at(d_const, (codes[lin], j_end[lin]), -intercept[lin])
                    np.add.at(d_slope, (codes[lin], j_start[lin]), slope[lin])
                    np.add.at(d_slope, (codes[lin], j_end[lin]), -slope[lin])
                total = (
                    np.cumsum(d_const[:, :n_prices], axis=1)
                    + np.cumsum(d_slope[:, :n_prices], axis=1) * prices[None, :]
                )
                np.maximum(total, 0.0, out=total)
                total[np.cumsum(d_count[:, :n_prices], axis=1) == 0] = 0.0
                return total

            pdu_demand += scatter(self.pdu_code[closed], n_pdu)
            if n_groups:
                # Map frame rows to their position in the closed subset so
                # group members reuse the per-row breakpoint columns.
                pos = np.full(len(self), -1, dtype=np.intp)
                pos[closed] = np.arange(closed.size, dtype=np.intp)
                member_idx = []
                member_code = []
                for k, rows in enumerate(group_rows):
                    idx = pos[np.asarray(rows, dtype=np.intp)]
                    idx = idx[idx >= 0]
                    member_idx.append(idx)
                    member_code.append(np.full(idx.size, k, dtype=np.intp))
                sel = np.concatenate(member_idx) if member_idx else np.empty(0, np.intp)
                if sel.size:
                    codes = np.concatenate(member_code)
                    keep = (
                        flat_w, j_start, j_end, intercept, slope, sloped,
                        counted, j_count,
                    )
                    (
                        flat_w, j_start, j_end, intercept, slope, sloped,
                        counted, j_count,
                    ) = (a[sel] for a in keep)
                    group_demand += scatter(codes, n_groups)

        for row in self.sampled_rows:
            row = int(row)
            fn = self._demands[row]
            demand = np.minimum(fn.demand_grid(prices), self.rack_cap_w[row])
            pdu_demand[int(self.pdu_code[row])] += demand
            for k, rows in enumerate(group_rows):
                if row in rows:
                    group_demand[k] += demand
        return pdu_demand, group_demand

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------

    def select(self, rows: np.ndarray) -> "BidFrame":
        """A sub-frame of ``rows`` (ascending), keeping the PDU table."""
        rows = np.asarray(rows, dtype=np.intp)
        return BidFrame(
            rack_ids=tuple(self.rack_ids[int(i)] for i in rows),
            pdu_ids=self.pdu_ids,
            pdu_code=self.pdu_code[rows],
            tenant_ids=self.tenant_ids,
            tenant_code=self.tenant_code[rows],
            kind=self.kind[rows],
            d_max_w=self.d_max_w[rows],
            q_min=self.q_min[rows],
            d_min_w=self.d_min_w[rows],
            q_max=self.q_max[rows],
            rack_cap_w=self.rack_cap_w[rows],
            max_demand_w=self.max_demand_w[rows],
            floor_w=self.floor_w[rows],
            breakpoints=self._select_breakpoints(rows),
            demands=tuple(self._demands[int(i)] for i in rows),
            bids=(
                tuple(self._bids[int(i)] for i in rows)
                if self._bids is not None
                else None
            ),
        )

    def _select_breakpoints(self, rows: np.ndarray) -> np.ndarray:
        """Grid-augmentation points contributed by a subset of rows."""
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size and bool((self.kind[rows] == KIND_CLOSED).all()):
            # All-closed subsets contribute (q_min, q_max) per row, in
            # row order — same values, same order as the loop below.
            return np.stack(
                [self.q_min[rows], self.q_max[rows]], axis=1
            ).ravel()
        points: list[float] = []
        for i in rows:
            i = int(i)
            if self.kind[i] == KIND_CLOSED:
                points.append(float(self.q_min[i]))
                points.append(float(self.q_max[i]))
            else:
                fn = self._demands[i]
                for attr in ("q_min", "q_max", "price_cap"):
                    value = getattr(fn, attr, None)
                    if value is not None:
                        points.append(float(value))
        return np.asarray(points, dtype=float)

    def pdu_slices(self) -> list[tuple[str, "BidFrame"]]:
        """Per-PDU sub-frames for locational clearing, frame-sliced.

        Each slice is a single-PDU frame (its ``pdu_code`` re-based to
        zero) over a contiguous row range — no object regrouping.  The
        slice list is cached: frames are immutable once built, and the
        incremental builder reuses whole frames across slots, so repeat
        callers (per-PDU clearing every slot) skip the re-slicing cost.
        """
        if self._pdu_slices_cache is not None:
            return self._pdu_slices_cache
        starts, seg_codes = self.segments()
        ends = np.concatenate([starts[1:], [len(self)]])
        slices: list[tuple[str, BidFrame]] = []
        for seg, (lo, hi) in zip(seg_codes, zip(starts, ends)):
            pdu_id = self.pdu_ids[int(seg)]
            rows = slice(int(lo), int(hi))
            sub = BidFrame(
                rack_ids=self.rack_ids[rows],
                pdu_ids=(pdu_id,),
                pdu_code=np.zeros(hi - lo, dtype=np.intp),
                tenant_ids=self.tenant_ids,
                tenant_code=self.tenant_code[rows],
                kind=self.kind[rows],
                d_max_w=self.d_max_w[rows],
                q_min=self.q_min[rows],
                d_min_w=self.d_min_w[rows],
                q_max=self.q_max[rows],
                rack_cap_w=self.rack_cap_w[rows],
                max_demand_w=self.max_demand_w[rows],
                floor_w=self.floor_w[rows],
                breakpoints=self._select_breakpoints(
                    np.arange(lo, hi, dtype=np.intp)
                ),
                demands=self._demands[rows],
                bids=self._bids[rows] if self._bids is not None else None,
            )
            slices.append((pdu_id, sub))
        self._pdu_slices_cache = slices
        return slices

    # ------------------------------------------------------------------
    # Settlement
    # ------------------------------------------------------------------

    def settle(
        self,
        grants_w: "Sequence[float] | np.ndarray | dict[str, float]",
        pdu_prices: "dict[str, float]",
        headline_price: float,
        slot_seconds: float,
        positive_only: bool = False,
    ) -> tuple[float, dict[str, float]]:
        """Bill a set of grants: ``(revenue_rate $/h, payments by tenant)``.

        Accepts either a per-row grant vector (frame row order) or a
        rack-id keyed mapping; racks absent from the mapping pay nothing
        and do not surface their tenant in the payment dict.  With
        ``positive_only`` (the revocation path), only strictly positive
        grants create a tenant entry.
        """
        if isinstance(grants_w, dict):
            grants = np.fromiter(
                (grants_w.get(rid, 0.0) for rid in self.rack_ids),
                dtype=float,
                count=len(self),
            )
            billed = np.fromiter(
                (rid in grants_w for rid in self.rack_ids),
                dtype=bool,
                count=len(self),
            )
        else:
            grants = np.asarray(grants_w, dtype=float)
            billed = np.ones(len(self), dtype=bool)
        if positive_only:
            billed = billed & (grants > 0)
        prices = np.fromiter(
            (pdu_prices.get(p, headline_price) for p in self.pdu_ids),
            dtype=float,
            count=len(self.pdu_ids),
        )[self.pdu_code]
        rates = np.where(billed, prices * grants / 1000.0, 0.0)
        per_tenant = np.zeros(len(self.tenant_ids))
        np.add.at(per_tenant, self.tenant_code, rates * (slot_seconds / 3600.0))
        has_entry = np.zeros(len(self.tenant_ids), dtype=bool)
        has_entry[self.tenant_code[billed]] = True
        payments = {
            tid: float(per_tenant[i])
            for i, tid in enumerate(self.tenant_ids)
            if has_entry[i]
        }
        return float(rates.sum()), payments
