"""Best-response bidding dynamics (the paper's stated future work).

The paper leaves "theoretical equilibrium bidding analysis as our future
work" (Section III-B3), noting that even under simplified assumptions an
equilibrium of the parameterised supply/demand-function game is hard to
derive analytically [25].  This module provides the computational
counterpart: an iterated **best-response simulator** over the LinearBid
strategy space.

Each bidder owns one rack with a concave value curve.  A *strategy* is a
pair of price anchors ``(q_low, q_high)`` plus a quantity-shading factor;
the induced LinearBid demands the bidder's rational quantity at each
anchor, scaled by the shading factor.  In each round, every bidder in
turn picks the strategy maximising its net benefit
``V(grant) − price · grant`` given the others' current bids and the
operator's profit-maximising clearing.  The dynamics either reach a
fixed point — an (approximate, within the strategy grid) pure Nash
equilibrium — or hit the round limit.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Mapping, Sequence

from repro.config import MarketParameters
from repro.core.bids import RackBid
from repro.core.clearing import MarketClearing
from repro.core.demand import LinearBid
from repro.economics.valuation import SpotValueCurve
from repro.errors import ConfigurationError

__all__ = ["Bidder", "EquilibriumResult", "BestResponseSimulator"]


@dataclasses.dataclass(frozen=True)
class Bidder:
    """One strategic participant: a rack and its private value curve.

    Attributes:
        rack_id: Rack identifier.
        pdu_id: PDU feeding the rack.
        rack_cap_w: Physical spot headroom.
        value_curve: The bidder's private value for spot capacity, $/h.
    """

    rack_id: str
    pdu_id: str
    rack_cap_w: float
    value_curve: SpotValueCurve

    def net_benefit(self, grant_w: float, price: float) -> float:
        """$/h utility: value of the grant minus the payment rate."""
        return self.value_curve.gain_per_hour(grant_w) - (
            price / 1000.0
        ) * grant_w

    def bid_for(
        self, q_low: float, q_high: float, shading: float
    ) -> LinearBid:
        """The LinearBid induced by a strategy triple."""
        d_max = min(
            self.value_curve.optimal_demand_w(q_low) * shading, self.rack_cap_w
        )
        d_min = min(
            self.value_curve.optimal_demand_w(q_high) * shading, d_max
        )
        return LinearBid(d_max, q_low, d_min, q_high)


@dataclasses.dataclass
class EquilibriumResult:
    """Outcome of the best-response dynamics.

    Attributes:
        converged: Whether a full round passed with no bidder changing
            its strategy (an approximate pure Nash equilibrium on the
            strategy grid).
        rounds: Rounds executed.
        strategies: Final strategy triple per rack id.
        net_benefits: Final per-bidder net benefit, $/h.
        prices: Clearing price after each round.
        total_granted_w: Total grant after each round.
    """

    converged: bool
    rounds: int
    strategies: dict[str, tuple[float, float, float]]
    net_benefits: dict[str, float]
    prices: list[float]
    total_granted_w: list[float]


class BestResponseSimulator:
    """Iterated best response over the LinearBid strategy grid.

    Args:
        bidders: The strategic participants.
        pdu_spot_w: Fixed spot supply per PDU for the stage game.
        ups_spot_w: Fixed facility-level supply.
        price_anchors: Candidate anchor prices; strategies use every
            ordered pair ``q_low <= q_high``.
        shading_factors: Candidate quantity-shading multipliers
            (1.0 = demand the rational quantity; <1 shades down to
            soften the clearing price).
        params: Operator market knobs.
    """

    def __init__(
        self,
        bidders: Sequence[Bidder],
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        price_anchors: Sequence[float] = (0.05, 0.1, 0.15, 0.2, 0.3),
        shading_factors: Sequence[float] = (0.6, 0.8, 1.0),
        params: MarketParameters | None = None,
    ) -> None:
        if not bidders:
            raise ConfigurationError("need at least one bidder")
        ids = [b.rack_id for b in bidders]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate bidder rack ids: {ids}")
        if not price_anchors or any(q < 0 for q in price_anchors):
            raise ConfigurationError("price anchors must be non-negative")
        if not shading_factors or any(not 0 < s <= 1 for s in shading_factors):
            raise ConfigurationError("shading factors must be in (0, 1]")
        self.bidders = list(bidders)
        self.pdu_spot_w = dict(pdu_spot_w)
        self.ups_spot_w = ups_spot_w
        self.engine = MarketClearing(
            params=params or MarketParameters(price_step=0.005)
        )
        anchors = sorted(set(price_anchors))
        self.strategy_grid = [
            (q_low, q_high, shading)
            for q_low, q_high in itertools.combinations_with_replacement(
                anchors, 2
            )
            for shading in sorted(set(shading_factors))
        ]

    # ------------------------------------------------------------------
    # Stage game
    # ------------------------------------------------------------------

    def _rack_bids(
        self, strategies: Mapping[str, tuple[float, float, float]]
    ) -> list[RackBid]:
        bids = []
        for bidder in self.bidders:
            q_low, q_high, shading = strategies[bidder.rack_id]
            bids.append(
                RackBid(
                    rack_id=bidder.rack_id,
                    pdu_id=bidder.pdu_id,
                    tenant_id=bidder.rack_id,
                    demand=bidder.bid_for(q_low, q_high, shading),
                    rack_cap_w=bidder.rack_cap_w,
                )
            )
        return bids

    def evaluate(
        self, strategies: Mapping[str, tuple[float, float, float]]
    ) -> tuple[dict[str, float], float, float]:
        """Clear the stage game; return (net benefits, price, total grant)."""
        result = self.engine.clear(
            self._rack_bids(strategies), self.pdu_spot_w, self.ups_spot_w
        )
        benefits = {
            bidder.rack_id: bidder.net_benefit(
                result.grant_for(bidder.rack_id), result.price
            )
            for bidder in self.bidders
        }
        return benefits, result.price, result.total_granted_w

    def best_response(
        self,
        bidder: Bidder,
        strategies: Mapping[str, tuple[float, float, float]],
    ) -> tuple[tuple[float, float, float], float]:
        """The bidder's best strategy given the others' bids fixed."""
        best_strategy = strategies[bidder.rack_id]
        benefits, _, _ = self.evaluate(strategies)
        best_benefit = benefits[bidder.rack_id]
        trial = dict(strategies)
        for candidate in self.strategy_grid:
            trial[bidder.rack_id] = candidate
            benefits, _, _ = self.evaluate(trial)
            # Strict improvement beyond tolerance avoids churn between
            # payoff-equivalent strategies.
            if benefits[bidder.rack_id] > best_benefit + 1e-12:
                best_benefit = benefits[bidder.rack_id]
                best_strategy = candidate
        return best_strategy, best_benefit

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def run(
        self,
        max_rounds: int = 25,
        initial: Mapping[str, tuple[float, float, float]] | None = None,
    ) -> EquilibriumResult:
        """Iterate round-robin best responses to a fixed point.

        Args:
            max_rounds: Round limit.
            initial: Starting strategies; defaults to every bidder
                playing truthful-ish anchors (lowest/highest grid
                prices, no shading).
        """
        if max_rounds <= 0:
            raise ConfigurationError("max_rounds must be positive")
        anchors = sorted({q for (q, _, _) in self.strategy_grid} | {
            q for (_, q, _) in self.strategy_grid
        })
        default = (anchors[0], anchors[-1], 1.0)
        strategies: dict[str, tuple[float, float, float]] = {
            bidder.rack_id: default for bidder in self.bidders
        }
        if initial:
            strategies.update(initial)

        prices: list[float] = []
        totals: list[float] = []
        converged = False
        rounds = 0
        for rounds in range(1, max_rounds + 1):
            changed = False
            for bidder in self.bidders:
                response, _ = self.best_response(bidder, strategies)
                if response != strategies[bidder.rack_id]:
                    strategies[bidder.rack_id] = response
                    changed = True
            _, price, total = self.evaluate(strategies)
            prices.append(price)
            totals.append(total)
            if not changed:
                converged = True
                break
        benefits, _, _ = self.evaluate(strategies)
        return EquilibriumResult(
            converged=converged,
            rounds=rounds,
            strategies=strategies,
            net_benefits=benefits,
            prices=prices,
            total_granted_w=totals,
        )
