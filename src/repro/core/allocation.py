"""Clearing outcomes: the allocation record and its integrity checks.

Separating the outcome container from the clearing algorithm lets the
baselines (:mod:`repro.core.baselines`) and the market-price sweep
experiments share one well-tested representation.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

from repro.core.bids import RackBid
from repro.errors import CapacityError

__all__ = ["AllocationResult", "verify_allocation"]


@dataclasses.dataclass(frozen=True)
class AllocationResult:
    """Outcome of one slot's spot-capacity allocation.

    Attributes:
        price: Headline clearing price, $/kW/h (0 for non-market
            allocators such as MaxPerf).  Under per-PDU (locational)
            pricing this is the grant-weighted mean of the PDU prices.
        grants_w: Watts of spot capacity granted per rack id.  Racks that
            bid but were priced out appear with a 0 grant.
        revenue_rate: Operator revenue rate in $/h; multiply by the slot
            length in hours for the per-slot payment.
        candidate_prices: Number of prices examined by the scan(s).
        feasible_prices: Number of those that satisfied all constraints.
        pdu_prices: Per-PDU clearing prices under locational pricing;
            empty under a single facility-wide price.
    """

    price: float
    grants_w: Mapping[str, float]
    revenue_rate: float
    candidate_prices: int = 0
    feasible_prices: int = 0
    pdu_prices: Mapping[str, float] = dataclasses.field(default_factory=dict)

    def price_for_pdu(self, pdu_id: str) -> float:
        """The clearing price racks on ``pdu_id`` pay this slot."""
        return self.pdu_prices.get(pdu_id, self.price)

    @property
    def total_granted_w(self) -> float:
        """Total spot capacity allocated this slot, watts."""
        return sum(self.grants_w.values())

    def grant_for(self, rack_id: str) -> float:
        """Grant for one rack (0 if the rack did not bid or was priced out)."""
        return self.grants_w.get(rack_id, 0.0)

    def revenue_for_slot(self, slot_seconds: float) -> float:
        """Operator revenue for one slot of this allocation, dollars."""
        return self.revenue_rate * (slot_seconds / 3600.0)

    @classmethod
    def empty(cls, price: float = 0.0) -> "AllocationResult":
        """The no-spot-capacity outcome (default on any exception path)."""
        return cls(price=price, grants_w={}, revenue_rate=0.0)


def verify_allocation(
    result: AllocationResult,
    bids: Sequence[RackBid],
    pdu_spot_w: Mapping[str, float],
    ups_spot_w: float,
    tolerance_w: float = 1e-6,
    extra_constraints: Sequence = (),
) -> None:
    """Assert an allocation respects Eqs. (2)-(4); raise otherwise.

    This is the reliability backstop: the operator must never issue
    grants that could overload the shared infrastructure, so the engine
    runs this check on every clearing outcome in tests and (cheaply) in
    the simulation loop.

    Raises:
        CapacityError: If any rack, PDU, or UPS constraint is violated,
            or if a grant exceeds the rack's demanded quantity.
    """
    by_rack = {bid.rack_id: bid for bid in bids}
    pdu_totals: dict[str, float] = {}
    total = 0.0
    for rack_id, grant in result.grants_w.items():
        if grant < -tolerance_w:
            raise CapacityError(f"rack {rack_id}: negative grant {grant}")
        bid = by_rack.get(rack_id)
        if bid is None:
            raise CapacityError(f"grant to rack {rack_id} that submitted no bid")
        if grant > bid.rack_cap_w + tolerance_w:
            raise CapacityError(
                f"rack {rack_id}: grant {grant:.3f} W exceeds rack headroom "
                f"{bid.rack_cap_w:.3f} W (Eq. 2)"
            )
        paid_price = result.price_for_pdu(bid.pdu_id)
        demanded = bid.clipped_demand_at(paid_price)
        if grant > demanded + tolerance_w:
            raise CapacityError(
                f"rack {rack_id}: grant {grant:.3f} W exceeds demand "
                f"{demanded:.3f} W at clearing price {paid_price:.4f}"
            )
        pdu_totals[bid.pdu_id] = pdu_totals.get(bid.pdu_id, 0.0) + grant
        total += grant
    for pdu_id, pdu_total in pdu_totals.items():
        cap = pdu_spot_w.get(pdu_id, 0.0)
        if pdu_total > cap + tolerance_w:
            raise CapacityError(
                f"PDU {pdu_id}: granted {pdu_total:.3f} W exceeds spot "
                f"capacity {cap:.3f} W (Eq. 3)"
            )
    if total > ups_spot_w + tolerance_w:
        raise CapacityError(
            f"UPS: granted {total:.3f} W exceeds spot capacity "
            f"{ups_spot_w:.3f} W (Eq. 4)"
        )
    for constraint in extra_constraints:
        granted = sum(
            result.grants_w.get(rack_id, 0.0) for rack_id in constraint.rack_ids
        )
        if granted > constraint.cap_w + tolerance_w:
            raise CapacityError(
                f"constraint {constraint.name}: granted {granted:.3f} W "
                f"exceeds cap {constraint.cap_w:.3f} W"
            )
