"""SpotDC's core market: demand functions, bids, uniform-price clearing,
the slot-by-slot market orchestrator, and the paper's baselines.
"""

from repro.core.allocation import AllocationResult, verify_allocation
from repro.core.baselines import MaxPerfAllocator, PowerCappedAllocator
from repro.core.bids import RackBid, TenantBid, bundle_linear_bid, flatten_bids
from repro.core.clearing import MarketClearing, clear_market
from repro.core.demand import DemandFunction, FullBid, LinearBid, StepBid
from repro.core.equilibrium import BestResponseSimulator, Bidder, EquilibriumResult
from repro.core.frame import BidFrame
from repro.core.market import Allocator, SlotMarketRecord, SpotDCAllocator

__all__ = [
    "AllocationResult",
    "Allocator",
    "BestResponseSimulator",
    "BidFrame",
    "Bidder",
    "EquilibriumResult",
    "DemandFunction",
    "FullBid",
    "LinearBid",
    "MarketClearing",
    "MaxPerfAllocator",
    "PowerCappedAllocator",
    "RackBid",
    "SlotMarketRecord",
    "SpotDCAllocator",
    "StepBid",
    "TenantBid",
    "bundle_linear_bid",
    "clear_market",
    "flatten_bids",
    "verify_allocation",
]
