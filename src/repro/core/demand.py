"""Demand functions for spot-capacity bidding.

The heart of SpotDC is how tenants communicate their *elastic* rack-level
spot-capacity demand to the operator (paper Section III-B1).  Three demand
function families are implemented, matching the paper's comparison
(Fig. 14):

* :class:`LinearBid` — the paper's proposal: a piece-wise linear curve
  defined by four parameters ``(D_max, q_min), (D_min, q_max)``.
* :class:`StepBid` — the Amazon-spot-style all-or-nothing bid: a fixed
  quantity at up to a fixed price.
* :class:`FullBid` — the complete (true) demand curve, an upper bound on
  what any parameterised bid can extract.

Price convention: all prices are **$/kW/h** (see :mod:`repro.units`), and
demand quantities are **watts**.  Every demand function is non-increasing
in price and zero above its maximum acceptable price.
"""

from __future__ import annotations

import abc
import bisect
from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import BidError

__all__ = [
    "DemandFunction",
    "LinearBid",
    "StepBid",
    "FullBid",
    "demand_matrix",
]


class DemandFunction(abc.ABC):
    """A non-increasing mapping from market price to demanded watts."""

    @abc.abstractmethod
    def demand_at(self, price: float) -> float:
        """Demanded spot capacity (watts) at ``price`` ($/kW/h)."""

    @property
    @abc.abstractmethod
    def max_demand_w(self) -> float:
        """Demand at a zero price — the most this bid can ever request."""

    @property
    @abc.abstractmethod
    def max_price(self) -> float:
        """Lowest price at and above which demand may be zero.

        Used by the clearing engine to prune its price scan.
        """

    def demand_grid(self, prices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`demand_at` over an array of prices.

        Subclasses override this with closed-form vector math; the base
        implementation loops (correct but slow for large scans).
        """
        return np.array([self.demand_at(float(p)) for p in prices])

    def validate_monotone(self, prices: Sequence[float]) -> bool:
        """Check non-increasing demand over the given price samples."""
        demands = [self.demand_at(p) for p in sorted(prices)]
        return all(a >= b - 1e-9 for a, b in zip(demands, demands[1:]))


class LinearBid(DemandFunction):
    """The paper's piece-wise linear demand function (Fig. 3a).

    Three segments:

    1. flat at ``d_max_w`` for prices up to ``q_min``;
    2. linearly decreasing from ``d_max_w`` to ``d_min_w`` on
       ``(q_min, q_max]``;
    3. zero above ``q_max`` (the vertical segment — ``q_max`` is the
       maximum acceptable price, at which the tenant still wants
       ``d_min_w``).

    Degenerate parameter choices are allowed exactly as the paper states:
    ``d_max_w == d_min_w`` or ``q_min == q_max`` each reduce the curve to
    a step function.

    Args:
        d_max_w: Maximum spot-capacity demand, watts.
        q_min: Price up to which the full ``d_max_w`` is demanded, $/kW/h.
        d_min_w: Minimum demand, held at the maximum acceptable price.
        q_max: Maximum acceptable price, $/kW/h.
    """

    def __init__(self, d_max_w: float, q_min: float, d_min_w: float, q_max: float):
        if d_max_w < 0 or d_min_w < 0:
            raise BidError(f"demands must be >= 0 (got {d_max_w}, {d_min_w})")
        if d_min_w > d_max_w:
            raise BidError(f"D_min ({d_min_w}) must not exceed D_max ({d_max_w})")
        if q_min < 0 or q_max < 0:
            raise BidError(f"prices must be >= 0 (got {q_min}, {q_max})")
        if q_max < q_min:
            raise BidError(f"q_max ({q_max}) must not be below q_min ({q_min})")
        self.d_max_w = float(d_max_w)
        self.q_min = float(q_min)
        self.d_min_w = float(d_min_w)
        self.q_max = float(q_max)

    def demand_at(self, price: float) -> float:
        if price > self.q_max:
            return 0.0
        if price <= self.q_min:
            return self.d_max_w
        if self.q_max == self.q_min:
            return self.d_max_w
        frac = (price - self.q_min) / (self.q_max - self.q_min)
        return self.d_max_w + frac * (self.d_min_w - self.d_max_w)

    def demand_grid(self, prices: np.ndarray) -> np.ndarray:
        prices = np.asarray(prices, dtype=float)
        if self.q_max == self.q_min:
            return np.where(prices <= self.q_max, self.d_max_w, 0.0)
        # A near-degenerate price range can overflow the division; the
        # clip makes the overflow harmless, so silence it locally.
        with np.errstate(over="ignore"):
            frac = np.clip(
                (prices - self.q_min) / (self.q_max - self.q_min), 0.0, 1.0
            )
        demand = self.d_max_w + frac * (self.d_min_w - self.d_max_w)
        return np.where(prices <= self.q_max, demand, 0.0)

    @property
    def max_demand_w(self) -> float:
        return self.d_max_w

    @property
    def max_price(self) -> float:
        return self.q_max

    def as_parameters(self) -> tuple[float, float, float, float]:
        """The paper's four bid parameters ``(D_max, q_min, D_min, q_max)``."""
        return (self.d_max_w, self.q_min, self.d_min_w, self.q_max)

    def __repr__(self) -> str:
        return (
            f"LinearBid(d_max_w={self.d_max_w:.1f}, q_min={self.q_min:.4f}, "
            f"d_min_w={self.d_min_w:.1f}, q_max={self.q_max:.4f})"
        )


class StepBid(DemandFunction):
    """All-or-nothing bid: ``demand_w`` at any price up to ``price_cap``.

    This is the Amazon-spot-style demand function the paper compares
    against: it cannot express elasticity, so the operator can satisfy a
    rack's demand only fully or not at all (Section III-B1).
    """

    def __init__(self, demand_w: float, price_cap: float):
        if demand_w < 0:
            raise BidError(f"demand must be >= 0, got {demand_w}")
        if price_cap < 0:
            raise BidError(f"price cap must be >= 0, got {price_cap}")
        self.demand_w = float(demand_w)
        self.price_cap = float(price_cap)

    def demand_at(self, price: float) -> float:
        return self.demand_w if price <= self.price_cap else 0.0

    def demand_grid(self, prices: np.ndarray) -> np.ndarray:
        prices = np.asarray(prices, dtype=float)
        return np.where(prices <= self.price_cap, self.demand_w, 0.0)

    @property
    def max_demand_w(self) -> float:
        return self.demand_w

    @property
    def max_price(self) -> float:
        return self.price_cap

    def __repr__(self) -> str:
        return f"StepBid(demand_w={self.demand_w:.1f}, price_cap={self.price_cap:.4f})"


class FullBid(DemandFunction):
    """The complete (true) demand curve, tabulated on a demand grid.

    ``FullBid`` represents the hypothetical market in which tenants hand
    the operator their *exact* demand curve — the "Reference" curve of
    Fig. 3(a) and the FullBid comparison point of Fig. 14.  It is built
    from a tenant's marginal-value curve: at price ``q`` the rational
    demand is the largest quantity whose marginal value (in $/W/h) still
    exceeds the price (in $/W/h, i.e. ``q / 1000``).

    Args:
        demands_w: Increasing grid of candidate spot quantities, watts.
            Must start at a value >= 0.
        marginal_values: Marginal value in **$/h per watt** at each grid
            point; must be non-increasing (concave total value).
        price_cap: Maximum acceptable price, $/kW/h; demand is zero above
            it regardless of marginal value (the paper's guideline that
            spot capacity should never cost more than guaranteed
            capacity applies to complete-curve bidders too).  ``None``
            means the curve's own top marginal value is the cap.
    """

    def __init__(
        self,
        demands_w: Sequence[float],
        marginal_values: Sequence[float],
        price_cap: float | None = None,
    ) -> None:
        demands = np.asarray(demands_w, dtype=float)
        marginals = np.asarray(marginal_values, dtype=float)
        if demands.ndim != 1 or demands.size == 0:
            raise BidError("demands_w must be a non-empty 1-D sequence")
        if demands.shape != marginals.shape:
            raise BidError("demands_w and marginal_values must align")
        if np.any(np.diff(demands) <= 0):
            raise BidError("demands_w must be strictly increasing")
        if np.any(demands < 0):
            raise BidError("demands_w must be non-negative")
        if np.any(np.diff(marginals) > 1e-12):
            raise BidError("marginal_values must be non-increasing (concave value)")
        if price_cap is not None and price_cap < 0:
            raise BidError(f"price_cap must be >= 0, got {price_cap}")
        self._demands = demands
        self._marginals = marginals
        self._price_cap = price_cap
        # Descending marginal values -> demand at price q is the largest
        # grid quantity with marginal value >= q.
        self._marginals_desc = marginals[::-1]

    @classmethod
    def from_value_curve(
        cls,
        gain_per_hour: Callable[[float], float],
        max_demand_w: float,
        grid_points: int = 200,
        price_cap: float | None = None,
    ) -> "FullBid":
        """Tabulate the true demand curve from a concave value function.

        Args:
            gain_per_hour: Total performance gain in $/h as a function of
                allocated spot watts (concave, increasing).
            max_demand_w: Upper end of the useful demand range.
            grid_points: Tabulation resolution.
            price_cap: Maximum acceptable price, $/kW/h (see class docs).
        """
        if max_demand_w <= 0:
            raise BidError("max_demand_w must be positive")
        if grid_points < 2:
            raise BidError("grid_points must be >= 2")
        demands = np.linspace(0.0, max_demand_w, grid_points + 1)[1:]
        values = np.array([gain_per_hour(float(d)) for d in demands])
        values = np.concatenate([[gain_per_hour(0.0)], values])
        marginals = np.diff(values) / np.diff(np.concatenate([[0.0], demands]))
        # Enforce non-increasing marginals (guards numeric noise on curves
        # that are concave only up to round-off).
        marginals = np.minimum.accumulate(marginals)
        return cls(demands, marginals, price_cap=price_cap)

    def demand_at(self, price: float) -> float:
        if self._price_cap is not None and price > self._price_cap:
            return 0.0
        price_per_watt_hour = price / 1000.0
        # Largest index with marginal >= price.  _marginals is descending
        # in index order already (non-increasing), so search the reversed
        # ascending copy.
        idx = bisect.bisect_left(self._marginals_desc.tolist(), price_per_watt_hour)
        count_at_least = self._marginals_desc.size - idx
        if count_at_least == 0:
            return 0.0
        return float(self._demands[count_at_least - 1])

    def demand_grid(self, prices: np.ndarray) -> np.ndarray:
        prices = np.asarray(prices, dtype=float)
        scaled = prices / 1000.0
        # For each price, count grid points whose marginal >= price.
        counts = np.searchsorted(self._marginals_desc, scaled, side="left")
        counts = self._marginals_desc.size - counts
        out = np.zeros_like(prices)
        nonzero = counts > 0
        out[nonzero] = self._demands[counts[nonzero] - 1]
        if self._price_cap is not None:
            out = np.where(prices <= self._price_cap, out, 0.0)
        return out

    @property
    def max_demand_w(self) -> float:
        return float(self._demands[-1])

    @property
    def max_price(self) -> float:
        curve_top = float(self._marginals[0] * 1000.0)
        if self._price_cap is not None:
            return min(curve_top, self._price_cap)
        return curve_top

    def __repr__(self) -> str:
        return (
            f"FullBid(points={self._demands.size}, "
            f"max_demand_w={self.max_demand_w:.1f}, max_price={self.max_price:.4f})"
        )


def demand_matrix(
    d_max_w: np.ndarray,
    q_min: np.ndarray,
    d_min_w: np.ndarray,
    q_max: np.ndarray,
    rack_cap_w: np.ndarray,
    prices: np.ndarray,
    sampled_rows: np.ndarray | None = None,
    sampled_demands: Sequence[DemandFunction] = (),
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Evaluate a whole bid column-set over a price grid in one kernel.

    This is the market core's hot demand kernel: given the columnar bid
    parameters of a :class:`~repro.core.frame.BidFrame`, it produces the
    rack-clipped ``(n_bids, n_prices)`` demand matrix with the *exact*
    arithmetic of :meth:`LinearBid.demand_grid` / :meth:`StepBid.demand_grid`
    (StepBid rows are encoded as the degenerate ``q_min == q_max`` linear
    curve, which evaluates identically).  Rows whose demand has no closed
    form (``FullBid`` and custom :class:`DemandFunction` subclasses) are
    listed in ``sampled_rows`` and sampled through their own
    :meth:`~DemandFunction.demand_grid`.

    Args:
        d_max_w / q_min / d_min_w / q_max: Piece-wise linear parameters,
            one entry per bid row (values for sampled rows are ignored).
        rack_cap_w: Physical rack headroom per row; clips every demand.
        prices: Ascending price grid, shape ``(n_prices,)``.
        sampled_rows: Row indices evaluated through ``sampled_demands``.
        sampled_demands: Demand objects aligned with ``sampled_rows``.
        out: Optional preallocated ``(n_bids, n_prices)`` output buffer —
            reused across price chunks to avoid re-allocation.

    Returns:
        The clipped demand matrix (``out`` when provided).
    """
    n = d_max_w.shape[0]
    prices = np.asarray(prices, dtype=float)
    if out is None:
        out = np.empty((n, prices.size))
    span = q_max - q_min
    degenerate = span <= 0
    # Mirrors LinearBid.demand_grid / the legacy vectorised path step for
    # step: same operations in the same order, so the two clearing paths
    # produce bit-identical per-bid demand.
    with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
        frac = np.clip(
            (prices[None, :] - q_min[:, None])
            / np.where(degenerate, 1.0, span)[:, None],
            0.0,
            1.0,
        )
    demand = d_max_w[:, None] + frac * (d_min_w - d_max_w)[:, None]
    demand = np.where(degenerate[:, None], d_max_w[:, None], demand)
    demand = np.where(prices[None, :] <= q_max[:, None], demand, 0.0)
    np.minimum(demand, rack_cap_w[:, None], out=out)
    if sampled_rows is not None and sampled_rows.size:
        for row, fn in zip(sampled_rows, sampled_demands):
            np.minimum(fn.demand_grid(prices), rack_cap_w[row], out=out[row])
    return out
