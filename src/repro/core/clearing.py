"""Uniform-price market clearing by feasible-price scan.

The operator maximises ``q(t) * Σ_r D_r(q(t))`` (paper Eq. 1) subject to
the rack / PDU / UPS capacity constraints (Eqs. 2-4) by scanning a grid
of candidate prices — "a simple search over the feasible price range"
(Section III-B2).  Because every demand function is non-increasing in
price, the feasible price set is upward-closed: once a price satisfies
every constraint, all higher prices do too.  The scan therefore walks the
grid once, records the profit at each feasible price, and returns the
*lowest* price attaining the maximum profit (ties break in tenants'
favour).

Implementation notes:

* The default pipeline is **columnar**: bids are viewed through a
  :class:`~repro.core.frame.BidFrame` (built once per slot), demand is
  evaluated as an ``(n_bids, n_prices)`` ndarray kernel
  (:func:`repro.core.demand.demand_matrix`), per-PDU totals are
  contiguous segment sums over the PDU-sorted rows, and grants are
  extracted as one demand-vector evaluation at the clearing price.
  Memory stays O(#bids x price-chunk); clearing cost stays in ndarray
  time, which is what makes 15,000-rack scans fast (Fig. 7b).
* The pre-frame object-at-a-time path is retained behind
  ``columnar=False`` as the parity/benchmark reference (see
  ``tests/test_bidframe_parity.py`` and ``BENCH_clearing.json``).
* Grid resolution is the operator knob ``price_step`` (the paper reports
  clearing times at 0.1 and 1 cent/kW steps).  The scan optionally
  augments the grid with each bid's breakpoints (``q_min``/``q_max``) so
  coarse grids do not miss profit kinks; the grid is built overshoot-free
  and breakpoints within float epsilon of a grid point are deduplicated
  with a tolerance.
"""

from __future__ import annotations

import dataclasses
import typing
from collections.abc import Mapping, Sequence

import numpy as np

from repro.config import MarketParameters
from repro.core.allocation import AllocationResult
from repro.core.bids import RackBid
from repro.core.demand import LinearBid
from repro.core.frame import BidFrame
from repro.errors import ClearingError

if typing.TYPE_CHECKING:
    from repro.infrastructure.constraints import CapacityConstraint

__all__ = ["MarketClearing", "clear_market"]

#: Feasibility slack for float comparisons against capacity bounds.
_TOL = 1e-9


def _base_grid(lo: float, hi: float, step: float) -> np.ndarray:
    """The fixed-step scan grid over ``[lo, hi]``, overshoot-free.

    ``np.arange(lo, hi + step, step)`` can overshoot ``hi`` by a whole
    extra element under float error; counting the steps explicitly keeps
    the last grid point at ``hi`` (up to epsilon).
    """
    if hi < lo:
        return np.array([lo])
    n = int(np.floor((hi - lo) / step * (1.0 + 1e-12) + 1e-9)) + 1
    return lo + step * np.arange(n)


def _augment_grid(
    grid: np.ndarray, points: np.ndarray, lo: float, hi: float, step: float
) -> np.ndarray:
    """Merge bid breakpoints into the grid, deduplicating with tolerance.

    Breakpoints that land within float epsilon of an existing grid point
    would otherwise survive ``np.unique`` as distinct candidates; merged
    values within ``step * 1e-9`` collapse onto the *smaller* one, which
    at a ``q_max`` kink is the breakpoint itself (keeping the kink's
    revenue in the scan).
    """
    points = points[(points >= lo) & (points <= hi)]
    if points.size == 0:
        return grid
    merged = np.unique(np.concatenate([grid, points]))
    keep = np.empty(merged.size, dtype=bool)
    keep[0] = True
    np.greater(np.diff(merged), step * 1e-9, out=keep[1:])
    return merged[keep]


@dataclasses.dataclass
class MarketClearing:
    """Reusable clearing engine configured with operator market knobs.

    Args:
        params: Operator market parameters (price grid, reserve price).
        include_breakpoints: Add every bid's demand-curve breakpoints to
            the candidate grid.  Improves profit at coarse steps for a
            small cost; disabled when reproducing the paper's pure
            fixed-step scan timings.
        columnar: Clear through the :class:`BidFrame` columnar pipeline
            (the default).  ``False`` selects the legacy object-at-a-time
            path, kept as the parity and benchmark reference.
    """

    params: MarketParameters = dataclasses.field(default_factory=MarketParameters)
    include_breakpoints: bool = True
    columnar: bool = True

    def candidate_prices(
        self, bids: "Sequence[RackBid] | BidFrame"
    ) -> np.ndarray:
        """The ascending price grid the scan will evaluate."""
        lo = self.params.reserve_price
        hi = self.params.max_price
        # No bid demands anything above the highest acceptable price, so
        # scanning beyond it only wastes work.
        n_bids = len(bids)
        if isinstance(bids, BidFrame):
            if n_bids:
                hi = min(hi, bids.max_acceptable_price())
            # Frames are immutable once built, so a grid computed for
            # one (bounds, step, breakpoints-mode) tuple stays valid for
            # the frame's whole lifetime.  The incremental builder hands
            # the engine the *same frame object* on unchanged-bid slots,
            # turning the per-slot grid rebuild into a dict hit.
            key = (lo, hi, self.params.price_step, self.include_breakpoints)
            cache = bids._grid_cache
            if cache is None:
                cache = bids._grid_cache = {}
            grid = cache.get(key)
            if grid is None:
                if hi < lo:
                    grid = np.array([lo])
                else:
                    grid = _base_grid(lo, hi, self.params.price_step)
                    if self.include_breakpoints and n_bids:
                        grid = _augment_grid(
                            grid, bids.breakpoints, lo, hi,
                            self.params.price_step,
                        )
                cache[key] = grid
            return grid
        else:
            if n_bids:
                hi = min(hi, max(b.demand.max_price for b in bids))
            collected = []
            for bid in bids:
                demand = bid.demand
                for attr in ("q_min", "q_max", "price_cap"):
                    value = getattr(demand, attr, None)
                    if value is not None:
                        collected.append(float(value))
            points = np.asarray(collected, dtype=float)
        if hi < lo:
            return np.array([lo])
        grid = _base_grid(lo, hi, self.params.price_step)
        if self.include_breakpoints and n_bids:
            grid = _augment_grid(grid, points, lo, hi, self.params.price_step)
        return grid

    # ------------------------------------------------------------------
    # Facility-wide uniform price
    # ------------------------------------------------------------------

    def clear(
        self,
        bids: "Sequence[RackBid] | BidFrame",
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        extra_constraints: Sequence["CapacityConstraint"] = (),
    ) -> AllocationResult:
        """Clear one slot's market.

        Args:
            bids: Flattened per-rack bids for this slot — either a
                :class:`BidFrame` (preferred on hot paths; built once
                per slot) or a sequence of :class:`RackBid`.
            pdu_spot_w: Predicted spot capacity per PDU, watts (``P_m``).
                PDUs hosting bidding racks but absent from this mapping
                are treated as offering zero spot capacity.
            ups_spot_w: Predicted facility-level spot capacity (``P_o``).
            extra_constraints: Additional rack-set capacity bounds —
                phase balance, heat density (paper Section III-A) — each
                limiting the total grant to its rack set.

        Returns:
            The profit-maximising feasible allocation; the empty
            allocation if no bids were submitted.

        Raises:
            ClearingError: On negative capacities (inconsistent inputs).
        """
        self._validate_capacities(pdu_spot_w, ups_spot_w, extra_constraints)
        if not len(bids):
            return AllocationResult.empty()
        if isinstance(bids, BidFrame):
            return self._clear_frame(bids, pdu_spot_w, ups_spot_w, extra_constraints)
        if self.columnar:
            return self._clear_frame(
                BidFrame.from_bids(bids), pdu_spot_w, ups_spot_w, extra_constraints
            )
        return self._clear_objects(bids, pdu_spot_w, ups_spot_w, extra_constraints)

    @staticmethod
    def _validate_capacities(
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        extra_constraints: Sequence["CapacityConstraint"],
    ) -> None:
        if ups_spot_w < 0:
            raise ClearingError(f"negative UPS spot capacity {ups_spot_w}")
        for pdu_id, cap in pdu_spot_w.items():
            if cap < 0:
                raise ClearingError(f"negative spot capacity for PDU {pdu_id}: {cap}")
        for constraint in extra_constraints:
            if constraint.cap_w < 0:
                raise ClearingError(
                    f"negative capacity for constraint {constraint.name}"
                )

    # -- columnar path --------------------------------------------------

    def _clear_frame(
        self,
        frame: BidFrame,
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        extra_constraints: Sequence["CapacityConstraint"],
    ) -> AllocationResult:
        prices = self.candidate_prices(frame)
        pdu_caps = np.array([pdu_spot_w.get(p, 0.0) for p in frame.pdu_ids])

        # Bid admission (vectorised): a bid whose demand exceeds the
        # per-grant ceiling min(rack headroom, PDU spot, UPS spot) at
        # EVERY acceptable price can never be satisfied; reject up front
        # so one hopeless bid does not blank the whole market.
        ceiling = np.minimum(frame.rack_cap_w, pdu_caps[frame.pdu_code])
        np.minimum(ceiling, ups_spot_w, out=ceiling)
        for constraint in extra_constraints:
            rows = frame.rows_for(constraint.rack_ids)
            if rows.size:
                ceiling[rows] = np.minimum(ceiling[rows], constraint.cap_w)
        rejected = frame.floor_w > ceiling + _TOL
        if rejected.all():
            # Priced out, not silent: every rejected rack still appears
            # with a zero grant.
            return AllocationResult(
                price=float(prices[-1]) + self.params.price_step,
                grants_w={rid: 0.0 for rid in frame.rack_ids},
                revenue_rate=0.0,
                candidate_prices=int(prices.size),
                feasible_prices=0,
            )
        if rejected.any():
            rejected_ids = [
                frame.rack_ids[int(i)] for i in np.flatnonzero(rejected)
            ]
            admitted = frame.select(np.flatnonzero(~rejected))
        else:
            rejected_ids = []
            admitted = frame

        # Demand accumulation: a breakpoint sweep over the price grid —
        # O(n log P) scatter + one cumsum per aggregate — instead of
        # materialising the (n_bids, n_prices) demand matrix (see
        # BidFrame.demand_totals).  Constraint groups accumulate
        # alongside the per-PDU totals.
        extra_caps = np.array([c.cap_w for c in extra_constraints])
        member_rows = [admitted.rows_for(c.rack_ids) for c in extra_constraints]
        pdu_demand, extra_demand = admitted.demand_totals(prices, member_rows)
        total_demand = pdu_demand.sum(axis=0)

        feasible = (total_demand <= ups_spot_w + _TOL) & np.all(
            pdu_demand <= pdu_caps[:, None] + _TOL, axis=0
        )
        if extra_constraints:
            feasible &= np.all(
                extra_demand <= extra_caps[:, None] + _TOL, axis=0
            )
        n_feasible = int(feasible.sum())
        if n_feasible == 0:
            # The scan grid ends at the highest acceptable bid price where
            # demand may still be positive; above it demand is zero, which
            # is always feasible.  Profit there is zero.
            return AllocationResult.empty(
                price=float(prices[-1]) + self.params.price_step
            )

        revenue_rate = prices * total_demand / 1000.0  # $/h
        revenue_rate = np.where(feasible, revenue_rate, -np.inf)
        best = int(np.argmax(revenue_rate))  # argmax returns lowest index on ties
        best_price = float(prices[best])

        # Grant extraction: one demand-vector evaluation at the clearing
        # price, zipped straight into the result.
        granted = admitted.demand_at(best_price)
        grants = dict(zip(admitted.rack_ids, granted.tolist()))
        # Rejected bids appear with a zero grant (priced out, not silent).
        for rack_id in rejected_ids:
            grants[rack_id] = 0.0
        return AllocationResult(
            price=best_price,
            grants_w=grants,
            revenue_rate=float(max(revenue_rate[best], 0.0)),
            candidate_prices=int(prices.size),
            feasible_prices=n_feasible,
        )

    # -- legacy object path ---------------------------------------------

    def _clear_objects(
        self,
        bids: Sequence[RackBid],
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        extra_constraints: Sequence["CapacityConstraint"],
    ) -> AllocationResult:
        prices = self.candidate_prices(bids)
        pdu_ids = sorted({bid.pdu_id for bid in bids})
        pdu_index = {pdu_id: i for i, pdu_id in enumerate(pdu_ids)}
        pdu_caps = np.array([pdu_spot_w.get(p, 0.0) for p in pdu_ids])

        # Bid admission; the per-PDU grant ceilings min(PDU spot, UPS
        # spot) are hoisted out of the per-bid loop.
        pdu_ceiling = {
            pdu_id: min(pdu_spot_w.get(pdu_id, 0.0), ups_spot_w)
            for pdu_id in pdu_ids
        }
        admitted = []
        rejected_ids = []
        for bid in bids:
            ceiling = min(bid.rack_cap_w, pdu_ceiling[bid.pdu_id])
            for constraint in extra_constraints:
                if bid.rack_id in constraint.rack_ids:
                    ceiling = min(ceiling, constraint.cap_w)
            floor_demand = min(
                bid.demand.demand_at(bid.demand.max_price), bid.rack_cap_w
            )
            if floor_demand > ceiling + _TOL:
                rejected_ids.append(bid.rack_id)
            else:
                admitted.append(bid)
        if not admitted:
            return AllocationResult(
                price=float(prices[-1]) + self.params.price_step,
                grants_w={rack_id: 0.0 for rack_id in rejected_ids},
                revenue_rate=0.0,
                candidate_prices=int(prices.size),
                feasible_prices=0,
            )

        # Accumulate rack demand into per-PDU totals across the whole
        # grid; extra constraint groups (phase/heat) accumulate alongside.
        pdu_demand = np.zeros((len(pdu_ids), prices.size))
        extra_demand = np.zeros((len(extra_constraints), prices.size))
        extra_caps = np.array([c.cap_w for c in extra_constraints])
        membership = [c.rack_ids for c in extra_constraints]

        linear_bids = [
            bid for bid in admitted if type(bid.demand) is LinearBid
        ]
        generic_bids = [
            bid for bid in admitted if type(bid.demand) is not LinearBid
        ]
        if linear_bids:
            self._accumulate_linear(
                linear_bids, prices, pdu_index, membership,
                pdu_demand, extra_demand,
            )
        for bid in generic_bids:
            demand = np.minimum(bid.demand.demand_grid(prices), bid.rack_cap_w)
            pdu_demand[pdu_index[bid.pdu_id]] += demand
            for k, rack_ids in enumerate(membership):
                if bid.rack_id in rack_ids:
                    extra_demand[k] += demand
        total_demand = pdu_demand.sum(axis=0)

        feasible = (total_demand <= ups_spot_w + _TOL) & np.all(
            pdu_demand <= pdu_caps[:, None] + _TOL, axis=0
        )
        if extra_constraints:
            feasible &= np.all(
                extra_demand <= extra_caps[:, None] + _TOL, axis=0
            )
        n_feasible = int(feasible.sum())
        if n_feasible == 0:
            return AllocationResult.empty(
                price=float(prices[-1]) + self.params.price_step
            )

        revenue_rate = prices * total_demand / 1000.0  # $/h
        revenue_rate = np.where(feasible, revenue_rate, -np.inf)
        best = int(np.argmax(revenue_rate))  # argmax returns lowest index on ties
        best_price = float(prices[best])

        grants = {
            bid.rack_id: float(
                min(bid.demand.demand_at(best_price), bid.rack_cap_w)
            )
            for bid in admitted
        }
        for rack_id in rejected_ids:
            grants[rack_id] = 0.0
        return AllocationResult(
            price=best_price,
            grants_w=grants,
            revenue_rate=float(max(revenue_rate[best], 0.0)),
            candidate_prices=int(prices.size),
            feasible_prices=n_feasible,
        )

    @staticmethod
    def _accumulate_linear(
        bids: Sequence[RackBid],
        prices: np.ndarray,
        pdu_index: Mapping[str, int],
        membership: Sequence[frozenset[str]],
        pdu_demand: np.ndarray,
        extra_demand: np.ndarray,
        chunk: int = 2048,
    ) -> None:
        """Vectorised demand accumulation for LinearBid bids (object path).

        Evaluates all bids' piece-wise linear curves over the whole price
        grid with one broadcasted expression per chunk (memory is bounded
        at ``chunk x len(prices)`` floats) and scatter-adds the rows into
        the per-PDU / per-constraint totals.
        """
        d_max = np.array([b.demand.d_max_w for b in bids])
        d_min = np.array([b.demand.d_min_w for b in bids])
        q_min = np.array([b.demand.q_min for b in bids])
        q_max = np.array([b.demand.q_max for b in bids])
        caps = np.array([b.rack_cap_w for b in bids])
        rows = np.array([pdu_index[b.pdu_id] for b in bids])
        span = q_max - q_min
        degenerate = span <= 0

        member_rows: list[np.ndarray] = [
            np.array(
                [i for i, b in enumerate(bids) if b.rack_id in rack_ids],
                dtype=int,
            )
            for rack_ids in membership
        ]

        for start in range(0, len(bids), chunk):
            sl = slice(start, start + chunk)
            with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
                frac = np.clip(
                    (prices[None, :] - q_min[sl, None])
                    / np.where(degenerate[sl], 1.0, span[sl])[:, None],
                    0.0,
                    1.0,
                )
            demand = d_max[sl, None] + frac * (d_min[sl] - d_max[sl])[:, None]
            demand = np.where(degenerate[sl, None], d_max[sl, None], demand)
            demand = np.where(prices[None, :] <= q_max[sl, None], demand, 0.0)
            np.minimum(demand, caps[sl, None], out=demand)
            np.add.at(pdu_demand, rows[sl], demand)
            for k, rows_k in enumerate(member_rows):
                local = rows_k[(rows_k >= start) & (rows_k < start + chunk)]
                if local.size:
                    extra_demand[k] += demand[local - start].sum(axis=0)

    # ------------------------------------------------------------------
    # Locational (per-PDU) pricing
    # ------------------------------------------------------------------

    def clear_per_pdu(
        self,
        bids: "Sequence[RackBid] | BidFrame",
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        extra_constraints: Sequence["CapacityConstraint"] = (),
    ) -> AllocationResult:
        """Clear with a *locational* uniform price per PDU.

        A single facility-wide price does not scale: in a large facility
        with many PDUs, at almost every slot *some* PDU's near-inelastic
        demand exceeds its local headroom, which forces the one global
        price above that demand's acceptable cap — pricing everyone out
        everywhere, including on PDUs with plenty of spare capacity.
        Locational pricing fixes this while keeping each PDU's clearing
        the paper's simple feasible-price scan (and keeping prices
        uniform across the racks that actually share a constraint).

        The facility-level (UPS) headroom is apportioned across PDUs in
        proportion to each PDU's servable interest
        ``min(P_m, local max demand)`` — demand-adaptive, and the sum of
        apportioned caps never exceeds ``P_o`` (Eq. 4 holds by
        construction).

        On the columnar path each PDU's market is a contiguous *frame
        slice*; no per-slot object regrouping happens.

        Returns:
            A combined allocation whose ``pdu_prices`` carries each
            PDU's clearing price; the headline ``price`` is the
            grant-weighted mean.
        """
        if ups_spot_w < 0:
            raise ClearingError(f"negative UPS spot capacity {ups_spot_w}")
        if not len(bids):
            return AllocationResult.empty()
        if isinstance(bids, BidFrame):
            return self._clear_per_pdu_frame(
                bids, pdu_spot_w, ups_spot_w, extra_constraints
            )
        if self.columnar:
            return self._clear_per_pdu_frame(
                BidFrame.from_bids(bids), pdu_spot_w, ups_spot_w, extra_constraints
            )
        return self._clear_per_pdu_objects(
            bids, pdu_spot_w, ups_spot_w, extra_constraints
        )

    def _apportion_pdu_caps(
        self,
        frame: BidFrame,
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        extra_constraints: Sequence["CapacityConstraint"],
    ) -> tuple[list[float], dict[str, float]]:
        """Per-PDU spot caps after apportioning the UPS headroom.

        Returns the caps in :meth:`BidFrame.pdu_slices` order, plus the
        rack → servable-demand map shared with
        :func:`_localize_constraints`.  Apportioning by servable
        interest guarantees the caps sum to at most ``ups_spot_w``
        whenever total interest exceeds it (Eq. 4 by construction) —
        the property the sharded path's reconciliation pass relies on.
        """
        servable = np.minimum(frame.max_demand_w, frame.rack_cap_w)
        max_demand = (
            {rid: float(v) for rid, v in zip(frame.rack_ids, servable)}
            if extra_constraints
            else {}
        )
        starts, seg_codes = frame.segments()
        local_interest = np.add.reduceat(servable, starts)
        interest = {
            frame.pdu_ids[int(seg)]: min(
                pdu_spot_w.get(frame.pdu_ids[int(seg)], 0.0), float(total)
            )
            for seg, total in zip(seg_codes, local_interest)
        }
        total_interest = sum(interest.values())
        caps: list[float] = []
        for seg in seg_codes:
            pdu_id = frame.pdu_ids[int(seg)]
            local_cap = pdu_spot_w.get(pdu_id, 0.0)
            if total_interest > ups_spot_w and total_interest > 0:
                local_cap = min(
                    local_cap, ups_spot_w * interest[pdu_id] / total_interest
                )
            caps.append(local_cap)
        return caps, max_demand

    def _pdu_tasks(
        self,
        frame: BidFrame,
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        extra_constraints: Sequence["CapacityConstraint"],
    ) -> list[tuple[str, BidFrame, float, tuple]]:
        """The per-PDU clearing work list: ``(pdu_id, slice, cap, cons)``.

        Each task is self-contained — clearing it touches nothing
        outside its own slice — which is what makes the list a valid
        unit of distribution for :mod:`repro.core.sharding`.
        """
        caps, max_demand = self._apportion_pdu_caps(
            frame, pdu_spot_w, ups_spot_w, extra_constraints
        )
        tasks: list[tuple[str, BidFrame, float, tuple]] = []
        for (pdu_id, sub), local_cap in zip(frame.pdu_slices(), caps):
            local_constraints = (
                tuple(
                    _localize_constraints(
                        extra_constraints,
                        set(sub.rack_ids),
                        max_demand,
                    )
                )
                if extra_constraints
                else ()
            )
            tasks.append((pdu_id, sub, local_cap, local_constraints))
        return tasks

    def _clear_pdu_slice(
        self, task: tuple[str, BidFrame, float, tuple]
    ) -> AllocationResult:
        """Clear one PDU task from :meth:`_pdu_tasks`."""
        pdu_id, sub, local_cap, local_constraints = task
        return self._clear_frame(
            sub, {pdu_id: local_cap}, local_cap, local_constraints
        )

    def _combine_pdu_results(
        self,
        frame: BidFrame,
        per_pdu: Sequence[tuple[str, AllocationResult]],
    ) -> AllocationResult:
        """Merge per-PDU allocations into the combined slot result.

        Accumulation runs sequentially in the order given — callers pass
        results in :meth:`BidFrame.pdu_slices` order regardless of where
        each PDU was cleared, so serial and sharded paths sum the same
        floats in the same order (byte-identical results).
        """
        grants: dict[str, float] = {}
        pdu_prices: dict[str, float] = {}
        revenue_rate = 0.0
        candidates = 0
        feasible = 0
        for pdu_id, local in per_pdu:
            grants.update(local.grants_w)
            pdu_prices[pdu_id] = local.price
            revenue_rate += local.revenue_rate
            candidates += local.candidate_prices
            feasible += local.feasible_prices

        granted = np.fromiter(
            (grants.get(rid, 0.0) for rid in frame.rack_ids),
            dtype=float,
            count=len(frame),
        )
        total = float(granted.sum())
        if total > 0:
            row_prices = np.fromiter(
                (pdu_prices[p] for p in frame.pdu_ids),
                dtype=float,
                count=len(frame.pdu_ids),
            )[frame.pdu_code]
            headline = float((row_prices * granted).sum()) / total
        else:
            headline = 0.0
        return AllocationResult(
            price=headline,
            grants_w=grants,
            revenue_rate=revenue_rate,
            candidate_prices=candidates,
            feasible_prices=feasible,
            pdu_prices=pdu_prices,
        )

    def _clear_per_pdu_frame(
        self,
        frame: BidFrame,
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        extra_constraints: Sequence["CapacityConstraint"],
    ) -> AllocationResult:
        tasks = self._pdu_tasks(
            frame, pdu_spot_w, ups_spot_w, extra_constraints
        )
        per_pdu = [
            (task[0], self._clear_pdu_slice(task)) for task in tasks
        ]
        return self._combine_pdu_results(frame, per_pdu)

    def _clear_per_pdu_objects(
        self,
        bids: Sequence[RackBid],
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        extra_constraints: Sequence["CapacityConstraint"],
    ) -> AllocationResult:
        by_pdu: dict[str, list[RackBid]] = {}
        for bid in bids:
            by_pdu.setdefault(bid.pdu_id, []).append(bid)
        max_demand = (
            {
                bid.rack_id: min(bid.demand.max_demand_w, bid.rack_cap_w)
                for bid in bids
            }
            if extra_constraints
            else {}
        )

        interest = {
            pdu_id: min(
                pdu_spot_w.get(pdu_id, 0.0),
                sum(
                    min(b.demand.max_demand_w, b.rack_cap_w)
                    for b in pdu_bids
                ),
            )
            for pdu_id, pdu_bids in by_pdu.items()
        }
        total_interest = sum(interest.values())
        grants: dict[str, float] = {}
        pdu_prices: dict[str, float] = {}
        revenue_rate = 0.0
        candidates = 0
        feasible = 0
        for pdu_id, pdu_bids in by_pdu.items():
            local_cap = pdu_spot_w.get(pdu_id, 0.0)
            if total_interest > ups_spot_w and total_interest > 0:
                local_cap = min(
                    local_cap, ups_spot_w * interest[pdu_id] / total_interest
                )
            local_constraints = (
                _localize_constraints(
                    extra_constraints,
                    {bid.rack_id for bid in pdu_bids},
                    max_demand,
                )
                if extra_constraints
                else ()
            )
            local = self._clear_objects(
                pdu_bids, {pdu_id: local_cap}, local_cap, local_constraints
            )
            grants.update(local.grants_w)
            pdu_prices[pdu_id] = local.price
            revenue_rate += local.revenue_rate
            candidates += local.candidate_prices
            feasible += local.feasible_prices
        total = sum(grants.values())
        headline = (
            sum(
                pdu_prices[bid.pdu_id] * grants.get(bid.rack_id, 0.0)
                for bid in bids
            )
            / total
            if total > 0
            else 0.0
        )
        return AllocationResult(
            price=headline,
            grants_w=grants,
            revenue_rate=revenue_rate,
            candidate_prices=candidates,
            feasible_prices=feasible,
            pdu_prices=pdu_prices,
        )


def _localize_constraints(
    extra_constraints: Sequence["CapacityConstraint"],
    local_ids: set[str],
    max_demand: Mapping[str, float],
):
    """Restrict rack-set constraints to one PDU's local market.

    Phase-balance constraints live within a single PDU, so they localize
    exactly.  A heat zone spanning several PDUs is apportioned by local
    maximum-demand share — a conservative decomposition (the per-PDU
    shares always sum to at most the zone cap).  Both clearing paths
    call this with the same rack → servable-demand mapping, so the
    apportioned caps are bit-identical.
    """
    from repro.infrastructure.constraints import CapacityConstraint

    localized = []
    for constraint in extra_constraints:
        members_here = constraint.rack_ids & local_ids
        if not members_here:
            continue
        total = sum(
            max_demand.get(rack_id, 0.0) for rack_id in constraint.rack_ids
        )
        here = sum(max_demand.get(rack_id, 0.0) for rack_id in members_here)
        if constraint.rack_ids <= local_ids or total <= 0:
            cap = constraint.cap_w
        else:
            cap = constraint.cap_w * here / total
        localized.append(
            CapacityConstraint(
                name=constraint.name,
                rack_ids=frozenset(members_here),
                cap_w=cap,
            )
        )
    return localized


def clear_market(
    bids: "Sequence[RackBid] | BidFrame",
    pdu_spot_w: Mapping[str, float],
    ups_spot_w: float,
    params: MarketParameters | None = None,
    per_pdu: bool = False,
    extra_constraints: Sequence["CapacityConstraint"] = (),
) -> AllocationResult:
    """Convenience one-shot clearing with default engine settings.

    Args:
        bids: Flattened per-rack bids (sequence or :class:`BidFrame`).
        pdu_spot_w: Predicted spot capacity per PDU.
        ups_spot_w: Predicted facility spot capacity.
        params: Market knobs.
        per_pdu: Use locational per-PDU pricing instead of one
            facility-wide price.
        extra_constraints: Phase-balance / heat-density bounds.
    """
    engine = MarketClearing(params=params or MarketParameters())
    if per_pdu:
        return engine.clear_per_pdu(
            bids, pdu_spot_w, ups_spot_w, extra_constraints
        )
    return engine.clear(bids, pdu_spot_w, ups_spot_w, extra_constraints)
