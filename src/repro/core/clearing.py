"""Uniform-price market clearing by feasible-price scan.

The operator maximises ``q(t) * Σ_r D_r(q(t))`` (paper Eq. 1) subject to
the rack / PDU / UPS capacity constraints (Eqs. 2-4) by scanning a grid
of candidate prices — "a simple search over the feasible price range"
(Section III-B2).  Because every demand function is non-increasing in
price, the feasible price set is upward-closed: once a price satisfies
every constraint, all higher prices do too.  The scan therefore walks the
grid once, records the profit at each feasible price, and returns the
*lowest* price attaining the maximum profit (ties break in tenants'
favour).

Implementation notes:

* Demand is evaluated with each bid's vectorised
  :meth:`~repro.core.demand.DemandFunction.demand_grid`, clipped to the
  rack's physical headroom, and accumulated into per-PDU totals — memory
  is O(#PDUs x #prices), independent of the number of racks, which is
  what makes 15,000-rack scans fast (Fig. 7b).
* Grid resolution is the operator knob ``price_step`` (the paper reports
  clearing times at 0.1 and 1 cent/kW steps).  The scan optionally
  augments the grid with each bid's breakpoints (``q_min``/``q_max``) so
  coarse grids do not miss profit kinks.
"""

from __future__ import annotations

import dataclasses
import typing
from collections.abc import Mapping, Sequence

import numpy as np

from repro.config import MarketParameters
from repro.core.allocation import AllocationResult
from repro.core.bids import RackBid
from repro.core.demand import LinearBid
from repro.errors import ClearingError

if typing.TYPE_CHECKING:
    from repro.infrastructure.constraints import CapacityConstraint

__all__ = ["MarketClearing", "clear_market"]


@dataclasses.dataclass
class MarketClearing:
    """Reusable clearing engine configured with operator market knobs.

    Args:
        params: Operator market parameters (price grid, reserve price).
        include_breakpoints: Add every bid's demand-curve breakpoints to
            the candidate grid.  Improves profit at coarse steps for a
            small cost; disabled when reproducing the paper's pure
            fixed-step scan timings.
    """

    params: MarketParameters = dataclasses.field(default_factory=MarketParameters)
    include_breakpoints: bool = True

    def candidate_prices(self, bids: Sequence[RackBid]) -> np.ndarray:
        """The ascending price grid the scan will evaluate."""
        lo = self.params.reserve_price
        hi = self.params.max_price
        # No bid demands anything above the highest acceptable price, so
        # scanning beyond it only wastes work.
        if bids:
            highest_bid = max(b.demand.max_price for b in bids)
            hi = min(hi, highest_bid)
        if hi < lo:
            return np.array([lo])
        grid = np.arange(lo, hi + self.params.price_step, self.params.price_step)
        if self.include_breakpoints and bids:
            points = []
            for bid in bids:
                demand = bid.demand
                for attr in ("q_min", "q_max", "price_cap"):
                    value = getattr(demand, attr, None)
                    if value is not None and lo <= value <= hi:
                        points.append(value)
            if points:
                grid = np.unique(np.concatenate([grid, np.asarray(points)]))
        return grid

    def clear(
        self,
        bids: Sequence[RackBid],
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        extra_constraints: Sequence["CapacityConstraint"] = (),
    ) -> AllocationResult:
        """Clear one slot's market.

        Args:
            bids: Flattened per-rack bids for this slot.
            pdu_spot_w: Predicted spot capacity per PDU, watts (``P_m``).
                PDUs hosting bidding racks but absent from this mapping
                are treated as offering zero spot capacity.
            ups_spot_w: Predicted facility-level spot capacity (``P_o``).
            extra_constraints: Additional rack-set capacity bounds —
                phase balance, heat density (paper Section III-A) — each
                limiting the total grant to its rack set.

        Returns:
            The profit-maximising feasible allocation; the empty
            allocation if no bids were submitted.

        Raises:
            ClearingError: On negative capacities (inconsistent inputs).
        """
        if ups_spot_w < 0:
            raise ClearingError(f"negative UPS spot capacity {ups_spot_w}")
        for pdu_id, cap in pdu_spot_w.items():
            if cap < 0:
                raise ClearingError(f"negative spot capacity for PDU {pdu_id}: {cap}")
        for constraint in extra_constraints:
            if constraint.cap_w < 0:
                raise ClearingError(
                    f"negative capacity for constraint {constraint.name}"
                )
        if not bids:
            return AllocationResult.empty()

        tol = 1e-9
        prices = self.candidate_prices(bids)
        pdu_ids = sorted({bid.pdu_id for bid in bids})
        pdu_index = {pdu_id: i for i, pdu_id in enumerate(pdu_ids)}
        pdu_caps = np.array([pdu_spot_w.get(p, 0.0) for p in pdu_ids])

        # Bid admission: a bid whose demand exceeds the per-grant ceiling
        # min(rack headroom, PDU spot, UPS spot) at EVERY acceptable price
        # can never be satisfied (all-or-nothing or floor-bound demand
        # bigger than the headroom).  Such bids are rejected up front —
        # otherwise no price would be feasible and the single uniform
        # price would blank the whole market, including other PDUs.
        admitted = []
        rejected_ids = []
        for bid in bids:
            ceiling = min(
                bid.rack_cap_w, pdu_spot_w.get(bid.pdu_id, 0.0), ups_spot_w
            )
            for constraint in extra_constraints:
                if bid.rack_id in constraint.rack_ids:
                    ceiling = min(ceiling, constraint.cap_w)
            floor_demand = min(
                bid.demand.demand_at(bid.demand.max_price), bid.rack_cap_w
            )
            if floor_demand > ceiling + tol:
                rejected_ids.append(bid.rack_id)
            else:
                admitted.append(bid)
        if not admitted:
            # Priced out, not silent: every rejected rack still appears
            # with a zero grant.
            return AllocationResult(
                price=float(prices[-1]) + self.params.price_step,
                grants_w={rack_id: 0.0 for rack_id in rejected_ids},
                revenue_rate=0.0,
                candidate_prices=int(prices.size),
                feasible_prices=0,
            )

        # Accumulate rack demand into per-PDU totals across the whole
        # grid; extra constraint groups (phase/heat) accumulate alongside.
        # LinearBids (the overwhelmingly common case) take a fully
        # vectorised path — all bids at once, chunked to bound memory —
        # which is what keeps 15,000-rack scans sub-second (Fig. 7b).
        pdu_demand = np.zeros((len(pdu_ids), prices.size))
        extra_demand = np.zeros((len(extra_constraints), prices.size))
        extra_caps = np.array([c.cap_w for c in extra_constraints])
        membership = [c.rack_ids for c in extra_constraints]

        linear_bids = [
            bid for bid in admitted if type(bid.demand) is LinearBid
        ]
        generic_bids = [
            bid for bid in admitted if type(bid.demand) is not LinearBid
        ]
        if linear_bids:
            self._accumulate_linear(
                linear_bids, prices, pdu_index, membership,
                pdu_demand, extra_demand,
            )
        for bid in generic_bids:
            demand = np.minimum(bid.demand.demand_grid(prices), bid.rack_cap_w)
            pdu_demand[pdu_index[bid.pdu_id]] += demand
            for k, rack_ids in enumerate(membership):
                if bid.rack_id in rack_ids:
                    extra_demand[k] += demand
        total_demand = pdu_demand.sum(axis=0)

        feasible = (total_demand <= ups_spot_w + tol) & np.all(
            pdu_demand <= pdu_caps[:, None] + tol, axis=0
        )
        if extra_constraints:
            feasible &= np.all(
                extra_demand <= extra_caps[:, None] + tol, axis=0
            )
        n_feasible = int(feasible.sum())
        if n_feasible == 0:
            # The scan grid ends at the highest acceptable bid price where
            # demand may still be positive; above it demand is zero, which
            # is always feasible.  Profit there is zero.
            return AllocationResult.empty(
                price=float(prices[-1]) + self.params.price_step
            )

        revenue_rate = prices * total_demand / 1000.0  # $/h
        revenue_rate = np.where(feasible, revenue_rate, -np.inf)
        best = int(np.argmax(revenue_rate))  # argmax returns lowest index on ties
        best_price = float(prices[best])

        grants = {
            bid.rack_id: float(
                min(bid.demand.demand_at(best_price), bid.rack_cap_w)
            )
            for bid in admitted
        }
        # Rejected bids appear with a zero grant (priced out, not silent).
        for rack_id in rejected_ids:
            grants[rack_id] = 0.0
        return AllocationResult(
            price=best_price,
            grants_w=grants,
            revenue_rate=float(max(revenue_rate[best], 0.0)),
            candidate_prices=int(prices.size),
            feasible_prices=n_feasible,
        )


    @staticmethod
    def _accumulate_linear(
        bids: Sequence[RackBid],
        prices: np.ndarray,
        pdu_index: Mapping[str, int],
        membership: Sequence[frozenset[str]],
        pdu_demand: np.ndarray,
        extra_demand: np.ndarray,
        chunk: int = 2048,
    ) -> None:
        """Vectorised demand accumulation for LinearBid bids.

        Evaluates all bids' piece-wise linear curves over the whole price
        grid with one broadcasted expression per chunk (memory is bounded
        at ``chunk x len(prices)`` floats) and scatter-adds the rows into
        the per-PDU / per-constraint totals.
        """
        d_max = np.array([b.demand.d_max_w for b in bids])
        d_min = np.array([b.demand.d_min_w for b in bids])
        q_min = np.array([b.demand.q_min for b in bids])
        q_max = np.array([b.demand.q_max for b in bids])
        caps = np.array([b.rack_cap_w for b in bids])
        rows = np.array([pdu_index[b.pdu_id] for b in bids])
        span = q_max - q_min
        degenerate = span <= 0

        member_rows: list[np.ndarray] = [
            np.array(
                [i for i, b in enumerate(bids) if b.rack_id in rack_ids],
                dtype=int,
            )
            for rack_ids in membership
        ]

        for start in range(0, len(bids), chunk):
            sl = slice(start, start + chunk)
            with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
                frac = np.clip(
                    (prices[None, :] - q_min[sl, None])
                    / np.where(degenerate[sl], 1.0, span[sl])[:, None],
                    0.0,
                    1.0,
                )
            demand = d_max[sl, None] + frac * (d_min[sl] - d_max[sl])[:, None]
            demand = np.where(degenerate[sl, None], d_max[sl, None], demand)
            demand = np.where(prices[None, :] <= q_max[sl, None], demand, 0.0)
            np.minimum(demand, caps[sl, None], out=demand)
            np.add.at(pdu_demand, rows[sl], demand)
            for k, rows_k in enumerate(member_rows):
                local = rows_k[(rows_k >= start) & (rows_k < start + chunk)]
                if local.size:
                    extra_demand[k] += demand[local - start].sum(axis=0)

    def clear_per_pdu(
        self,
        bids: Sequence[RackBid],
        pdu_spot_w: Mapping[str, float],
        ups_spot_w: float,
        extra_constraints: Sequence["CapacityConstraint"] = (),
    ) -> AllocationResult:
        """Clear with a *locational* uniform price per PDU.

        A single facility-wide price does not scale: in a large facility
        with many PDUs, at almost every slot *some* PDU's near-inelastic
        demand exceeds its local headroom, which forces the one global
        price above that demand's acceptable cap — pricing everyone out
        everywhere, including on PDUs with plenty of spare capacity.
        Locational pricing fixes this while keeping each PDU's clearing
        the paper's simple feasible-price scan (and keeping prices
        uniform across the racks that actually share a constraint).

        The facility-level (UPS) headroom is apportioned across PDUs in
        proportion to each PDU's servable interest
        ``min(P_m, local max demand)`` — demand-adaptive, and the sum of
        apportioned caps never exceeds ``P_o`` (Eq. 4 holds by
        construction).

        Returns:
            A combined allocation whose ``pdu_prices`` carries each
            PDU's clearing price; the headline ``price`` is the
            grant-weighted mean.
        """
        if ups_spot_w < 0:
            raise ClearingError(f"negative UPS spot capacity {ups_spot_w}")
        if not bids:
            return AllocationResult.empty()
        by_pdu: dict[str, list[RackBid]] = {}
        for bid in bids:
            by_pdu.setdefault(bid.pdu_id, []).append(bid)

        interest = {
            pdu_id: min(
                pdu_spot_w.get(pdu_id, 0.0),
                sum(
                    min(b.demand.max_demand_w, b.rack_cap_w)
                    for b in pdu_bids
                ),
            )
            for pdu_id, pdu_bids in by_pdu.items()
        }
        total_interest = sum(interest.values())
        grants: dict[str, float] = {}
        pdu_prices: dict[str, float] = {}
        revenue_rate = 0.0
        candidates = 0
        feasible = 0
        for pdu_id, pdu_bids in by_pdu.items():
            local_cap = pdu_spot_w.get(pdu_id, 0.0)
            if total_interest > ups_spot_w and total_interest > 0:
                local_cap = min(
                    local_cap, ups_spot_w * interest[pdu_id] / total_interest
                )
            local_constraints = _localize_constraints(
                extra_constraints, pdu_bids, bids
            )
            local = self.clear(
                pdu_bids, {pdu_id: local_cap}, local_cap, local_constraints
            )
            grants.update(local.grants_w)
            pdu_prices[pdu_id] = local.price
            revenue_rate += local.revenue_rate
            candidates += local.candidate_prices
            feasible += local.feasible_prices
        total = sum(grants.values())
        headline = (
            sum(
                pdu_prices[bid.pdu_id] * grants.get(bid.rack_id, 0.0)
                for bid in bids
            )
            / total
            if total > 0
            else 0.0
        )
        return AllocationResult(
            price=headline,
            grants_w=grants,
            revenue_rate=revenue_rate,
            candidate_prices=candidates,
            feasible_prices=feasible,
            pdu_prices=pdu_prices,
        )


def _localize_constraints(
    extra_constraints: Sequence["CapacityConstraint"],
    pdu_bids: Sequence[RackBid],
    all_bids: Sequence[RackBid],
):
    """Restrict rack-set constraints to one PDU's local market.

    Phase-balance constraints live within a single PDU, so they localize
    exactly.  A heat zone spanning several PDUs is apportioned by local
    maximum-demand share — a conservative decomposition (the per-PDU
    shares always sum to at most the zone cap).
    """
    from repro.infrastructure.constraints import CapacityConstraint

    local_ids = {bid.rack_id for bid in pdu_bids}
    max_demand = {
        bid.rack_id: min(bid.demand.max_demand_w, bid.rack_cap_w)
        for bid in all_bids
    }
    localized = []
    for constraint in extra_constraints:
        members_here = constraint.rack_ids & local_ids
        if not members_here:
            continue
        total = sum(
            max_demand.get(rack_id, 0.0) for rack_id in constraint.rack_ids
        )
        here = sum(max_demand.get(rack_id, 0.0) for rack_id in members_here)
        if constraint.rack_ids <= local_ids or total <= 0:
            cap = constraint.cap_w
        else:
            cap = constraint.cap_w * here / total
        localized.append(
            CapacityConstraint(
                name=constraint.name,
                rack_ids=frozenset(members_here),
                cap_w=cap,
            )
        )
    return localized


def clear_market(
    bids: Sequence[RackBid],
    pdu_spot_w: Mapping[str, float],
    ups_spot_w: float,
    params: MarketParameters | None = None,
    per_pdu: bool = False,
    extra_constraints: Sequence["CapacityConstraint"] = (),
) -> AllocationResult:
    """Convenience one-shot clearing with default engine settings.

    Args:
        bids: Flattened per-rack bids.
        pdu_spot_w: Predicted spot capacity per PDU.
        ups_spot_w: Predicted facility spot capacity.
        params: Market knobs.
        per_pdu: Use locational per-PDU pricing instead of one
            facility-wide price.
        extra_constraints: Phase-balance / heat-density bounds.
    """
    engine = MarketClearing(params=params or MarketParameters())
    if per_pdu:
        return engine.clear_per_pdu(
            bids, pdu_spot_w, ups_spot_w, extra_constraints
        )
    return engine.clear(bids, pdu_spot_w, ups_spot_w, extra_constraints)
