"""Allocator interfaces and the SpotDC market orchestrator (Algorithm 1).

The simulation engine delegates each slot's spot-capacity decision to an
:class:`Allocator`:

* :class:`SpotDCAllocator` — the paper's market: solicit demand-function
  bids, clear at a profit-maximising uniform price under multi-level
  constraints, and bill tenants.
* The baselines (:mod:`repro.core.baselines`) implement the same
  interface, which keeps every experiment a one-line allocator swap.
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Sequence

from repro.config import MarketParameters
from repro.core.allocation import AllocationResult, verify_allocation
from repro.core.bids import RackBid, flatten_bids
from repro.core.clearing import MarketClearing
from repro.core.frame import BidFrame
from repro.core.sharding import IncrementalFrameBuilder, clear_per_pdu_sharded
from repro.errors import ConfigurationError
from repro.prediction.spot import SpotCapacityForecast
from repro.core.bids import TenantBid
from repro.recovery.admission import QuarantinedBid, dedupe_bundles, screen_bids
from repro.tenants.tenant import Tenant

__all__ = ["Allocator", "SpotDCAllocator", "SlotMarketRecord"]


@dataclasses.dataclass(frozen=True)
class SlotMarketRecord:
    """What one slot's allocation produced, with billing attribution.

    Attributes:
        result: The clearing outcome.
        bids: The flattened rack bids that entered clearing.
        payments: Dollars owed per tenant id for the slot.
        frame: The columnar view of ``bids`` that was actually cleared
            (``None`` for allocators that never build one).  Downstream
            consumers — settlement adjustments, revocation billing —
            reuse it instead of regrouping objects.
        quarantined: Bids rejected by the admission front door this
            slot (:class:`repro.recovery.admission.QuarantinedBid`);
            they never reached ``bids`` or the frame.
    """

    result: AllocationResult
    bids: tuple[RackBid, ...]
    payments: dict[str, float]
    frame: BidFrame | None = None
    quarantined: tuple[QuarantinedBid, ...] = ()


class Allocator(abc.ABC):
    """One slot-level spot-capacity allocation policy."""

    #: Short policy label used in results and reports.
    name: str = "allocator"
    #: Whether tenants pay for allocations (False for MaxPerf/PowerCapped).
    charges_tenants: bool = True
    #: Whether the policy requires rack-level over-provisioning (False
    #: only for PowerCapped, which never delivers spot capacity — its
    #: operator pays no rack capex).
    provisions_spot: bool = True

    @abc.abstractmethod
    def allocate(
        self,
        slot: int,
        tenants: Sequence[Tenant],
        forecast: SpotCapacityForecast,
        slot_seconds: float,
        predicted_price: float | None = None,
        extra_constraints: Sequence = (),
        tracer=None,
        submitted_bids: Sequence[TenantBid] | None = None,
        duplicated=None,
    ) -> SlotMarketRecord:
        """Decide this slot's spot-capacity grants.

        ``extra_constraints`` are phase-balance / heat-density bounds
        (:class:`repro.infrastructure.constraints.CapacityConstraint`)
        in force for this slot.  ``tracer`` is an optional
        :class:`repro.telemetry.Tracer` under which the allocator opens
        its ``bid_collect`` / ``clear`` phase spans (``None`` disables
        tracing).

        ``submitted_bids`` carries externally delivered
        :class:`~repro.core.bids.TenantBid` bundles (daemon mode);
        ``None`` means the allocator solicits bids from ``tenants``
        itself (batch mode).  ``duplicated`` is an optional set of
        tenant ids whose bundle was delivered twice (at-least-once
        transports, duplicate-delivery faults); market-style allocators
        absorb the extra copies, others may ignore both arguments.
        """


class SpotDCAllocator(Allocator):
    """The SpotDC market (paper Algorithm 1, steps 3-5).

    Args:
        params: Operator market knobs (price grid, reserve price).
        verify: Run the Eq. 2-4 integrity check on every outcome.  Cheap
            relative to clearing; enabled by default as the reliability
            backstop.
        oracle_rebid: Enable the Fig. 16 two-pass mode: clear once
            provisionally, feed the provisional price back to tenants as
            a "perfect" forecast, and clear again on the revised bids.
        pricing: ``"per_pdu"`` (default) clears a locational uniform
            price per PDU — required for stable behaviour at hyper-scale
            (see :meth:`repro.core.clearing.MarketClearing.clear_per_pdu`);
            ``"uniform"`` clears one facility-wide price, the paper's
            literal description.
        admission: Screen solicited bids through the
            :mod:`repro.recovery.admission` front door before frame
            construction (default on).  Malformed bundles are
            quarantined whole — the tenant sits the slot out, exactly
            like a lost bid — and surface on
            :attr:`SlotMarketRecord.quarantined`.
        shards: Partition the per-PDU clearing work into this many
            contiguous shards (:mod:`repro.core.sharding`).  ``1`` (the
            default) is the serial path; any value produces
            byte-identical results — sharding only changes *where* each
            PDU clears.  Requires ``pricing="per_pdu"``.
        shard_jobs: Process-pool width for shard fan-out; ``1`` clears
            shards in-process (deterministic either way).
        shard_spans: Emit one ``clearing.shard`` telemetry span per
            shard.  Off by default because span counts differ across
            shard configurations, which would break trace byte-identity
            between sharded and unsharded runs.
        incremental: Build each slot's frame through the
            :class:`~repro.core.sharding.IncrementalFrameBuilder`
            (default on): only PDUs whose bids changed since the last
            slot are re-aggregated, and an unchanged slot reuses the
            previous frame object outright.  Output is value-identical
            to ``BidFrame.from_bids`` either way.
    """

    name = "spotdc"
    charges_tenants = True

    def __init__(
        self,
        params: MarketParameters | None = None,
        verify: bool = True,
        oracle_rebid: bool = False,
        pricing: str = "per_pdu",
        admission: bool = True,
        shards: int = 1,
        shard_jobs: int = 1,
        shard_spans: bool = False,
        incremental: bool = True,
    ) -> None:
        if pricing not in ("per_pdu", "uniform"):
            raise ConfigurationError(f"unknown pricing mode {pricing!r}")
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ConfigurationError(
                f"shards must be an integer >= 1, got {shards!r}"
            )
        if shards > 1 and pricing != "per_pdu":
            raise ConfigurationError(
                "sharded clearing decomposes along the PDU hierarchy and "
                'requires pricing="per_pdu"'
            )
        self.params = params or MarketParameters()
        self.engine = MarketClearing(params=self.params)
        self.verify = verify
        self.oracle_rebid = oracle_rebid
        self.pricing = pricing
        self.admission = admission
        self.shards = shards
        self.shard_jobs = shard_jobs
        self.shard_spans = shard_spans
        self.frame_builder = IncrementalFrameBuilder() if incremental else None

    def _build_frame(self, bids) -> BidFrame:
        if self.frame_builder is not None:
            return self.frame_builder.build(bids)
        return BidFrame.from_bids(bids)

    def _clear(self, bids, forecast, extra_constraints=(), tracer=None, slot=0):
        if self.pricing == "per_pdu":
            if (
                self.shards > 1
                and isinstance(bids, BidFrame)
                and len(bids)
            ):
                return clear_per_pdu_sharded(
                    self.engine,
                    bids,
                    forecast.pdu_spot_w,
                    forecast.ups_spot_w,
                    extra_constraints,
                    shards=self.shards,
                    jobs=self.shard_jobs,
                    tracer=tracer if self.shard_spans else None,
                    slot=slot,
                )
            return self.engine.clear_per_pdu(
                bids, forecast.pdu_spot_w, forecast.ups_spot_w, extra_constraints
            )
        return self.engine.clear(
            bids, forecast.pdu_spot_w, forecast.ups_spot_w, extra_constraints
        )

    def _collect_bids(
        self,
        slot: int,
        tenants: Sequence[Tenant],
        predicted_price: float | None,
        submitted_bids: Sequence[TenantBid] | None = None,
        duplicated=None,
    ) -> tuple[list[RackBid], tuple[QuarantinedBid, ...], tuple[str, ...]]:
        if submitted_bids is None:
            tenant_bids = []
            for tenant in tenants:
                bid = tenant.make_bid(slot, predicted_price=predicted_price)
                if bid is not None:
                    tenant_bids.append(bid)
        else:
            tenant_bids = list(submitted_bids)
        if duplicated:
            # Duplicate-delivery fault: the transport hands the market a
            # second copy of the bundle, exactly as an at-least-once
            # client retry would.
            delivered = []
            for bundle in tenant_bids:
                delivered.append(bundle)
                if bundle.tenant_id in duplicated:
                    delivered.append(bundle)
            tenant_bids = delivered
        # Idempotent ingestion: duplicate deliveries are absorbed before
        # admission, so a redelivered bundle can never double-bill (and
        # never trips flatten_bids' duplicate-rack integrity check).
        tenant_bids, absorbed = dedupe_bundles(tenant_bids)
        quarantined: tuple[QuarantinedBid, ...] = ()
        if self.admission:
            # Admission happens on *bundles*: a bundle with any
            # malformed rack bid is rejected whole — partial admission
            # would grant a tenant capacity on exactly the racks whose
            # bids happened to parse.
            tenant_bids, quarantined = screen_bids(tenant_bids)
        return flatten_bids(tenant_bids), quarantined, absorbed

    def allocate(
        self,
        slot: int,
        tenants: Sequence[Tenant],
        forecast: SpotCapacityForecast,
        slot_seconds: float,
        predicted_price: float | None = None,
        extra_constraints: Sequence = (),
        tracer=None,
        submitted_bids: Sequence[TenantBid] | None = None,
        duplicated=None,
    ) -> SlotMarketRecord:
        if tracer is None:
            from repro.telemetry.tracing import NULL_TRACER

            tracer = NULL_TRACER
        with tracer.span("bid_collect", slot=slot) as bid_span:
            bids, quarantined, absorbed = self._collect_bids(
                slot,
                tenants,
                predicted_price,
                submitted_bids=submitted_bids,
                duplicated=duplicated,
            )
            for tenant_id in absorbed:
                tracer.event(
                    "bid.duplicate_absorbed", slot=slot, tenant=tenant_id
                )
            for q in quarantined:
                tracer.event(
                    "bid.quarantined",
                    slot=slot,
                    tenant=q.tenant_id,
                    rack_id=q.rack_id,
                    reason=q.reason,
                )
            bid_span.set(
                tenants=len(tenants),
                racks_bid=len(bids),
                quarantined=len(quarantined),
                forecast_price=predicted_price,
            )
        with tracer.span("clear", slot=slot) as clear_span:
            # One columnar build per slot; clearing, verification inputs,
            # and billing all consume the frame from here on.  The
            # incremental builder re-aggregates only PDUs whose bids
            # changed since the last slot.
            frame = self._build_frame(bids)
            result = self._clear(
                frame, forecast, extra_constraints, tracer=tracer, slot=slot
            )
            if self.oracle_rebid and bids:
                # Fig. 16: strategic tenants re-bid knowing the market
                # price.  The rebid frame is transient — it must not
                # displace the builder's slot-over-slot block cache.
                rebids, requarantined, _ = self._collect_bids(
                    slot, tenants, result.price
                )
                frame = BidFrame.from_bids(rebids)
                result = self._clear(
                    frame, forecast, extra_constraints, tracer=tracer, slot=slot
                )
                bids = rebids
                quarantined = requarantined
            if self.verify:
                verify_allocation(
                    result,
                    frame.to_bids(),
                    forecast.pdu_spot_w,
                    forecast.ups_spot_w,
                    extra_constraints=extra_constraints,
                )
            clear_span.set(
                price=result.price,
                prices_scanned=result.candidate_prices,
                feasible_prices=result.feasible_prices,
                granted_racks=sum(1 for g in result.grants_w.values() if g > 0),
                granted_w=result.total_granted_w,
                pricing=self.pricing,
            )
        _, payments = frame.settle(
            result.grants_w, result.pdu_prices, result.price, slot_seconds
        )
        return SlotMarketRecord(
            result=result,
            bids=tuple(bids),
            payments=payments,
            frame=frame,
            quarantined=quarantined,
        )

    @staticmethod
    def _payments(
        result: AllocationResult, bids: Sequence[RackBid], slot_seconds: float
    ) -> dict[str, float]:
        """Object-path billing, kept as the parity reference for
        :meth:`repro.core.frame.BidFrame.settle` (see
        ``tests/test_bidframe_parity.py``)."""
        slot_hours = slot_seconds / 3600.0
        payments: dict[str, float] = {}
        bid_of = {bid.rack_id: bid for bid in bids}
        for rack_id, grant in result.grants_w.items():
            bid = bid_of[rack_id]
            paid_price = result.price_for_pdu(bid.pdu_id)
            dollars = (grant / 1000.0) * paid_price * slot_hours
            payments[bid.tenant_id] = payments.get(bid.tenant_id, 0.0) + dollars
        return payments
