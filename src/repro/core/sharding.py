"""Sharded, incremental clearing for million-rack fleets.

Two scaling walls stand between the 15k-rack columnar pipeline and the
ROADMAP's million-rack north star, and this module removes both:

1. **Frame construction dominates.**  At 15k racks the clear itself runs
   in ~11 ms but rebuilding the :class:`~repro.core.frame.BidFrame`
   struct-of-arrays from scratch costs ~32 ms *every slot*, even when
   no bid changed.  :class:`IncrementalFrameBuilder` keeps persistent
   per-PDU column blocks (:class:`PduBlock`) and re-aggregates only the
   PDUs whose bids actually changed since the previous slot; an
   unchanged slot returns the previous frame *object* (which also keeps
   its cached price grid and PDU slices alive downstream).

2. **One process clears everything.**  The market's physical hierarchy
   (UPS → PDU → rack, paper Eqs. 2-4) makes each PDU subtree an
   independently clearable market once the UPS headroom has been
   apportioned — the same decomposition clusterman applies to resource
   groups.  :func:`clear_per_pdu_sharded` partitions the per-PDU task
   list into contiguous shards, fans them out through
   ``repro.sweep.parallel_map`` (process pool), merges the results in
   global PDU order, and runs a shrink-only reconciliation pass
   (:func:`reconcile_allocation`) against the UPS constraint.

Determinism is the contract that makes sharding safe to enable
anywhere: the per-PDU tasks are *identical* to the serial path's
(:meth:`MarketClearing._pdu_tasks`), each shard clears its tasks with
the same float arithmetic, and the merge re-accumulates results
sequentially in global PDU order — so the sharded result is
byte-identical to the unsharded one at any shard count (machine-checked
in ``tests/test_sharding.py``), and crash/resume and daemon-WAL replay
invariants carry over unchanged.

Why reconciliation is normally a no-op (proof sketch, expanded in
``docs/sharding.md``): each PDU's local clear grants at most its
apportioned cap ``c_m``; when total servable interest exceeds the UPS
headroom the apportioning scales caps so ``Σ c_m <= P_o``, and when it
does not, total grants are bounded by total interest ``<= P_o``.
Either way the merged allocation already satisfies Eqs. 2-4, so
:func:`reconcile_allocation` detects no violation and returns the
result object untouched.  The pass exists as a *guard*: if a violation
ever appears (a future non-conservative apportioning, an external
result), it scales grants down — never up — so Eq. 2 (rack caps only
shrink), Eq. 3 (per-PDU totals clamped to ``P_m``), and Eq. 4 (the
facility total clamped to ``P_o``) all hold on exit.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.allocation import AllocationResult
from repro.core.bids import RackBid
from repro.core.clearing import MarketClearing
from repro.core.demand import DemandFunction, LinearBid, StepBid
from repro.core.frame import KIND_CLOSED, KIND_SAMPLED, BidFrame
from repro.errors import ClearingError

__all__ = [
    "PduBlock",
    "IncrementalFrameBuilder",
    "partition_tasks",
    "clear_per_pdu_sharded",
    "reconcile_allocation",
]


class PduBlock:
    """One PDU's bids as a persistent columnar block.

    A block is one PDU's slice of the frame columns, built with exactly
    the same per-row arithmetic as :meth:`BidFrame.from_bids` so that
    concatenating blocks (:meth:`BidFrame.from_blocks`) reproduces the
    from-scratch frame element for element.  The tenant table is
    *local* (first appearance within this PDU's rows);
    ``from_blocks`` merges the local tables in block order, which
    preserves global first-appearance order.
    """

    __slots__ = (
        "pdu_id",
        "bids",
        "rack_ids",
        "tenant_table",
        "tenant_code_local",
        "kind",
        "d_max_w",
        "q_min",
        "d_min_w",
        "q_max",
        "rack_cap_w",
        "max_demand_w",
        "floor_w",
        "breakpoints",
        "demands",
    )

    def __init__(self, pdu_id: str, bids: tuple[RackBid, ...]) -> None:
        n = len(bids)
        tenant_index: dict[str, int] = {}
        tenant_code = np.fromiter(
            (
                tenant_index.setdefault(b.tenant_id, len(tenant_index))
                for b in bids
            ),
            dtype=np.intp,
            count=n,
        )
        kind = np.empty(n, dtype=np.uint8)
        d_max = np.empty(n)
        q_min = np.empty(n)
        d_min = np.empty(n)
        q_max = np.empty(n)
        caps = np.empty(n)
        max_demand = np.empty(n)
        floor = np.empty(n)
        demands: list[DemandFunction | None] = []
        points: list[float] = []
        # Row arithmetic mirrors BidFrame.from_bids exactly — including
        # the breakpoint attribute sweep and the two-segment floor
        # formula — so block-built and from-scratch frames are
        # value-identical (property-tested in
        # tests/test_incremental_frame.py).
        for i, b in enumerate(bids):
            fn = b.demand
            caps[i] = b.rack_cap_w
            if type(fn) is LinearBid:
                kind[i] = KIND_CLOSED
                d_max[i] = fn.d_max_w
                q_min[i] = fn.q_min
                d_min[i] = fn.d_min_w
                q_max[i] = fn.q_max
                max_demand[i] = fn.d_max_w
                demands.append(None)
            elif type(fn) is StepBid:
                kind[i] = KIND_CLOSED
                d_max[i] = fn.demand_w
                d_min[i] = fn.demand_w
                q_min[i] = fn.price_cap
                q_max[i] = fn.price_cap
                max_demand[i] = fn.demand_w
                demands.append(None)
            else:
                kind[i] = KIND_SAMPLED
                d_max[i] = 0.0
                d_min[i] = 0.0
                q_min[i] = 0.0
                q_max[i] = fn.max_price
                max_demand[i] = fn.max_demand_w
                demands.append(fn)
            for attr in ("q_min", "q_max", "price_cap"):
                value = getattr(fn, attr, None)
                if value is not None:
                    points.append(float(value))
        for i, b in enumerate(bids):
            if kind[i] == KIND_CLOSED:
                at_cap = (
                    d_max[i]
                    if q_max[i] <= q_min[i]
                    else d_max[i] + (d_min[i] - d_max[i])
                )
            else:
                at_cap = b.demand.demand_at(b.demand.max_price)
            floor[i] = min(at_cap, caps[i])
        self.pdu_id = pdu_id
        self.bids = bids
        self.rack_ids = tuple(b.rack_id for b in bids)
        self.tenant_table = tuple(tenant_index)
        self.tenant_code_local = tenant_code
        self.kind = kind
        self.d_max_w = d_max
        self.q_min = q_min
        self.d_min_w = d_min
        self.q_max = q_max
        self.rack_cap_w = caps
        self.max_demand_w = max_demand
        self.floor_w = floor
        self.breakpoints = np.asarray(points, dtype=float)
        self.demands = tuple(demands)

    def __len__(self) -> int:
        return len(self.rack_ids)

    def __repr__(self) -> str:
        return f"PduBlock(pdu={self.pdu_id!r}, bids={len(self)})"


def _same_bid(old: RackBid, new: RackBid) -> bool:
    """Value equality for one bid, demand curves compared by parameters.

    Demand functions are plain classes without ``__eq__``, and tenants
    construct fresh bid objects every slot — identity alone would mark
    every block dirty.  Closed-form curves compare by their defining
    floats; anything else (FullBid, custom subclasses) is conservatively
    treated as changed, which costs a rebuild but never staleness.
    """
    if old is new:
        return True
    if (
        old.rack_id != new.rack_id
        or old.pdu_id != new.pdu_id
        or old.tenant_id != new.tenant_id
        or old.rack_cap_w != new.rack_cap_w
    ):
        return False
    fo, fn = old.demand, new.demand
    if fo is fn:
        return True
    kind = type(fo)
    if kind is not type(fn):
        return False
    if kind is LinearBid:
        return (
            fo.d_max_w == fn.d_max_w
            and fo.q_min == fn.q_min
            and fo.d_min_w == fn.d_min_w
            and fo.q_max == fn.q_max
        )
    if kind is StepBid:
        return fo.demand_w == fn.demand_w and fo.price_cap == fn.price_cap
    return False


def _same_bids(old: Sequence[RackBid], new: Sequence[RackBid]) -> bool:
    return len(old) == len(new) and all(
        _same_bid(o, n) for o, n in zip(old, new)
    )


class IncrementalFrameBuilder:
    """Build each slot's :class:`BidFrame` from persistent PDU blocks.

    ``build(bids)`` groups the slot's bids by PDU (one pass, preserving
    submission order — the stable-sort equivalence with
    ``BidFrame.from_bids``), reuses every block whose bids are
    value-unchanged since the previous slot, rebuilds only the dirty
    ones, and assembles the frame through :meth:`BidFrame.from_blocks`.
    A slot with *no* dirty or removed PDUs returns the previous frame
    object itself, so downstream per-frame caches (price grid, PDU
    slices) survive across slots too.

    The builder is plain state on the allocator: checkpointing pickles
    it with the engine, and because its output is value-identical to
    ``from_bids`` regardless of cache contents, crash/resume stays
    byte-identical whether the cache was warm or cold.

    Attributes:
        last_dirty: PDU ids rebuilt (or removed) by the latest build,
            sorted — the invalidation set tests assert on.
        builds / rebuilt_pdus / reused_pdus: Monotone counters for
            benchmarks and telemetry.
    """

    def __init__(self) -> None:
        self._blocks: dict[str, PduBlock] = {}
        self._frame: BidFrame | None = None
        self.last_dirty: tuple[str, ...] = ()
        self.builds = 0
        self.rebuilt_pdus = 0
        self.reused_pdus = 0

    def build(self, bids: Sequence[RackBid]) -> BidFrame:
        """The slot's frame, value-identical to ``BidFrame.from_bids``."""
        self.builds += 1
        groups: dict[str, list[RackBid]] = {}
        for b in bids:
            groups.setdefault(b.pdu_id, []).append(b)
        removed = [p for p in self._blocks if p not in groups]
        dirty: list[str] = []
        blocks: dict[str, PduBlock] = {}
        for pdu_id, group in groups.items():
            old = self._blocks.get(pdu_id)
            if old is not None and _same_bids(old.bids, group):
                blocks[pdu_id] = old
                self.reused_pdus += 1
            else:
                blocks[pdu_id] = PduBlock(pdu_id, tuple(group))
                dirty.append(pdu_id)
                self.rebuilt_pdus += 1
        self.last_dirty = tuple(sorted(set(dirty) | set(removed)))
        self._blocks = blocks
        if not self.last_dirty and self._frame is not None:
            return self._frame
        frame = BidFrame.from_blocks([blocks[p] for p in sorted(blocks)])
        self._frame = frame
        return frame


def partition_tasks(tasks: Sequence, shards: int) -> list[list]:
    """Split an ordered task list into ≤ ``shards`` contiguous groups.

    Groups are balanced by row weight (``len(task[1])``) with integer
    arithmetic only, so the partition is deterministic and contiguity
    follows from the assignment index being monotone in the running
    weight.  Contiguity is what lets the merge step flatten group
    results straight back into global PDU order.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    shards = max(1, min(int(shards), len(tasks)))
    weights = [max(len(t[1]), 1) for t in tasks]
    total = sum(weights)
    groups: list[list] = [[] for _ in range(shards)]
    acc = 0
    for task, w in zip(tasks, weights):
        groups[min(shards - 1, acc * shards // total)].append(task)
        acc += w
    return [g for g in groups if g]


def _shippable(sub: BidFrame) -> BidFrame:
    """A worker-bound copy of one PDU slice, stripped for pickling.

    PDU slices share the *global* tenant table (a million-entry tuple at
    full scale) and carry the original bid objects; shipping either to
    a pool worker would dwarf the clear itself.  The clear needs
    neither: ``_clear_frame`` never reads ``_bids``, and
    :class:`AllocationResult` carries no tenant attribution.  The
    tenant table is rebased to the slice's own tenants (kept so the
    copy remains a well-formed frame); sampled demand objects stay —
    they are evaluated inside the worker.
    """
    used = np.unique(sub.tenant_code)
    local_code = np.searchsorted(used, sub.tenant_code).astype(
        np.intp, copy=False
    )
    return BidFrame(
        rack_ids=sub.rack_ids,
        pdu_ids=sub.pdu_ids,
        pdu_code=sub.pdu_code,
        tenant_ids=tuple(sub.tenant_ids[int(i)] for i in used),
        tenant_code=local_code,
        kind=sub.kind,
        d_max_w=sub.d_max_w,
        q_min=sub.q_min,
        d_min_w=sub.d_min_w,
        q_max=sub.q_max,
        rack_cap_w=sub.rack_cap_w,
        max_demand_w=sub.max_demand_w,
        floor_w=sub.floor_w,
        breakpoints=sub.breakpoints,
        demands=sub._demands,
        bids=None,
    )


def _clear_shard_payload(payload) -> list[tuple[str, AllocationResult]]:
    """Pool worker: clear one shard's PDU tasks, results in task order.

    The worker reconstructs the clearing engine from its picklable
    configuration; each task clears through the *same* code path as the
    serial engine, so results are bit-identical to in-process clearing.
    """
    params, include_breakpoints, tasks = payload
    engine = MarketClearing(
        params=params, include_breakpoints=include_breakpoints
    )
    return [
        (pdu_id, engine._clear_pdu_slice((pdu_id, sub, cap, cons)))
        for pdu_id, sub, cap, cons in tasks
    ]


def clear_per_pdu_sharded(
    engine: MarketClearing,
    frame: BidFrame,
    pdu_spot_w: Mapping[str, float],
    ups_spot_w: float,
    extra_constraints: Sequence = (),
    shards: int = 1,
    jobs: int = 1,
    tracer=None,
    slot: int = 0,
) -> AllocationResult:
    """Locational clearing decomposed along the PDU hierarchy.

    Builds the same per-PDU task list as the serial
    ``clear_per_pdu`` path, partitions it into contiguous shards,
    clears each shard (in-process when ``jobs <= 1``, through a process
    pool otherwise), merges results in global PDU order, and applies
    the shrink-only :func:`reconcile_allocation` guard.  Byte-identical
    to ``engine.clear_per_pdu(frame, ...)`` at any ``shards``/``jobs``.

    ``tracer`` (optional) records one ``clearing.shard`` span per shard
    with pdu/rack counts; pass ``None`` (the default) whenever trace
    byte-identity across shard counts matters.
    """
    if ups_spot_w < 0:
        raise ClearingError(f"negative UPS spot capacity {ups_spot_w}")
    if not len(frame):
        return AllocationResult.empty()
    tasks = engine._pdu_tasks(frame, pdu_spot_w, ups_spot_w, extra_constraints)
    groups = partition_tasks(tasks, shards)
    per_pdu: list[tuple[str, AllocationResult]] = []
    if jobs > 1 and len(groups) > 1:
        payloads = [
            (
                engine.params,
                engine.include_breakpoints,
                [
                    (pdu_id, _shippable(sub), cap, cons)
                    for pdu_id, sub, cap, cons in group
                ],
            )
            for group in groups
        ]
        # Imported lazily: repro.core must stay importable without
        # pulling the sweep machinery (and its pool imports) in.
        from repro.sweep.runner import parallel_map

        shard_results = parallel_map(_clear_shard_payload, payloads, jobs=jobs)
        for i, (group, results) in enumerate(zip(groups, shard_results)):
            if tracer is not None:
                with tracer.span("clearing.shard", slot=slot) as span:
                    span.set(
                        shard=i,
                        pdus=len(group),
                        racks=sum(len(t[1]) for t in group),
                    )
            per_pdu.extend(results)
    else:
        for i, group in enumerate(groups):
            if tracer is not None:
                with tracer.span("clearing.shard", slot=slot) as span:
                    span.set(
                        shard=i,
                        pdus=len(group),
                        racks=sum(len(t[1]) for t in group),
                    )
                    per_pdu.extend(
                        (task[0], engine._clear_pdu_slice(task))
                        for task in group
                    )
            else:
                per_pdu.extend(
                    (task[0], engine._clear_pdu_slice(task)) for task in group
                )
    combined = engine._combine_pdu_results(frame, per_pdu)
    return reconcile_allocation(combined, frame, pdu_spot_w, ups_spot_w)


def reconcile_allocation(
    result: AllocationResult,
    frame: BidFrame,
    pdu_spot_w: Mapping[str, float],
    ups_spot_w: float,
    tolerance_w: float = 1e-6,
) -> AllocationResult:
    """Shrink-only fix-up of a merged allocation against Eqs. 3-4.

    When the allocation already satisfies every PDU cap and the UPS
    cap — which the apportioning guarantees for anything the sharded
    path merges (see the module docstring) — the *same* result object
    is returned, floats untouched, preserving byte-identity with the
    serial path.  On a genuine violation, grants scale down per
    over-cap PDU and then globally against the UPS headroom; revenue
    and the grant-weighted headline price are recomputed from the
    surviving grants.  Grants only ever shrink, so rack caps (Eq. 2)
    stay satisfied and the clamps enforce Eqs. 3-4 directly.
    """
    granted = np.fromiter(
        (result.grants_w.get(rid, 0.0) for rid in frame.rack_ids),
        dtype=float,
        count=len(frame),
    )
    starts, seg_codes = frame.segments()
    totals = np.add.reduceat(granted, starts)
    caps = np.fromiter(
        (pdu_spot_w.get(frame.pdu_ids[int(s)], 0.0) for s in seg_codes),
        dtype=float,
        count=len(starts),
    )
    total = float(granted.sum())
    over_pdu = totals > caps + tolerance_w
    if not over_pdu.any() and total <= ups_spot_w + tolerance_w:
        return result

    scale = np.ones(len(starts))
    np.divide(caps, totals, out=scale, where=over_pdu)
    lengths = np.diff(np.concatenate([starts, [len(frame)]]))
    granted = granted * np.repeat(scale, lengths)
    total = float(granted.sum())
    if total > ups_spot_w + tolerance_w and total > 0:
        granted *= ups_spot_w / total
        total = float(granted.sum())

    grants = dict(zip(frame.rack_ids, granted.tolist()))
    # Preserve explicit zero entries for racks the clear priced out.
    for rid, g in result.grants_w.items():
        if rid not in grants:
            grants[rid] = g
    pdu_totals = np.add.reduceat(granted, starts) if len(frame) else totals
    revenue = 0.0
    row_prices = np.fromiter(
        (result.pdu_prices.get(p, result.price) for p in frame.pdu_ids),
        dtype=float,
        count=len(frame.pdu_ids),
    )
    for seg, sub_total in zip(seg_codes, pdu_totals):
        revenue += float(row_prices[int(seg)]) * float(sub_total) / 1000.0
    headline = (
        float((row_prices[frame.pdu_code] * granted).sum()) / total
        if total > 0
        else 0.0
    )
    return dataclasses.replace(
        result,
        price=headline,
        grants_w=grants,
        revenue_rate=revenue,
    )
