"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro run table1
    python -m repro run fig12 --slots 2500 --seed 7
    python -m repro run all
    python -m repro run fig12 --telemetry    # also record traces/metrics
    python -m repro compare --slots 2000     # SpotDC vs baselines summary
    python -m repro simulate --slots 500 --checkpoint-every 50 \
        --checkpoint-dir ckpt                # operator run with recovery
    python -m repro simulate --resume-from auto --checkpoint-dir ckpt \
        --slots 500                          # resume after a crash
    python -m repro trace telemetry/spotdc-001_trace.jsonl --slot 3
    python -m repro metrics telemetry/spotdc-001_metrics.prom
    python -m repro scenario validate examples/scenarios/testbed.json
    python -m repro scenario show --preset scaled --groups 3
    python -m repro sweep run examples/scenarios/sweep_smoke.yaml --jobs 2

Each ``run`` target prints the paper-style rows for that table/figure
(the same output the benchmarks archive under ``benchmarks/results/``).
With ``--telemetry``, every simulation inside the experiment also
exports a JSONL span trace, a Prometheus metrics dump, and a summary
JSON into ``--telemetry-dir``; ``trace`` and ``metrics`` inspect those
artifacts afterwards (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import collections
import pathlib
import sys
from collections.abc import Callable, Sequence

from repro import experiments as E
from repro.forecast import SIGNAL_NAMES
from repro.resilience import FAULT_CLASSES, FaultProfile
from repro.telemetry import TelemetryConfig, set_default_config

__all__ = ["main", "EXPERIMENT_REGISTRY"]

#: name -> (description, runner) where runner(args) returns printable text.
EXPERIMENT_REGISTRY: dict[str, tuple[str, Callable]] = {
    "table1": (
        "Testbed configuration (Table I)",
        lambda a: E.render_table1(E.run_table1(seed=a.seed)),
    ),
    "fig02": (
        "Power CDFs and the spot-capacity opportunity (Fig. 2b)",
        lambda a: E.render_fig02(E.run_fig02(seed=a.seed)),
    ),
    "fig07": (
        "PDU power variation and clearing time at scale (Fig. 7)",
        lambda a: E.render_fig07(
            E.run_fig07a(seed=a.seed),
            E.run_fig07b(seed=a.seed, jobs=a.jobs),
        ),
    ),
    "fig08": (
        "Power-performance relations (Fig. 8)",
        lambda a: E.render_fig08(E.run_fig08()),
    ),
    "fig09": (
        "Performance gain in dollars (Fig. 9)",
        lambda a: E.render_fig09(E.run_fig09(seed=a.seed)),
    ),
    "fig10": (
        "20-minute execution trace (Fig. 10)",
        lambda a: E.render_fig10(E.run_fig10(seed=a.seed)),
    ),
    "fig11": (
        "Tenant performance during the execution (Fig. 11)",
        lambda a: E.render_fig11(E.run_fig11(seed=a.seed)),
    ),
    "fig12": (
        "Extended-run cost / performance / usage (Fig. 12)",
        lambda a: E.render_fig12(E.run_fig12(seed=a.seed, slots=a.slots)),
    ),
    "fig13": (
        "Price and utilization CDFs (Fig. 13)",
        lambda a: E.render_fig13(E.run_fig13(seed=a.seed, slots=a.slots)),
    ),
    "fig14": (
        "Demand-function comparison (Fig. 14)",
        lambda a: E.render_fig14(E.run_fig14(seed=a.seed, slots=a.slots)),
    ),
    "fig15": (
        "Impact of available spot capacity (Fig. 15)",
        lambda a: E.render_fig15(E.run_fig15(seed=a.seed, slots=a.slots)),
    ),
    "fig16": (
        "Strategic (price-predicting) bidding (Fig. 16)",
        lambda a: E.render_fig16(E.run_fig16(seed=a.seed, slots=a.slots)),
    ),
    "fig17": (
        "Spot-capacity under-prediction (Fig. 17)",
        lambda a: E.render_fig17(
            E.run_fig17(seed=a.seed, slots=a.slots, jobs=a.jobs)
        ),
    ),
    "fig18": (
        "Scaling to 1,000 tenants (Fig. 18)",
        lambda a: E.render_fig18(E.run_fig18(seed=a.seed, jobs=a.jobs)),
    ),
    "ablations": (
        "Design-choice ablations (pricing / conservatism / breakpoints / reserve)",
        lambda a: "\n\n".join(
            [
                E.ablations.render_pricing_ablation(
                    E.ablations.run_pricing_ablation(seed=a.seed, jobs=a.jobs)
                ),
                E.ablations.render_safety_ablation(
                    E.ablations.run_safety_ablation(seed=a.seed, jobs=a.jobs)
                ),
                E.ablations.render_breakpoint_ablation(
                    E.ablations.run_breakpoint_ablation(
                        seed=a.seed, jobs=a.jobs
                    )
                ),
                E.ablations.render_reserve_price_sweep(
                    E.ablations.run_reserve_price_sweep(
                        seed=a.seed, jobs=a.jobs
                    )
                ),
                E.ablations.render_slot_length_sweep(
                    E.ablations.run_slot_length_sweep(seed=a.seed, jobs=a.jobs)
                ),
            ]
        ),
    ),
    "equilibrium": (
        "Extension: bidding-game equilibrium study",
        lambda a: E.ext_equilibrium.render_equilibrium_study(
            E.ext_equilibrium.run_equilibrium_study(seed=a.seed)
        ),
    ),
    "resilience": (
        "Extension: chaos sweep (fault class x intensity, §V-B2 invariant)",
        lambda a: E.ext_resilience.render_resilience_study(
            E.ext_resilience.run_resilience_study(
                seed=a.seed,
                slots=(
                    a.slots
                    if a.slots != _RUN_SLOTS_DEFAULT
                    else E.ext_resilience.DEFAULT_SLOTS
                ),
                jobs=a.jobs,
            )
        ),
    ),
    "edr": (
        "Extension: grid-event survivability (EDR shocks, price coupling)",
        lambda a: E.ext_edr.render_edr_study(
            E.ext_edr.run_edr_study(
                seed=a.seed,
                slots=(
                    a.slots
                    if a.slots != _RUN_SLOTS_DEFAULT
                    else E.ext_edr.DEFAULT_SLOTS
                ),
                jobs=a.jobs,
            )
        ),
    ),
    "prediction-risk": (
        "Extension: forecast-signal x risk-quantile frontier (extends Fig. 17)",
        lambda a: E.ext_prediction_risk.render_prediction_risk(
            E.ext_prediction_risk.run_prediction_risk(
                seed=a.seed,
                slots=(
                    a.slots
                    if a.slots != _RUN_SLOTS_DEFAULT
                    else E.ext_prediction_risk.DEFAULT_SLOTS
                ),
                jobs=a.jobs,
            )
        ),
    ),
}

#: Default of ``run --slots`` — the chaos and prediction-risk sweeps
#: substitute their own, shorter defaults when the user did not pass
#: one (they run dozens of full simulations, not one).
_RUN_SLOTS_DEFAULT = 2500


def _cmd_list(args: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENT_REGISTRY)
    for name, (description, _) in EXPERIMENT_REGISTRY.items():
        print(f"{name.ljust(width)}  {description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = (
        list(EXPERIMENT_REGISTRY) if args.target == "all" else [args.target]
    )
    unknown = [t for t in targets if t not in EXPERIMENT_REGISTRY]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(see `python -m repro list`)",
            file=sys.stderr,
        )
        return 2
    config = None
    previous = None
    if args.telemetry:
        # The process-wide default reaches every engine the experiment
        # harnesses construct internally — no parameter threading.
        config = TelemetryConfig(out_dir=args.telemetry_dir)
        previous = set_default_config(config)
    try:
        for i, target in enumerate(targets):
            if i:
                print()
            _, runner = EXPERIMENT_REGISTRY[target]
            print(runner(args))
    finally:
        if config is not None:
            set_default_config(previous)
    if config is not None:
        print(f"\noutput directory: {pathlib.Path(args.telemetry_dir).resolve()}")
        for path in config.manifest:
            print(f"  {path}")
        if not config.manifest:
            print("  (no simulation ran, nothing exported)")
    else:
        print(
            "\nno artifacts written (pass --telemetry to record traces "
            "and metrics)"
        )
    return 0


def _apply_prediction_args(scenario, args: argparse.Namespace):
    """Apply ``--predictor``/``--risk-quantile`` to an operator scenario."""
    import dataclasses

    from repro.errors import ConfigurationError
    from repro.forecast import PredictionProfile

    if args.predictor is None and args.risk_quantile is None:
        return scenario
    try:
        profile = PredictionProfile(
            signal=args.predictor or "current_draw",
            risk_quantile=args.risk_quantile,
        )
    except ConfigurationError as exc:
        print(f"invalid prediction flags: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    return dataclasses.replace(scenario, prediction=profile)


def _apply_event_args(scenario, args: argparse.Namespace):
    """Apply ``--event-schedule``/``--wholesale-trace`` to a scenario."""
    import dataclasses

    from repro.errors import ConfigurationError
    from repro.events import EventProfile, wholesale_trace_from_file
    from repro.scenarios import event_profile_from_file

    if args.event_schedule is None and args.wholesale_trace is None:
        return scenario
    try:
        profile = None
        if args.event_schedule is not None:
            profile = event_profile_from_file(args.event_schedule)
        if args.wholesale_trace is not None:
            trace = wholesale_trace_from_file(args.wholesale_trace)
            profile = dataclasses.replace(
                profile if profile is not None else EventProfile(),
                wholesale_trace=trace,
            )
    except (ConfigurationError, OSError) as exc:
        print(f"invalid event flags: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    return dataclasses.replace(scenario, events=profile)


def _cmd_simulate(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.errors import OperatorCrash, RecoveryError
    from repro.recovery import latest_checkpoint
    from repro.sim.engine import run_simulation
    from repro.sim.scenario import testbed_scenario

    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        print("--checkpoint-every requires --checkpoint-dir", file=sys.stderr)
        return 2
    resume_from = args.resume_from
    if resume_from == "auto":
        if args.checkpoint_dir is None:
            print(
                "--resume-from auto requires --checkpoint-dir",
                file=sys.stderr,
            )
            return 2
        resume_from = latest_checkpoint(args.checkpoint_dir)
        if resume_from is None:
            print(
                f"no checkpoint found in {args.checkpoint_dir}",
                file=sys.stderr,
            )
            return 2

    scenario = testbed_scenario(seed=args.seed)
    if args.clearing_deadline is not None:
        scenario = dataclasses.replace(
            scenario, clearing_deadline_s=args.clearing_deadline
        )
    if args.shards is not None:
        scenario = dataclasses.replace(scenario, shards=args.shards)
    scenario = _apply_prediction_args(scenario, args)
    scenario = _apply_event_args(scenario, args)
    fault_profile = None
    if args.fault_profile != "none" or args.crash_at is not None:
        fault_profile = FaultProfile.named(
            args.fault_profile, args.fault_intensity
        )
        if args.crash_at is not None:
            fault_profile = dataclasses.replace(
                fault_profile, crash_at_slot=args.crash_at
            )

    allocator = None
    if args.profile:
        # Profiling reads wall-clock durations off in-memory telemetry
        # spans; shard spans are opted in so the shard split shows up.
        from repro.config import MarketParameters
        from repro.core.market import SpotDCAllocator

        allocator = SpotDCAllocator(
            params=MarketParameters(slot_seconds=scenario.slot_seconds),
            shards=scenario.shards,
            shard_spans=True,
        )
    config = None
    previous = None
    if args.telemetry or args.profile:
        config = TelemetryConfig(
            out_dir=args.telemetry_dir if args.telemetry else None
        )
        previous = set_default_config(config)
    try:
        result = run_simulation(
            scenario,
            slots=args.slots,
            allocator=allocator,
            fault_profile=fault_profile,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            resume_from=resume_from,
        )
    except OperatorCrash as crash:
        print(
            f"operator crash at slot {crash.slot}; resume with "
            f"--resume-from auto --checkpoint-dir {args.checkpoint_dir}",
            file=sys.stderr,
        )
        return 3
    except RecoveryError as exc:
        print(f"recovery error: {exc}", file=sys.stderr)
        return 2
    finally:
        if config is not None:
            set_default_config(previous)

    prices = result.price_series()
    quarantined = sum(result.quarantined_bids.values())
    print(f"allocator: {result.allocator_name}")
    print(f"slots: {result.slots}  seed: {args.seed}")
    print(f"mean price: {float(prices.mean()) if prices.size else 0.0:.4f}")
    print(f"spot revenue: ${result.total_spot_revenue():.2f}")
    print(f"net profit: ${result.ledger.net_profit:.2f}")
    print(f"emergencies: {len(result.emergencies.events)}")
    print(f"quarantined bids: {quarantined}")
    if result.faults is not None:
        print(f"faults injected: {result.faults.count()}")
    if config is not None:
        for path in config.manifest:
            print(f"  {path}")
    if args.profile:
        _print_profile(result.trace)
    return 0


def _print_profile(trace) -> None:
    """Per-phase wall-clock table from one run's telemetry spans."""
    from repro.telemetry.tracing import PHASES

    if trace is None:
        print("no trace recorded; profiling needs telemetry enabled")
        return
    print()
    print(f"{'phase':<16}{'count':>7}{'total ms':>12}{'mean ms':>10}{'max ms':>10}")
    for name in PHASES + ("clearing.shard", "slot"):
        spans = trace.spans_named(name)
        if not spans:
            continue
        durations = [s.duration_s * 1000.0 for s in spans]
        total = sum(durations)
        print(
            f"{name:<16}{len(spans):>7}{total:>12.2f}"
            f"{total / len(spans):>10.3f}{max(durations):>10.3f}"
        )


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.daemon.server import serve
    from repro.errors import (
        ConfigurationError,
        DaemonError,
        OperatorCrash,
        RecoveryError,
    )
    from repro.sim.scenario import testbed_scenario

    scenario = testbed_scenario(seed=args.seed)
    if args.shards is not None:
        scenario = dataclasses.replace(scenario, shards=args.shards)
    scenario = _apply_prediction_args(scenario, args)
    scenario = _apply_event_args(scenario, args)
    if args.fault_profile != "none" or args.crash_at is not None:
        fault_profile = FaultProfile.named(
            args.fault_profile, args.fault_intensity
        )
        if args.crash_at is not None:
            fault_profile = dataclasses.replace(
                fault_profile, crash_at_slot=args.crash_at
            )
        scenario = dataclasses.replace(scenario, fault_profile=fault_profile)

    config = None
    previous = None
    if args.telemetry:
        config = TelemetryConfig(out_dir=args.telemetry_dir)
        previous = set_default_config(config)
    try:
        serve(
            scenario,
            args.slots,
            args.state_dir,
            args.socket,
            tick_seconds=args.tick_seconds,
            max_pending=args.max_pending,
            resume=args.resume,
            kill_at=args.kill_at,
            kill_point=args.kill_point,
        )
    except OperatorCrash as crash:
        print(
            f"operator crash at slot {crash.slot}; restart with "
            f"--resume --state-dir {args.state_dir}",
            file=sys.stderr,
        )
        return 3
    except (ConfigurationError, DaemonError, RecoveryError) as exc:
        print(f"daemon error: {exc}", file=sys.stderr)
        return 2
    finally:
        if config is not None:
            set_default_config(previous)
    return 0


def _parse_rack_arg(text: str) -> dict:
    """Parse ``rack_id:linear:d_max,q_min,d_min,q_max`` (or ``:step:``)."""
    from repro.errors import ConfigurationError

    # Rack ids themselves contain colons (e.g. ``rack:Search-1``), so
    # the kind and value fields are split off from the right.
    parts = text.rsplit(":", 2)
    if len(parts) != 3 or not parts[0]:
        raise ConfigurationError(
            f"--rack must be RACK_ID:KIND:V1,V2[,...], got {text!r}"
        )
    rack_id, kind, values = parts
    fields = {
        "linear": ("d_max_w", "q_min", "d_min_w", "q_max"),
        "step": ("demand_w", "price_cap"),
    }.get(kind)
    if fields is None:
        raise ConfigurationError(
            f"--rack kind must be 'linear' or 'step', got {kind!r}"
        )
    numbers = values.split(",")
    if len(numbers) != len(fields):
        raise ConfigurationError(
            f"--rack {kind} demand needs {len(fields)} values "
            f"({','.join(fields)}), got {len(numbers)}"
        )
    try:
        demand = {f: float(v) for f, v in zip(fields, numbers)}
    except ValueError as exc:
        raise ConfigurationError(f"bad --rack value in {text!r}: {exc}") from exc
    return {"rack_id": rack_id, "demand": {"kind": kind, **demand}}


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.daemon.chaos import synthetic_bundle
    from repro.daemon.client import DaemonClient
    from repro.errors import ConfigurationError, DaemonError

    client = DaemonClient(
        args.socket, seed=args.seed, retries=args.retries
    )
    try:
        if not args.auto:
            if args.tenant is None or args.slot is None or not args.rack:
                print(
                    "submit needs --tenant, --slot and --rack "
                    "(or --auto for the synthetic fleet driver)",
                    file=sys.stderr,
                )
                return 2
            racks = [_parse_rack_arg(entry) for entry in args.rack]
            response = client.submit(
                args.tenant, args.slot, racks, key=args.key
            )
            print(json.dumps(response, indent=2, sort_keys=True))
            return 0 if response.get("ok") else 1

        # --auto: deterministic synthetic session for every tenant and
        # slot (the CI smoke driver).  Keys are "{tenant}:{slot}", so
        # re-running after a daemon restart redelivers idempotently.
        hello = client.hello()
        directory = client.describe()["tenants"]
        slots = hello["slots"]
        accepted = absorbed = 0
        for slot in range(1, slots):
            for tenant_id, info in sorted(directory.items()):
                bundle = synthetic_bundle(
                    args.seed, tenant_id, slot, info["racks"]
                )
                response = client.submit(tenant_id, slot, bundle)
                if response.get("ok"):
                    accepted += 1
                    continue
                code = response.get("error", {}).get("code")
                if code in ("too_late", "shed"):
                    absorbed += 1
                    continue
                print(f"submission rejected: {response!r}", file=sys.stderr)
                return 2
        print(f"submitted {accepted} bundles ({absorbed} skipped)")
        if args.submit_only:
            return 0
        if hello["manual"]:
            while True:
                response = client.tick()
                if response.get("ok"):
                    if response.get("done"):
                        break
                    continue
                code = response.get("error", {}).get("code")
                if code == "crashed":
                    print(
                        "daemon crashed mid-run; restart it with --resume "
                        "and re-run submit --auto",
                        file=sys.stderr,
                    )
                    return 3
                print(f"tick failed: {response!r}", file=sys.stderr)
                return 2
        else:
            client.wait_done(budget=args.wait)
        invoices = client.invoices()["invoices"]
        text = json.dumps(invoices, indent=2, sort_keys=True) + "\n"
        if args.out is not None:
            pathlib.Path(args.out).write_text(text)
            print(f"invoices: {args.out}")
        else:
            print(text, end="")
        client.shutdown()
        return 0
    except ConfigurationError as exc:
        print(f"invalid submission: {exc}", file=sys.stderr)
        return 2
    except DaemonError as exc:
        print(f"daemon unreachable: {exc}", file=sys.stderr)
        return 3
    finally:
        client.close()


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.experiments.common import run_comparison

    fault_profile = None
    if args.fault_profile != "none":
        fault_profile = FaultProfile.named(
            args.fault_profile, args.fault_intensity
        )
    runs = run_comparison(
        slots=args.slots,
        seed=args.seed,
        include_maxperf=True,
        fault_profile=fault_profile,
    )
    if fault_profile is not None and runs.spotdc.faults is not None:
        print(
            f"fault profile: {args.fault_profile}@{args.fault_intensity} — "
            f"{runs.spotdc.faults.count()} faults injected\n"
        )
    rows = []
    for tenant_id in runs.spotdc.participating_tenant_ids():
        rows.append(
            [
                tenant_id,
                runs.spotdc.tenants[tenant_id].kind,
                runs.spotdc.tenant_performance_improvement_vs(
                    runs.powercapped, tenant_id
                ),
                runs.maxperf.tenant_performance_improvement_vs(
                    runs.powercapped, tenant_id
                ),
                100 * runs.spotdc.tenant_cost_increase_vs(
                    runs.powercapped, tenant_id
                ),
            ]
        )
    print(
        format_table(
            ["tenant", "type", "SpotDC perf x", "MaxPerf perf x", "cost +%"],
            rows,
            title="SpotDC vs baselines (normalised to PowerCapped)",
        )
    )
    print(
        f"\noperator profit increase: "
        f"+{100 * runs.profit_increase():.2f}%"
    )
    return 0


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = []
    for key, value in attrs.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        elif isinstance(value, list):
            parts.append(f"{key}=[{len(value)} items]")
        else:
            parts.append(f"{key}={value}")
    return "  " + " ".join(parts)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry.exporters import read_trace_jsonl

    try:
        records = read_trace_jsonl(args.file)
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]
    slots = sorted({s["slot"] for s in spans if s["name"] == "slot"})

    if args.slot is not None:
        roots = [
            s for s in spans if s["name"] == "slot" and s["slot"] == args.slot
        ]
        if not roots:
            print(f"no slot span for slot {args.slot}", file=sys.stderr)
            return 2
        for root in roots:
            print(f"slot {args.slot}{_format_attrs(root['attrs'])}")
            children = [
                r
                for r in records
                if r.get("parent_id") == root["span_id"]
                and r.get("kind") == "span"
            ]
            for child in sorted(children, key=lambda r: r["span_id"]):
                print(f"  {child['name']}{_format_attrs(child['attrs'])}")
                nested = [
                    r
                    for r in records
                    if r.get("parent_id") == child["span_id"]
                ]
                for sub in sorted(nested, key=lambda r: r["seq"]):
                    marker = "·" if sub.get("kind") == "event" else "-"
                    print(f"    {marker} {sub['name']}{_format_attrs(sub['attrs'])}")
        return 0

    print(
        f"{args.file}: {len(slots)} slots, {len(spans)} spans, "
        f"{len(events)} events"
    )
    span_counts = collections.Counter(s["name"] for s in spans)
    print("spans:")
    for name, n in span_counts.most_common():
        print(f"  {name:<12} {n}")
    if events:
        print("events:")
        for name, n in collections.Counter(e["name"] for e in events).most_common():
            print(f"  {name:<28} {n}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.scenarios import (
        dump_spec,
        load_spec_file,
        normalize_spec,
        preset_spec,
    )

    if (args.file is None) == (args.preset is None):
        print(
            "give exactly one of FILE or --preset", file=sys.stderr
        )
        return 2
    try:
        if args.file is not None:
            spec = load_spec_file(args.file)
            source = args.file
        else:
            kwargs = {}
            if args.seed is not None:
                kwargs["seed"] = args.seed
            if args.groups is not None:
                if args.preset != "scaled":
                    raise ConfigurationError(
                        "--groups only applies to the 'scaled' preset"
                    )
                kwargs["groups"] = args.groups
            spec = preset_spec(args.preset, **kwargs)
            source = f"preset {args.preset!r}"
        normal = normalize_spec(spec)
    except ConfigurationError as exc:
        print(f"invalid scenario: {exc}", file=sys.stderr)
        return 2
    if args.action == "show":
        print(dump_spec(normal), end="")
        return 0
    tenants = normal["demand"]["tenants"]
    print(
        f"{source}: valid — scenario {normal['name']!r}, "
        f"{len(tenants)} tenants on "
        f"{len(normal['topology']['pdus'])} PDU(s), seed {normal['seed']}"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.errors import ConfigurationError, SweepError
    from repro.sweep import load_sweep_file, run_sweep, sweep_summary_path

    try:
        config = load_sweep_file(args.file)
        data = run_sweep(config, jobs=args.jobs, out_dir=args.out)
    except (ConfigurationError, SweepError) as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    cells = data["cells"]
    metric_names = sorted(cells[0]["metrics"]) if cells else []
    rows = [
        [
            cell["index"],
            ", ".join(f"{k}={v}" for k, v in cell["overrides"].items())
            or "(base)",
            cell["seed"],
            *(cell["metrics"][name] for name in metric_names),
        ]
        for cell in cells
    ]
    print(
        format_table(
            ["cell", "overrides", "seed", *metric_names],
            rows,
            title=(
                f"sweep {data['name']!r}: {len(cells)} cells x "
                f"{data['slots']} slots (jobs={args.jobs})"
            ),
        )
    )
    if args.out is not None:
        print(f"\nenvelope: {sweep_summary_path(args.out, data['name'])}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    path = pathlib.Path(args.file)
    try:
        text = path.read_text()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    shown = 0
    for line in text.splitlines():
        if line.startswith("# TYPE"):
            if args.filter and args.filter not in line:
                continue
            print(line.removeprefix("# TYPE "))
            shown += 1
        elif line and not line.startswith("#"):
            if args.filter and args.filter not in line:
                continue
            print(f"  {line}")
    if not shown and args.filter:
        print(f"no metric family matches {args.filter!r}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpotDC reproduction: regenerate the paper's evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("target", help="experiment name or 'all'")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument(
        "--slots", type=int, default=_RUN_SLOTS_DEFAULT,
        help="simulation horizon for the extended-run experiments",
    )
    run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep-style experiments "
        "(fig17, fig18, ablations, resilience, prediction-risk); "
        "results are identical at any job count",
    )
    run.add_argument(
        "--telemetry", action="store_true",
        help="record a span trace, metrics dump, and summary JSON for "
        "every simulation inside the experiment",
    )
    run.add_argument(
        "--telemetry-dir", default="telemetry",
        help="directory for telemetry artifacts (default: ./telemetry)",
    )
    run.set_defaults(func=_cmd_run)

    simulate = sub.add_parser(
        "simulate",
        help="one operator run of the testbed, with checkpoint/resume",
    )
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument("--slots", type=int, default=500)
    simulate.add_argument(
        "--fault-profile", choices=FAULT_CLASSES, default="none",
        help="inject a named fault class into the run",
    )
    simulate.add_argument(
        "--fault-intensity", type=float, default=0.1,
        help="intensity of the injected fault class, in [0, 1]",
    )
    simulate.add_argument(
        "--crash-at", type=int, default=None, metavar="SLOT",
        help="inject an operator crash at this slot (exercise recovery)",
    )
    simulate.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="write a recovery checkpoint every K completed slots",
    )
    simulate.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for checkpoint files",
    )
    simulate.add_argument(
        "--resume-from", default=None, metavar="PATH|auto",
        help="resume from a checkpoint file, or 'auto' for the latest "
        "in --checkpoint-dir",
    )
    simulate.add_argument(
        "--clearing-deadline", type=float, default=None, metavar="SECONDS",
        help="arm the clearing deadline guard with this wall-clock budget",
    )
    simulate.add_argument(
        "--predictor", choices=SIGNAL_NAMES, default=None,
        help="forecasting signal for the predict phase "
        "(default: the paper's current-draw rule)",
    )
    simulate.add_argument(
        "--risk-quantile", type=float, default=None, metavar="Q",
        help="release spot capacity at this overcommit quantile of the "
        "signal's confidence band, in (0, 1] (default: point forecast)",
    )
    simulate.add_argument(
        "--event-schedule", default=None, metavar="FILE",
        help="grid-event schedule file (the scenario 'events' component "
        "as standalone JSON/YAML): EDR shocks, price spikes, cascades",
    )
    simulate.add_argument(
        "--wholesale-trace", default=None, metavar="FILE",
        help="wholesale price trace (JSON array or one price per line) "
        "that the reserve price tracks during price events",
    )
    simulate.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition per-PDU clearing into N contiguous shards "
        "(byte-identical results at any N; see docs/sharding.md)",
    )
    simulate.add_argument(
        "--profile", action="store_true",
        help="print a per-phase wall-clock table (predict/bid_collect/"
        "clear/grant/enforce/settle) from the telemetry spans",
    )
    simulate.add_argument(
        "--telemetry", action="store_true",
        help="record a span trace, metrics dump, and summary JSON",
    )
    simulate.add_argument(
        "--telemetry-dir", default="telemetry",
        help="directory for telemetry artifacts (default: ./telemetry)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    serve = sub.add_parser(
        "serve",
        help="run the spot market as a daemon on a unix socket",
    )
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--slots", type=int, default=20)
    serve.add_argument(
        "--state-dir", required=True,
        help="daemon state directory (bid log, market journal, checkpoints)",
    )
    serve.add_argument(
        "--socket", required=True,
        help="unix socket path to listen on (keep it short: ~100 bytes)",
    )
    serve.add_argument(
        "--tick-seconds", type=float, default=None, metavar="S",
        help="clear a slot every S wall-clock seconds; omit for manual "
        "mode, where clients drive slots with 'tick' requests "
        "(deterministic lockstep)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=1024, metavar="N",
        help="bound on accepted bundles per slot; overflow sheds the "
        "oldest accepted bundle",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="resume from the newest valid checkpoint in the state dir",
    )
    serve.add_argument(
        "--predictor", choices=SIGNAL_NAMES, default=None,
        help="forecasting signal for the daemon's predict phase",
    )
    serve.add_argument(
        "--risk-quantile", type=float, default=None, metavar="Q",
        help="release spot capacity at this overcommit quantile, in (0, 1]",
    )
    serve.add_argument(
        "--fault-profile", choices=FAULT_CLASSES, default="none",
        help="inject a named fault class into the daemon's slot loop",
    )
    serve.add_argument(
        "--fault-intensity", type=float, default=0.1,
        help="intensity of the injected fault class, in [0, 1]",
    )
    serve.add_argument(
        "--crash-at", type=int, default=None, metavar="SLOT",
        help="inject an operator crash (clean OperatorCrash, exit 3) at "
        "this slot",
    )
    serve.add_argument(
        "--kill-at", type=int, default=None, metavar="SLOT",
        help="SIGKILL our own process at this slot (crash testing)",
    )
    serve.add_argument(
        "--kill-point", default="post_journal",
        choices=("pre_step", "post_journal", "post_checkpoint"),
        help="where inside the --kill-at slot to die",
    )
    serve.add_argument(
        "--event-schedule", default=None, metavar="FILE",
        help="grid-event schedule file (the scenario 'events' component "
        "as standalone JSON/YAML): EDR shocks, price spikes, cascades",
    )
    serve.add_argument(
        "--wholesale-trace", default=None, metavar="FILE",
        help="wholesale price trace (JSON array or one price per line) "
        "that the reserve price tracks during price events",
    )
    serve.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition per-PDU clearing into N contiguous shards "
        "(byte-identical results at any N; see docs/sharding.md)",
    )
    serve.add_argument(
        "--telemetry", action="store_true",
        help="record a span trace, metrics dump, and summary JSON",
    )
    serve.add_argument(
        "--telemetry-dir", default="telemetry",
        help="directory for telemetry artifacts (default: ./telemetry)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit bids to a running market daemon (client)",
    )
    submit.add_argument(
        "--socket", required=True, help="the daemon's unix socket"
    )
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument(
        "--retries", type=int, default=8,
        help="transport retries (exponential backoff with jitter)",
    )
    submit.add_argument(
        "--auto", action="store_true",
        help="drive a full synthetic session: submit bundles for every "
        "tenant and slot, run to completion, fetch invoices, shut the "
        "daemon down",
    )
    submit.add_argument(
        "--submit-only", action="store_true",
        help="with --auto: stop after submitting (no ticking/waiting)",
    )
    submit.add_argument(
        "--out", default=None, metavar="FILE",
        help="with --auto: write the invoices JSON here",
    )
    submit.add_argument(
        "--wait", type=float, default=120.0, metavar="SECONDS",
        help="with --auto against a wall-clock daemon: completion budget",
    )
    submit.add_argument(
        "--tenant", default=None, help="tenant id (single-bundle mode)"
    )
    submit.add_argument(
        "--slot", type=int, default=None,
        help="target slot (single-bundle mode)",
    )
    submit.add_argument(
        "--rack", action="append", default=[], metavar="SPEC",
        help="RACK_ID:linear:d_max,q_min,d_min,q_max or "
        "RACK_ID:step:demand_w,price_cap (repeatable)",
    )
    submit.add_argument(
        "--key", default=None,
        help="idempotency key (default: '<tenant>:<slot>')",
    )
    submit.set_defaults(func=_cmd_submit)

    compare = sub.add_parser(
        "compare", help="SpotDC vs PowerCapped vs MaxPerf summary"
    )
    compare.add_argument("--seed", type=int, default=None)
    compare.add_argument("--slots", type=int, default=2000)
    compare.add_argument(
        "--fault-profile", choices=FAULT_CLASSES, default="none",
        help="inject a named fault class into both runs "
        "(infrastructure faults only for the marketless baseline)",
    )
    compare.add_argument(
        "--fault-intensity", type=float, default=0.1,
        help="intensity of the injected fault class, in [0, 1]",
    )
    compare.set_defaults(func=_cmd_compare)

    trace = sub.add_parser(
        "trace", help="inspect a run's JSONL span trace"
    )
    trace.add_argument("file", help="a *_trace.jsonl file")
    trace.add_argument(
        "--slot", type=int, default=None,
        help="show one slot's span tree instead of the run summary",
    )
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics", help="inspect a run's Prometheus metrics dump"
    )
    metrics.add_argument("file", help="a *_metrics.prom file")
    metrics.add_argument(
        "--filter", default="",
        help="only show lines containing this substring",
    )
    metrics.set_defaults(func=_cmd_metrics)

    scenario = sub.add_parser(
        "scenario",
        help="validate or canonically print a declarative scenario spec",
    )
    scenario.add_argument(
        "action", choices=("validate", "show"),
        help="'validate' checks and summarises; 'show' prints the "
        "canonical normalised spec",
    )
    scenario.add_argument(
        "file", nargs="?", default=None,
        help="a scenario spec file (JSON or YAML)",
    )
    scenario.add_argument(
        "--preset", choices=("testbed", "scaled"), default=None,
        help="use a built-in preset instead of a file",
    )
    scenario.add_argument(
        "--groups", type=int, default=None,
        help="Table I replication count for the 'scaled' preset",
    )
    scenario.add_argument(
        "--seed", type=int, default=None,
        help="override the preset's scenario seed",
    )
    scenario.set_defaults(func=_cmd_scenario)

    sweep = sub.add_parser(
        "sweep", help="run a declarative sweep file over scenario specs"
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    sweep_run = sweep_sub.add_parser(
        "run", help="run every cell of a sweep file's grid"
    )
    sweep_run.add_argument("file", help="a sweep file (JSON or YAML)")
    sweep_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (results identical at any job count)",
    )
    sweep_run.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write the validated BENCH_sweep_<name>.json envelope "
        "into DIR",
    )
    sweep_run.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "seed", None) is None and hasattr(args, "seed"):
        from repro.config import DEFAULT_SEED

        args.seed = DEFAULT_SEED
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
