"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro run table1
    python -m repro run fig12 --slots 2500 --seed 7
    python -m repro run all
    python -m repro compare --slots 2000     # SpotDC vs baselines summary

Each ``run`` target prints the paper-style rows for that table/figure
(the same output the benchmarks archive under ``benchmarks/results/``).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro import experiments as E
from repro.resilience import FAULT_CLASSES, FaultProfile

__all__ = ["main", "EXPERIMENT_REGISTRY"]

#: name -> (description, runner) where runner(args) returns printable text.
EXPERIMENT_REGISTRY: dict[str, tuple[str, Callable]] = {
    "table1": (
        "Testbed configuration (Table I)",
        lambda a: E.render_table1(E.run_table1(seed=a.seed)),
    ),
    "fig02": (
        "Power CDFs and the spot-capacity opportunity (Fig. 2b)",
        lambda a: E.render_fig02(E.run_fig02(seed=a.seed)),
    ),
    "fig07": (
        "PDU power variation and clearing time at scale (Fig. 7)",
        lambda a: E.render_fig07(
            E.run_fig07a(seed=a.seed), E.run_fig07b(seed=a.seed)
        ),
    ),
    "fig08": (
        "Power-performance relations (Fig. 8)",
        lambda a: E.render_fig08(E.run_fig08()),
    ),
    "fig09": (
        "Performance gain in dollars (Fig. 9)",
        lambda a: E.render_fig09(E.run_fig09(seed=a.seed)),
    ),
    "fig10": (
        "20-minute execution trace (Fig. 10)",
        lambda a: E.render_fig10(E.run_fig10(seed=a.seed)),
    ),
    "fig11": (
        "Tenant performance during the execution (Fig. 11)",
        lambda a: E.render_fig11(E.run_fig11(seed=a.seed)),
    ),
    "fig12": (
        "Extended-run cost / performance / usage (Fig. 12)",
        lambda a: E.render_fig12(E.run_fig12(seed=a.seed, slots=a.slots)),
    ),
    "fig13": (
        "Price and utilization CDFs (Fig. 13)",
        lambda a: E.render_fig13(E.run_fig13(seed=a.seed, slots=a.slots)),
    ),
    "fig14": (
        "Demand-function comparison (Fig. 14)",
        lambda a: E.render_fig14(E.run_fig14(seed=a.seed, slots=a.slots)),
    ),
    "fig15": (
        "Impact of available spot capacity (Fig. 15)",
        lambda a: E.render_fig15(E.run_fig15(seed=a.seed, slots=a.slots)),
    ),
    "fig16": (
        "Strategic (price-predicting) bidding (Fig. 16)",
        lambda a: E.render_fig16(E.run_fig16(seed=a.seed, slots=a.slots)),
    ),
    "fig17": (
        "Spot-capacity under-prediction (Fig. 17)",
        lambda a: E.render_fig17(E.run_fig17(seed=a.seed, slots=a.slots)),
    ),
    "fig18": (
        "Scaling to 1,000 tenants (Fig. 18)",
        lambda a: E.render_fig18(E.run_fig18(seed=a.seed)),
    ),
    "ablations": (
        "Design-choice ablations (pricing / conservatism / breakpoints / reserve)",
        lambda a: "\n\n".join(
            [
                E.ablations.render_pricing_ablation(
                    E.ablations.run_pricing_ablation(seed=a.seed)
                ),
                E.ablations.render_safety_ablation(
                    E.ablations.run_safety_ablation(seed=a.seed)
                ),
                E.ablations.render_breakpoint_ablation(
                    E.ablations.run_breakpoint_ablation(seed=a.seed)
                ),
                E.ablations.render_reserve_price_sweep(
                    E.ablations.run_reserve_price_sweep(seed=a.seed)
                ),
                E.ablations.render_slot_length_sweep(
                    E.ablations.run_slot_length_sweep(seed=a.seed)
                ),
            ]
        ),
    ),
    "equilibrium": (
        "Extension: bidding-game equilibrium study",
        lambda a: E.ext_equilibrium.render_equilibrium_study(
            E.ext_equilibrium.run_equilibrium_study(seed=a.seed)
        ),
    ),
    "resilience": (
        "Extension: chaos sweep (fault class x intensity, §V-B2 invariant)",
        lambda a: E.ext_resilience.render_resilience_study(
            E.ext_resilience.run_resilience_study(
                seed=a.seed,
                slots=(
                    a.slots
                    if a.slots != _RUN_SLOTS_DEFAULT
                    else E.ext_resilience.DEFAULT_SLOTS
                ),
            )
        ),
    ),
}

#: Default of ``run --slots`` — the chaos sweep substitutes its own,
#: shorter default when the user did not pass one (it runs 2x13 full
#: simulations, not one).
_RUN_SLOTS_DEFAULT = 2500


def _cmd_list(args: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENT_REGISTRY)
    for name, (description, _) in EXPERIMENT_REGISTRY.items():
        print(f"{name.ljust(width)}  {description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = (
        list(EXPERIMENT_REGISTRY) if args.target == "all" else [args.target]
    )
    unknown = [t for t in targets if t not in EXPERIMENT_REGISTRY]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(see `python -m repro list`)",
            file=sys.stderr,
        )
        return 2
    for i, target in enumerate(targets):
        if i:
            print()
        _, runner = EXPERIMENT_REGISTRY[target]
        print(runner(args))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.experiments.common import run_comparison

    fault_profile = None
    if args.fault_profile != "none":
        fault_profile = FaultProfile.named(
            args.fault_profile, args.fault_intensity
        )
    runs = run_comparison(
        slots=args.slots,
        seed=args.seed,
        include_maxperf=True,
        fault_profile=fault_profile,
    )
    if fault_profile is not None and runs.spotdc.faults is not None:
        print(
            f"fault profile: {args.fault_profile}@{args.fault_intensity} — "
            f"{runs.spotdc.faults.count()} faults injected\n"
        )
    rows = []
    for tenant_id in runs.spotdc.participating_tenant_ids():
        rows.append(
            [
                tenant_id,
                runs.spotdc.tenants[tenant_id].kind,
                runs.spotdc.tenant_performance_improvement_vs(
                    runs.powercapped, tenant_id
                ),
                runs.maxperf.tenant_performance_improvement_vs(
                    runs.powercapped, tenant_id
                ),
                100 * runs.spotdc.tenant_cost_increase_vs(
                    runs.powercapped, tenant_id
                ),
            ]
        )
    print(
        format_table(
            ["tenant", "type", "SpotDC perf x", "MaxPerf perf x", "cost +%"],
            rows,
            title="SpotDC vs baselines (normalised to PowerCapped)",
        )
    )
    print(
        f"\noperator profit increase: "
        f"+{100 * runs.profit_increase():.2f}%"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpotDC reproduction: regenerate the paper's evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("target", help="experiment name or 'all'")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument(
        "--slots", type=int, default=_RUN_SLOTS_DEFAULT,
        help="simulation horizon for the extended-run experiments",
    )
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser(
        "compare", help="SpotDC vs PowerCapped vs MaxPerf summary"
    )
    compare.add_argument("--seed", type=int, default=None)
    compare.add_argument("--slots", type=int, default=2000)
    compare.add_argument(
        "--fault-profile", choices=FAULT_CLASSES, default="none",
        help="inject a named fault class into both runs "
        "(infrastructure faults only for the marketless baseline)",
    )
    compare.add_argument(
        "--fault-intensity", type=float, default=0.1,
        help="intensity of the injected fault class, in [0, 1]",
    )
    compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "seed", None) is None and hasattr(args, "seed"):
        from repro.config import DEFAULT_SEED

        args.seed = DEFAULT_SEED
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
