"""Exception hierarchy for the SpotDC reproduction.

All library-specific errors derive from :class:`ReproError` so that callers
can distinguish domain failures from programming errors.  The hierarchy is
intentionally shallow: one subclass per subsystem boundary where a caller
may plausibly want to catch a narrower class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "CapacityError",
    "BidError",
    "BidValidationError",
    "ClearingError",
    "WorkloadError",
    "SimulationError",
    "SweepError",
    "SweepCellError",
    "RecoveryError",
    "OperatorCrash",
    "DaemonError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """A scenario, model, or component was configured with invalid values.

    Also a :class:`ValueError`: invalid configuration values are the one
    place where callers historically caught ``ValueError``, so the
    hierarchy keeps that contract while remaining catchable as
    :class:`ReproError`.
    """


class TopologyError(ConfigurationError):
    """The power-delivery topology is malformed.

    Raised, for example, when a rack is attached to an unknown PDU, when
    two racks share an identifier, or when a capacity is non-positive.
    """


class CapacityError(ReproError):
    """A power-capacity constraint was violated where it must hold.

    This signals a *bug or misuse*, not a simulated power emergency:
    simulated overloads are recorded by
    :class:`repro.infrastructure.emergencies.EmergencyLog` rather than
    raised, because oversubscribed facilities are expected to experience
    occasional capacity excursions (paper, Section V-B2).
    """


class BidError(ReproError):
    """A spot-capacity bid is malformed (e.g. ``D_min > D_max``)."""


class BidValidationError(BidError):
    """A bid was rejected by the operator's admission front door.

    Raised by :mod:`repro.recovery.admission` when a submitted bid fails
    the pre-clearing validation (non-finite values, inverted
    breakpoints, demand exceeding the rack's physical headroom).  The
    market itself never raises this — malformed bids are *quarantined*
    (treated as lost, paper §III-C default-to-no-spot) — but callers
    validating bids directly get a catchable, reasoned error.
    """

    def __init__(self, message: str, reason: str = "invalid") -> None:
        super().__init__(message)
        #: Machine-readable quarantine reason (one of
        #: :data:`repro.recovery.admission.QUARANTINE_REASONS`).
        self.reason = reason


class ClearingError(ReproError):
    """Market clearing could not produce a valid outcome.

    Under normal operation clearing always succeeds (the empty allocation
    at an arbitrarily high price is always feasible); this error indicates
    inconsistent inputs such as negative available spot capacity.
    """


class WorkloadError(ReproError):
    """A workload or trace generator received invalid parameters."""


class SimulationError(ReproError):
    """The time-slotted simulation reached an inconsistent state."""


class SweepError(ReproError):
    """A parameter sweep could not be configured or executed."""


class SweepCellError(SweepError):
    """One sweep cell failed while the rest of the grid completed.

    Carries the failing cell's override dict and index so the error is
    actionable without re-running the sweep; the underlying failure is
    preserved as ``__cause__`` and summarised in the message.
    """

    def __init__(self, index: int, overrides: dict, cause: str) -> None:
        super().__init__(
            f"sweep cell {index} failed (overrides={overrides!r}): {cause}"
        )
        #: Grid position of the failing cell.
        self.index = int(index)
        #: The cell's override dict (dotted spec paths -> values).
        self.overrides = dict(overrides)
        #: String form of the worker-side exception (the original object
        #: may not survive the process boundary; this always does).
        self.cause = cause


class RecoveryError(ReproError):
    """Checkpoint/restore of the operator's slot loop failed.

    Raised when a checkpoint file is missing, corrupt, from an
    incompatible format version, or inconsistent with the requested
    resume (e.g. a different run horizon than the one checkpointed).
    """


class OperatorCrash(RecoveryError):
    """An injected operator-process crash (:class:`repro.resilience.faults.CrashFault`).

    Kills the slot loop mid-run so the checkpoint/restore path can be
    exercised end to end; carries the slot the crash fired in.
    """

    def __init__(self, slot: int) -> None:
        super().__init__(f"injected operator crash at slot {slot}")
        self.slot = int(slot)


class DaemonError(ReproError):
    """The market daemon could not start, serve, or shut down cleanly."""


class ProtocolError(DaemonError):
    """A daemon client received a malformed or unexpected response."""
