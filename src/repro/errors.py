"""Exception hierarchy for the SpotDC reproduction.

All library-specific errors derive from :class:`ReproError` so that callers
can distinguish domain failures from programming errors.  The hierarchy is
intentionally shallow: one subclass per subsystem boundary where a caller
may plausibly want to catch a narrower class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "CapacityError",
    "BidError",
    "ClearingError",
    "WorkloadError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A scenario, model, or component was configured with invalid values."""


class TopologyError(ConfigurationError):
    """The power-delivery topology is malformed.

    Raised, for example, when a rack is attached to an unknown PDU, when
    two racks share an identifier, or when a capacity is non-positive.
    """


class CapacityError(ReproError):
    """A power-capacity constraint was violated where it must hold.

    This signals a *bug or misuse*, not a simulated power emergency:
    simulated overloads are recorded by
    :class:`repro.infrastructure.emergencies.EmergencyLog` rather than
    raised, because oversubscribed facilities are expected to experience
    occasional capacity excursions (paper, Section V-B2).
    """


class BidError(ReproError):
    """A spot-capacity bid is malformed (e.g. ``D_min > D_max``)."""


class ClearingError(ReproError):
    """Market clearing could not produce a valid outcome.

    Under normal operation clearing always succeeds (the empty allocation
    at an arbitrarily high price is always feasible); this error indicates
    inconsistent inputs such as negative available spot capacity.
    """


class WorkloadError(ReproError):
    """A workload or trace generator received invalid parameters."""


class SimulationError(ReproError):
    """The time-slotted simulation reached an inconsistent state."""
