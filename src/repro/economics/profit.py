"""Operator profit accounting (paper Section V-B1).

The operator's baseline profit is the guaranteed-capacity revenue plus
its margin on metered energy.  Offering spot capacity adds the market
revenue and subtracts only the amortised rack over-provisioning capex
(US$0.4/W over 15 years) — "spot capacity is provisioned at no
additional cost for the data center operator" otherwise.  The paper's
headline: net profit up 9.7% versus PowerCapped.
"""

from __future__ import annotations

import dataclasses

from repro.economics.pricing import PriceSheet
from repro.errors import ConfigurationError

__all__ = ["OperatorLedger"]


@dataclasses.dataclass
class OperatorLedger:
    """Accumulates the operator's revenue and cost over a simulation.

    Args:
        price_sheet: Published prices for subscriptions and energy.
        overprovisioned_w: Total rack-level capacity over-provisioned to
            deliver spot capacity (the sum of rack headrooms).
        energy_margin: Fraction of the metered-energy charge the operator
            keeps after paying the utility (colo operators typically
            resell energy at a small markup; 0 treats energy as pure
            pass-through).
        infrastructure_cost_per_hour: Hourly amortisation of the shared
            UPS/PDU/cooling capital expense (US$10-25/W, paper Section
            II-A) plus fixed operating expenses.  This is what makes the
            *net* baseline profit a fraction of revenue — and spot
            revenue, which carries no such cost, a disproportionately
            large profit increase (the paper's +9.7%).
    """

    price_sheet: PriceSheet
    overprovisioned_w: float = 0.0
    energy_margin: float = 0.0
    infrastructure_cost_per_hour: float = 0.0
    _subscription_revenue: float = dataclasses.field(default=0.0, init=False)
    _spot_revenue: float = dataclasses.field(default=0.0, init=False)
    _energy_revenue: float = dataclasses.field(default=0.0, init=False)
    _hours_accumulated: float = dataclasses.field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.overprovisioned_w < 0:
            raise ConfigurationError("overprovisioned_w must be >= 0")
        if not 0 <= self.energy_margin <= 1:
            raise ConfigurationError("energy_margin must be in [0, 1]")
        if self.infrastructure_cost_per_hour < 0:
            raise ConfigurationError("infrastructure_cost_per_hour must be >= 0")

    def record_slot(
        self,
        slot_hours: float,
        guaranteed_w: float,
        spot_revenue: float,
        metered_energy_w: float,
    ) -> None:
        """Account one slot.

        Args:
            slot_hours: Slot duration in hours.
            guaranteed_w: Total subscribed capacity billed this slot.
            spot_revenue: Dollars earned from spot-capacity sales this
                slot (0 under PowerCapped/MaxPerf).
            metered_energy_w: Facility-wide average draw this slot.
        """
        if slot_hours <= 0:
            raise ConfigurationError("slot_hours must be positive")
        self._subscription_revenue += self.price_sheet.subscription_cost(
            guaranteed_w, slot_hours
        )
        self._spot_revenue += spot_revenue
        self._energy_revenue += self.energy_margin * self.price_sheet.energy_charge(
            metered_energy_w, slot_hours
        )
        self._hours_accumulated += slot_hours

    @property
    def subscription_revenue(self) -> float:
        """Accumulated guaranteed-capacity revenue, dollars."""
        return self._subscription_revenue

    @property
    def spot_revenue(self) -> float:
        """Accumulated spot-market revenue, dollars."""
        return self._spot_revenue

    @property
    def energy_profit(self) -> float:
        """Accumulated energy-resale margin, dollars."""
        return self._energy_revenue

    @property
    def rack_capex_cost(self) -> float:
        """Amortised over-provisioning capex over the accumulated hours."""
        return (
            self.price_sheet.rack_capex_per_hour(self.overprovisioned_w)
            * self._hours_accumulated
        )

    @property
    def infrastructure_cost(self) -> float:
        """Amortised shared-infrastructure cost over the accumulated hours."""
        return self.infrastructure_cost_per_hour * self._hours_accumulated

    @property
    def net_profit(self) -> float:
        """Total profit: all revenue minus amortised capital costs."""
        return (
            self._subscription_revenue
            + self._spot_revenue
            + self._energy_revenue
            - self.rack_capex_cost
            - self.infrastructure_cost
        )

    def profit_increase_vs(self, baseline: "OperatorLedger") -> float:
        """Fractional net-profit increase over a baseline run.

        The paper's headline metric: SpotDC vs PowerCapped => +9.7%.
        """
        if baseline.net_profit <= 0:
            raise ConfigurationError("baseline profit must be positive")
        return (self.net_profit - baseline.net_profit) / baseline.net_profit
