"""Spot-capacity value curves: performance gain in dollars (Fig. 9).

A tenant values spot capacity by the reduction in its performance cost:
``V(d) = c(no spot) - c(with d watts of spot)`` (paper Section IV-C).
This module builds those value curves from the power/performance models
and the cost models, producing the concave, saturating dollar-per-hour
curves of Fig. 9 — the raw material for both the bidding strategies and
the FullBid/MaxPerf comparisons.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.economics.cost import OpportunisticCostModel, SprintingCostModel
from repro.errors import ConfigurationError
from repro.power.latency import LatencyModel
from repro.power.throughput import ThroughputModel

__all__ = [
    "SpotValueCurve",
    "sprinting_value_curve",
    "opportunistic_value_curve",
]


@dataclasses.dataclass(frozen=True)
class SpotValueCurve:
    """A tenant's dollar-per-hour gain from spot capacity on one rack.

    Attributes:
        base_power_w: The rack's budget without spot capacity (its
            guaranteed capacity, or its current capped operating point).
        max_spot_w: Largest meaningful spot allocation (rack headroom or
            the point where the workload saturates).
        _grid_w: Tabulation grid of spot quantities (0 .. max_spot_w).
        _gains: Gain in $/h at each grid point; non-decreasing and
            concave by construction.
    """

    base_power_w: float
    max_spot_w: float
    _grid_w: np.ndarray
    _gains: np.ndarray

    def gain_per_hour(self, spot_w: float) -> float:
        """Dollar-per-hour gain from ``spot_w`` watts of spot capacity."""
        if spot_w <= 0:
            return 0.0
        return float(np.interp(spot_w, self._grid_w, self._gains))

    def marginal_gain_per_hour(self, spot_w: float, delta_w: float = 1.0) -> float:
        """Finite-difference marginal gain in $/h per watt at ``spot_w``."""
        if delta_w <= 0:
            raise ConfigurationError("delta_w must be positive")
        lo = self.gain_per_hour(spot_w)
        hi = self.gain_per_hour(spot_w + delta_w)
        return (hi - lo) / delta_w

    def optimal_demand_w(self, price_per_kw_hour: float) -> float:
        """The rational demand at a price: largest quantity whose marginal
        value still covers the price (the "Reference" curve of Fig. 3a).
        """
        price_per_watt_hour = price_per_kw_hour / 1000.0
        # Net benefit at each grid point; pick the argmax (concave gain
        # makes this the inverse-marginal solution up to grid resolution).
        net = self._gains - price_per_watt_hour * self._grid_w
        best = int(np.argmax(net))
        if net[best] <= 0:
            return 0.0
        return float(self._grid_w[best])

    @classmethod
    def from_gain_samples(
        cls, base_power_w: float, grid_w: np.ndarray, gains: np.ndarray
    ) -> "SpotValueCurve":
        """Build a curve from raw gain samples, enforcing shape.

        Gains are clipped to be non-negative and non-decreasing, and then
        concavified (running minimum of marginal increments) so downstream
        demand curves are well-behaved even if the underlying performance
        model has numeric wobble.
        """
        grid = np.asarray(grid_w, dtype=float)
        raw = np.asarray(gains, dtype=float)
        if grid.ndim != 1 or grid.size < 2:
            raise ConfigurationError("grid_w needs at least two points")
        if grid[0] != 0.0:
            raise ConfigurationError("grid_w must start at 0")
        if np.any(np.diff(grid) <= 0):
            raise ConfigurationError("grid_w must be strictly increasing")
        if grid.shape != raw.shape:
            raise ConfigurationError("grid_w and gains must align")
        monotone = np.maximum.accumulate(np.maximum(raw, 0.0))
        increments = np.diff(monotone) / np.diff(grid)
        concave_inc = np.minimum.accumulate(increments)
        concave = np.concatenate([[monotone[0]], monotone[0] + np.cumsum(concave_inc * np.diff(grid))])
        return cls(
            base_power_w=base_power_w,
            max_spot_w=float(grid[-1]),
            _grid_w=grid,
            _gains=concave,
        )


def sprinting_value_curve(
    latency_model: LatencyModel,
    cost_model: SprintingCostModel,
    base_power_w: float,
    arrival_rps: float,
    max_spot_w: float,
    grid_points: int = 100,
) -> SpotValueCurve:
    """Value curve for a sprinting (interactive) tenant's rack.

    The gain is the reduction of the latency-cost accrual rate when the
    rack budget rises from ``base_power_w`` to ``base_power_w + d``:
    dominated by avoided quadratic SLO penalties when the base budget
    forces latency above the SLO.

    Args:
        latency_model: The rack's tail-latency model.
        cost_model: The tenant's SLO cost model.
        base_power_w: Budget without spot capacity.
        arrival_rps: Anticipated request rate for the slot being bid on.
        max_spot_w: Rack spot headroom ``P_r^R``.
        grid_points: Tabulation resolution.
    """
    if max_spot_w <= 0:
        raise ConfigurationError("max_spot_w must be positive")
    grid = np.linspace(0.0, max_spot_w, grid_points + 1)
    base_cost = cost_model.cost_rate_per_hour(
        latency_model.latency_ms(base_power_w, arrival_rps), arrival_rps
    )
    gains = np.array(
        [
            base_cost
            - cost_model.cost_rate_per_hour(
                latency_model.latency_ms(base_power_w + float(d), arrival_rps),
                arrival_rps,
            )
            for d in grid
        ]
    )
    return SpotValueCurve.from_gain_samples(base_power_w, grid, gains)


def opportunistic_value_curve(
    throughput_model: ThroughputModel,
    cost_model: OpportunisticCostModel,
    base_power_w: float,
    backlog_units: float,
    max_spot_w: float,
    grid_points: int = 100,
) -> SpotValueCurve:
    """Value curve for an opportunistic (batch) tenant's rack.

    The gain is the completion-cost saving on the current backlog,
    normalised to a per-hour rate over the backlog's base completion
    time: ``V(d) = rho * (W/R0 - W/R(d)) / (W/R0 / 3600)``, which reduces
    to ``rho * 3600 * (1 - R0/R(d))`` — concave and saturating in ``d``.

    Args:
        throughput_model: The rack's processing-rate model.
        cost_model: The tenant's linear completion-time cost model.
        base_power_w: Budget without spot capacity.
        backlog_units: Outstanding work (only its positivity matters for
            the normalised gain; retained for API symmetry/documentation).
        max_spot_w: Rack spot headroom ``P_r^R``.
        grid_points: Tabulation resolution.
    """
    if max_spot_w <= 0:
        raise ConfigurationError("max_spot_w must be positive")
    if backlog_units < 0:
        raise ConfigurationError("backlog_units must be >= 0")
    grid = np.linspace(0.0, max_spot_w, grid_points + 1)
    base_rate = throughput_model.rate_at(base_power_w)
    if backlog_units == 0 or base_rate <= 0:
        # No backlog (nothing to speed up) or base budget below idle (the
        # tenant needs guaranteed capacity, not spot, to make progress).
        gains = np.zeros_like(grid)
        return SpotValueCurve.from_gain_samples(base_power_w, grid, gains)
    rates = np.array(
        [throughput_model.rate_at(base_power_w + float(d)) for d in grid]
    )
    gains = cost_model.rho * 3600.0 * (1.0 - base_rate / np.maximum(rates, 1e-12))
    return SpotValueCurve.from_gain_samples(base_power_w, grid, gains)
