"""Tenant performance-cost models (paper Section IV-C).

These models convert a performance measurement into an equivalent
monetary cost, which tenants use to value spot capacity.  They are the
paper's models verbatim:

* **Sprinting** (interactive): ``c = a*d`` below the SLO threshold and
  ``c = a*d + b*(d - d_th)**2`` above it — linear cost in latency, plus a
  quadratic SLO-violation penalty.
* **Opportunistic** (batch): ``c = rho * T_job`` — linear in job
  completion time (equivalently, inversely proportional to throughput).
"""

from __future__ import annotations

import dataclasses

from repro.config import SLO_LATENCY_MS
from repro.errors import ConfigurationError

__all__ = ["SprintingCostModel", "OpportunisticCostModel"]


@dataclasses.dataclass(frozen=True)
class SprintingCostModel:
    """Latency cost with a quadratic SLO-violation penalty.

    Attributes:
        a: Linear cost coefficient, dollars per job per millisecond.
        b: Quadratic penalty coefficient, dollars per job per ms^2 above
            the SLO.
        slo_ms: Service-level objective (paper: 100 ms for all sprinting
            tenants).
    """

    a: float
    b: float
    slo_ms: float = SLO_LATENCY_MS

    def __post_init__(self) -> None:
        if self.a < 0 or self.b < 0:
            raise ConfigurationError("cost coefficients must be >= 0")
        if self.slo_ms <= 0:
            raise ConfigurationError("slo_ms must be positive")

    def cost_per_job(self, latency_ms: float) -> float:
        """Equivalent monetary cost of serving one request at a latency."""
        if latency_ms < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency_ms}")
        cost = self.a * latency_ms
        if latency_ms > self.slo_ms:
            cost += self.b * (latency_ms - self.slo_ms) ** 2
        return cost

    def cost_rate_per_hour(self, latency_ms: float, request_rate_rps: float) -> float:
        """Cost accrual rate in $/h at a latency and request rate."""
        if request_rate_rps < 0:
            raise ConfigurationError("request rate must be >= 0")
        return self.cost_per_job(latency_ms) * request_rate_rps * 3600.0

    def violates_slo(self, latency_ms: float) -> bool:
        """Whether a latency breaches the SLO."""
        return latency_ms > self.slo_ms

    def scaled(self, factor: float) -> "SprintingCostModel":
        """A copy with cost coefficients scaled (tenant-diversity jitter)."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return SprintingCostModel(self.a * factor, self.b * factor, self.slo_ms)


@dataclasses.dataclass(frozen=True)
class OpportunisticCostModel:
    """Linear completion-time cost for delay-tolerant batch work.

    Attributes:
        rho: Scaling parameter, dollars per second of job completion
            time (per unit of work in flight).
    """

    rho: float

    def __post_init__(self) -> None:
        if self.rho < 0:
            raise ConfigurationError("rho must be >= 0")

    def cost_per_job(self, completion_time_s: float) -> float:
        """Cost of one job finishing in ``completion_time_s`` seconds."""
        if completion_time_s < 0:
            raise ConfigurationError("completion time must be >= 0")
        return self.rho * completion_time_s

    def backlog_cost(self, work_units: float, rate_units_per_s: float) -> float:
        """Cost of clearing a fixed backlog at a fixed processing rate.

        This is how the linear model values speed: a backlog of
        ``work_units`` at rate ``R`` completes in ``work / R`` seconds and
        costs ``rho * work / R``.  Spot capacity raises ``R`` and the
        saving is the difference of this cost at the two rates.
        """
        if work_units < 0:
            raise ConfigurationError("work_units must be >= 0")
        if work_units == 0:
            return 0.0
        if rate_units_per_s <= 0:
            return float("inf")
        return self.cost_per_job(work_units / rate_units_per_s)

    def scaled(self, factor: float) -> "OpportunisticCostModel":
        """A copy with ``rho`` scaled (tenant-diversity jitter)."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return OpportunisticCostModel(self.rho * factor)
