"""Colocation price sheet: guaranteed-capacity rates, energy tariff,
and rack over-provisioning capital cost.

All constants come from the paper (Sections I, II, V-B): guaranteed
capacity at US$120-250/kW/month, metered energy billed separately, and
US$0.4/W rack-capacity capex amortised over 15 years.
"""

from __future__ import annotations

import dataclasses

from repro import units
from repro.config import (
    ENERGY_TARIFF_PER_KWH,
    GUARANTEED_RATE_PER_KW_MONTH,
    RACK_CAPEX_AMORTIZATION_YEARS,
    RACK_CAPEX_PER_WATT,
)
from repro.errors import ConfigurationError

__all__ = ["PriceSheet"]


@dataclasses.dataclass(frozen=True)
class PriceSheet:
    """The operator's published prices.

    Attributes:
        guaranteed_rate_per_kw_month: Guaranteed-capacity subscription
            rate, $/kW/month.
        energy_tariff_per_kwh: Metered-energy charge, $/kWh.
        rack_capex_per_watt: One-time cost of over-provisioning one watt
            of rack-level capacity for spot-capacity delivery.
        rack_capex_amortization_years: Amortisation horizon for that
            capex in the operator's profit accounting.
    """

    guaranteed_rate_per_kw_month: float = GUARANTEED_RATE_PER_KW_MONTH
    energy_tariff_per_kwh: float = ENERGY_TARIFF_PER_KWH
    rack_capex_per_watt: float = RACK_CAPEX_PER_WATT
    rack_capex_amortization_years: float = RACK_CAPEX_AMORTIZATION_YEARS

    def __post_init__(self) -> None:
        if self.guaranteed_rate_per_kw_month <= 0:
            raise ConfigurationError("guaranteed rate must be positive")
        if self.energy_tariff_per_kwh < 0:
            raise ConfigurationError("energy tariff must be >= 0")
        if self.rack_capex_per_watt < 0:
            raise ConfigurationError("rack capex must be >= 0")
        if self.rack_capex_amortization_years <= 0:
            raise ConfigurationError("amortization horizon must be positive")

    @property
    def guaranteed_rate_per_kw_hour(self) -> float:
        """Amortised hourly guaranteed-capacity rate, $/kW/h.

        This is the paper's anchor for tenants' maximum spot bids: spot
        capacity should never cost more than simply subscribing more
        guaranteed capacity (Section III-B3).
        """
        return units.per_kw_month_to_per_kw_hour(self.guaranteed_rate_per_kw_month)

    def subscription_cost(self, guaranteed_w: float, duration_hours: float) -> float:
        """Guaranteed-capacity charge over a duration, dollars."""
        if guaranteed_w < 0 or duration_hours < 0:
            raise ConfigurationError("subscription inputs must be >= 0")
        return (
            units.watts_to_kilowatts(guaranteed_w)
            * self.guaranteed_rate_per_kw_hour
            * duration_hours
        )

    def energy_charge(self, watts: float, duration_hours: float) -> float:
        """Metered-energy charge for a constant draw over a duration."""
        if watts < 0 or duration_hours < 0:
            raise ConfigurationError("energy inputs must be >= 0")
        kwh = units.watts_to_kilowatts(watts) * duration_hours
        return kwh * self.energy_tariff_per_kwh

    def rack_capex_per_hour(self, overprovisioned_w: float) -> float:
        """Hourly amortisation of rack over-provisioning capex, dollars/h."""
        if overprovisioned_w < 0:
            raise ConfigurationError("overprovisioned_w must be >= 0")
        total = self.rack_capex_per_watt * overprovisioned_w
        return units.amortized_capex_per_hour(
            total, self.rack_capex_amortization_years
        )
