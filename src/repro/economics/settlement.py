"""Tenant settlement: itemised invoices over a simulation run.

Colocation bills have three line items under SpotDC: the guaranteed-
capacity subscription, the metered-energy charge, and the spot-capacity
payments.  :func:`build_invoice` turns a finished
:class:`~repro.sim.results.SimulationResult` into an auditable
per-tenant statement, and :func:`reconcile` cross-checks that the sum of
tenant spot payments equals the operator's recorded spot revenue — the
market's books must balance to the cent.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.reporting import format_table
from repro.errors import SimulationError

if typing.TYPE_CHECKING:
    # Imported lazily to keep `repro.economics` importable on its own
    # (settlement sits above the sim layer in the dependency graph).
    from repro.sim.results import SimulationResult

__all__ = ["Invoice", "build_invoice", "build_all_invoices", "reconcile"]


@dataclasses.dataclass(frozen=True)
class Invoice:
    """One tenant's statement for a simulated period.

    Attributes:
        tenant_id: The billed tenant.
        period_hours: Billing-period length.
        subscription_w: Subscribed guaranteed capacity.
        subscription_charge: Guaranteed-capacity line item, dollars.
        energy_kwh: Metered energy consumed.
        energy_charge: Energy line item, dollars.
        spot_slots: Slots in which the tenant held spot capacity.
        spot_watt_hours: Integrated spot capacity held, watt-hours.
        spot_charge: Spot-market line item, dollars.
        spot_credit: Memo line, dollars: value of spot grants revoked
            before delivery (lost broadcasts, degradation control).
            Revoked grants are *rebilled out* at the slot, so the credit
            is already absent from :attr:`spot_charge` and is shown for
            audit only — it is not subtracted again from :attr:`total`.
        quarantined_bids: Memo line: bid bundles the admission front
            door rejected over the period.  A quarantined bundle is
            never cleared or billed (the tenant sat the slot out), so
            this too is audit-only — but a tenant disputing "why did I
            get no capacity" finds the answer on their statement.
    """

    tenant_id: str
    period_hours: float
    subscription_w: float
    subscription_charge: float
    energy_kwh: float
    energy_charge: float
    spot_slots: int
    spot_watt_hours: float
    spot_charge: float
    spot_credit: float = 0.0
    quarantined_bids: int = 0

    @property
    def total(self) -> float:
        """Total amount due, dollars."""
        return self.subscription_charge + self.energy_charge + self.spot_charge

    @property
    def effective_spot_rate(self) -> float:
        """Average realised spot price, $/kW/h (0 with no spot usage)."""
        if self.spot_watt_hours <= 0:
            return 0.0
        return self.spot_charge / (self.spot_watt_hours / 1000.0)


def build_invoice(result: SimulationResult, tenant_id: str) -> Invoice:
    """Assemble one tenant's invoice from a finished run."""
    if tenant_id not in result.tenants:
        raise SimulationError(f"unknown tenant {tenant_id!r}")
    info = result.tenants[tenant_id]
    energy_kwh = 0.0
    spot_slots = 0
    spot_watt_hours = 0.0
    for rack_id in info.rack_ids:
        power = result.collector.rack_power_array(rack_id)
        granted = result.collector.rack_granted_array(rack_id)
        energy_kwh += float(power.sum()) / 1000.0 * result.slot_hours
        spot_slots += int((granted > 0).sum())
        spot_watt_hours += float(granted.sum()) * result.slot_hours
    spot_credit = sum(
        note.dollars
        for note in getattr(result, "credit_notes", ())
        if note.tenant_id == tenant_id
    )
    return Invoice(
        tenant_id=tenant_id,
        period_hours=result.duration_hours,
        subscription_w=info.guaranteed_w,
        subscription_charge=result.tenant_subscription_cost(tenant_id),
        energy_kwh=energy_kwh,
        energy_charge=result.tenant_energy_cost(tenant_id),
        spot_slots=spot_slots,
        spot_watt_hours=spot_watt_hours,
        spot_charge=result.tenant_spot_payment(tenant_id),
        spot_credit=spot_credit,
        quarantined_bids=getattr(result, "quarantined_bids", {}).get(
            tenant_id, 0
        ),
    )


def build_all_invoices(result: SimulationResult) -> list[Invoice]:
    """Invoices for every tenant (participating or not), roster order."""
    return [build_invoice(result, t) for t in result.tenants]


def reconcile(result: SimulationResult, tolerance: float = 1e-6) -> None:
    """Check the market's books balance.

    The sum of all tenants' spot charges must equal the operator's
    recorded spot revenue (per-PDU prices make this non-trivial: every
    grant must have been billed at its own PDU's price).

    Raises:
        SimulationError: On any imbalance beyond ``tolerance`` dollars.
    """
    billed = sum(
        result.tenant_spot_payment(tenant_id) for tenant_id in result.tenants
    )
    earned = result.total_spot_revenue()
    if abs(billed - earned) > tolerance:
        raise SimulationError(
            f"settlement imbalance: tenants billed ${billed:.6f} but the "
            f"operator recorded ${earned:.6f} of spot revenue"
        )


def render_invoices(invoices: list[Invoice]) -> str:
    """A statement table across tenants."""
    rows = [
        [
            inv.tenant_id,
            inv.subscription_charge,
            inv.energy_charge,
            inv.spot_charge,
            inv.spot_credit,
            inv.quarantined_bids,
            inv.total,
            inv.effective_spot_rate,
        ]
        for inv in invoices
    ]
    return format_table(
        [
            "tenant", "subscription [$]", "energy [$]", "spot [$]",
            "credited [$]", "quarantined", "total [$]",
            "avg spot rate [$/kW/h]",
        ],
        rows,
        title="Tenant invoices",
    )
