"""Money: the colo price sheet, tenant performance-cost models,
spot-capacity value curves, and operator profit accounting.
"""

from repro.economics.cost import OpportunisticCostModel, SprintingCostModel
from repro.economics.pricing import PriceSheet
from repro.economics.profit import OperatorLedger
from repro.economics.settlement import (
    Invoice,
    build_all_invoices,
    build_invoice,
    reconcile,
    render_invoices,
)
from repro.economics.valuation import (
    SpotValueCurve,
    opportunistic_value_curve,
    sprinting_value_curve,
)

__all__ = [
    "Invoice",
    "OperatorLedger",
    "OpportunisticCostModel",
    "PriceSheet",
    "SpotValueCurve",
    "SprintingCostModel",
    "build_all_invoices",
    "build_invoice",
    "opportunistic_value_curve",
    "reconcile",
    "render_invoices",
    "sprinting_value_curve",
]
